# Development entry points. `make ci` is the gate every change must pass:
# vet, formatting, build, the hottileslint analyzer suite (plus the shadow
# pass through `go vet -vettool`; see DESIGN.md §11), the full test suite
# under the race detector (the parallel experiment engine makes -race
# meaningful; see DESIGN.md §9), and the coverage report with its
# per-package floor.

GO ?= go

# Packages whose coverage is gated ("pkg:floor" pairs, integer percent).
# internal/obs is the observability layer PR 2 introduced; its nil-receiver
# no-op paths are easy to leave untested by accident. internal/workload is
# the PR 7 dynamic-workload engine, whose property/golden wall is the whole
# point — a coverage drop there means the wall has holes.
COVER_FLOORS = repro/internal/obs:80 repro/internal/workload:80

# Seconds of coverage-guided fuzzing per fuzzer in `make fuzz`.
FUZZTIME ?= 10s

.PHONY: help ci vet fmtcheck build lint shadow test race bench benchsmoke benchcmp cover fuzz golden servesmoke worksmoke

ci: vet fmtcheck build lint shadow race cover benchsmoke benchcmp servesmoke worksmoke

help:
	@echo "make ci          - full gate: vet, fmtcheck, build, lint, shadow, race, cover, benchsmoke"
	@echo "make test        - go test ./..."
	@echo "make race        - go test -race ./..."
	@echo "make bench       - run the tracked benchmarks (engine, tiler, model, fan-out)"
	@echo "                   with -benchmem and write BENCH_$(BENCH_PR).json via cmd/benchdiff;"
	@echo "                   compare baselines with: ./bin/benchdiff old.json new.json"
	@echo "make benchsmoke  - compile-and-run every benchmark once (catches bit-rot)"
	@echo "make worksmoke   - tiny end-to-end spmmsim gnn+evolve run"
	@echo "make benchcmp    - quick tracked-benchmark run vs the committed baseline"
	@echo "make lint        - hottileslint analyzer suite (DESIGN.md §11, §16), eleven passes:"
	@echo "                   mapiter nakedgo spanend floateq lockcopy shadow"
	@echo "                   hotalloc detrand ctxflow errwrap metricname"
	@echo "make cover       - coverage with per-package floor"
	@echo "make fuzz        - short coverage-guided fuzz pass (FUZZTIME=$(FUZZTIME))"
	@echo "make golden      - regenerate pinned experiment outputs (review the diff!)"
	@echo "make servesmoke  - end-to-end hottilesd daemon smoke (real port, SIGTERM drain)"

vet:
	$(GO) vet ./...

# fmtcheck fails when any file is not gofmt-clean (testdata included; the
# analyzer fixtures are real Go code and drift there is just as confusing).
fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "fmtcheck: files need gofmt:"; echo "$$out"; exit 1; \
	fi; \
	echo "fmtcheck: all files gofmt-clean"

build:
	$(GO) build ./...

# lint runs the hottileslint analyzer suite (DESIGN.md §11) over the whole
# module in standalone mode. Any diagnostic fails the build.
bin/hottileslint: FORCE
	@mkdir -p bin
	$(GO) build -o bin/hottileslint ./cmd/hottileslint

lint: bin/hottileslint
	./bin/hottileslint ./...

# shadow runs the same binary through the `go vet -vettool` protocol with
# only the shadow analyzer enabled — exercising the unitchecker path in CI
# and catching shadowed variables that plain `go vet` no longer reports.
shadow: bin/hottileslint
	$(GO) vet -vettool=$(CURDIR)/bin/hottileslint -shadow ./...

FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the perf-trajectory benchmarks (DESIGN.md §12): the zero-alloc
# engine and waterfill microbenches, the tiler, the analytical model, the
# simulator, and the experiment fan-out. Output lands in BENCH_$(BENCH_PR).json
# (committed as this PR's baseline); diff two baselines with
# `./bin/benchdiff [-threshold 1.25] BENCH_old.json BENCH_new.json`.
BENCH_PR ?= 9
# Iteration budget per tracked benchmark in `make bench`. The committed
# baselines are measured on an otherwise idle machine with a few seconds
# per benchmark; short-sample runs of the ~100ms studies are noise-bound.
BENCHTIME ?= 3s
TRACKED_BENCH = BenchmarkExperimentsFanout|BenchmarkTilePartition|BenchmarkModelEstimateGrid|BenchmarkSimulateHeterogeneous|BenchmarkPartitionHotTiles|BenchmarkSpMMParallel
TRACKED_BENCH_SIM = BenchmarkEngine|BenchmarkWaterfill|BenchmarkRunnerReuse
TRACKED_BENCH_WORKLOAD = BenchmarkGNNForward|BenchmarkEvolveReplan
TRACKED_BENCH_LINT = BenchmarkLintSuite

bin/benchdiff: FORCE
	@mkdir -p bin
	$(GO) build -o bin/benchdiff ./cmd/benchdiff

bench: bin/benchdiff
	{ $(GO) test -run=NONE -bench='$(TRACKED_BENCH_SIM)' -benchmem -benchtime=$(BENCHTIME) ./internal/sim && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH_WORKLOAD)' -benchmem -benchtime=$(BENCHTIME) ./internal/workload && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH_LINT)' -benchmem -benchtime=$(BENCHTIME) ./internal/analysis && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH)' -benchmem -benchtime=$(BENCHTIME) . ; } \
	| tee /dev/stderr | ./bin/benchdiff -emit BENCH_$(BENCH_PR).json

# benchsmoke compiles and runs every benchmark in the module for exactly one
# iteration — a CI guard against benchmarks that no longer build or crash.
benchsmoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# benchcmp guards the perf trajectory inside `make ci`: it re-runs the
# tracked benchmarks briefly and compares against the committed
# BENCH_$(BENCH_PR).json baseline. The short -benchtime keeps the gate
# cheap, so the threshold is deliberately generous — this catches
# order-of-magnitude regressions and zero-alloc benchmarks that started
# allocating, not percent-level drift (use `make bench` + bin/benchdiff for
# the precise comparison before updating the baseline).
BENCHCMP_THRESHOLD ?= 4.0
benchcmp: bin/benchdiff
	{ $(GO) test -run=NONE -bench='$(TRACKED_BENCH_SIM)' -benchmem -benchtime=10ms ./internal/sim && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH_WORKLOAD)' -benchmem -benchtime=10ms ./internal/workload && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH_LINT)' -benchmem -benchtime=10ms ./internal/analysis && \
	  $(GO) test -run=NONE -bench='$(TRACKED_BENCH)' -benchmem -benchtime=10ms . ; } \
	| ./bin/benchdiff -emit bin/BENCH_head.json
	./bin/benchdiff -threshold $(BENCHCMP_THRESHOLD) BENCH_$(BENCH_PR).json bin/BENCH_head.json

# cover prints a per-package coverage summary and fails when any gated
# package drops below its floor.
cover:
	$(GO) test -count=1 -cover -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@for pair in $(COVER_FLOORS); do \
		pkg=$${pair%:*}; floor=$${pair##*:}; \
		pct=$$($(GO) test -count=1 -cover $$pkg 2>/dev/null \
			| sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then \
			echo "cover: no coverage reported for $$pkg"; exit 1; \
		fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $$floor% floor"; exit 1; \
		fi; \
		echo "cover: $$pkg at $$pct% (floor $$floor%)"; \
	done

# fuzz runs each fuzzer's coverage-guided loop for FUZZTIME — a smoke pass,
# not a soak; the seed corpora also run in every plain `go test ./...`.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/mm
	$(GO) test -fuzz=FuzzCOOToCSR -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -fuzz=FuzzReadPlan -fuzztime=$(FUZZTIME) ./internal/hotcore

# servesmoke exercises the hottilesd daemon end to end through real
# processes: ephemeral port, planload's upload→fetch→validate round trip, a
# small concurrent burst, and a SIGTERM that must drain cleanly.
bin/hottilesd: FORCE
	@mkdir -p bin
	$(GO) build -o bin/hottilesd ./cmd/hottilesd

bin/planload: FORCE
	@mkdir -p bin
	$(GO) build -o bin/planload ./cmd/planload

servesmoke: bin/hottilesd bin/planload
	sh scripts/servesmoke.sh

# worksmoke runs the dynamic-workload studies end to end through the real
# CLI at a tiny scale — a CI guard that `spmmsim gnn evolve` keeps working
# (the golden tests pin their numbers; this pins the binary path).
worksmoke:
	$(GO) run ./cmd/spmmsim -scale 2048 gnn evolve > /dev/null
	@echo "worksmoke: spmmsim gnn + evolve ok"

# golden regenerates the pinned experiment outputs after an intentional
# change (review the diff before committing).
golden:
	$(GO) test ./internal/experiments -run TestGolden -update -count=1

package hottiles

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestPartitionWithSpMVEndToEnd(t *testing.T) {
	m := demoMatrix(10)
	a := demoArch()
	plan, err := PartitionWith(m, &a, PartitionOptions{
		Strategy: StrategyHotTiles,
		Kernel:   KernelSpMV,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := NewDense(m.N, 1)
	for i := range x.Data {
		x.Data[i] = float64(i%7) + 1
	}
	res, err := Simulate(plan, &a, x, SimOptions{Serial: plan.Partition.Serial, Kernel: KernelSpMV})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceSpMV(m, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := res.Output.At(i, 0) - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d: %g vs %g", i, res.Output.At(i, 0), want[i])
		}
	}
}

func TestPartitionWithSDDMMEndToEnd(t *testing.T) {
	m := demoMatrix(11)
	a := demoArch()
	plan, err := PartitionWith(m, &a, PartitionOptions{
		Strategy: StrategyHotTiles,
		Kernel:   KernelSDDMM,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	emb := NewDense(m.N, a.K)
	for i := range emb.Data {
		emb.Data[i] = rng.NormFloat64()
	}
	res, err := Simulate(plan, &a, emb, SimOptions{Serial: plan.Partition.Serial, Kernel: KernelSDDMM})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SDDMM) != m.NNZ() {
		t.Fatalf("SDDMM values %d, want %d", len(res.SDDMM), m.NNZ())
	}
	// Reference on the tile-ordered matrix (sums are order-independent).
	ref, err := ReferenceSDDMM(plan.Grid.ToCOO(), emb, emb)
	if err != nil {
		t.Fatal(err)
	}
	sumSim, sumRef := 0.0, 0.0
	for i := range ref {
		sumSim += res.SDDMM[i]
		sumRef += ref[i]
	}
	if d := sumSim - sumRef; d > 1e-6 || d < -1e-6 {
		t.Fatalf("SDDMM sums differ: %g vs %g", sumSim, sumRef)
	}
}

func TestReorderFacade(t *testing.T) {
	m := demoMatrix(13)
	for name, p := range map[string]Permutation{
		"degree": ReorderDegreeSort(m),
		"bfs":    ReorderBFSCluster(m),
		"random": ReorderRandom(m.N, 3),
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := ApplyReorder(m, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.NNZ() != m.NNZ() {
			t.Fatalf("%s: nnz changed", name)
		}
	}
}

func TestAutoTileSizeFacade(t *testing.T) {
	m := demoMatrix(14)
	a := demoArch()
	best, sweep, err := AutoTileSize(m, &a, []int{64, 128, 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best == 0 || len(sweep) != 3 {
		t.Fatalf("best=%d sweep=%d", best, len(sweep))
	}
}

func TestBenchmarkBuildViaFacade(t *testing.T) {
	b, ok := BenchmarkByShort("del")
	if !ok {
		t.Fatal("del missing")
	}
	m := b.Build(1, 1024)
	if m.Validate() != nil || m.NNZ() == 0 {
		t.Fatal("benchmark build broken")
	}
	// gen import is exercised through the facade variables too.
	if len(gen.Benchmarks()) != len(Benchmarks()) {
		t.Fatal("facade suite diverges")
	}
}

func TestPlanPersistenceViaFacade(t *testing.T) {
	m := demoMatrix(15)
	a := demoArch()
	plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded plan simulates identically — the paper's train-once,
	// infer-many workflow.
	din := NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = 1
	}
	r1, err := Simulate(plan, &a, din, SimOptions{Serial: plan.Partition.Serial})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(back, &a, din, SimOptions{Serial: back.Partition.Serial})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || !r1.Output.Equal(r2.Output) {
		t.Fatal("reloaded plan behaves differently")
	}
}

func TestSimulateTraceViaFacade(t *testing.T) {
	m := demoMatrix(16)
	a := demoArch()
	plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(plan, &a, nil, SimOptions{SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no trace")
	}
}

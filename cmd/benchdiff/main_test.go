package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: some cpu
BenchmarkEngine-8   	    1447	    811501 ns/op	     132 B/op	      12 allocs/op
BenchmarkEngine-8   	    1445	    813499 ns/op	     132 B/op	      12 allocs/op
BenchmarkWaterfill-8	 4060328	       294.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkExperimentsFanout/parallel-8	       2	 531170971 ns/op
PASS
ok  	repro/internal/sim	12.3s
`

func TestParseBench(t *testing.T) {
	bs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(bs), bs)
	}
	eng, ok := bs["BenchmarkEngine"]
	if !ok {
		t.Fatalf("missing BenchmarkEngine (procs suffix not stripped?): %v", bs)
	}
	if eng.NsPerOp != 812500 { // average of the two runs
		t.Fatalf("BenchmarkEngine ns/op = %v, want averaged 812500", eng.NsPerOp)
	}
	if eng.AllocsPerOp != 12 || eng.BytesPerOp != 132 {
		t.Fatalf("BenchmarkEngine mem metrics = %+v", eng)
	}
	wf := bs["BenchmarkWaterfill"]
	if wf.NsPerOp != 294.9 || wf.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkWaterfill = %+v", wf)
	}
	fan, ok := bs["BenchmarkExperimentsFanout/parallel"]
	if !ok || fan.NsPerOp != 531170971 {
		t.Fatalf("sub-benchmark without -benchmem = %+v ok=%v", fan, ok)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkEngine-8":           "BenchmarkEngine",
		"BenchmarkEngine":             "BenchmarkEngine",
		"BenchmarkFanout/parallel-16": "BenchmarkFanout/parallel",
		"BenchmarkKernels/cache-on-8": "BenchmarkKernels/cache-on",
		"BenchmarkKernels/cache-on":   "BenchmarkKernels/cache-on",
		"BenchmarkAblation/512-4":     "BenchmarkAblation/512",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	old := map[string]Metrics{
		"A": {NsPerOp: 1000, AllocsPerOp: 5},
		"B": {NsPerOp: 1000, AllocsPerOp: 0},
		"C": {NsPerOp: 1000},
		"D": {NsPerOp: 500}, // absent from new: ignored
	}
	new := map[string]Metrics{
		"A": {NsPerOp: 1200, AllocsPerOp: 5}, // within 1.25x: fine
		"B": {NsPerOp: 900, AllocsPerOp: 3},  // faster but now allocates: regression
		"C": {NsPerOp: 1500},                 // 1.5x: regression
		"E": {NsPerOp: 10},                   // new benchmark: ignored
	}
	lines := compare(old, new, 1.25)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	want := map[string]bool{"A": false, "B": true, "C": true}
	for _, d := range lines {
		if d.Regression != want[d.Name] {
			t.Errorf("%s: regression = %v, want %v (ratio %.2f)", d.Name, d.Regression, want[d.Name], d.Ratio)
		}
	}
	if lines[0].Name != "A" || lines[2].Name != "C" {
		t.Errorf("lines not sorted by name: %v", lines)
	}
}

func TestEmitAndRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := emit(oldPath, strings.NewReader(sampleOutput)); err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(sampleOutput, "811501 ns/op", "411501 ns/op")
	faster = strings.ReplaceAll(faster, "813499 ns/op", "413499 ns/op")
	if err := emit(newPath, strings.NewReader(faster)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	regressed, err := run(oldPath, newPath, 1.25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("speedup reported as regression:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkEngine") {
		t.Fatalf("report missing benchmark rows:\n%s", sb.String())
	}
	// Reversed direction must regress.
	regressed, err = run(newPath, oldPath, 1.25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("2x slowdown not flagged as regression")
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(p); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestTrajectory pins the trend-table mode: columns in file order, "-" for
// benchmarks absent at a point, cumulative drift from the first present
// value, and a WORSENED flag on any consecutive step beyond the threshold.
func TestTrajectory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := write("BENCH_1.json", `{"schema":"hottiles-bench/1","benchmarks":{
		"BenchmarkSteady":{"ns_op":100},
		"BenchmarkRegressed":{"ns_op":100}}}`)
	p2 := write("BENCH_2.json", `{"schema":"hottiles-bench/1","benchmarks":{
		"BenchmarkSteady":{"ns_op":105},
		"BenchmarkRegressed":{"ns_op":200},
		"BenchmarkNew":{"ns_op":50}}}`)

	var sb strings.Builder
	if err := trajectory([]string{p1, p2}, 1.25, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BENCH_1", "BENCH_2", "BenchmarkSteady", "+5%", "+100%", "WORSENED"} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "BenchmarkNew"):
			if !strings.Contains(line, "-") {
				t.Errorf("absent point not rendered as -: %s", line)
			}
			if strings.Contains(line, "WORSENED") {
				t.Errorf("single-point benchmark flagged: %s", line)
			}
		case strings.Contains(line, "BenchmarkSteady"):
			if strings.Contains(line, "WORSENED") {
				t.Errorf("+5%% step flagged at 1.25x threshold: %s", line)
			}
		}
	}

	if err := trajectory([]string{p1}, 1.25, &sb); err == nil {
		t.Fatal("single-file trajectory accepted")
	}
}

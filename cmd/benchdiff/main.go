// Command benchdiff maintains the repo's benchmark baseline. It has three
// modes:
//
//	go test -bench=... -benchmem ./... | benchdiff -emit BENCH_4.json
//	benchdiff [-threshold 1.25] BENCH_old.json BENCH_new.json
//	benchdiff -trajectory BENCH_4.json BENCH_7.json BENCH_8.json ...
//
// -emit parses `go test -bench` output from stdin into a JSON map of
// benchmark name to {ns/op, B/op, allocs/op} (the committed BENCH_*.json
// perf-trajectory points; repeated runs of one benchmark are averaged).
// Compare mode prints the per-benchmark time ratio between two such files
// and exits non-zero when any shared benchmark slowed down by more than
// the threshold factor, or when a zero-allocation benchmark started
// allocating — the regressions `make bench` is meant to catch.
// -trajectory reads the baselines in argument order (the PR sequence) and
// prints one ns/op column per file plus the cumulative drift, flagging any
// consecutive step that worsened beyond the threshold; it is informational
// and always exits 0.
package main

import (
	"bufio"
	"cmp"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
)

// Metrics are the per-benchmark numbers tracked in a baseline file.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// File is the committed BENCH_*.json schema.
type File struct {
	Schema     string             `json:"schema"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

const schema = "hottiles-bench/1"

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// trimProcs strips the trailing -<GOMAXPROCS> suffix go test appends to
// benchmark names, so baselines compare across machines.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBench reads `go test -bench` output and averages the recognized
// metrics per benchmark name.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	sums := map[string]*Metrics{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := trimProcs(m[1])
		fields := strings.Fields(m[3])
		var cur Metrics
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				cur.NsPerOp = v
				seen = true
			case "B/op":
				cur.BytesPerOp = v
			case "allocs/op":
				cur.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		s := sums[name]
		if s == nil {
			s = &Metrics{}
			sums[name] = s
		}
		s.NsPerOp += cur.NsPerOp
		s.BytesPerOp += cur.BytesPerOp
		s.AllocsPerOp += cur.AllocsPerOp
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metrics, len(sums))
	for name, s := range sums {
		n := float64(counts[name])
		out[name] = Metrics{
			NsPerOp:     s.NsPerOp / n,
			BytesPerOp:  s.BytesPerOp / n,
			AllocsPerOp: s.AllocsPerOp / n,
		}
	}
	return out, nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if f.Benchmarks == nil {
		return nil, fmt.Errorf("benchdiff: %s: no benchmarks", path)
	}
	return &f, nil
}

// diffLine is one row of a comparison report.
type diffLine struct {
	Name       string
	Old, New   Metrics
	Ratio      float64 // new/old ns per op
	Regression bool
}

// compare pairs the benchmarks present in both files. A row regresses when
// its time ratio exceeds threshold or when a previously allocation-free
// benchmark now allocates.
func compare(old, new map[string]Metrics, threshold float64) []diffLine {
	var out []diffLine
	for name, n := range new {
		o, ok := old[name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		d := diffLine{Name: name, Old: o, New: n, Ratio: n.NsPerOp / o.NsPerOp}
		d.Regression = d.Ratio > threshold ||
			(o.AllocsPerOp == 0 && n.AllocsPerOp > 0)
		out = append(out, d)
	}
	slices.SortFunc(out, func(a, b diffLine) int {
		return cmp.Compare(a.Name, b.Name)
	})
	return out
}

func emit(path string, in io.Reader) error {
	bs, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(bs) == 0 {
		return fmt.Errorf("benchdiff: no benchmark lines on stdin")
	}
	data, err := json.MarshalIndent(&File{Schema: schema, Benchmarks: bs}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(bs), path)
	return nil
}

func run(oldPath, newPath string, threshold float64, w io.Writer) (bool, error) {
	oldF, err := readFile(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := readFile(newPath)
	if err != nil {
		return false, err
	}
	lines := compare(oldF.Benchmarks, newF.Benchmarks, threshold)
	if len(lines) == 0 {
		return false, fmt.Errorf("benchdiff: no benchmarks in common")
	}
	fmt.Fprintf(w, "%-52s%14s%14s%8s  %s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs")
	anyRegressed := false
	for _, d := range lines {
		flag := ""
		if d.Regression {
			flag = "  REGRESSION"
			anyRegressed = true
		}
		fmt.Fprintf(w, "%-52s%14.0f%14.0f%8.2f  %.0f→%.0f%s\n",
			d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.Ratio,
			d.Old.AllocsPerOp, d.New.AllocsPerOp, flag)
	}
	return anyRegressed, nil
}

// trajRow is one benchmark's history across an ordered list of baseline
// files: NaN marks files where the benchmark does not appear.
type trajRow struct {
	Name    string
	NsPerOp []float64
	// Worsened flags a consecutive present-to-present step whose ratio
	// exceeded the threshold.
	Worsened bool
}

// trajectoryRows pairs every benchmark seen anywhere with its per-file
// history, in file order.
func trajectoryRows(files []*File, threshold float64) []trajRow {
	names := map[string]bool{}
	for _, f := range files {
		for n := range f.Benchmarks {
			names[n] = true
		}
	}
	rows := make([]trajRow, 0, len(names))
	for name := range names {
		row := trajRow{Name: name, NsPerOp: make([]float64, len(files))}
		prev := 0.0
		for i, f := range files {
			m, ok := f.Benchmarks[name]
			if !ok || m.NsPerOp <= 0 {
				row.NsPerOp[i] = math.NaN()
				continue
			}
			row.NsPerOp[i] = m.NsPerOp
			if prev > 0 && m.NsPerOp/prev > threshold {
				row.Worsened = true
			}
			prev = m.NsPerOp
		}
		rows = append(rows, row)
	}
	slices.SortFunc(rows, func(a, b trajRow) int {
		return cmp.Compare(a.Name, b.Name)
	})
	return rows
}

// trajectory renders the per-benchmark trend table across the baselines in
// path order. It never fails on drift — the table is the deliverable — but
// flags steps beyond the threshold so a reader can spot the PR at fault.
func trajectory(paths []string, threshold float64, w io.Writer) error {
	if len(paths) < 2 {
		return fmt.Errorf("benchdiff: -trajectory needs at least two baseline files")
	}
	files := make([]*File, len(paths))
	for i, p := range paths {
		f, err := readFile(p)
		if err != nil {
			return err
		}
		files[i] = f
	}

	fmt.Fprintf(w, "%-52s", "benchmark")
	for _, p := range paths {
		base := strings.TrimSuffix(filepath.Base(p), ".json")
		fmt.Fprintf(w, "%14s", base)
	}
	fmt.Fprintf(w, "%9s\n", "drift")
	for _, row := range trajectoryRows(files, threshold) {
		fmt.Fprintf(w, "%-52s", row.Name)
		first, last := math.NaN(), math.NaN()
		for _, v := range row.NsPerOp {
			if math.IsNaN(v) {
				fmt.Fprintf(w, "%14s", "-")
				continue
			}
			fmt.Fprintf(w, "%14.0f", v)
			if math.IsNaN(first) {
				first = v
			}
			last = v
		}
		if math.IsNaN(first) {
			fmt.Fprintf(w, "%9s", "-")
		} else {
			fmt.Fprintf(w, "%+8.0f%%", (last/first-1)*100)
		}
		if row.Worsened {
			fmt.Fprint(w, "  WORSENED")
		}
		fmt.Fprintln(w)
	}
	return nil
}

func main() {
	emitPath := flag.String("emit", "", "parse `go test -bench` output from stdin and write a baseline JSON to this path")
	threshold := flag.Float64("threshold", 1.25, "fail when new/old ns-per-op exceeds this factor")
	traj := flag.Bool("trajectory", false, "print the per-benchmark ns/op trend across the baseline files given in order")
	flag.Parse()

	var err error
	switch {
	case *emitPath != "":
		err = emit(*emitPath, os.Stdin)
	case *traj:
		err = trajectory(flag.Args(), *threshold, os.Stdout)
	case flag.NArg() == 2:
		var regressed bool
		regressed, err = run(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err == nil && regressed {
			fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.2fx threshold\n", *threshold)
			os.Exit(1)
		}
	default:
		err = fmt.Errorf("usage: benchdiff -emit out.json < bench-output, or benchdiff [-threshold f] old.json new.json")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

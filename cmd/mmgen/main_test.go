package main

import "testing"

func TestBuildBenchmarks(t *testing.T) {
	m, err := build("pap", "", 0, 0, 0, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("empty benchmark matrix")
	}
	if _, err := build("nope", "", 0, 0, 0, 1024, 1); err == nil {
		t.Fatal("expected unknown-benchmark error")
	}
}

func TestBuildGenerators(t *testing.T) {
	for _, g := range []string{
		"uniform", "rmat", "powerlaw", "mesh2d", "stencil3d",
		"banded", "community", "mycielskian", "denseblocks",
	} {
		m, err := build("", g, 512, 8, 2.1, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
	if _, err := build("", "nope", 512, 8, 2.1, 0, 1); err == nil {
		t.Fatal("expected unknown-generator error")
	}
	if _, err := build("", "", 512, 8, 2.1, 0, 1); err == nil {
		t.Fatal("expected missing-selector error")
	}
}

// Command mmgen synthesizes the benchmark matrices of the paper's Tables V
// and VIII (or generic generator outputs) and writes them in MatrixMarket
// format, so the hottiles CLI and external tools can consume them.
//
// Usage:
//
//	mmgen -bench pap -scale 64 -o pap.mtx          # a Table V/VIII mimic
//	mmgen -gen powerlaw -n 100000 -deg 16 -o g.mtx # a raw generator
//	mmgen -list                                    # available benchmarks
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/mm"
	"repro/internal/obs"
	"repro/internal/sparse"
)

func main() {
	bench := flag.String("bench", "", "benchmark short name (Table V/VIII mimic)")
	generator := flag.String("gen", "", "raw generator: uniform|rmat|powerlaw|mesh2d|stencil3d|banded|community|mycielskian|denseblocks")
	n := flag.Int("n", 65536, "matrix dimension for raw generators")
	deg := flag.Float64("deg", 16, "average nonzeros per row for raw generators")
	gamma := flag.Float64("gamma", 2.1, "power-law exponent")
	scale := flag.Int("scale", 64, "benchmark scale divisor")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available benchmarks")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoint (pprof, /metrics, /progress) on this address, e.g. :6060")
	logSpec := flag.String("log", "info:text", "diagnostic log level and format: level[:format], e.g. debug, warn:json")
	flag.Parse()

	logOpts, err := obs.ParseLogFlag(*logSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmgen:", err)
		os.Exit(2)
	}
	logger = obs.NewLogger(os.Stderr, logOpts)

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	if *debugAddr != "" {
		addr, stop, srvErr := obs.ServeDebug(*debugAddr)
		if srvErr != nil {
			fail(srvErr)
		}
		defer stop()
		logger.Info("mmgen.debug.listen", obs.Str("addr", addr))
		obs.SetDeepTiming(true)
	}

	if *list {
		fmt.Println("Table V (sparse suite):")
		for _, b := range gen.Benchmarks() {
			fmt.Printf("  %-4s %-26s %s\n", b.Short, b.Name, b.Domain)
		}
		fmt.Println("Table VIII (denser suite):")
		for _, b := range gen.DenseBenchmarks() {
			fmt.Printf("  %-4s %-26s %s\n", b.Short, b.Name, b.Domain)
		}
		return
	}

	m, err := build(*bench, *generator, *n, *deg, *gamma, *scale, *seed)
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := mm.Write(w, m); err != nil {
		fail(err)
	}
	logger.Info("mmgen.generated",
		obs.Int("rows", m.N), obs.Int("nnz", m.NNZ()),
		obs.F64("density", m.Density()))
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// logger is the CLI's diagnostic stream (stderr; stdout may carry the
// matrix itself). main replaces it once the -log flag is parsed.
var logger *obs.Logger

// fail logs a fatal error as a structured line and exits. Before flag
// parsing installs the logger, fall back to plain stderr.
func fail(err error) {
	if logger == nil {
		fmt.Fprintln(os.Stderr, "mmgen:", err)
		os.Exit(1)
	}
	logger.Error("mmgen.fatal", obs.Str("err", err.Error()))
	os.Exit(1)
}

func build(bench, generator string, n int, deg, gamma float64, scale int, seed int64) (*sparse.COO, error) {
	switch {
	case bench != "":
		b, ok := gen.ByShort(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		return b.Build(seed, scale), nil
	case generator != "":
		rng := rand.New(rand.NewSource(seed))
		nnz := int(deg * float64(n))
		switch generator {
		case "uniform":
			return gen.Uniform(rng, n, nnz), nil
		case "rmat":
			logn := int(math.Round(math.Log2(float64(n))))
			return gen.RMAT(rng, logn, int(deg)), nil
		case "powerlaw":
			return gen.PowerLaw(rng, n, deg, gamma), nil
		case "mesh2d":
			side := int(math.Sqrt(float64(n)))
			return gen.Mesh2D(side, side), nil
		case "stencil3d":
			side := int(math.Cbrt(float64(n)))
			return gen.Stencil3D(side, side, side, 1), nil
		case "banded":
			return gen.Banded(rng, n, n/64, int(deg), 0.02), nil
		case "community":
			return gen.BlockCommunity(rng, n, 96, 0.6, deg/4), nil
		case "mycielskian":
			k := 2 + int(math.Round(math.Log2(float64(n+1)/3)))
			return gen.Mycielskian(k), nil
		case "denseblocks":
			return gen.DenseBlocks(rng, n, 8, deg/float64(n)), nil
		default:
			return nil, fmt.Errorf("unknown generator %q", generator)
		}
	default:
		return nil, fmt.Errorf("one of -bench or -gen is required")
	}
}

// Command spmmsim regenerates the paper's evaluation artifacts: every
// figure and table of §VIII on the scaled synthetic benchmark suite.
//
// Usage:
//
//	spmmsim [-scale N] [-seed S] fig4 fig5 fig10 fig11 fig12 fig13 fig14 \
//	        fig15 fig16 fig17 fig18 tab6 tab7 tab9 | all
//
// The -scale flag divides the paper's matrix sizes (DESIGN.md §2); 64 runs
// the full evaluation in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
)

type runner func(e *experiments.Env, w io.Writer) error

func main() {
	scale := flag.Int("scale", 64, "matrix scale divisor (paper sizes / scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	workers := flag.Int("par", 0, "worker-pool size for the parallel engine (0 = GOMAXPROCS, 1 = serial)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	par.SetWorkers(*workers)
	e := experiments.NewEnv(*scale, *seed)
	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = allNames()
	}
	for _, name := range names {
		r, ok := table[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "spmmsim: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := r(e, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "spmmsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

var table = map[string]runner{
	"fig4": func(e *experiments.Env, w io.Writer) error {
		studies, err := e.Fig4()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig5": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig5()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig10": func(e *experiments.Env, w io.Writer) error {
		st, err := e.Fig10()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig11": func(e *experiments.Env, w io.Writer) error {
		st, err := e.Fig11()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig12": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig12()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig13": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig13()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig14": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig14()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig15": func(e *experiments.Env, w io.Writer) error {
		studies, err := e.Fig15()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig16": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig16()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig17": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig17()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig18": func(e *experiments.Env, w io.Writer) error {
		f, err := e.Fig18()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"tab6": func(e *experiments.Env, w io.Writer) error {
		t, err := e.TableVI()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab7": func(e *experiments.Env, w io.Writer) error {
		t, err := e.TableVII()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab9": func(e *experiments.Env, w io.Writer) error {
		t, err := e.TableIX()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	// Beyond the paper: the §IX-D/§X reordering ablation.
	"reorder": func(e *experiments.Env, w io.Writer) error {
		r, err := e.Reorder()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	// Beyond the paper: §X's SpMV and SDDMM kernels on the suite.
	"kernels": func(e *experiments.Env, w io.Writer) error {
		k, err := e.Kernels()
		if err != nil {
			return err
		}
		k.Render(w)
		return nil
	},
	// Beyond the paper: robustness of the partitioning to vis_lat
	// miscalibration (DESIGN.md §8).
	"vislat": func(e *experiments.Env, w io.Writer) error {
		v, err := e.VisLat()
		if err != nil {
			return err
		}
		v.Render(w)
		return nil
	},
}

func allNames() []string {
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		// figNN before tabN (numerically), extras last alphabetically.
		ki, kj := orderKey(names[i]), orderKey(names[j])
		if ki != kj {
			return ki < kj
		}
		return names[i] < names[j]
	})
	return names
}

func orderKey(n string) int {
	var num int
	if _, err := fmt.Sscanf(n, "fig%d", &num); err == nil {
		return num
	}
	if _, err := fmt.Sscanf(n, "tab%d", &num); err == nil {
		return 100 + num
	}
	return 1000
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: spmmsim [-scale N] [-seed S] <experiment>...

experiments: %v
or "all" to run everything.
`, allNames())
	flag.PrintDefaults()
}

// Command spmmsim regenerates the paper's evaluation artifacts: every
// figure and table of §VIII on the scaled synthetic benchmark suite.
//
// Usage:
//
//	spmmsim [-scale N] [-seed S] fig4 fig5 fig10 fig11 fig12 fig13 fig14 \
//	        fig15 fig16 fig17 fig18 tab6 tab7 tab9 | all
//
// The -scale flag divides the paper's matrix sizes (DESIGN.md §2); 64 runs
// the full evaluation in minutes on a laptop.
package main

import (
	"bytes"
	"cmp"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
)

type runner func(ctx context.Context, e *experiments.Env, w io.Writer) error

// studyWallHist records each experiment's end-to-end wall time.
var studyWallHist = obs.NewHistogram("spmmsim.study.wall.ns")

func main() {
	scale := flag.Int("scale", 64, "matrix scale divisor (paper sizes / scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	workers := flag.Int("par", 0, "worker-pool size for the parallel engine (0 = GOMAXPROCS, 1 = serial)")
	tracePath := flag.String("trace", "", `write a JSON run manifest to this path ("-" prints a summary)`)
	timelinePath := flag.String("timeline", "", `write a Chrome trace-event timeline (Perfetto) to this path ("-" prints a per-track summary)`)
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoint (pprof, /metrics, /progress) on this address, e.g. :6060")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logSpec := flag.String("log", "info:text", "diagnostic log level and format: level[:format], e.g. debug, warn:json")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	logOpts, err := obs.ParseLogFlag(*logSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmsim:", err)
		os.Exit(2)
	}
	logger = obs.NewLogger(os.Stderr, logOpts)
	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer stop()
		logger.Info("spmmsim.debug.listen", obs.Str("addr", addr))
	}
	par.SetWorkers(*workers)
	e := experiments.NewEnv(*scale, *seed)
	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = allNames()
	}

	// Any observability consumer turns on the deep-timing clock reads that
	// feed the per-tile, per-step, and cache-lookup histograms.
	obs.SetDeepTiming(*tracePath != "" || *timelinePath != "" || *debugAddr != "")

	var tl *obs.Timeline
	if *timelinePath != "" || *debugAddr != "" {
		tl = obs.NewTimeline(0)
		e.SetTimeline(tl)
		par.SetTimeline(tl)
	}

	// A nil tracer keeps the default path free of observability cost; every
	// trace call below degrades to a nil check.
	var tr *obs.Tracer
	if *tracePath != "" {
		tr = obs.New("spmmsim")
		tr.SetConfig("scale", fmt.Sprint(*scale))
		tr.SetConfig("seed", fmt.Sprint(*seed))
		tr.SetConfig("par", fmt.Sprint(*workers))
		tr.SetConfig("experiments", strings.Join(names, ","))
		e.SetTracer(tr)
	}

	// The process-root context: everything below the experiments facade
	// inherits it (the ctxflow analyzer keeps internal code from minting
	// its own).
	ctx := context.Background()

	studies := tl.Track("spmmsim/studies")
	for _, name := range names {
		r, ok := table[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "spmmsim: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		// Render through a buffer so the manifest can hash exactly the bytes
		// the user saw for this experiment.
		var buf bytes.Buffer
		var w io.Writer = os.Stdout
		if tr != nil {
			w = io.MultiWriter(os.Stdout, &buf)
		}
		doneProgress := obs.StartProgress(name)
		sp := tr.Root().Start(name)
		slice := studies.Start(name)
		err := r(ctx, e, w)
		slice.End()
		sp.End()
		doneProgress()
		studyWallHist.ObserveSince(start)
		if err != nil {
			logger.Error("spmmsim.study.fail",
				obs.Str("study", name), obs.Str("err", err.Error()))
			os.Exit(1)
		}
		tr.AddOutput(name, buf.Bytes())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if tr != nil {
		if err := obs.WriteTrace(tr, *tracePath, os.Stdout); err != nil {
			fail(err)
		}
		if *tracePath != "-" {
			fmt.Printf("wrote run manifest to %s\n", *tracePath)
		}
	}
	if *timelinePath != "" {
		if err := obs.WriteTimeline(tl, *timelinePath, os.Stdout); err != nil {
			fail(err)
		}
		if *timelinePath != "-" {
			fmt.Printf("wrote timeline to %s (load in ui.perfetto.dev)\n", *timelinePath)
		}
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// logger is the CLI's diagnostic stream (stderr; stdout stays the study
// output). main replaces it once the -log flag is parsed.
var logger *obs.Logger

// fail logs a fatal error as a structured line and exits. Before flag
// parsing installs the logger, fall back to plain stderr.
func fail(err error) {
	if logger == nil {
		fmt.Fprintln(os.Stderr, "spmmsim:", err)
		os.Exit(1)
	}
	logger.Error("spmmsim.fatal", obs.Str("err", err.Error()))
	os.Exit(1)
}

var table = map[string]runner{
	"fig4": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		studies, err := e.Fig4()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig5": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig5()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig10": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		st, err := e.Fig10()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig11": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		st, err := e.Fig11()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig12": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig12()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig13": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig13()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig14": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig14()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig15": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		studies, err := e.Fig15()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig16": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig16()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig17": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig17()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig18": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		f, err := e.Fig18()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"tab6": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		t, err := e.TableVI()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab7": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		t, err := e.TableVII()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab9": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		t, err := e.TableIX()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	// Beyond the paper: the §IX-D/§X reordering ablation.
	"reorder": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		r, err := e.Reorder()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	// Beyond the paper: §X's SpMV and SDDMM kernels on the suite.
	"kernels": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		k, err := e.Kernels()
		if err != nil {
			return err
		}
		k.Render(w)
		return nil
	},
	// Beyond the paper: robustness of the partitioning to vis_lat
	// miscalibration (DESIGN.md §8).
	"vislat": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		v, err := e.VisLat()
		if err != nil {
			return err
		}
		v.Render(w)
		return nil
	},
	// Beyond the paper: the §VI-B multi-layer GNN inference loop, one plan
	// amortized across layers (DESIGN.md §15).
	"gnn": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		g, err := e.GNN(ctx)
		if err != nil {
			return err
		}
		g.Render(w)
		return nil
	},
	// Beyond the paper: evolving graphs with the model-driven re-plan
	// trigger — the staleness-vs-re-plan-cost sweep (DESIGN.md §15).
	"evolve": func(ctx context.Context, e *experiments.Env, w io.Writer) error {
		s, err := e.Evolve(ctx)
		if err != nil {
			return err
		}
		s.Render(w)
		return nil
	},
}

func allNames() []string {
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	slices.SortFunc(names, func(a, b string) int {
		// figNN before tabN (numerically), extras last alphabetically.
		if ka, kb := orderKey(a), orderKey(b); ka != kb {
			return cmp.Compare(ka, kb)
		}
		return strings.Compare(a, b)
	})
	return names
}

func orderKey(n string) int {
	var num int
	if _, err := fmt.Sscanf(n, "fig%d", &num); err == nil {
		return num
	}
	if _, err := fmt.Sscanf(n, "tab%d", &num); err == nil {
		return 100 + num
	}
	return 1000
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: spmmsim [-scale N] [-seed S] <experiment>...

experiments: %v
or "all" to run everything.
`, allNames())
	flag.PrintDefaults()
}

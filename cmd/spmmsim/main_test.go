package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
)

func TestAllNamesOrdered(t *testing.T) {
	names := allNames()
	if len(names) != len(table) {
		t.Fatalf("%d names for %d experiments", len(names), len(table))
	}
	// Figures first, numerically; then tables; extras last.
	want := []string{"fig4", "fig5", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "tab6", "tab7", "tab9",
		"evolve", "gnn", "kernels", "reorder", "vislat"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s (full: %v)", i, names[i], want[i], names)
		}
	}
}

func TestOrderKey(t *testing.T) {
	if orderKey("fig4") >= orderKey("fig10") {
		t.Fatal("figure ordering wrong")
	}
	if orderKey("fig18") >= orderKey("tab6") {
		t.Fatal("tables must follow figures")
	}
	if orderKey("tab9") >= orderKey("reorder") {
		t.Fatal("extras must come last")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	// One smoke execution of every registered experiment at a very coarse
	// scale; failures here mean the CLI would crash.
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			e := newTestEnv()
			if err := table[name](context.Background(), e, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// newTestEnv returns a very coarse environment for smoke tests.
func newTestEnv() *experiments.Env { return experiments.NewEnv(1024, 1) }

// TestTimelineChromeSchema runs one experiment exactly the way
// `spmmsim -timeline out.json fig10` does and validates the exported
// timeline against the Chrome trace-event schema Perfetto consumes: valid
// JSON, only known phase codes, the two clock processes named, and at
// least one simulated worker slice.
func TestTimelineChromeSchema(t *testing.T) {
	prev := obs.SetDeepTiming(true)
	defer obs.SetDeepTiming(prev)
	tl := obs.NewTimeline(0)
	e := newTestEnv()
	e.SetTimeline(tl)
	par.SetTimeline(tl)
	defer par.SetTimeline(nil)

	if err := table["fig10"](context.Background(), e, io.Discard); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("timeline export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("timeline export has no events")
	}
	processes := map[string]bool{}
	workerSlices := 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X", "i", "C":
			if ev.Pid != 1 && ev.Pid != 2 {
				t.Fatalf("event %q has pid %d, want 1 or 2", ev.Name, ev.Pid)
			}
		case "M":
			if ev.Name == "process_name" {
				processes[ev.Args["name"].(string)] = true
			}
		default:
			t.Fatalf("unknown trace phase %q", ev.Ph)
		}
		if ev.Ph == "X" && ev.Pid == 2 {
			workerSlices++
		}
	}
	if !processes["wall clock"] || !processes["simulated time"] {
		t.Fatalf("missing process metadata: %v", processes)
	}
	if workerSlices == 0 {
		t.Fatal("no simulated worker slices in the export")
	}
}

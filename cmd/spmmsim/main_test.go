package main

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func TestAllNamesOrdered(t *testing.T) {
	names := allNames()
	if len(names) != len(table) {
		t.Fatalf("%d names for %d experiments", len(names), len(table))
	}
	// Figures first, numerically; then tables; extras last.
	want := []string{"fig4", "fig5", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "tab6", "tab7", "tab9",
		"kernels", "reorder", "vislat"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s (full: %v)", i, names[i], want[i], names)
		}
	}
}

func TestOrderKey(t *testing.T) {
	if orderKey("fig4") >= orderKey("fig10") {
		t.Fatal("figure ordering wrong")
	}
	if orderKey("fig18") >= orderKey("tab6") {
		t.Fatal("tables must follow figures")
	}
	if orderKey("tab9") >= orderKey("reorder") {
		t.Fatal("extras must come last")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	// One smoke execution of every registered experiment at a very coarse
	// scale; failures here mean the CLI would crash.
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			e := newTestEnv()
			if err := table[name](e, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// newTestEnv returns a very coarse environment for smoke tests.
func newTestEnv() *experiments.Env { return experiments.NewEnv(1024, 1) }

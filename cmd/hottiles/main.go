// Command hottiles runs the HotTiles preprocessing pipeline on a
// MatrixMarket file: it tiles the matrix, models every tile for the chosen
// heterogeneous architecture, partitions it into hot and cold sections, and
// reports the decision — optionally simulating the partitioned execution
// and writing the sections back out as MatrixMarket files.
//
// Usage:
//
//	hottiles -arch spade-sextans:4 -strategy hottiles -simulate matrix.mtx
//	hottiles -arch piuma -out-hot hot.mtx -out-cold cold.mtx matrix.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	hottiles "repro"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/viz"
)

func main() {
	archName := flag.String("arch", "spade-sextans:4",
		"architecture: spade-sextans[:scale], spade-sextans-pcie, piuma, cpu-dsa")
	strategy := flag.String("strategy", "hottiles", "hottiles|iunaware|hotonly|coldonly")
	tileSize := flag.Int("tile", 0, "tile size override (0 = architecture default)")
	opsPerMAC := flag.Float64("ops", 2, "arithmetic-intensity factor (2 = plain SpMM)")
	seed := flag.Int64("seed", 1, "seed for IUnaware's random assignment")
	simulate := flag.Bool("simulate", false, "simulate the partitioned execution")
	reorderPass := flag.String("reorder", "none", "reordering pass: none|degree|bfs|random")
	autotile := flag.Bool("autotile", false, "search tile sizes {64..1024} with the model and use the best")
	kernelName := flag.String("kernel", "spmm", "kernel: spmm|spmv|sddmm")
	k := flag.Int("k", 0, "dense column count override for simulation (0 = default)")
	outHot := flag.String("out-hot", "", "write the hot section as MatrixMarket")
	outCold := flag.String("out-cold", "", "write the cold section as MatrixMarket")
	savePlan := flag.String("save-plan", "", "serialize the preprocessing plan to this file")
	loadPlan := flag.String("load-plan", "", "skip preprocessing and load a serialized plan")
	mapFile := flag.String("map", "", "write the tile-assignment map (Figure 5 style) as PGM")
	bwTraceFile := flag.String("bwtrace", "", "with -simulate: write the bandwidth trace strip as PGM")
	tracePath := flag.String("trace", "", `write a JSON run manifest to this path ("-" prints a summary)`)
	timelinePath := flag.String("timeline", "", `with -simulate: write a Chrome trace-event timeline (Perfetto) to this path ("-" prints a per-track summary)`)
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoint (pprof, /metrics, /progress) on this address, e.g. :6060")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logSpec := flag.String("log", "info:text", "diagnostic log level and format: level[:format], e.g. debug, warn:json")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hottiles [flags] matrix.mtx")
		flag.PrintDefaults()
		os.Exit(2)
	}
	logOpts, err := obs.ParseLogFlag(*logSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hottiles:", err)
		os.Exit(2)
	}
	logger = obs.NewLogger(os.Stderr, logOpts)

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	if *debugAddr != "" {
		addr, stop, srvErr := obs.ServeDebug(*debugAddr)
		if srvErr != nil {
			fail(srvErr)
		}
		defer stop()
		logger.Info("hottiles.debug.listen", obs.Str("addr", addr))
	}
	obs.SetDeepTiming(*tracePath != "" || *timelinePath != "" || *debugAddr != "")
	var tl *obs.Timeline
	if *timelinePath != "" || *debugAddr != "" {
		tl = obs.NewTimeline(0)
		par.SetTimeline(tl)
	}
	// Nil when -trace is absent: every trace call below is then a no-op.
	var tr *obs.Tracer
	if *tracePath != "" {
		tr = obs.New("hottiles")
		tr.SetConfig("matrix", flag.Arg(0))
		tr.SetConfig("arch", *archName)
		tr.SetConfig("strategy", *strategy)
		tr.SetConfig("kernel", *kernelName)
		tr.SetConfig("seed", fmt.Sprint(*seed))
		tr.SetConfig("ops", fmt.Sprint(*opsPerMAC))
	}

	a, err := hottiles.ParseArch(*archName)
	if err != nil {
		fail(err)
	}
	if *tileSize > 0 {
		a.TileH, a.TileW = *tileSize, *tileSize
	}
	if *k > 0 {
		a.K = *k
	}

	strat, err := hottiles.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	readSp := tr.Phase("read").Start(flag.Arg(0))
	m, err := hottiles.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	readSp.SetAttr("nnz", fmt.Sprint(m.NNZ()))
	readSp.End()
	fmt.Printf("matrix: %d rows, %d nonzeros, density %.2e\n", m.N, m.NNZ(), m.Density())

	kernel, err := hottiles.ParseKernel(*kernelName)
	if err != nil {
		fail(err)
	}
	if kernel == hottiles.KernelSpMV {
		a.K = 1
	}

	reorderSp := tr.Phase("reorder").Start(*reorderPass)
	switch *reorderPass {
	case "none":
	case "degree":
		m, err = hottiles.ApplyReorder(m, hottiles.ReorderDegreeSort(m))
	case "bfs":
		m, err = hottiles.ApplyReorder(m, hottiles.ReorderBFSCluster(m))
	case "random":
		m, err = hottiles.ApplyReorder(m, hottiles.ReorderRandom(m.N, *seed))
	default:
		fail(fmt.Errorf("unknown reordering pass %q", *reorderPass))
	}
	if err != nil {
		fail(err)
	}
	reorderSp.End()
	if *reorderPass != "none" {
		fmt.Printf("reordered with the %s pass\n", *reorderPass)
	}

	if *autotile {
		atSp := tr.Phase("autotile").Start("sweep")
		best, sweep, atErr := hottiles.AutoTileSize(m, &a, []int{64, 128, 256, 512, 1024}, *opsPerMAC)
		atSp.End()
		if atErr != nil {
			fail(atErr)
		}
		a.TileH, a.TileW = best, best
		fmt.Printf("auto tile sizing picked %d:", best)
		for _, r := range sweep {
			if r.Valid {
				fmt.Printf(" %d=%.3fms", r.TileSize, r.Predicted*1e3)
			}
		}
		fmt.Println()
	}

	var plan *hottiles.Plan
	if *loadPlan != "" {
		// The paper's train-once/infer-many workflow (§VI-B): reuse a
		// stored plan instead of re-running scan/model/partition.
		pf, openErr := os.Open(*loadPlan)
		if openErr != nil {
			fail(openErr)
		}
		var planErr error
		plan, planErr = hottiles.ReadPlan(pf)
		pf.Close()
		if planErr != nil {
			fail(planErr)
		}
		if plan.Grid.N != m.N || plan.Grid.NNZ() != m.NNZ() {
			fail(fmt.Errorf("stored plan is for a %d/%d matrix, input is %d/%d",
				plan.Grid.N, plan.Grid.NNZ(), m.N, m.NNZ()))
		}
		a.TileH, a.TileW = plan.Grid.TileH, plan.Grid.TileW
		fmt.Printf("loaded plan from %s\n", *loadPlan)
	} else {
		partSp := tr.Phase("partition").Start(*strategy)
		plan, err = hottiles.PartitionWith(m, &a, hottiles.PartitionOptions{
			Strategy:  strat,
			OpsPerMAC: *opsPerMAC,
			Kernel:    kernel,
			Seed:      *seed,
		})
		if err != nil {
			fail(err)
		}
		partSp.SetAttr("tiles", fmt.Sprint(len(plan.Grid.Tiles)))
		partSp.End()
	}
	report(plan, &a)

	if *savePlan != "" {
		pf, err := os.Create(*savePlan)
		if err != nil {
			fail(err)
		}
		if err := hottiles.WritePlan(pf, plan); err != nil {
			pf.Close()
			fail(err)
		}
		if err := pf.Close(); err != nil {
			fail(err)
		}
		hashFile(tr, *savePlan)
		fmt.Printf("saved plan to %s\n", *savePlan)
	}

	if *outHot != "" {
		if err := writeSection(*outHot, hotSectionCOO(plan)); err != nil {
			fail(err)
		}
		hashFile(tr, *outHot)
	}
	if *outCold != "" {
		cold := plan.Cold
		if cold == nil && plan.ColdCSR != nil {
			cold = plan.ColdCSR.ToCOO()
		}
		if err := writeSection(*outCold, cold); err != nil {
			fail(err)
		}
		hashFile(tr, *outCold)
	}

	if *mapFile != "" {
		f, err := os.Create(*mapFile)
		if err != nil {
			fail(err)
		}
		if err := viz.TileMap(f, plan.Grid, plan.Partition.Hot, 512); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		hashFile(tr, *mapFile)
		fmt.Printf("wrote tile map to %s\n", *mapFile)
	}

	if *simulate {
		k := a.K
		if kernel == hottiles.KernelSpMV {
			k = 1
		}
		din := hottiles.NewDense(m.N, k)
		for i := range din.Data {
			din.Data[i] = 1
		}
		simSp := tr.Phase("simulate").Start(a.Name)
		res, err := hottiles.Simulate(plan, &a, din, hottiles.SimOptions{
			Serial:        plan.Partition.Serial && !a.AtomicRMW,
			Kernel:        kernel,
			Trace:         *bwTraceFile != "",
			Timeline:      tl,
			TimelineLabel: "sim",
		})
		simSp.End()
		if err != nil {
			fail(err)
		}
		if *bwTraceFile != "" {
			f, err := os.Create(*bwTraceFile)
			if err != nil {
				fail(err)
			}
			if err := viz.TraceStrip(f, res.Trace, a.BWBytes, 512, 48); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			hashFile(tr, *bwTraceFile)
			fmt.Printf("wrote bandwidth trace to %s\n", *bwTraceFile)
		}
		fmt.Printf("simulated runtime: %.3f ms (merge %.3f ms)\n", res.Time*1e3, res.MergeTime*1e3)
		fmt.Printf("bandwidth: %.1f GB/s; lines/nnz: %.2f; hot %.1f GFLOP/s, cold %.1f GFLOP/s\n",
			res.BandwidthUtil()/1e9, res.CacheLinesPerNNZ(m.NNZ()),
			res.HotGFLOPs(), res.ColdGFLOPs())
		switch kernel {
		case hottiles.KernelSDDMM:
			fmt.Printf("functional check: %d SDDMM values produced\n", len(res.SDDMM))
		default:
			want, err := hottiles.Reference(m, din)
			if err != nil {
				fail(err)
			}
			diff, _ := res.Output.MaxAbsDiff(want)
			fmt.Printf("functional check vs reference kernel: max |diff| = %.2e\n", diff)
		}
	}

	if tr != nil {
		if err := obs.WriteTrace(tr, *tracePath, os.Stdout); err != nil {
			fail(err)
		}
		if *tracePath != "-" {
			fmt.Printf("wrote run manifest to %s\n", *tracePath)
		}
	}
	if *timelinePath != "" {
		if err := obs.WriteTimeline(tl, *timelinePath, os.Stdout); err != nil {
			fail(err)
		}
		if *timelinePath != "-" {
			fmt.Printf("wrote timeline to %s (load in ui.perfetto.dev)\n", *timelinePath)
		}
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// hashFile records a produced artifact's content hash in the manifest. A
// file that cannot be read back is recorded as empty rather than failing the
// run: hashing is bookkeeping, not part of the pipeline.
func hashFile(tr *obs.Tracer, path string) {
	if tr == nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		data = nil
	}
	tr.AddOutput(path, data)
}

func report(plan *hottiles.Plan, a *hottiles.Arch) {
	g := plan.Grid
	hotTiles := 0
	for _, h := range plan.Partition.Hot {
		if h {
			hotTiles++
		}
	}
	nnz, frac := plan.Partition.HotNNZ(g)
	fmt.Printf("architecture: %s (tile %dx%d, K=%d)\n", a.Name, a.TileH, a.TileW, a.K)
	fmt.Printf("tiling: %dx%d grid, %d non-empty tiles\n", g.NumTR, g.NumTC, len(g.Tiles))
	fmt.Printf("partition: %d hot tiles (%d nonzeros, %.0f%%), heuristic %v, %s execution\n",
		hotTiles, nnz, frac*100, plan.Partition.Heuristic, mode(plan.Partition.Serial))
	fmt.Printf("predicted runtime: %.3f ms\n", plan.Partition.Predicted*1e3)
	if plan.Timing.Total() > 0 {
		fmt.Printf("preprocessing: scan %v, partition %v, formats %v+%v (HotTiles overhead %.0f%%)\n",
			plan.Timing.Scan, plan.Timing.Partition, plan.Timing.BaseFormat, plan.Timing.ExtraFormat,
			float64(plan.Timing.Overhead())/float64(plan.Timing.Total())*100)
	} else {
		fmt.Println("preprocessing: none (loaded plan)")
	}
}

func mode(serial bool) string {
	if serial {
		return "serial"
	}
	return "parallel"
}

func hotSectionCOO(plan *hottiles.Plan) *sparse.COO {
	m := sparse.NewCOO(plan.Grid.N, plan.Hot.NNZ())
	for _, b := range plan.Hot.Blocks {
		m.Rows = append(m.Rows, b.Rows...)
		m.Cols = append(m.Cols, b.Cols...)
		m.Vals = append(m.Vals, b.Vals...)
	}
	m.SortRowMajor()
	return m
}

func writeSection(path string, m *sparse.COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return hottiles.WriteMatrixMarket(f, m)
}

// logger is the CLI's diagnostic stream (stderr; stdout stays the report).
// main replaces it once the -log flag is parsed.
var logger *obs.Logger

// fail logs a fatal error as a structured line and exits. Before flag
// parsing installs the logger, fall back to plain stderr.
func fail(err error) {
	if logger == nil {
		fmt.Fprintln(os.Stderr, "hottiles:", err)
		os.Exit(1)
	}
	logger.Error("hottiles.fatal", obs.Str("err", err.Error()))
	os.Exit(1)
}

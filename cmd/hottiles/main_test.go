package main

import (
	"testing"

	hottiles "repro"
)

func TestParseArch(t *testing.T) {
	a, err := hottiles.ParseArch("piuma")
	if err != nil || a.Name != "PIUMA" {
		t.Fatalf("piuma: %v %s", err, a.Name)
	}
	a, err = hottiles.ParseArch("spade-sextans")
	if err != nil || a.Cold.Count != 16 {
		t.Fatalf("default scale: %v %d", err, a.Cold.Count)
	}
	a, err = hottiles.ParseArch("spade-sextans:8")
	if err != nil || a.Cold.Count != 32 {
		t.Fatalf("scale 8: %v %d", err, a.Cold.Count)
	}
	if _, err := hottiles.ParseArch("spade-sextans:x"); err == nil {
		t.Fatal("expected bad-scale error")
	}
	a, err = hottiles.ParseArch("spade-sextans-pcie")
	if err != nil || a.Hot.NNZPerCycle != 20 {
		t.Fatalf("pcie: %v", err)
	}
	if _, err := hottiles.ParseArch("tpu"); err == nil {
		t.Fatal("expected unknown-arch error")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]hottiles.Strategy{
		"hottiles": hottiles.StrategyHotTiles,
		"IUnaware": hottiles.StrategyIUnaware,
		"HOTONLY":  hottiles.StrategyHotOnly,
		"coldonly": hottiles.StrategyColdOnly,
	}
	for in, want := range cases {
		got, err := hottiles.ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("%s: %v %v", in, got, err)
		}
	}
	if _, err := hottiles.ParseStrategy("magic"); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
}

func TestParseKernel(t *testing.T) {
	cases := map[string]hottiles.Kernel{
		"spmm": hottiles.KernelSpMM, "SpMV": hottiles.KernelSpMV, "SDDMM": hottiles.KernelSDDMM,
	}
	for in, want := range cases {
		got, err := hottiles.ParseKernel(in)
		if err != nil || got != want {
			t.Fatalf("%s: %v %v", in, got, err)
		}
	}
	if _, err := hottiles.ParseKernel("gemm"); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestParseArchCPUDSA(t *testing.T) {
	a, err := hottiles.ParseArch("cpu-dsa")
	if err != nil || a.Name != "CPU+DSA" {
		t.Fatalf("cpu-dsa: %v %s", err, a.Name)
	}
}

// Command planload drives a running hottilesd with concurrent plan
// requests and reports the latency distribution. It generates a pool of
// synthetic matrices at mixed sizes, uploads them from -clients concurrent
// workers (each request picks a matrix round-robin, so the daemon sees a
// blend of cache hits, coalesced flights and fresh builds), records every
// request into an obs histogram, and prints p50/p90/p99 plus the daemon's
// backpressure behavior (429 counts and honored Retry-After waits).
//
//	planload -addr 127.0.0.1:8321 -clients 1000 -requests 5000
//	planload -addr 127.0.0.1:8321 -smoke        # one full round trip, exit 0/1
//
// With -json the latency summary is written in the BENCH_*.json schema so
// bin/benchdiff can compare two load runs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	hottiles "repro"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/par"
)

// reqLatency collects one observation per completed request (whatever the
// status); the final report reads it back from the registry snapshot.
var reqLatency = obs.NewHistogram("planload.request.ns")

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "hottilesd address (host:port)")
	clients := flag.Int("clients", 64, "concurrent clients")
	requests := flag.Int("requests", 0, "total requests (0 = one per client)")
	sizes := flag.String("sizes", "256,512,1024", "matrix sizes in the pool, comma-separated")
	matrices := flag.Int("matrices", 8, "distinct matrices in the pool")
	seed := flag.Int64("seed", 1, "matrix generation seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	retries := flag.Int("retries", 3, "retries per request after a 429 (honoring Retry-After)")
	smoke := flag.Bool("smoke", false, "single round trip: upload, fetch by hash, validate, scrape /metrics")
	reqID := flag.String("request-id", "", "send this X-Request-ID with the smoke upload and verify it round-trips (header + /debug/requests)")
	jsonPath := flag.String("json", "", "write the latency summary in the BENCH_*.json schema")
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}
	if *smoke {
		if err := runSmoke(client, base, *seed, *reqID); err != nil {
			fmt.Fprintln(os.Stderr, "planload: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("planload: smoke OK")
		return
	}

	dims, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planload:", err)
		os.Exit(1)
	}
	pool := matrixPool(*seed, *matrices, dims)
	total := *requests
	if total <= 0 {
		total = *clients
	}

	// The load fan-out runs on the repository's bounded pool: one worker
	// per client, each draining requests from the shared index space.
	defer par.SetWorkers(par.SetWorkers(*clients))

	var ok, errs, busy, retried atomic.Int64
	t0 := time.Now()
	par.ForEach(total, func(i int) {
		body := pool[i%len(pool)]
		tReq := time.Now()
		status, err := postPlanRetry(client, base, body, *retries, &retried)
		reqLatency.ObserveSince(tReq)
		switch {
		case err != nil:
			errs.Add(1)
		case status == http.StatusOK:
			ok.Add(1)
		case status == http.StatusTooManyRequests:
			busy.Add(1)
		default:
			errs.Add(1)
		}
	})
	wall := time.Since(t0)

	h, found := obs.RegistrySnapshot().Histograms["planload.request.ns"]
	if !found {
		fmt.Fprintln(os.Stderr, "planload: no latency observations recorded")
		os.Exit(1)
	}
	fmt.Printf("planload: %d requests in %v (%d clients, %d matrices)\n",
		total, wall.Round(time.Millisecond), *clients, len(pool))
	fmt.Printf("  ok %d, still-busy %d, errors %d, 429-retries %d\n",
		ok.Load(), busy.Load(), errs.Load(), retried.Load())
	fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(h.P50NS).Round(time.Microsecond),
		time.Duration(h.P90NS).Round(time.Microsecond),
		time.Duration(h.P99NS).Round(time.Microsecond),
		time.Duration(h.MaxNS).Round(time.Microsecond))

	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, h); err != nil {
			fmt.Fprintln(os.Stderr, "planload:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", *jsonPath)
	}
	if errs.Load() > 0 {
		os.Exit(1)
	}
}

// postPlanRetry uploads one matrix, sleeping out Retry-After and retrying
// up to retries times when the daemon refuses with 429. It returns the
// final status code.
func postPlanRetry(client *http.Client, base string, body []byte, retries int, retried *atomic.Int64) (int, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/plan", "text/plain", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		// Drain so the connection is reusable.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return resp.StatusCode, nil
		}
		retried.Add(1)
		wait := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		time.Sleep(wait)
	}
}

// runSmoke is the servesmoke primitive: upload one matrix, fetch the plan
// back by content hash, deserialize and validate it, and check that the
// daemon's /metrics exposition mentions the plan store. With a non-empty
// reqID it also exercises the request-ID contract (DESIGN.md §18): the ID
// must come back in the response header and appear in /debug/requests.
func runSmoke(client *http.Client, base string, seed int64, reqID string) error {
	m := gen.Uniform(rand.New(rand.NewSource(seed)), 512, 4000)
	var upload bytes.Buffer
	if err := hottiles.WriteMatrixMarket(&upload, m); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/plan", bytes.NewReader(upload.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	if reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	planData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /plan: %d: %s", resp.StatusCode, planData)
	}
	hash := resp.Header.Get("X-Plan-Hash")
	if hash == "" {
		return fmt.Errorf("no X-Plan-Hash header")
	}
	if reqID != "" {
		if echo := resp.Header.Get(obs.RequestIDHeader); echo != reqID {
			return fmt.Errorf("request-id not echoed: sent %q, got %q", reqID, echo)
		}
		fmt.Printf("planload: request-id echoed id=%s\n", reqID)
	}
	plan, err := hottiles.ReadPlan(bytes.NewReader(planData))
	if err != nil {
		return fmt.Errorf("uploaded plan does not deserialize: %w", err)
	}
	if verr := plan.Validate(); verr != nil {
		return fmt.Errorf("uploaded plan invalid: %w", verr)
	}
	if plan.Grid.N != m.N {
		return fmt.Errorf("plan is for a %d-row matrix, uploaded %d", plan.Grid.N, m.N)
	}

	get, err := client.Get(base + "/plan/" + hash)
	if err != nil {
		return err
	}
	fetched, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /plan/%s: %d", hash, get.StatusCode)
	}
	if !bytes.Equal(fetched, planData) {
		return fmt.Errorf("fetched plan differs from the uploaded one")
	}

	metrics, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if metrics.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %d", metrics.StatusCode)
	}
	for _, want := range []string{"planstore_builds", "hottilesd_plan_requests"} {
		if !strings.Contains(string(text), want) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}

	if reqID != "" {
		fr, err := client.Get(base + "/debug/requests")
		if err != nil {
			return err
		}
		recs, _ := io.ReadAll(fr.Body)
		fr.Body.Close()
		if fr.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /debug/requests: %d", fr.StatusCode)
		}
		if !bytes.Contains(recs, []byte(`"id": "`+reqID+`"`)) {
			return fmt.Errorf("/debug/requests has no entry with id %q", reqID)
		}
		fmt.Printf("planload: request-id recorded id=%s\n", reqID)
	}
	return nil
}

// matrixPool generates count MatrixMarket bodies cycling through the
// requested sizes, each with ~8 nonzeros per row.
func matrixPool(seed int64, count int, dims []int) [][]byte {
	if count < 1 {
		count = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		n := dims[i%len(dims)]
		m := gen.Uniform(rng, n, 8*n)
		var buf bytes.Buffer
		if err := hottiles.WriteMatrixMarket(&buf, m); err != nil {
			// Generation of a synthetic matrix cannot fail to serialize;
			// treat it as a programming error.
			panic(err)
		}
		pool = append(pool, buf.Bytes())
	}
	return pool
}

func parseSizes(s string) ([]int, error) {
	var dims []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 16 {
			return nil, fmt.Errorf("bad -sizes entry %q (want integers ≥ 16)", f)
		}
		dims = append(dims, n)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("-sizes is empty")
	}
	return dims, nil
}

// writeBenchJSON emits the latency summary in the BENCH_*.json schema
// (cmd/benchdiff), one pseudo-benchmark per quantile, so two load runs
// diff with `bin/benchdiff old.json new.json`.
func writeBenchJSON(path string, h obs.HistogramSnapshot) error {
	type metrics struct {
		NsPerOp     float64 `json:"ns_op"`
		BytesPerOp  float64 `json:"b_op"`
		AllocsPerOp float64 `json:"allocs_op"`
	}
	out := struct {
		Schema     string             `json:"schema"`
		Benchmarks map[string]metrics `json:"benchmarks"`
	}{
		Schema: "hottiles-bench/1",
		Benchmarks: map[string]metrics{
			"PlanloadP50": {NsPerOp: float64(h.P50NS)},
			"PlanloadP90": {NsPerOp: float64(h.P90NS)},
			"PlanloadP99": {NsPerOp: float64(h.P99NS)},
		},
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

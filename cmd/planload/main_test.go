package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	hottiles "repro"
)

// fakeDaemon is a minimal stand-in for hottilesd: it really runs the
// pipeline on uploads (so runSmoke's plan validation is meaningful) but
// keeps the transport trivial.
func fakeDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	plans := map[string][]byte{}
	var lastID atomic.Value
	lastID.Store("")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /plan", func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get("X-Request-ID"); id != "" {
			lastID.Store(id)
			w.Header().Set("X-Request-ID", id)
		}
		body, _ := io.ReadAll(r.Body)
		m, err := hottiles.ReadMatrixMarket(bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a := hottiles.SpadeSextans(4)
		a.TileH, a.TileW = 64, 64
		plan, err := hottiles.Partition(m, &a, hottiles.StrategyHotTiles, 2, 1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var buf bytes.Buffer
		if err := hottiles.WritePlan(&buf, plan); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		plans["fakehash"] = buf.Bytes()
		w.Header().Set("X-Plan-Hash", "fakehash")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /plan/{hash}", func(w http.ResponseWriter, r *http.Request) {
		plan, ok := plans[r.PathValue("hash")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(plan)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "planstore_builds 1\nhottilesd_plan_requests 1\n")
	})
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"recent":[{"id": %q}]}`, lastID.Load())
	})
	return httptest.NewServer(mux)
}

func TestRunSmokeAgainstFakeDaemon(t *testing.T) {
	ts := fakeDaemon(t)
	defer ts.Close()
	if err := runSmoke(ts.Client(), ts.URL, 1, ""); err != nil {
		t.Fatalf("smoke failed: %v", err)
	}
}

// TestRunSmokeRequestID pins the client half of the §18 correlation
// contract: the smoke run must fail loudly if the daemon drops the header
// echo or the flight-recorder entry, and pass when both round-trip.
func TestRunSmokeRequestID(t *testing.T) {
	ts := fakeDaemon(t)
	defer ts.Close()
	if err := runSmoke(ts.Client(), ts.URL, 1, "smoke-test-1"); err != nil {
		t.Fatalf("smoke with request-id failed: %v", err)
	}
}

// TestPostPlanRetryHonors429 pins the client half of the backpressure
// contract: a 429 with Retry-After is waited out and retried.
func TestPostPlanRetryHonors429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	var retried atomic.Int64
	t0 := time.Now()
	status, err := postPlanRetry(ts.Client(), ts.URL, []byte("m"), 2, &retried)
	if err != nil || status != http.StatusOK {
		t.Fatalf("status %d, err %v", status, err)
	}
	if retried.Load() != 1 {
		t.Fatalf("retried %d times, want 1", retried.Load())
	}
	if waited := time.Since(t0); waited < time.Second {
		t.Fatalf("did not honor Retry-After: only waited %v", waited)
	}
}

// TestPostPlanRetryGivesUp: past the retry budget the 429 is surfaced.
func TestPostPlanRetryGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	var retried atomic.Int64
	status, err := postPlanRetry(ts.Client(), ts.URL, []byte("m"), 0, &retried)
	if err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("status %d, err %v, want 429 surfaced", status, err)
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("256, 512,1024")
	if err != nil || len(got) != 3 || got[0] != 256 || got[2] != 1024 {
		t.Fatalf("%v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "8", "256,,512"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

package main

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	hottiles "repro"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/planstore"
)

// testConfig is a daemon configuration small enough for unit tests: a
// 4-scale SPADE-Sextans with 64×64 tiles and a permissive gate.
func testConfig() config {
	a, _ := hottiles.ParseArch("spade-sextans:4")
	a.TileH, a.TileW = 64, 64
	return config{
		archName:   "spade-sextans:4",
		arch:       a,
		stratName:  "hottiles",
		strategy:   hottiles.StrategyHotTiles,
		kernelName: "spmm",
		kernel:     hottiles.KernelSpMM,
		opsPerMAC:  2,
		seed:       1,
		maxUpload:  16 << 20,
		reqTimeout: 30 * time.Second,
		store:      planstore.Config{MaxActive: 2, MaxQueue: 8},
	}
}

// matrixBytes renders a synthetic matrix as MatrixMarket upload bytes.
func matrixBytes(t *testing.T, seed int64, n, nnz int) []byte {
	t.Helper()
	m := gen.Uniform(rand.New(rand.NewSource(seed)), n, nnz)
	var buf bytes.Buffer
	if err := hottiles.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postPlan(t *testing.T, client *http.Client, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := client.Post(url+"/plan", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPlanRoundTrip uploads a matrix, validates the plan that comes back,
// and re-fetches it by content hash — the daemon's core contract.
func TestPlanRoundTrip(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	upload := matrixBytes(t, 1, 512, 4000)
	resp := postPlan(t, ts.Client(), ts.URL, upload)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /plan: %d: %s", resp.StatusCode, body)
	}
	hash := resp.Header.Get("X-Plan-Hash")
	if len(hash) != 64 {
		t.Fatalf("bad X-Plan-Hash %q", hash)
	}
	planData, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hottiles.ReadPlan(bytes.NewReader(planData))
	if err != nil {
		t.Fatalf("served plan does not deserialize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("served plan invalid: %v", err)
	}
	if plan.Grid.N != 512 {
		t.Fatalf("plan for a %d-row matrix, uploaded 512", plan.Grid.N)
	}

	// Fetch-by-hash must serve byte-identical content.
	get, err := ts.Client().Get(ts.URL + "/plan/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("GET /plan/{hash}: %d", get.StatusCode)
	}
	fetched, _ := io.ReadAll(get.Body)
	if !bytes.Equal(fetched, planData) {
		t.Fatal("fetched plan differs from the built one")
	}

	// The debug plane rides the same mux.
	metrics, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	text, _ := io.ReadAll(metrics.Body)
	for _, want := range []string{"planstore_builds", "hottilesd_plan_requests"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestGetUnknownHash404(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/plan/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBadUpload400(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	resp := postPlan(t, ts.Client(), ts.URL, []byte("this is not MatrixMarket"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestUploadTooLarge413(t *testing.T) {
	cfg := testConfig()
	cfg.maxUpload = 128
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	resp := postPlan(t, ts.Client(), ts.URL, matrixBytes(t, 1, 256, 2000))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentUploadsCoalesce pins the batching guarantee: N identical
// concurrent uploads run the pipeline exactly once and all get the same
// plan bytes.
func TestConcurrentUploadsCoalesce(t *testing.T) {
	const followers = 7
	cfg := testConfig()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var entered sync.Once
	enteredCh := make(chan struct{})
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		<-release
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	upload := matrixBytes(t, 2, 512, 4000)
	bodies := make([][]byte, followers+1)
	codes := make([]int, followers+1)
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		resp := postPlan(t, ts.Client(), ts.URL, upload)
		defer resp.Body.Close()
		codes[i] = resp.StatusCode
		bodies[i], _ = io.ReadAll(resp.Body)
	}
	wg.Add(1)
	go post(0)
	<-enteredCh // leader holds the build; everyone else must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go post(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.store.Stats().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("uploads never coalesced: %+v", s.store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("upload %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("upload %d got different plan bytes", i)
		}
	}
	if st := s.store.Stats(); st.Builds != 1 {
		t.Fatalf("pipeline ran %d times for identical uploads, want 1 (%+v)", st.Builds, st)
	}
	if _, err := hottiles.ReadPlan(bytes.NewReader(bodies[0])); err != nil {
		t.Fatalf("shared plan invalid: %v", err)
	}
}

// TestQueueOverflow429 pins backpressure: with one build slot and no
// queue, a second distinct upload is refused with 429 and a positive
// integer Retry-After while the first build is still running.
func TestQueueOverflow429(t *testing.T) {
	cfg := testConfig()
	cfg.store = planstore.Config{MaxActive: 1, MaxQueue: -1}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	enteredCh := make(chan struct{})
	var entered sync.Once
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		<-release
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postPlan(t, ts.Client(), ts.URL, matrixBytes(t, 3, 512, 4000))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first upload: status %d", resp.StatusCode)
		}
	}()
	<-enteredCh // the only build slot is now held

	resp := postPlan(t, ts.Client(), ts.URL, matrixBytes(t, 4, 256, 2000))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("second upload: status %d: %s, want 429", resp.StatusCode, body)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	if busy := s.store.Stats().Rejected; busy != 1 {
		t.Fatalf("store rejected %d, want 1", busy)
	}
	close(release)
	wg.Wait()
}

// TestRequestTimeout504: a build that outlives the per-request deadline
// comes back as 504, and the pipeline stops at the next stage boundary.
func TestRequestTimeout504(t *testing.T) {
	cfg := testConfig()
	cfg.reqTimeout = 50 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.buildHook = func() { time.Sleep(300 * time.Millisecond) }
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	resp := postPlan(t, ts.Client(), ts.URL, matrixBytes(t, 5, 256, 2000))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s, want 504", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains is the SIGTERM path minus the signal: an
// upload whose build is in flight when the drain starts still gets its
// complete plan, and the listener refuses new connections afterwards.
// main wires SIGINT/SIGTERM to exactly this obs.GracefulStop call.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	enteredCh := make(chan struct{})
	var entered sync.Once
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		time.Sleep(200 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.mux}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/plan", "text/plain",
			bytes.NewReader(matrixBytes(t, 6, 512, 4000)))
		if err != nil {
			done <- result{-1, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, body}
	}()
	<-enteredCh // request is mid-build; now drain

	if err := obs.GracefulStop(srv, 10*time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	got := <-done
	if got.code != http.StatusOK {
		t.Fatalf("in-flight upload during drain: status %d: %s", got.code, got.body)
	}
	if _, err := hottiles.ReadPlan(bytes.NewReader(got.body)); err != nil {
		t.Fatalf("drained response is not a valid plan: %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

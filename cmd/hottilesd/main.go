// Command hottilesd is the plan-serving daemon: it accepts MatrixMarket
// uploads over HTTP, runs the HotTiles preprocessing pipeline (scan →
// model → partition → format generation) once per distinct matrix+config,
// and serves the serialized plan from a content-addressed cache. The
// paper's train-once/infer-many workflow (§VI-B) as a service: the first
// upload pays for preprocessing, every identical upload — concurrent or
// later — gets the cached plan.
//
// Endpoints (one mux, one port):
//
//	POST /plan         MatrixMarket body → gob plan (X-Plan-Hash header)
//	POST /gnn          MatrixMarket body → multi-layer GNN inference, JSON
//	                   (?layers=N; reuses /plan's content-addressed cache)
//	GET  /plan/{hash}  fetch a cached plan by content hash (404 if absent)
//	GET  /healthz      liveness + store counters, JSON
//	GET  /metrics      obs registry, Prometheus text exposition
//	GET  /progress     running fan-out, JSON
//	GET  /debug/pprof  standard Go profiling
//
// Overload is refused, not buffered: past -max-active concurrent builds
// and a -max-queue wait line, POST /plan answers 429 with a Retry-After
// estimate. SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hottiles "repro"
	"repro/internal/obs"
	"repro/internal/planstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
	archName := flag.String("arch", "spade-sextans:4",
		"architecture: spade-sextans[:scale], spade-sextans-pcie, piuma, cpu-dsa")
	strategy := flag.String("strategy", "hottiles", "hottiles|iunaware|hotonly|coldonly")
	kernelName := flag.String("kernel", "spmm", "kernel: spmm|spmv|sddmm")
	tileSize := flag.Int("tile", 0, "tile size override (0 = architecture default)")
	opsPerMAC := flag.Float64("ops", 2, "arithmetic-intensity factor (2 = plain SpMM)")
	seed := flag.Int64("seed", 1, "seed for IUnaware's random assignment")
	storeDir := flag.String("store-dir", "", "spill built plans to this directory (survives restarts)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "in-memory plan cache budget")
	maxActive := flag.Int("max-active", 1, "concurrent preprocessing builds")
	maxQueue := flag.Int("max-queue", 64, "builds waiting for a slot before 429 (negative: no queue)")
	reqTimeout := flag.Duration("request-timeout", 60*time.Second, "per-request preprocessing deadline")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown drain deadline for in-flight requests")
	maxUpload := flag.Int64("max-upload-bytes", 256<<20, "largest accepted MatrixMarket upload")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hottilesd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := config{
		archName:   *archName,
		stratName:  *strategy,
		kernelName: *kernelName,
		opsPerMAC:  *opsPerMAC,
		seed:       *seed,
		maxUpload:  *maxUpload,
		reqTimeout: *reqTimeout,
		store: planstore.Config{
			Dir:       *storeDir,
			MaxBytes:  *cacheBytes,
			MaxActive: *maxActive,
			MaxQueue:  *maxQueue,
		},
	}
	var err error
	if cfg.arch, err = hottiles.ParseArch(*archName); err != nil {
		fail(err)
	}
	if *tileSize > 0 {
		cfg.arch.TileH, cfg.arch.TileW = *tileSize, *tileSize
	}
	if cfg.strategy, err = hottiles.ParseStrategy(*strategy); err != nil {
		fail(err)
	}
	if cfg.kernel, err = hottiles.ParseKernel(*kernelName); err != nil {
		fail(err)
	}

	s, err := newServer(cfg)
	if err != nil {
		fail(err)
	}
	// The daemon always has its debug plane attached, so keep the
	// hot-loop timing observations on: a /metrics scrape should see the
	// pipeline's histograms populated.
	obs.SetDeepTiming(true)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: s.mux}
	// The accept loop outlives any single fan-out and terminates with
	// the listener — like obs.ServeDebug's, it cannot run on the bounded
	// task pool, so cmd/hottilesd is nakedgo-allowlisted.
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "hottilesd: listening on http://%s (arch %s, strategy %s)\n",
		ln.Addr(), cfg.archName, cfg.stratName)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "hottilesd: %v, draining (up to %v)\n", got, *drainTimeout)
	if err := obs.GracefulStop(srv, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "hottilesd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hottilesd: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hottilesd:", err)
	os.Exit(1)
}

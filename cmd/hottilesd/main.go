// Command hottilesd is the plan-serving daemon: it accepts MatrixMarket
// uploads over HTTP, runs the HotTiles preprocessing pipeline (scan →
// model → partition → format generation) once per distinct matrix+config,
// and serves the serialized plan from a content-addressed cache. The
// paper's train-once/infer-many workflow (§VI-B) as a service: the first
// upload pays for preprocessing, every identical upload — concurrent or
// later — gets the cached plan.
//
// Endpoints (one mux, one port):
//
//	POST /plan         MatrixMarket body → gob plan (X-Plan-Hash header)
//	POST /gnn          MatrixMarket body → multi-layer GNN inference, JSON
//	                   (?layers=N; reuses /plan's content-addressed cache)
//	GET  /plan/{hash}  fetch a cached plan by content hash (404 if absent)
//	GET  /healthz      liveness + store counters, JSON
//	GET  /metrics      obs registry, Prometheus text exposition
//	GET  /progress     running fan-out, JSON
//	GET  /debug/requests  flight recorder: recent requests + post-mortems
//	GET  /debug/pprof  standard Go profiling
//
// Overload is refused, not buffered: past -max-active concurrent builds
// and a -max-queue wait line, POST /plan answers 429 with a Retry-After
// estimate. SIGINT/SIGTERM drains in-flight requests before exiting;
// SIGQUIT dumps the post-mortem ring to stderr and keeps serving.
//
// Every request carries one ID (inbound X-Request-ID / traceparent, minted
// otherwise) through the access log, the response header, the span tree,
// and /debug/requests — DESIGN.md §18. The daemon logs structured lines
// (JSON by default; -log level:format) so drain, 429, and signal events
// stay machine-parseable under load.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hottiles "repro"
	"repro/internal/obs"
	"repro/internal/planstore"
)

// logger is the process logger; main replaces it once flags are parsed.
// Package scope so fail() stays usable from any point after startup.
var logger *obs.Logger

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
	archName := flag.String("arch", "spade-sextans:4",
		"architecture: spade-sextans[:scale], spade-sextans-pcie, piuma, cpu-dsa")
	strategy := flag.String("strategy", "hottiles", "hottiles|iunaware|hotonly|coldonly")
	kernelName := flag.String("kernel", "spmm", "kernel: spmm|spmv|sddmm")
	tileSize := flag.Int("tile", 0, "tile size override (0 = architecture default)")
	opsPerMAC := flag.Float64("ops", 2, "arithmetic-intensity factor (2 = plain SpMM)")
	seed := flag.Int64("seed", 1, "seed for IUnaware's random assignment")
	storeDir := flag.String("store-dir", "", "spill built plans to this directory (survives restarts)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "in-memory plan cache budget")
	maxActive := flag.Int("max-active", 1, "concurrent preprocessing builds")
	maxQueue := flag.Int("max-queue", 64, "builds waiting for a slot before 429 (negative: no queue)")
	reqTimeout := flag.Duration("request-timeout", 60*time.Second, "per-request preprocessing deadline")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown drain deadline for in-flight requests")
	maxUpload := flag.Int64("max-upload-bytes", 256<<20, "largest accepted MatrixMarket upload")
	logSpec := flag.String("log", "info:json", "log level and format: level[:format], e.g. debug, warn:text")
	logRate := flag.Int("log-rate", 1000, "max sub-warn log lines per second (0 = unlimited)")
	slowThreshold := flag.Duration("slow-threshold", time.Second,
		"requests at or above this latency are captured in the post-mortem ring (negative: disable)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hottilesd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	logOpts, err := obs.ParseLogFlag(*logSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hottilesd:", err)
		os.Exit(2)
	}
	logOpts.SampleRate = *logRate
	logger = obs.NewLogger(os.Stderr, logOpts)
	obs.ConfigureFlight(obs.FlightConfig{SlowThreshold: *slowThreshold})

	cfg := config{
		archName:   *archName,
		stratName:  *strategy,
		kernelName: *kernelName,
		opsPerMAC:  *opsPerMAC,
		seed:       *seed,
		maxUpload:  *maxUpload,
		reqTimeout: *reqTimeout,
		log:        logger,
		store: planstore.Config{
			Dir:       *storeDir,
			MaxBytes:  *cacheBytes,
			MaxActive: *maxActive,
			MaxQueue:  *maxQueue,
		},
	}
	if cfg.arch, err = hottiles.ParseArch(*archName); err != nil {
		fail(err)
	}
	if *tileSize > 0 {
		cfg.arch.TileH, cfg.arch.TileW = *tileSize, *tileSize
	}
	if cfg.strategy, err = hottiles.ParseStrategy(*strategy); err != nil {
		fail(err)
	}
	if cfg.kernel, err = hottiles.ParseKernel(*kernelName); err != nil {
		fail(err)
	}

	s, err := newServer(cfg)
	if err != nil {
		fail(err)
	}
	// The daemon always has its debug plane attached, so keep the
	// hot-loop timing observations on: a /metrics scrape should see the
	// pipeline's histograms populated.
	obs.SetDeepTiming(true)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: s.mux}
	// The accept loop outlives any single fan-out and terminates with
	// the listener — like obs.ServeDebug's, it cannot run on the bounded
	// task pool, so cmd/hottilesd is nakedgo-allowlisted.
	go srv.Serve(ln)
	logger.Info("hottilesd.listen",
		obs.Str("addr", ln.Addr().String()),
		obs.Str("arch", cfg.archName),
		obs.Str("strategy", cfg.stratName),
	)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	for got := range sig {
		if got == syscall.SIGQUIT {
			// Post-mortem dump on demand; the daemon keeps serving.
			logger.Warn("hottilesd.postmortem.dump", obs.Str("signal", got.String()))
			if err := obs.Flight().WritePostmortem(os.Stderr); err != nil {
				logger.Error("hottilesd.postmortem.fail", obs.Str("err", err.Error()))
			}
			continue
		}
		if err := drain(srv, logger, got.String(), *drainTimeout); err != nil {
			os.Exit(1)
		}
		return
	}
}

// drain runs the signal-initiated shutdown: it announces the drain, runs
// GracefulStop, and reports the outcome — all through the structured
// logger, so the shutdown lines interleave whole with in-flight request
// logs instead of racing them on stderr.
func drain(srv *http.Server, log *obs.Logger, cause string, timeout time.Duration) error {
	log.Warn("hottilesd.drain.start",
		obs.Str("cause", cause), obs.Str("timeout", timeout.String()))
	if err := obs.GracefulStop(srv, timeout); err != nil {
		log.Error("hottilesd.drain.fail", obs.Str("err", err.Error()))
		return err
	}
	log.Info("hottilesd.drain.done", obs.Str("cause", cause))
	return nil
}

// fail logs a fatal startup error and exits. Before flag parsing installs
// the real logger, the nil no-op logger would swallow the message — so
// fail falls back to plain stderr in that window.
func fail(err error) {
	if logger == nil {
		fmt.Fprintln(os.Stderr, "hottilesd:", err)
		os.Exit(1)
	}
	logger.Error("hottilesd.fatal", obs.Str("err", err.Error()))
	os.Exit(1)
}

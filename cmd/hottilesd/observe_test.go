package main

// Tests for the request-scoped observability plane (DESIGN.md §18): one ID
// through header, access log, span tree and flight recorder; forced-5xx
// and forced-slow requests landing in the post-mortem ring; and shutdown
// logging that stays valid JSON while requests are still in flight.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a Writer the daemon logger can share with a test that
// reads it while handlers are still running.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Lines returns the non-empty log lines written so far.
func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var lines []string
	for _, ln := range strings.Split(b.buf.String(), "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	return lines
}

// jsonLines decodes every line, failing the test on any non-JSON output.
func jsonLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for i, ln := range b.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("log line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestRequestIDCorrelation is the acceptance walk: one upload with an
// X-Request-ID must surface the same ID in the response header, the
// access-log line, the flight-recorder entry, and the span tree of the
// post-mortem capture (SlowThreshold 1ns makes every request "slow").
func TestRequestIDCorrelation(t *testing.T) {
	obs.ConfigureFlight(obs.FlightConfig{SlowThreshold: time.Nanosecond})
	defer obs.ConfigureFlight(obs.FlightConfig{})

	var buf syncBuffer
	cfg := testConfig()
	cfg.log = obs.NewLogger(&buf, obs.LogOptions{Level: obs.LogDebug, Format: "json"})
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	const id = "corr-e2e-0001"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/plan",
		bytes.NewReader(matrixBytes(t, 21, 512, 4000)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /plan: %d", resp.StatusCode)
	}

	// 1. The header echo.
	if echo := resp.Header.Get(obs.RequestIDHeader); echo != id {
		t.Fatalf("X-Request-ID echo %q, want %q", echo, id)
	}

	// 2. The access log line, with the request fields alongside the ID.
	var access map[string]any
	for _, rec := range jsonLines(t, &buf) {
		if rec["msg"] == "httpd.access" && rec["req"] == id {
			access = rec
		}
	}
	if access == nil {
		t.Fatalf("no httpd.access line with req=%s in:\n%s", id, strings.Join(buf.Lines(), "\n"))
	}
	if access["route"] != "plan" || access["status"] != "200" {
		t.Fatalf("access line fields wrong: %v", access)
	}

	// 3. The flight-recorder entry on /debug/requests' backing store.
	view := obs.Flight().Snapshot()
	var entry *obs.RequestRecord
	for i := range view.Recent {
		if view.Recent[i].ID == id {
			entry = &view.Recent[i]
		}
	}
	if entry == nil {
		t.Fatalf("no flight entry with id %s (recent: %d)", id, len(view.Recent))
	}
	if entry.Route != "plan" || entry.Status != 200 {
		t.Fatalf("flight entry wrong: %+v", entry)
	}

	// 4. The span tree in the post-mortem capture, tagged with the ID and
	// carrying the pipeline's stage phases.
	var post *obs.PostmortemRecord
	for i := range view.Postmortem {
		if view.Postmortem[i].ID == id {
			post = &view.Postmortem[i]
		}
	}
	if post == nil {
		t.Fatalf("no post-mortem entry with id %s", id)
	}
	if post.Spans == nil || post.Spans.Attrs["req"] != id {
		t.Fatalf("post-mortem span tree not tagged with the request ID: %+v", post.Spans)
	}
	var stages []string
	for _, ph := range post.Phases {
		stages = append(stages, ph.Name)
	}
	if !strings.Contains(strings.Join(stages, " "), "hotcore.") {
		t.Fatalf("post-mortem phases missing pipeline stages: %v", stages)
	}
}

// TestPostmortemCapturesErrorAndSlow pins the retention policy: a forced
// 5xx and a forced-slow request both land in the post-mortem ring with the
// right reason, while the recent ring records everything.
func TestPostmortemCapturesErrorAndSlow(t *testing.T) {
	// Phase one: a forced 504 (timeout) with a generous slow threshold, so
	// the capture reason is purely "error".
	obs.ConfigureFlight(obs.FlightConfig{SlowThreshold: time.Minute})
	defer obs.ConfigureFlight(obs.FlightConfig{})

	cfg := testConfig()
	cfg.reqTimeout = 50 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.buildHook = func() { time.Sleep(300 * time.Millisecond) }
	ts := httptest.NewServer(s.mux)

	resp := postPlan(t, ts.Client(), ts.URL, matrixBytes(t, 22, 256, 2000))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	errID := resp.Header.Get(obs.RequestIDHeader)
	if errID == "" {
		t.Fatal("no minted X-Request-ID on the 504 response")
	}

	view := obs.Flight().Snapshot()
	post := findPostmortem(view, errID)
	if post == nil {
		t.Fatalf("504 request %s not in the post-mortem ring", errID)
	}
	if post.Reason != "error" || post.Status != http.StatusGatewayTimeout {
		t.Fatalf("post-mortem reason %q status %d, want error/504", post.Reason, post.Status)
	}
	if post.Err == "" {
		t.Fatal("post-mortem entry retained no error text")
	}

	// Phase two: a healthy build captured only because it crosses the slow
	// threshold; its phases must carry the pipeline stage timings.
	obs.ConfigureFlight(obs.FlightConfig{SlowThreshold: time.Nanosecond})
	s2, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.mux)
	defer ts2.Close()

	resp2 := postPlan(t, ts2.Client(), ts2.URL, matrixBytes(t, 23, 512, 4000))
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp2.StatusCode)
	}
	slowID := resp2.Header.Get(obs.RequestIDHeader)

	view = obs.Flight().Snapshot()
	post = findPostmortem(view, slowID)
	if post == nil {
		t.Fatalf("slow request %s not in the post-mortem ring", slowID)
	}
	if post.Reason != "slow" {
		t.Fatalf("post-mortem reason %q, want slow", post.Reason)
	}
	if len(post.Phases) == 0 {
		t.Fatal("slow post-mortem entry has no phase timings")
	}
	for _, ph := range post.Phases {
		if ph.DurNS < 0 {
			t.Fatalf("phase %s has negative duration", ph.Name)
		}
	}
}

func findPostmortem(view obs.FlightView, id string) *obs.PostmortemRecord {
	for i := range view.Postmortem {
		if view.Postmortem[i].ID == id {
			return &view.Postmortem[i]
		}
	}
	return nil
}

// TestDrainLoggingJSON is satellite 4: the SIGTERM drain path logs through
// the structured logger, so shutdown lines under load are individually
// valid JSON, never interleaved mid-line, and ordered start → done with
// the in-flight request's access line between or before done.
func TestDrainLoggingJSON(t *testing.T) {
	var buf syncBuffer
	cfg := testConfig()
	cfg.log = obs.NewLogger(&buf, obs.LogOptions{Level: obs.LogDebug, Format: "json"})
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enteredCh := make(chan struct{})
	var entered sync.Once
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		time.Sleep(200 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.mux}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/plan", "text/plain",
			bytes.NewReader(matrixBytes(t, 24, 512, 4000)))
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-enteredCh // request mid-build: drain now, as main's signal loop would

	if err := drain(srv, cfg.log, "test", 10*time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", code)
	}

	recs := jsonLines(t, &buf) // every line must parse — the core assertion
	idx := map[string]int{}
	for i, rec := range recs {
		msg, _ := rec["msg"].(string)
		if _, seen := idx[msg]; !seen {
			idx[msg] = i
		}
	}
	start, ok := idx["hottilesd.drain.start"]
	if !ok {
		t.Fatal("no hottilesd.drain.start line")
	}
	doneIdx, ok := idx["hottilesd.drain.done"]
	if !ok {
		t.Fatal("no hottilesd.drain.done line")
	}
	if start >= doneIdx {
		t.Fatalf("drain.start at line %d not before drain.done at %d", start, doneIdx)
	}
	access, ok := idx["httpd.access"]
	if !ok {
		t.Fatal("no httpd.access line for the drained request")
	}
	if access >= doneIdx {
		t.Fatalf("access line %d after drain.done %d: request finished after drain returned", access, doneIdx)
	}
	if recs[doneIdx]["cause"] != "test" {
		t.Fatalf("drain.done cause %v, want test", recs[doneIdx]["cause"])
	}
}

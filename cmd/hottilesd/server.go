package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	hottiles "repro"
	"repro/internal/obs"
	"repro/internal/planstore"
)

// Daemon-plane observability, served by the same process on /metrics.
var (
	planRequests = obs.NewCounter("hottilesd.plan.requests")
	planBusy     = obs.NewCounter("hottilesd.plan.busy")
	planErrors   = obs.NewCounter("hottilesd.plan.errors")
	planLatency  = obs.NewHistogram("hottilesd.plan.ns")
)

// config fixes the daemon's pipeline parameters. The preprocessing
// configuration is part of every plan's identity: the content hash covers
// it, so a daemon restarted with a different architecture never serves a
// stale plan built under the old one.
type config struct {
	archName   string
	arch       hottiles.Arch
	stratName  string
	strategy   hottiles.Strategy
	kernelName string
	kernel     hottiles.Kernel
	opsPerMAC  float64
	seed       int64

	maxUpload  int64
	reqTimeout time.Duration
	store      planstore.Config

	// log is the daemon's structured logger; per-request loggers derive
	// from it in the observed middleware. nil (the tests' default) is a
	// valid no-op logger.
	log *obs.Logger
}

// server routes the plan API and the PR-5 debug plane on one mux.
type server struct {
	cfg   config
	store *planstore.Store
	mux   *http.ServeMux
	log   *obs.Logger
	// tl records per-request slices; post-mortem captures take its tail.
	tl *obs.Timeline

	// buildHook, when non-nil, runs at the start of every plan build.
	// Tests use it to hold builds open so admission-control behavior
	// (queue overflow, coalescing, drain) is deterministic.
	buildHook func()
}

// serverTimelineEvents sizes the daemon's request timeline ring: enough
// recent slices for a post-mortem tail without unbounded growth.
const serverTimelineEvents = 4096

// newServer wires the plan routes onto the observability mux, so one
// listener serves plans, /metrics, /progress and pprof together. Every
// plan-API route passes through the observed middleware (request IDs, RED
// metrics, access log, flight recorder).
func newServer(cfg config) (*server, error) {
	store, err := planstore.New(cfg.store)
	if err != nil {
		return nil, err
	}
	s := &server{cfg: cfg, store: store, log: cfg.log, tl: obs.NewTimeline(serverTimelineEvents)}
	mux := obs.DebugMux()
	mux.HandleFunc("POST /plan", s.observed("plan", redPlan, s.handleBuildPlan))
	mux.HandleFunc("POST /gnn", s.observed("gnn", redGNN, s.handleGNN))
	mux.HandleFunc("GET /plan/{hash}", s.observed("planget", redPlanGet, s.handleGetPlan))
	mux.HandleFunc("GET /healthz", s.observed("healthz", redHealthz, s.handleHealthz))
	s.mux = mux
	return s, nil
}

// planHash is the content address of a plan: the preprocessing
// configuration followed by the exact MatrixMarket bytes. Two uploads of
// the same file under the same daemon configuration always collapse onto
// one cache entry (and one in-flight build).
func (s *server) planHash(matrix []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "arch=%s tile=%dx%d k=%d strategy=%s kernel=%s ops=%g seed=%d\n",
		s.cfg.archName, s.cfg.arch.TileH, s.cfg.arch.TileW, s.cfg.arch.K,
		s.cfg.stratName, s.cfg.kernelName, s.cfg.opsPerMAC, s.cfg.seed)
	h.Write(matrix)
	return hex.EncodeToString(h.Sum(nil))
}

// errBadMatrix marks failures caused by the uploaded bytes (parse or
// validation), which map to 400 rather than 500.
type errBadMatrix struct{ err error }

func (e errBadMatrix) Error() string { return e.err.Error() }
func (e errBadMatrix) Unwrap() error { return e.err }

// buildPlan runs the full pipeline for one upload: parse the matrix, run
// scan → model → partition → format generation with ctx threaded through
// the stage boundaries, and serialize the plan to its wire form.
func (s *server) buildPlan(ctx context.Context, matrix []byte) ([]byte, error) {
	if s.buildHook != nil {
		s.buildHook()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := hottiles.ReadMatrixMarket(bytes.NewReader(matrix))
	if err != nil {
		return nil, errBadMatrix{err}
	}
	a := s.cfg.arch
	plan, err := hottiles.PartitionCtx(ctx, m, &a, hottiles.PartitionOptions{
		Strategy:  s.cfg.strategy,
		OpsPerMAC: s.cfg.opsPerMAC,
		Kernel:    s.cfg.kernel,
		Seed:      s.cfg.seed,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, errBadMatrix{err}
	}
	var buf bytes.Buffer
	if err := hottiles.WritePlan(&buf, plan); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// handleBuildPlan is POST /plan: upload a MatrixMarket body, get the gob
// plan back. Identical in-flight uploads share one pipeline run; overload
// is refused with 429 and a Retry-After estimate instead of queueing
// without bound.
func (s *server) handleBuildPlan(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	planRequests.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("hottilesd: upload exceeds %d bytes", s.cfg.maxUpload),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "hottilesd: reading upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	hash := s.planHash(body)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
	defer cancel()
	plan, err := s.store.Get(ctx, hash, func(ctx context.Context) ([]byte, error) {
		return s.buildPlan(ctx, body)
	})
	if err != nil {
		s.planError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	w.Header().Set("X-Plan-Hash", hash)
	w.Header().Set("Content-Length", strconv.Itoa(len(plan)))
	w.Write(plan)
	planLatency.ObserveSince(t0)
}

// planError maps a pipeline or admission failure onto its status code and
// logs it with the request's ID (the logger rides r's context).
func (s *server) planError(w http.ResponseWriter, r *http.Request, err error) {
	planErrors.Inc()
	log := obs.CtxLog(r.Context())
	switch {
	case errors.Is(err, planstore.ErrBusy):
		planBusy.Inc()
		retry := int(math.Ceil(s.store.RetryAfter().Seconds()))
		log.Warn("httpd.busy", obs.Int("retry.after.s", retry))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "hottilesd: preprocessing queue full, retry later",
			http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		log.Error("httpd.timeout", obs.Str("err", err.Error()))
		http.Error(w, "hottilesd: preprocessing exceeded the request timeout",
			http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response.
		log.Warn("httpd.canceled")
		http.Error(w, "hottilesd: request canceled", http.StatusServiceUnavailable)
	default:
		var bad errBadMatrix
		if errors.As(err, &bad) {
			log.Warn("httpd.badrequest", obs.Str("err", bad.Error()))
			http.Error(w, "hottilesd: "+bad.Error(), http.StatusBadRequest)
			return
		}
		log.Error("httpd.fail", obs.Str("err", err.Error()))
		http.Error(w, "hottilesd: "+err.Error(), http.StatusInternalServerError)
	}
}

// handleGetPlan is GET /plan/{hash}: fetch a previously built plan by its
// content hash — the paper's train-once/infer-many flow (§VI-B) over HTTP.
// It never triggers a build; an unknown hash is 404.
func (s *server) handleGetPlan(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	plan, ok := s.store.Peek(hash)
	if !ok {
		http.Error(w, "hottilesd: no plan with hash "+hash, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	w.Header().Set("X-Plan-Hash", hash)
	w.Header().Set("Content-Length", strconv.Itoa(len(plan)))
	w.Write(plan)
}

// handleHealthz reports liveness plus the store's counters, so a probe
// (or a human with curl) sees queue pressure at a glance.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Status string          `json:"status"`
		Arch   string          `json:"arch"`
		Store  planstore.Stats `json:"store"`
	}{"ok", s.cfg.archName, s.store.Stats()})
}

// Request-scoped observability middleware (DESIGN.md §18): every route is
// wrapped so one request ID — accepted from X-Request-ID / traceparent or
// minted — tags the access-log line, the response header, the request's
// span tree, the planstore and hotcore log lines below, and the flight-
// recorder entry. Per-route RED metrics (requests, errors, latency
// histogram) land in the ordinary registry, so /metrics and manifests pick
// them up with no extra wiring.
package main

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// redMetrics is one route's RED triple.
type redMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// Per-route RED metrics. Names are literals (not built from the route
// string) so the metricname analyzer can hold them to the registry grammar
// and the whole-suite duplicate/Prometheus-collision check.
var (
	redPlan = redMetrics{
		requests: obs.NewCounter("httpd.plan.requests"),
		errors:   obs.NewCounter("httpd.plan.errors"),
		latency:  obs.NewHistogram("httpd.plan.latency.ns"),
	}
	redPlanGet = redMetrics{
		requests: obs.NewCounter("httpd.planget.requests"),
		errors:   obs.NewCounter("httpd.planget.errors"),
		latency:  obs.NewHistogram("httpd.planget.latency.ns"),
	}
	redGNN = redMetrics{
		requests: obs.NewCounter("httpd.gnn.requests"),
		errors:   obs.NewCounter("httpd.gnn.errors"),
		latency:  obs.NewHistogram("httpd.gnn.latency.ns"),
	}
	redHealthz = redMetrics{
		requests: obs.NewCounter("httpd.healthz.requests"),
		errors:   obs.NewCounter("httpd.healthz.errors"),
		latency:  obs.NewHistogram("httpd.healthz.latency.ns"),
	}
)

// statusWriter captures what the handler told the client: status, body
// bytes, and (for 4xx/5xx) the leading bytes of the error body so the
// flight recorder can show the error chain without retaining responses.
type statusWriter struct {
	http.ResponseWriter
	status  int
	bytes   int64
	errBody []byte
}

// errBodyCap bounds the captured error text per request.
const errBodyCap = 256

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.status >= 400 && len(w.errBody) < errBodyCap {
		take := min(errBodyCap-len(w.errBody), len(p))
		w.errBody = append(w.errBody, p[:take]...)
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// errText renders the captured error body as a single log-friendly line.
func (w *statusWriter) errText() string {
	if w.status < 400 || len(w.errBody) == 0 {
		return ""
	}
	b := w.errBody
	for i, c := range b {
		if c == '\n' {
			b = b[:i]
			break
		}
	}
	return string(b)
}

// observed wraps one route handler in the request-scoped plane: request-ID
// resolution and echo, a per-request tracer and logger on the context, a
// timeline slice, RED metrics, the access-log line, and the flight-recorder
// record. route must be a fixed literal — it names metrics series and
// flight records.
func (s *server) observed(route string, red redMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		red.requests.Inc()

		id := obs.InboundRequestID(r.Header)
		if id == "" {
			id = obs.MintRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)

		tr := obs.New("httpd." + route)
		tr.Root().SetAttr("req", id)
		reqLog := s.log.With(obs.Str("req", id), obs.Str("route", route))
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithLogger(ctx, reqLog)
		ctx = obs.WithSpan(ctx, tr.Root())

		slice := s.tl.Track("httpd/" + route).Start(id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		slice.End()

		if sw.status == 0 {
			// Handler wrote nothing: net/http would send 200 on return.
			sw.status = http.StatusOK
		}
		lat := time.Since(t0)
		red.latency.Observe(lat.Nanoseconds())
		if sw.status >= 500 {
			red.errors.Inc()
		}

		rec := obs.RequestRecord{
			ID:        id,
			Method:    r.Method,
			Route:     route,
			Path:      r.URL.Path,
			Status:    sw.status,
			Start:     t0,
			LatencyNS: lat.Nanoseconds(),
			Bytes:     sw.bytes,
			Remote:    r.RemoteAddr,
			Err:       sw.errText(),
		}
		obs.Flight().Record(rec, tr.SpanTree(), s.tl)

		lv := obs.LogInfo
		switch {
		case sw.status >= 500:
			lv = obs.LogError
		case sw.status >= 400:
			lv = obs.LogWarn
		}
		reqLog.Log(lv, "httpd.access",
			obs.Str("method", r.Method),
			obs.Str("path", r.URL.Path),
			obs.Int("status", sw.status),
			obs.Int("bytes", int(sw.bytes)),
			obs.Str("dur", lat.String()),
		)
	}
}

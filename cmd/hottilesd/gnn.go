package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	hottiles "repro"
	"repro/internal/obs"
)

// GNN-plane observability, on the same /metrics exposition.
var (
	gnnRequests = obs.NewCounter("hottilesd.gnn.requests")
	gnnErrors   = obs.NewCounter("hottilesd.gnn.errors")
	gnnLatency  = obs.NewHistogram("hottilesd.gnn.ns")
)

// gnnMaxLayers bounds the ?layers= parameter so one request cannot hold a
// drain hostage with an arbitrarily long layer loop.
const gnnMaxLayers = 64

// gnnResponse is the POST /gnn reply: simulated per-layer timing and a
// content hash of the final feature matrix, so a client (or the drain test)
// can check the inference completed without shipping N×K floats.
type gnnResponse struct {
	Hash         string    `json:"hash"`
	Layers       int       `json:"layers"`
	LayerTimes   []float64 `json:"layer_times"`
	SimTotal     float64   `json:"sim_total"`
	OutputSHA256 string    `json:"output_sha256"`
}

// handleGNN is POST /gnn?layers=N: upload a MatrixMarket adjacency matrix
// and run a multi-layer GNN forward pass on it. The preprocessing plan is
// content-addressed with exactly the same hash as POST /plan, so a matrix
// whose plan was already built (or is being built right now) by either
// endpoint reuses it — train once with /plan, infer many times with /gnn
// (§VI-B). Only the plan build passes through the store's admission gate;
// the layer simulation itself is cheap and runs per request with
// deterministic features seeded by the daemon configuration.
func (s *server) handleGNN(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	gnnRequests.Inc()
	if s.cfg.kernel != hottiles.KernelSpMM {
		gnnErrors.Inc()
		http.Error(w, "hottilesd: /gnn requires a daemon configured for spmm, running "+s.cfg.kernelName,
			http.StatusBadRequest)
		return
	}
	layers := 2
	if v := r.URL.Query().Get("layers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > gnnMaxLayers {
			gnnErrors.Inc()
			http.Error(w, fmt.Sprintf("hottilesd: layers must be in [1, %d]", gnnMaxLayers),
				http.StatusBadRequest)
			return
		}
		layers = n
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxUpload))
	if err != nil {
		gnnErrors.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("hottilesd: upload exceeds %d bytes", s.cfg.maxUpload),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "hottilesd: reading upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	hash := s.planHash(body)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
	defer cancel()
	planBytes, err := s.store.Get(ctx, hash, func(ctx context.Context) ([]byte, error) {
		return s.buildPlan(ctx, body)
	})
	if err != nil {
		gnnErrors.Inc()
		s.planError(w, r, err)
		return
	}
	resp, err := s.runGNN(ctx, hash, planBytes, layers)
	if err != nil {
		gnnErrors.Inc()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.planError(w, r, err)
			return
		}
		http.Error(w, "hottilesd: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plan-Hash", hash)
	enc := json.NewEncoder(w)
	enc.Encode(resp)
	gnnLatency.ObserveSince(t0)
}

// runGNN deserializes the cached plan and chains the layers over it with
// deterministic features: the daemon seed fixes the random matrix, so two
// requests for the same upload and layer count produce identical responses.
func (s *server) runGNN(ctx context.Context, hash string, planBytes []byte, layers int) (*gnnResponse, error) {
	plan, err := hottiles.ReadPlan(bytes.NewReader(planBytes))
	if err != nil {
		return nil, fmt.Errorf("cached plan corrupt: %w", err)
	}
	a := s.cfg.arch
	rng := rand.New(rand.NewSource(s.cfg.seed))
	features := hottiles.NewDense(plan.Grid.N, a.K)
	for i := range features.Data {
		features.Data[i] = rng.Float64()*2 - 1
	}
	res, err := hottiles.RunGNNWithPlan(ctx, plan, &a, features, hottiles.GNNConfig{
		Layers:    layers,
		OpsPerMAC: s.cfg.opsPerMAC,
	})
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range res.Output.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return &gnnResponse{
		Hash:         hash,
		Layers:       layers,
		LayerTimes:   res.LayerTimes,
		SimTotal:     res.SimTotal,
		OutputSHA256: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

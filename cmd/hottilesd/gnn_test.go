package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func postGNN(t *testing.T, client *http.Client, url string, body []byte, query string) *http.Response {
	t.Helper()
	resp, err := client.Post(url+"/gnn"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeGNN(t *testing.T, body []byte) gnnResponse {
	t.Helper()
	var g gnnResponse
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatalf("bad /gnn response %q: %v", body, err)
	}
	return g
}

// TestGNNEndToEnd: one upload, three layers, a complete deterministic
// response — and a repeat request served from the cached plan.
func TestGNNEndToEnd(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	upload := matrixBytes(t, 10, 512, 4000)
	resp := postGNN(t, ts.Client(), ts.URL, upload, "?layers=3")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /gnn: %d: %s", resp.StatusCode, body)
	}
	g := decodeGNN(t, body)
	if g.Layers != 3 || len(g.LayerTimes) != 3 {
		t.Fatalf("layers = %d, %d times, want 3", g.Layers, len(g.LayerTimes))
	}
	if g.SimTotal <= 0 || len(g.OutputSHA256) != 64 || len(g.Hash) != 64 {
		t.Fatalf("incomplete response: %+v", g)
	}

	// Same upload again: the plan is cached, the response byte-identical.
	resp2 := postGNN(t, ts.Client(), ts.URL, upload, "?layers=3")
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(body, body2) {
		t.Fatal("repeat /gnn request returned a different response")
	}
	if st := s.store.Stats(); st.Builds != 1 {
		t.Fatalf("pipeline ran %d times for one matrix, want 1", st.Builds)
	}

	// The plan /gnn built is fetchable by hash — the endpoints share one
	// content-addressed store.
	get, err := ts.Client().Get(ts.URL + "/plan/" + g.Hash)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("GET /plan/{hash} after /gnn: %d", get.StatusCode)
	}
}

// TestGNNConcurrentRequestsShareOnePlanBuild mirrors the /plan coalescing
// test: N concurrent identical /gnn requests run the preprocessing pipeline
// exactly once and all report the same output hash.
func TestGNNConcurrentRequestsShareOnePlanBuild(t *testing.T) {
	const followers = 7
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var entered sync.Once
	enteredCh := make(chan struct{})
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		<-release
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	upload := matrixBytes(t, 11, 512, 4000)
	bodies := make([][]byte, followers+1)
	codes := make([]int, followers+1)
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		resp := postGNN(t, ts.Client(), ts.URL, upload, "?layers=2")
		defer resp.Body.Close()
		codes[i] = resp.StatusCode
		bodies[i], _ = io.ReadAll(resp.Body)
	}
	wg.Add(1)
	go post(0)
	<-enteredCh // leader holds the build open; the rest must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go post(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.store.Stats().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v", s.store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	want := decodeGNN(t, bodies[0])
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if got := decodeGNN(t, bodies[i]); got.OutputSHA256 != want.OutputSHA256 {
			t.Fatalf("request %d computed a different output hash", i)
		}
	}
	if st := s.store.Stats(); st.Builds != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests, want 1 (%+v)",
			st.Builds, followers+1, st)
	}
}

// TestGNNPlanEndpointWarmsGNN: a plan built via POST /plan is reused by a
// later POST /gnn of the same matrix — the train-once/infer-many flow
// across endpoints.
func TestGNNPlanEndpointWarmsGNN(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	upload := matrixBytes(t, 12, 512, 4000)
	resp := postPlan(t, ts.Client(), ts.URL, upload)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /plan: %d", resp.StatusCode)
	}

	gresp := postGNN(t, ts.Client(), ts.URL, upload, "")
	body, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("POST /gnn: %d: %s", gresp.StatusCode, body)
	}
	g := decodeGNN(t, body)
	if g.Layers != 2 {
		t.Fatalf("default layers = %d, want 2", g.Layers)
	}
	if st := s.store.Stats(); st.Builds != 1 {
		t.Fatalf("/gnn rebuilt a plan /plan already built (%d builds)", st.Builds)
	}
}

func TestGNNBadLayers400(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	upload := matrixBytes(t, 13, 256, 2000)
	for _, q := range []string{"?layers=0", "?layers=-3", "?layers=banana", "?layers=1000"} {
		resp := postGNN(t, ts.Client(), ts.URL, upload, q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestGNNDrainUnderLoad: a /gnn request whose plan build is in flight when
// the graceful drain starts still receives its complete inference result.
func TestGNNDrainUnderLoad(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	enteredCh := make(chan struct{})
	var entered sync.Once
	s.buildHook = func() {
		entered.Do(func() { close(enteredCh) })
		time.Sleep(200 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.mux}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/gnn?layers=4", "text/plain",
			bytes.NewReader(matrixBytes(t, 14, 512, 4000)))
		if err != nil {
			done <- result{-1, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, body}
	}()
	<-enteredCh // request is mid-build; now drain

	if err := obs.GracefulStop(srv, 10*time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	got := <-done
	if got.code != http.StatusOK {
		t.Fatalf("in-flight /gnn during drain: status %d: %s", got.code, got.body)
	}
	g := decodeGNN(t, got.body)
	if g.Layers != 4 || len(g.LayerTimes) != 4 || g.SimTotal <= 0 || len(g.OutputSHA256) != 64 {
		t.Fatalf("drained /gnn response incomplete: %+v", g)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

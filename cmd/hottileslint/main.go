// Command hottileslint runs the repository's custom static-analysis suite
// (internal/analysis/passes): the determinism, concurrency and
// observability invariants DESIGN.md §11 documents, enforced mechanically.
//
// Standalone (what `make lint` runs):
//
//	hottileslint [flags] [packages]     # patterns default to ./...
//	hottileslint -json ./...            # machine-readable diagnostics
//	hottileslint -spanend=false ./...   # disable one analyzer
//	hottileslint -shadow ./...          # run only the named analyzers
//
// As a vet tool (unitchecker protocol; what `make ci`'s shadow pass runs):
//
//	go vet -vettool=$(pwd)/bin/hottileslint -shadow ./...
//
// Exit status: 0 clean, 1 diagnostics or usage errors, 2 diagnostics in
// vet mode (the go command's convention).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
	"repro/internal/analysis/unitchecker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	suite := passes.All()

	// The go command probes vet tools before use: -V=full for a cache
	// fingerprint, -flags for the accepted flag set. Answer both before
	// ordinary flag parsing.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			if err := unitchecker.Fingerprint(os.Stdout, "hottileslint"); err != nil {
				fmt.Fprintln(os.Stderr, "hottileslint:", err)
				return 1
			}
			return 0
		case "-flags", "--flags":
			if err := unitchecker.FlagsJSON(os.Stdout, suite); err != nil {
				fmt.Fprintln(os.Stderr, "hottileslint:", err)
				return 1
			}
			return 0
		}
	}

	fs := flag.NewFlagSet("hottileslint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("C", ".", "module directory to analyze from")
	enable := map[string]*bool{}
	for _, a := range suite {
		enable[a.Name] = fs.Bool(a.Name, true, "analyzer: "+a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hottileslint [flags] [package patterns]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nSetting -NAME selects only the named analyzers; -NAME=false disables one.\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// Flag semantics match go vet: any analyzer flag set explicitly true
	// selects exactly those analyzers; explicit false disables; untouched
	// flags mean "all analyzers".
	selected, disabled := map[string]bool{}, map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enable[f.Name]; !ok {
			return
		}
		if *enable[f.Name] {
			selected[f.Name] = true
		} else {
			disabled[f.Name] = true
		}
	})
	var active []*analysis.Analyzer
	for _, a := range suite {
		switch {
		case len(selected) > 0 && selected[a.Name]:
			active = append(active, a)
		case len(selected) == 0 && !disabled[a.Name]:
			active = append(active, a)
		}
	}

	// A single .cfg argument means the go command is driving us as a
	// vettool over one package unit.
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitchecker.Main(rest[0], active, suite, *asJSON)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hottileslint:", err)
		return 1
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "hottileslint: %s: type error: %v\n", p.Path, terr)
		}
		if len(p.TypeErrors) > 0 {
			return 1
		}
	}
	diags, err := analysis.RunChecked(pkgs, active, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hottileslint:", err)
		return 1
	}
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "hottileslint:", err)
			return 1
		}
	} else {
		analysis.WriteText(os.Stderr, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/passes"
)

// buildTool compiles the hottileslint binary once per test process and
// returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hottileslint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// repoRoot returns the module root (tests run in cmd/hottileslint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestVettoolHandshake checks the two probes the go command sends before
// trusting a -vettool: -V=full must print a stable fingerprint line and
// -flags must describe every analyzer as a boolean flag.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "hottileslint version ") || !strings.Contains(string(out), "buildID=") {
		t.Errorf("-V=full output %q lacks name/buildID", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags is not JSON: %v\n%s", err, out)
	}
	byName := map[string]bool{}
	for _, f := range flags {
		byName[f.Name] = f.Bool
	}
	for _, a := range passes.All() {
		if !byName[a.Name] {
			t.Errorf("-flags does not advertise analyzer %q as boolean", a.Name)
		}
	}
}

// TestVetIntegration drives the binary through the real `go vet -vettool`
// protocol over the whole module with the shadow pass; the repo must be
// clean.
func TestVetIntegration(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-shadow", "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestStandaloneCleanRepo runs the full suite in standalone mode over the
// module, mirroring `make lint`: exit 0, no output.
func TestStandaloneCleanRepo(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone run: %v\n%s", err, out)
	}
}

// TestStandaloneFindsViolation points the tool at a scratch module with a
// naked go statement: exit code 1 and a nakedgo diagnostic, in both text
// and -json form.
func TestStandaloneFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `package scratch

// Leak spawns an unpooled goroutine.
func Leak(fn func()) {
	go fn()
}
`)

	cmd := exec.Command(bin, "-C", dir, "./...")
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d (err %v), want 1\n%s", code, err, out)
	}
	if !strings.Contains(string(out), "nakedgo") || !strings.Contains(string(out), "raw go statement") {
		t.Errorf("diagnostic output missing nakedgo finding:\n%s", out)
	}

	cmd = exec.Command(bin, "-C", dir, "-json", "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("-json exit code = %d, want 1\n%s", code, out)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "nakedgo" {
		t.Errorf("-json diagnostics = %+v, want one nakedgo finding", diags)
	}

	// Disabling the analyzer silences the finding.
	cmd = exec.Command(bin, "-C", dir, "-nakedgo=false", "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-nakedgo=false run: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/passes"
)

// buildTool compiles the hottileslint binary once per test process and
// returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hottileslint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// repoRoot returns the module root (tests run in cmd/hottileslint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestVettoolHandshake checks the two probes the go command sends before
// trusting a -vettool: -V=full must print a stable fingerprint line and
// -flags must describe every analyzer as a boolean flag.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "hottileslint version ") || !strings.Contains(string(out), "buildID=") {
		t.Errorf("-V=full output %q lacks name/buildID", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags is not JSON: %v\n%s", err, out)
	}
	byName := map[string]bool{}
	for _, f := range flags {
		byName[f.Name] = f.Bool
	}
	for _, a := range passes.All() {
		if !byName[a.Name] {
			t.Errorf("-flags does not advertise analyzer %q as boolean", a.Name)
		}
	}
}

// TestVetIntegration drives the binary through the real `go vet -vettool`
// protocol over the whole module with the shadow pass; the repo must be
// clean.
func TestVetIntegration(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-shadow", "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestStandaloneCleanRepo runs the full suite in standalone mode over the
// module, mirroring `make lint`: exit 0, no output.
func TestStandaloneCleanRepo(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone run: %v\n%s", err, out)
	}
}

// TestStandaloneFindsViolation points the tool at a scratch module with a
// naked go statement: exit code 1 and a nakedgo diagnostic, in both text
// and -json form.
func TestStandaloneFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `package scratch

// Leak spawns an unpooled goroutine.
func Leak(fn func()) {
	go fn()
}
`)

	cmd := exec.Command(bin, "-C", dir, "./...")
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d (err %v), want 1\n%s", code, err, out)
	}
	if !strings.Contains(string(out), "nakedgo") || !strings.Contains(string(out), "raw go statement") {
		t.Errorf("diagnostic output missing nakedgo finding:\n%s", out)
	}

	cmd = exec.Command(bin, "-C", dir, "-json", "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("-json exit code = %d, want 1\n%s", code, out)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "nakedgo" {
		t.Errorf("-json diagnostics = %+v, want one nakedgo finding", diags)
	}

	// Disabling the analyzer silences the finding.
	cmd = exec.Command(bin, "-C", dir, "-nakedgo=false", "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-nakedgo=false run: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeSyntheticModule lays out a scratch module whose package paths mirror
// the scoped suffixes (internal/sim, internal/obs) and which violates every
// analyzer in the suite exactly once.
func writeSyntheticModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "obs", "obs.go"), `// Package obs stubs the observability surface the suite matches by path.
package obs

type Tracer struct{}

func (t *Tracer) Phase(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Start(name string, attrs ...string) *Span { return &Span{} }
func (s *Span) End()                                     {}

type Counter struct{}

func NewCounter(name string) *Counter { return &Counter{} }
`)
	writeFile(t, filepath.Join(dir, "internal", "sim", "sim.go"), `// Package sim trips the path-scoped analyzers.
package sim

import (
	"context"
	"time"
)

//hot:path
func Table() map[int]int {
	return map[int]int{1: 2} // hotalloc
}

func Seed() int64 { return time.Now().UnixNano() } // detrand

func Mint() context.Context { return context.Background() } // ctxflow

func Close(a, b float64) bool { return a*2 == b+1 } // floateq
`)
	writeFile(t, filepath.Join(dir, "work", "work.go"), `// Package work trips the repo-wide analyzers.
package work

import (
	"fmt"
	"sync"

	"scratch/internal/obs"
)

var reqs = obs.NewCounter("Bad.Name") // metricname

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { return g.n } // lockcopy

func Leak(fn func()) { go fn() } // nakedgo

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // mapiter
	}
	return keys
}

func Shadowed() int {
	len := 3 // shadow
	return len
}

func Wrap(err error) error {
	return fmt.Errorf("work: %v", err) // errwrap
}

func Open(tr *obs.Tracer) {
	tr.Phase("exec").Start("job") // spanend
}
`)
	return dir
}

// suiteMessages maps each analyzer to a substring unique to the diagnostic
// the synthetic module provokes from it.
var suiteMessages = map[string]string{
	"mapiter":    "inside range over map without a following sort",
	"nakedgo":    "raw go statement",
	"spanend":    "result of Start discarded",
	"floateq":    "exact == on floating point",
	"lockcopy":   "passes lock by value",
	"shadow":     "shadows the predeclared builtin",
	"hotalloc":   "map literal in hot path",
	"detrand":    "time.Now in deterministic core",
	"ctxflow":    "context.Background below the facade",
	"errwrap":    "loses the chain",
	"metricname": "does not match the registry grammar",
}

// TestVetSyntheticModule drives the real `go vet -vettool` protocol over
// the synthetic module: all eleven analyzers must fire through the
// unitchecker path, and the per-analyzer vet flags must select and disable
// passes exactly as in standalone mode.
func TestVetSyntheticModule(t *testing.T) {
	bin := buildTool(t)
	dir := writeSyntheticModule(t)

	vet := func(extra ...string) string {
		t.Helper()
		args := append([]string{"vet", "-vettool=" + bin}, extra...)
		args = append(args, "./...")
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		out, _ := cmd.CombinedOutput()
		return string(out)
	}

	out := vet()
	for name, msg := range suiteMessages {
		if !strings.Contains(out, msg) {
			t.Errorf("full vet run missing %s diagnostic (%q):\n%s", name, msg, out)
		}
	}

	// Selection: -nakedgo runs only nakedgo.
	out = vet("-nakedgo")
	if !strings.Contains(out, suiteMessages["nakedgo"]) {
		t.Errorf("-nakedgo selection lost its own finding:\n%s", out)
	}
	for name, msg := range suiteMessages {
		if name == "nakedgo" {
			continue
		}
		if strings.Contains(out, msg) {
			t.Errorf("-nakedgo selection still ran %s:\n%s", name, out)
		}
	}

	// Disabling: -nakedgo=false runs everything else.
	out = vet("-nakedgo=false")
	if strings.Contains(out, suiteMessages["nakedgo"]) {
		t.Errorf("-nakedgo=false still reported nakedgo:\n%s", out)
	}
	for name, msg := range suiteMessages {
		if name == "nakedgo" {
			continue
		}
		if !strings.Contains(out, msg) {
			t.Errorf("-nakedgo=false lost the %s finding (%q):\n%s", name, msg, out)
		}
	}
}

#!/bin/sh
# servesmoke: end-to-end exercise of the hottilesd daemon through real
# processes and a real port. Starts the daemon on an ephemeral port, runs
# planload's smoke round trip (upload → plan → fetch-by-hash → validate →
# /metrics scrape) with a known request ID and greps that same ID out of
# the access log, then sends SIGTERM and requires a clean drained exit.
# Run from the repo root via `make servesmoke` (builds the binaries first).
set -eu

HOTTILESD=${HOTTILESD:-./bin/hottilesd}
PLANLOAD=${PLANLOAD:-./bin/planload}

log=$(mktemp)
store=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$log" "$store"
}
trap cleanup EXIT INT TERM

"$HOTTILESD" -addr 127.0.0.1:0 -store-dir "$store" 2>"$log" &
daemon_pid=$!

# The daemon logs a JSON hottilesd.listen line with its bound address once
# the listener is up; poll for it.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n '/hottilesd.listen/s/.*"addr":"\([^"]*\)".*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "servesmoke: daemon died during startup:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "servesmoke: daemon never reported its address:" >&2
    cat "$log" >&2
    exit 1
fi
echo "servesmoke: daemon on $addr"

# One validated round trip carrying a known request ID: planload asserts
# the header echo and the /debug/requests entry itself.
REQID="servesmoke-$$"
"$PLANLOAD" -addr "$addr" -smoke -request-id "$REQID"

# The same ID must tag the daemon's access-log line (DESIGN.md §18).
grep -q "\"req\":\"$REQID\"" "$log" || {
    echo "servesmoke: request ID $REQID not in the daemon access log:" >&2
    cat "$log" >&2
    exit 1
}
echo "servesmoke: request ID $REQID correlated across header, log, /debug/requests"

# A small concurrent burst through the real HTTP stack.
"$PLANLOAD" -addr "$addr" -clients 8 -requests 32 -matrices 4 -sizes 256,512

# Clean shutdown: SIGTERM must drain and exit 0, logging the drain as
# structured lines.
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [ "$rc" -ne 0 ]; then
    echo "servesmoke: daemon exited $rc on SIGTERM:" >&2
    cat "$log" >&2
    exit 1
fi
grep -q "hottilesd.drain.done" "$log" || {
    echo "servesmoke: daemon did not report a drained shutdown:" >&2
    cat "$log" >&2
    exit 1
}
echo "servesmoke: OK"

// Package calib implements the data-driven determination of the visible
// latency per byte (vis_lat) of §VI-B: a small number of homogeneous
// profiling runs are executed (here: simulated) on a set of small test
// matrices, and a search sets each worker type's vis_lat to minimize the
// error between the model's predicted execution times and the measured
// ones. The tuning is a one-time, per-machine cost; the fitted values are
// reused across matrices.
package calib

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// Report describes one calibration outcome.
type Report struct {
	Worker string
	// VisLat is the fitted visible latency per byte (s/B).
	VisLat float64
	// RelError is the mean relative |predicted−measured|/measured across
	// the profiling matrices at the fitted value.
	RelError float64
	// Runs is the number of profiling runs executed.
	Runs int
}

// Calibrate fits vis_lat for both worker types of architecture a from
// homogeneous profiling runs on the given matrices, updating a in place and
// returning one report per worker type (cold first). Matrices too small to
// tile are rejected.
func Calibrate(a *arch.Arch, mats []*sparse.COO) ([]Report, error) {
	if len(mats) == 0 {
		return nil, fmt.Errorf("calib: no profiling matrices")
	}
	type profile struct {
		g      *tile.Grid
		actual float64
	}
	fit := func(w *model.Worker, hotSide bool) (Report, error) {
		var profiles []profile
		for _, m := range mats {
			g, err := tile.Partition(m, a.TileH, a.TileW)
			if err != nil {
				return Report{}, err
			}
			assign := partition.AllCold(g)
			if hotSide {
				assign = partition.AllHot(g)
			}
			r, err := sim.Run(g, assign, a, nil, sim.Options{SkipFunctional: true})
			if err != nil {
				return Report{}, err
			}
			if r.Time <= 0 {
				return Report{}, fmt.Errorf("calib: zero measured time")
			}
			profiles = append(profiles, profile{g, r.Time})
		}
		// Mean relative error of the homogeneous model prediction at a
		// candidate vis_lat.
		errAt := func(visLat float64) float64 {
			trial := *w
			trial.VisLatPerByte = visLat
			cfg := a.Config(2)
			if hotSide {
				cfg.Hot = &trial
			} else {
				cfg.Cold = &trial
			}
			sum := 0.0
			for _, p := range profiles {
				assign := partition.AllCold(p.g)
				if hotSide {
					assign = partition.AllHot(p.g)
				}
				pred, _, err := partition.Predict(p.g, &cfg, assign, false)
				if err != nil {
					return math.Inf(1)
				}
				sum += math.Abs(pred-p.actual) / p.actual
			}
			return sum / float64(len(profiles))
		}
		best := searchLog(errAt, 1e-13, 1e-8)
		w.VisLatPerByte = best
		return Report{
			Worker:   w.Name,
			VisLat:   best,
			RelError: errAt(best),
			Runs:     len(profiles),
		}, nil
	}

	var reports []Report
	if a.Cold.Count > 0 {
		r, err := fit(&a.Cold, false)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	if a.Hot.Count > 0 {
		r, err := fit(&a.Hot, true)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("calib: architecture has no workers")
	}
	return reports, nil
}

// searchLog minimizes f over [lo, hi] with a coarse logarithmic sweep
// followed by golden-section refinement on the best bracket.
func searchLog(f func(float64) float64, lo, hi float64) float64 {
	const coarse = 40
	bestX, bestY := lo, math.Inf(1)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i <= coarse; i++ {
		x := math.Exp(logLo + (logHi-logLo)*float64(i)/coarse)
		if y := f(x); y < bestY {
			bestX, bestY = x, y
		}
	}
	// Golden-section refine around the coarse winner (one log decade).
	a := bestX / 3
	b := bestX * 3
	const phi = 0.6180339887498949
	x1 := b - (b-a)*phi
	x2 := a + (b-a)*phi
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 48 && (b-a) > bestX*1e-4; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - (b-a)*phi
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + (b-a)*phi
			f2 = f(x2)
		}
	}
	mid := (a + b) / 2
	if f(mid) < bestY {
		return mid
	}
	return bestX
}

package calib

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

func profilingMatrices(seed int64) []*sparse.COO {
	// Large enough that Din does not fit in the cold workers' aggregate L1
	// (otherwise cache reuse, which the model ignores, dominates and no
	// single vis_lat fits well).
	rng := rand.New(rand.NewSource(seed))
	return []*sparse.COO{
		gen.Uniform(rng, 4096, 40000),
		gen.PowerLaw(rng, 4096, 10, 2.1),
		gen.BlockCommunity(rng, 4096, 64, 0.5, 5),
	}
}

func smallArch() arch.Arch {
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = 64, 64
	return a
}

// meanRelError measures |predicted − simulated| / simulated for the given
// homogeneous side across the matrices, with the architecture as-is.
func meanRelError(t *testing.T, a *arch.Arch, mats []*sparse.COO, hotSide bool) float64 {
	t.Helper()
	sum := 0.0
	for _, m := range mats {
		g, err := tile.Partition(m, a.TileH, a.TileW)
		if err != nil {
			t.Fatal(err)
		}
		assign := partition.AllCold(g)
		if hotSide {
			assign = partition.AllHot(g)
		}
		r, err := sim.Run(g, assign, a, nil, sim.Options{SkipFunctional: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := a.Config(2)
		pred, _, err := partition.Predict(g, &cfg, assign, false)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(pred-r.Time) / r.Time
	}
	return sum / float64(len(mats))
}

func TestCalibrateReducesModelError(t *testing.T) {
	a := smallArch()
	// Start from deliberately wrong vis_lat values.
	a.Cold.VisLatPerByte *= 15
	a.Hot.VisLatPerByte /= 15
	mats := profilingMatrices(1)
	beforeCold := meanRelError(t, &a, mats, false)
	beforeHot := meanRelError(t, &a, mats, true)

	reports, err := Calibrate(&a, mats)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Runs != 3 {
			t.Errorf("%s: %d runs, want 3", r.Worker, r.Runs)
		}
		if r.VisLat <= 0 {
			t.Errorf("%s: non-positive vis_lat", r.Worker)
		}
	}
	// Calibration must not be worse than the perturbed starting point. The
	// residual error is real: the model deliberately ignores caches (§IV-C),
	// so cache-heavy matrices keep ColdOnly error high — the paper's own
	// Figure 17 shows the same structure.
	if after := reports[0].RelError; after > beforeCold+1e-9 {
		t.Errorf("cold error grew: %.3f -> %.3f", beforeCold, after)
	}
	if after := reports[1].RelError; after > beforeHot+1e-9 {
		t.Errorf("hot error grew: %.3f -> %.3f", beforeHot, after)
	}
	// The hot side has no cache in the simulator, so its fit should be
	// tight.
	if reports[1].RelError > 0.25 {
		t.Errorf("hot rel error %.2f too high after calibration", reports[1].RelError)
	}
	// The fitted values are installed into the architecture.
	if a.Cold.VisLatPerByte != reports[0].VisLat || a.Hot.VisLatPerByte != reports[1].VisLat {
		t.Error("fitted vis_lat not written back")
	}
}

func TestCalibrateRecoversKnownOrderForHotSide(t *testing.T) {
	// The hot streamer has no simulated cache, so the fitted hot vis_lat
	// should land near its actual streaming rate (within an order of
	// magnitude).
	a := smallArch()
	simHotRate := a.Hot.MaxStreamBW / float64(a.Hot.Count)
	reports, err := Calibrate(&a, profilingMatrices(2))
	if err != nil {
		t.Fatal(err)
	}
	got := reports[1].VisLat
	ideal := 1 / simHotRate
	if got > ideal*10 || got < ideal/10 {
		t.Fatalf("hot vis_lat %.3g far from simulator rate %.3g", got, ideal)
	}
}

func TestCalibrateErrors(t *testing.T) {
	a := smallArch()
	if _, err := Calibrate(&a, nil); err == nil {
		t.Fatal("expected no-matrices error")
	}
	bad := sparse.NewCOO(4, 1)
	bad.Append(0, 0, 1)
	badArch := smallArch()
	badArch.TileH = 0
	if _, err := Calibrate(&badArch, []*sparse.COO{bad}); err == nil {
		t.Fatal("expected tiling error")
	}
}

func TestCalibrateSingleSidedArch(t *testing.T) {
	a := arch.SpadeSextansSkewed(4, 0)
	a.TileH, a.TileW = 64, 64
	reports, err := Calibrate(&a, profilingMatrices(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Worker != "SPADE PE" {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestSearchLogFindsMinimum(t *testing.T) {
	target := 3e-10
	f := func(x float64) float64 {
		d := math.Log(x) - math.Log(target)
		return d * d
	}
	got := searchLog(f, 1e-13, 1e-8)
	if got > target*1.2 || got < target/1.2 {
		t.Fatalf("searchLog = %.3g, want ≈ %.3g", got, target)
	}
}

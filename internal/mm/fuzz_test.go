package mm

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the MatrixMarket parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write/Read
// to an identical matrix.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.5\n3 2 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n4 4 1\n2 1 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n% comment\n\n1 2 9\n")
	// Malformed size lines the strict parser must reject (a pre-fix
	// fmt.Sscan accepted all of these with trailing garbage dropped).
	f.Add("%%MatrixMarket matrix coordinate real general\n4 4 5 junk\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n4 4 5 6\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1.5\n1 1 1\n")

	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N != m.N || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				m.N, m.NNZ(), back.N, back.NNZ())
		}
		for i := 0; i < m.NNZ(); i++ {
			r1, c1, v1 := m.At(i)
			r2, c2, v2 := back.At(i)
			if r1 != r2 || c1 != c2 || v1 != v2 {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}

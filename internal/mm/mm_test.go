package mm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 1 2.5
3 2 -1
2 3 4
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.NNZ() != 3 {
		t.Fatalf("N=%d nnz=%d", m.N, m.NNZ())
	}
	r, c, v := m.At(0)
	if r != 0 || c != 0 || v != 2.5 {
		t.Fatalf("first entry (%d,%d,%g)", r, c, v)
	}
	r, c, v = m.At(2)
	if r != 2 || c != 1 || v != -1 {
		t.Fatalf("last entry (%d,%d,%g)", r, c, v)
	}
}

func TestReadSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
3 3 7
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 { // (1,0), (0,1), (2,2)
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	r, c, v := m.At(0)
	if r != 0 || c != 1 || v != 5 {
		t.Fatalf("mirrored entry (%d,%d,%g)", r, c, v)
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	_, _, v := m.At(0) // (0,1) should carry -3
	if v != -3 {
		t.Fatalf("skew value %g, want -3", v)
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NNZ(); i++ {
		if _, _, v := m.At(i); v != 1 {
			t.Fatalf("pattern value %g", v)
		}
	}
}

func TestReadIntegerField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 7\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, v := m.At(0); v != 7 {
		t.Fatalf("value %g", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad banner":   "%%NotMatrixMarket x y z w\n1 1 0\n",
		"bad object":   "%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"dense format": "%%MatrixMarket matrix array real general\n1 1\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"non-square":   "%%MatrixMarket matrix coordinate real general\n2 3 0\n",
		"missing size": "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad size":     "%%MatrixMarket matrix coordinate real general\nx y z\n",
		// Strict size-line arity: fmt.Sscan used to accept all four of
		// these (trailing garbage, a fourth integer, a fractional nnz, a
		// short line), silently mis-reading corrupt uploads as 4×4/5 etc.
		"size trailing garbage": "%%MatrixMarket matrix coordinate real general\n4 4 1 junk\n1 1 1\n",
		"size extra integer":    "%%MatrixMarket matrix coordinate real general\n4 4 1 6\n1 1 1\n",
		"size fractional nnz":   "%%MatrixMarket matrix coordinate real general\n2 2 1.5\n1 1 1\n",
		"size short line":       "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1\n",
		"short entries":         "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"bad entry":             "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 nope 1\n",
		"bad row":               "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"bad value":             "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"out of range":          "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"zero dimension":        "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"few fields":            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := sparse.NewCOO(16, 40)
	seen := map[[2]int32]bool{}
	for len(seen) < 40 {
		r, c := int32(rng.Intn(16)), int32(rng.Intn(16))
		if seen[[2]int32{r, c}] {
			continue
		}
		seen[[2]int32{r, c}] = true
		m.Append(r, c, rng.NormFloat64())
	}
	m.SortRowMajor()

	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != m.N || back.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: N %d->%d nnz %d->%d", m.N, back.N, m.NNZ(), back.NNZ())
	}
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, v1 := m.At(i)
		r2, c2, v2 := back.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatalf("entry %d differs: (%d,%d,%g) vs (%d,%d,%g)", i, r1, c1, v1, r2, c2, v2)
		}
	}
}

// Property: round trip through the textual format is exact for any valid COO
// (we write %.17g which round-trips float64).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		m := sparse.NewCOO(n, 0)
		seen := map[[2]int32]bool{}
		for i := 0; i < rng.Intn(60); i++ {
			r, c := int32(rng.Intn(n)), int32(rng.Intn(n))
			if seen[[2]int32{r, c}] {
				continue
			}
			seen[[2]int32{r, c}] = true
			m.Append(r, c, rng.NormFloat64()*1e3)
		}
		m.SortRowMajor()
		var buf bytes.Buffer
		if Write(&buf, m) != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil || back.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.NNZ(); i++ {
			r1, c1, v1 := m.At(i)
			r2, c2, v2 := back.At(i)
			if r1 != r2 || c1 != c2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetryString(t *testing.T) {
	if General.String() != "general" || Symmetric.String() != "symmetric" ||
		SkewSymmetric.String() != "skew-symmetric" {
		t.Fatal("Symmetry.String broken")
	}
}

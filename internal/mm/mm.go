// Package mm reads and writes the MatrixMarket exchange format (Boisvert et
// al.), the on-disk format the HotTiles host software ingests (paper
// §VI-B). It supports the coordinate layout with real, integer, and pattern
// fields, and general/symmetric/skew-symmetric symmetry. Only square
// matrices are accepted, matching the paper's SpMM setting.
package mm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Symmetry describes the MatrixMarket symmetry qualifier.
type Symmetry int

const (
	General Symmetry = iota
	Symmetric
	SkewSymmetric
)

func (s Symmetry) String() string {
	switch s {
	case Symmetric:
		return "symmetric"
	case SkewSymmetric:
		return "skew-symmetric"
	default:
		return "general"
	}
}

// header is the parsed "%%MatrixMarket ..." banner.
type header struct {
	object, format, field string
	symmetry              Symmetry
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mm: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3]}
	if h.object != "matrix" {
		return header{}, fmt.Errorf("mm: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return header{}, fmt.Errorf("mm: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return header{}, fmt.Errorf("mm: unsupported field %q", h.field)
	}
	switch fields[4] {
	case "general":
		h.symmetry = General
	case "symmetric":
		h.symmetry = Symmetric
	case "skew-symmetric":
		h.symmetry = SkewSymmetric
	default:
		return header{}, fmt.Errorf("mm: unsupported symmetry %q", fields[4])
	}
	return h, nil
}

// Read parses a MatrixMarket coordinate stream into a row-major,
// deduplicated COO. Symmetric and skew-symmetric inputs are expanded to
// their full general form. Pattern matrices get value 1 for every entry.
func Read(r io.Reader) (*sparse.COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("mm: empty input: %w", firstErr(sc.Err(), io.ErrUnexpectedEOF))
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mm: missing size line: %w", firstErr(sc.Err(), io.ErrUnexpectedEOF))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		// Parse strictly: exactly three integer fields. fmt.Sscan would
		// silently accept trailing garbage ("4 4 5 junk" parses as 4×4/5),
		// so a corrupt upload would be mis-read instead of rejected.
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("mm: bad size line %q: want exactly \"rows cols nnz\"", line)
		}
		for i, dst := range []*int{&rows, &cols, &nnz} {
			v, err := strconv.Atoi(fields[i])
			if err != nil {
				return nil, fmt.Errorf("mm: bad size line %q: %w", line, err)
			}
			*dst = v
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("mm: non-square matrix %dx%d not supported", rows, cols)
	}
	if rows <= 0 || nnz < 0 {
		return nil, fmt.Errorf("mm: invalid size line: rows=%d nnz=%d", rows, nnz)
	}

	capHint := nnz
	if h.symmetry != General {
		capHint *= 2
	}
	m := sparse.NewCOO(rows, capHint)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("mm: expected %d entries, got %d: %w",
				nnz, read, firstErr(sc.Err(), io.ErrUnexpectedEOF))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		wantFields := 3
		if h.field == "pattern" {
			wantFields = 2
		}
		if len(fields) < wantFields {
			return nil, fmt.Errorf("mm: entry %d malformed: %q", read, line)
		}
		ri, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mm: entry %d row: %w", read, err)
		}
		ci, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mm: entry %d col: %w", read, err)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mm: entry %d value: %w", read, err)
			}
		}
		// MatrixMarket is 1-indexed.
		r0, c0 := int32(ri-1), int32(ci-1)
		if r0 < 0 || int(r0) >= rows || c0 < 0 || int(c0) >= rows {
			return nil, fmt.Errorf("mm: entry %d (%d,%d) out of range for N=%d", read, ri, ci, rows)
		}
		m.Append(r0, c0, v)
		if h.symmetry != General && r0 != c0 {
			mv := v
			if h.symmetry == SkewSymmetric {
				mv = -v
			}
			m.Append(c0, r0, mv)
		}
		read++
	}
	m.SortRowMajor()
	m.DedupSum()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mm: parsed matrix invalid: %w", err)
	}
	return m, nil
}

// Write emits m as a general real coordinate MatrixMarket stream.
func Write(w io.Writer, m *sparse.COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.N, m.N, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.NNZ(); i++ {
		r, c, v := m.At(i)
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, c+1, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

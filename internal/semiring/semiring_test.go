package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlusTimesBasics(t *testing.T) {
	s := PlusTimes()
	if s.Add(2, 3) != 5 || s.Mul(2, 3) != 6 || s.AddIdentity != 0 || s.OpsPerMAC != 2 {
		t.Fatal("plus-times misbehaves")
	}
}

func TestMinPlusBasics(t *testing.T) {
	s := MinPlus()
	if s.Add(2, 3) != 2 || s.Mul(2, 3) != 5 {
		t.Fatal("min-plus misbehaves")
	}
	if !math.IsInf(s.AddIdentity, 1) {
		t.Fatal("min-plus identity should be +Inf")
	}
	if s.Add(s.AddIdentity, 7) != 7 {
		t.Fatal("identity law broken")
	}
}

func TestMaxPlusBasics(t *testing.T) {
	s := MaxPlus()
	if s.Add(2, 3) != 3 || s.Mul(2, 3) != 5 {
		t.Fatal("max-plus misbehaves")
	}
	if s.Add(s.AddIdentity, -7) != -7 {
		t.Fatal("identity law broken")
	}
}

func TestBoolOrAnd(t *testing.T) {
	s := BoolOrAnd()
	cases := []struct{ a, b, or, and float64 }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if s.Add(c.a, c.b) != c.or {
			t.Errorf("or(%g,%g) = %g, want %g", c.a, c.b, s.Add(c.a, c.b), c.or)
		}
		if s.Mul(c.a, c.b) != c.and {
			t.Errorf("and(%g,%g) = %g, want %g", c.a, c.b, s.Mul(c.a, c.b), c.and)
		}
	}
}

func TestScaledPreservesValueAndScalesCost(t *testing.T) {
	base := PlusTimes()
	for _, f := range []int{1, 2, 4, 16} {
		s := Scaled(base, f)
		if got := s.Mul(3, 4); got != 12 {
			t.Fatalf("factor %d: Mul(3,4) = %g, want 12", f, got)
		}
		if s.OpsPerMAC != base.OpsPerMAC*float64(f) {
			t.Fatalf("factor %d: OpsPerMAC = %g", f, s.OpsPerMAC)
		}
	}
}

func TestScaledClampsFactor(t *testing.T) {
	s := Scaled(PlusTimes(), 0)
	if s.OpsPerMAC != 2 {
		t.Fatalf("OpsPerMAC = %g, want 2", s.OpsPerMAC)
	}
	if s.Mul(5, 6) != 30 {
		t.Fatal("value changed")
	}
}

// Property: Add is commutative and associative with the identity for all
// stock semirings on finite values.
func TestMonoidLawsProperty(t *testing.T) {
	rings := []Semiring{PlusTimes(), MinPlus(), MaxPlus(), BoolOrAnd()}
	for _, s := range rings {
		s := s
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			draw := func() float64 {
				if s.Name == "bool-or-and" {
					return float64(rng.Intn(2))
				}
				return float64(rng.Intn(100)) - 50
			}
			a, b, c := draw(), draw(), draw()
			if s.Add(a, b) != s.Add(b, a) {
				return false
			}
			if s.Add(s.Add(a, b), c) != s.Add(a, s.Add(b, c)) {
				return false
			}
			return s.Add(s.AddIdentity, a) == a
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

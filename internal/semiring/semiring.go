// Package semiring defines the algebraic semirings over which generalized
// SpMM (gSpMM) operates, following Davis's GraphBLAS formulation referenced
// by the paper (§II-A). A semiring supplies the additive monoid ⊕ (with its
// identity) and the multiplicative operation ⊗. The relative computational
// cost of the monoids, expressed as OpsPerMAC, drives the arithmetic
// intensity of the kernel: the paper's Figure 14 sweeps exactly this knob on
// the SPADE-Sextans+PCIe architecture.
package semiring

import "math"

// Semiring is a gSpMM algebra. Add must be associative and commutative with
// AddIdentity as its identity; Mul distributes over Add in a proper
// semiring, though the kernels here only require the SpMM access pattern.
type Semiring struct {
	// Name identifies the semiring in reports.
	Name string
	// Add is the additive monoid ⊕.
	Add func(a, b float64) float64
	// Mul is the multiplicative operation ⊗.
	Mul func(a, b float64) float64
	// AddIdentity is the identity of Add and the initial value of output
	// accumulators (0 for arithmetic, +Inf for min-plus, ...).
	AddIdentity float64
	// OpsPerMAC is the number of scalar arithmetic operations one ⊕/⊗ pair
	// costs relative to the plain multiply-accumulate's 2 ops. Plain SpMM has
	// OpsPerMAC = 2; a gSpMM variant with 4× the arithmetic intensity has
	// OpsPerMAC = 8. This feeds the model's FLOP accounting.
	OpsPerMAC float64
}

// PlusTimes is the standard arithmetic semiring (+, ×): plain SpMM.
func PlusTimes() Semiring {
	return Semiring{
		Name:        "plus-times",
		Add:         func(a, b float64) float64 { return a + b },
		Mul:         func(a, b float64) float64 { return a * b },
		AddIdentity: 0,
		OpsPerMAC:   2,
	}
}

// MinPlus is the tropical semiring (min, +), used for shortest-path style
// computations.
func MinPlus() Semiring {
	return Semiring{
		Name:        "min-plus",
		Add:         math.Min,
		Mul:         func(a, b float64) float64 { return a + b },
		AddIdentity: math.Inf(1),
		OpsPerMAC:   2,
	}
}

// MaxPlus is the (max, +) semiring.
func MaxPlus() Semiring {
	return Semiring{
		Name:        "max-plus",
		Add:         math.Max,
		Mul:         func(a, b float64) float64 { return a + b },
		AddIdentity: math.Inf(-1),
		OpsPerMAC:   2,
	}
}

// BoolOrAnd is the boolean (∨, ∧) semiring over {0,1}, used for reachability.
func BoolOrAnd() Semiring {
	return Semiring{
		Name: "bool-or-and",
		Add: func(a, b float64) float64 {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
		Mul: func(a, b float64) float64 {
			if a != 0 && b != 0 {
				return 1
			}
			return 0
		},
		AddIdentity: 0,
		OpsPerMAC:   2,
	}
}

// Scaled returns a copy of s whose OpsPerMAC is multiplied by factor ≥ 1 and
// whose Mul is iterated to actually perform the extra work. It models gSpMM
// monoids that are computationally heavier than the vanilla ones (paper
// §II-A, Fig 14). The numeric result equals the base semiring's; only the
// cost changes.
func Scaled(s Semiring, factor int) Semiring {
	if factor < 1 {
		factor = 1
	}
	baseMul := s.Mul
	out := s
	out.Name = s.Name + "-scaled"
	out.OpsPerMAC = s.OpsPerMAC * float64(factor)
	out.Mul = func(a, b float64) float64 {
		// Burn the extra arithmetic the heavier monoid would perform. Each
		// iteration recomputes the same value so results stay comparable.
		v := baseMul(a, b)
		for i := 1; i < factor; i++ {
			v = baseMul(a, b)
		}
		return v
	}
	return out
}

// Package viz renders the evaluation's visual artifacts as portable
// graymap (PGM) images with no dependencies: tile-assignment maps in the
// style of the paper's Figure 5 and bandwidth-over-time traces from the
// simulator. PGM is plain ASCII and viewable by any image tool.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/tile"
)

// pgm writes a grayscale image given a pixel accessor returning 0..255.
func pgm(w io.Writer, width, height int, at func(x, y int) int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", width, height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x > 0 {
				fmt.Fprint(bw, " ")
			}
			v := at(x, y)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			fmt.Fprint(bw, v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// TileMap renders the grid's tile assignment like Figure 5: hot tiles
// black (0), cold tiles gray, empty tiles white (255). maxDim bounds the
// image size; larger grids are downsampled (a pixel is black if any tile
// in its footprint is hot).
func TileMap(w io.Writer, g *tile.Grid, hot []bool, maxDim int) error {
	if len(hot) != len(g.Tiles) {
		return fmt.Errorf("viz: assignment length %d, want %d", len(hot), len(g.Tiles))
	}
	if maxDim <= 0 {
		maxDim = 512
	}
	step := 1
	for (g.NumTC+step-1)/step > maxDim || (g.NumTR+step-1)/step > maxDim {
		step++
	}
	width := (g.NumTC + step - 1) / step
	height := (g.NumTR + step - 1) / step

	const (
		empty = 255
		cold  = 176
		hotPx = 0
	)
	img := make([]int, width*height)
	for i := range img {
		img[i] = empty
	}
	for i := range g.Tiles {
		t := &g.Tiles[i]
		x, y := t.TC/step, t.TR/step
		px := &img[y*width+x]
		if hot[i] {
			*px = hotPx
		} else if *px != hotPx {
			*px = cold
		}
	}
	return pgm(w, width, height, func(x, y int) int { return img[y*width+x] })
}

// TraceStrip renders a bandwidth trace as a width×height strip: column x
// covers an equal slice of simulated time; darker means more of the system
// bandwidth was granted during that slice.
func TraceStrip(w io.Writer, points []sim.TracePoint, systemBW float64, width, height int) error {
	if len(points) == 0 {
		return fmt.Errorf("viz: empty trace")
	}
	if systemBW <= 0 {
		return fmt.Errorf("viz: non-positive system bandwidth")
	}
	if width <= 0 {
		width = 256
	}
	if height <= 0 {
		height = 32
	}
	end := points[len(points)-1].T + points[len(points)-1].Dt
	if end <= 0 {
		return fmt.Errorf("viz: zero-length trace")
	}
	// Average utilization per column: integrate grant over each slice.
	util := make([]float64, width)
	sliceDt := end / float64(width)
	for _, p := range points {
		if p.Dt <= 0 {
			continue
		}
		first := int(p.T / sliceDt)
		last := int((p.T + p.Dt) / sliceDt)
		for c := first; c <= last && c < width; c++ {
			lo := p.T
			if s := float64(c) * sliceDt; s > lo {
				lo = s
			}
			hi := p.T + p.Dt
			if e := float64(c+1) * sliceDt; e < hi {
				hi = e
			}
			if hi > lo {
				util[c] += p.BW * (hi - lo) / sliceDt
			}
		}
	}
	return pgm(w, width, height, func(x, y int) int {
		frac := util[x] / systemBW
		if frac > 1 {
			frac = 1
		}
		return int(255 * (1 - frac))
	})
}

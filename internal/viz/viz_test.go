package viz

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

func testGrid(t *testing.T) (*tile.Grid, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	m := sparse.NewCOO(256, 0)
	for i := 0; i < 2000; i++ {
		m.Append(int32(rng.Intn(64)), int32(rng.Intn(64)), 1) // hot corner
	}
	for i := 0; i < 800; i++ {
		m.Append(int32(rng.Intn(256)), int32(rng.Intn(256)), 1)
	}
	m.SortRowMajor()
	m.DedupSum()
	g, err := tile.Partition(m, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = 32, 32
	res, err := partition.HotTiles(g, a.Config(2))
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Hot
}

func parsePGMHeader(t *testing.T, s string) (w, h int) {
	t.Helper()
	var maxv int
	if _, err := fmt.Sscanf(s, "P2\n%d %d\n%d\n", &w, &h, &maxv); err != nil {
		t.Fatalf("bad PGM header: %v (%q...)", err, s[:min(40, len(s))])
	}
	if maxv != 255 {
		t.Fatalf("maxval %d", maxv)
	}
	return w, h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTileMap(t *testing.T) {
	g, hot := testGrid(t)
	var buf bytes.Buffer
	if err := TileMap(&buf, g, hot, 64); err != nil {
		t.Fatal(err)
	}
	w, h := parsePGMHeader(t, buf.String())
	if w != g.NumTC || h != g.NumTR {
		t.Fatalf("image %dx%d for a %dx%d grid", w, h, g.NumTC, g.NumTR)
	}
	// The image must contain hot (0), cold (176) and empty (255) pixels.
	body := buf.String()
	for _, tok := range []string{" 0", "176", "255"} {
		if !strings.Contains(body, tok) {
			t.Fatalf("missing pixel class %q", tok)
		}
	}
	// Bad assignment length is rejected.
	if err := TileMap(&buf, g, hot[:1], 64); err == nil {
		t.Fatal("expected length error")
	}
}

func TestTileMapDownsamples(t *testing.T) {
	g, hot := testGrid(t)
	var buf bytes.Buffer
	if err := TileMap(&buf, g, hot, 2); err != nil {
		t.Fatal(err)
	}
	w, h := parsePGMHeader(t, buf.String())
	if w > 2 || h > 2 {
		t.Fatalf("downsampled image %dx%d exceeds 2x2", w, h)
	}
}

func TestTraceStrip(t *testing.T) {
	g, hot := testGrid(t)
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = 32, 32
	r, err := sim.Run(g, hot, &a, nil, sim.Options{SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TraceStrip(&buf, r.Trace, a.BWBytes, 64, 8); err != nil {
		t.Fatal(err)
	}
	w, h := parsePGMHeader(t, buf.String())
	if w != 64 || h != 8 {
		t.Fatalf("strip %dx%d", w, h)
	}
	if err := TraceStrip(&buf, nil, a.BWBytes, 64, 8); err == nil {
		t.Fatal("expected empty-trace error")
	}
	if err := TraceStrip(&buf, r.Trace, 0, 64, 8); err == nil {
		t.Fatal("expected bandwidth error")
	}
}

func TestTraceStripDefaults(t *testing.T) {
	pts := []sim.TracePoint{{T: 0, Dt: 1, BW: 50e9}}
	var buf bytes.Buffer
	if err := TraceStrip(&buf, pts, 100e9, 0, 0); err != nil {
		t.Fatal(err)
	}
	w, h := parsePGMHeader(t, buf.String())
	if w != 256 || h != 32 {
		t.Fatalf("default strip %dx%d", w, h)
	}
	// 50% utilization → mid-gray pixels (≈127).
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	px := strings.Fields(lines[3])[0]
	if px != "127" && px != "128" {
		t.Fatalf("pixel %s, want ~127", px)
	}
}

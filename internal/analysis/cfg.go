package analysis

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one straight-line run of statements in a function body. Nodes
// holds the statements (and loop/branch condition expressions) in execution
// order; Succs the blocks control may transfer to afterwards.
type CFGBlock struct {
	Nodes []ast.Node
	Succs []*CFGBlock

	// index is the block's position in CFG.Blocks, used by the dataflow
	// solver's worklist.
	index int
}

// CFG is a lightweight intraprocedural control-flow graph over one function
// body, built from syntax alone (DESIGN.md §16). It exists so the dataflow
// passes (hotalloc's scratch-backed appends, ctxflow's derived-context
// tracking) can be flow-sensitive: a variable rebound mid-function carries
// its new provenance only on the paths below the rebinding.
//
// Approximations, all conservative for may-analyses: defer and go
// statements are ordinary nodes at their syntactic position; panics and
// runtime exits are invisible; goto ends its block without an edge (the
// target's other predecessors still feed it); function-literal bodies are
// not part of the enclosing graph — analyzers walk them separately.
type CFG struct {
	Entry  *CFGBlock
	Blocks []*CFGBlock
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmts(body.List)
	return b.cfg
}

// cfgBuilder carries the under-construction graph and the jump targets the
// statement walk needs.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block receiving the next statement; nil after a
	// terminator (return, break, …) until new control flow begins.
	cur *CFGBlock
	// breaks and continues are the enclosing jump targets, innermost last.
	// Entries carry the loop/switch label ("" when unlabeled).
	breaks    []cfgTarget
	continues []cfgTarget
	// pendingLabel names the label attached to the next loop/switch.
	pendingLabel string
}

type cfgTarget struct {
	label string
	block *CFGBlock
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// link adds the edge from → to (from may be nil after a terminator).
func (b *cfgBuilder) link(from, to *CFGBlock) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, opening an unreachable block for
// syntactically dead statements so the walk never dereferences nil.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // dead code: block with no predecessors
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// target resolves a break/continue to its block, matching the label when
// one is given.
func target(stack []cfgTarget, label string) *CFGBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.link(b.cur, target(b.breaks, labelName(s)))
		case token.CONTINUE:
			b.link(b.cur, target(b.continues, labelName(s)))
		case token.FALLTHROUGH:
			// Handled by the switch builder (clause bodies are linked to
			// the next clause when they end in fallthrough); nothing here.
			return
		case token.GOTO:
			// Approximation: no edge. The target block keeps its other
			// predecessors, so a may-analysis only under-approximates the
			// paths through the goto itself.
		}
		b.cur = nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		endThen := b.cur
		join := b.newBlock()
		b.link(endThen, join)
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, join)
		} else {
			b.link(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head = b.cur // cond expr stays in the head block
		after := b.newBlock()
		if s.Cond != nil {
			b.link(head, after)
		}
		body := b.newBlock()
		b.link(head, body)
		// Continue goes through the post statement when there is one.
		contTo := head
		var post *CFGBlock
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
			contTo = post
		}
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, contTo})
		b.cur = body
		b.stmts(s.Body.List)
		b.link(b.cur, contTo)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.newBlock()
		b.link(b.cur, head)
		// The RangeStmt node itself represents the per-iteration key/value
		// binding; transfer functions see it once per loop head.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.link(head, after)
		body := b.newBlock()
		b.link(head, body)
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, head})
		b.cur = body
		b.stmts(s.Body.List)
		b.link(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Body)
		// The per-clause binding of `switch v := x.(type)` is part of the
		// dispatch; record the Assign so transfers see the definition.
		// (Appended after switchLike has restored b.cur to the join; the
		// conservative placement keeps v visible below the switch.)
		if s.Assign != nil {
			b.add(s.Assign)
		}

	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		dispatch := b.cur
		if dispatch == nil {
			dispatch = b.newBlock()
			b.cur = dispatch
		}
		after := b.newBlock()
		b.breaks = append(b.breaks, cfgTarget{label, after})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			b.link(dispatch, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmts(comm.Body)
			b.link(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	default:
		// DeclStmt, AssignStmt, ExprStmt, SendStmt, IncDecStmt, DeferStmt,
		// GoStmt, EmptyStmt: straight-line nodes.
		b.add(s)
	}
}

// switchLike builds switch and type-switch graphs: dispatch block feeding
// every clause, clauses joining below, fallthrough linking to the next
// clause body.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
	}
	after := b.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label, after})
	clauses := make([]*CFGBlock, 0, len(body.List))
	hasDefault := false
	for range body.List {
		clauses = append(clauses, b.newBlock())
	}
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.link(dispatch, clauses[i])
		b.cur = clauses[i]
		b.stmts(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.link(b.cur, clauses[i+1])
			b.cur = nil
			continue
		}
		b.link(b.cur, after)
	}
	if !hasDefault {
		b.link(dispatch, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

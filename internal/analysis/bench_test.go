package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

// BenchmarkLintSuite self-hosts the full eleven-analyzer suite over the
// already-loaded module — the cost of one `make lint` minus package
// loading. Tracked in BENCH_8.json so the lint gate's latency is part of
// the perf trajectory: a quadratic blowup in the CFG builder or the
// metricname whole-suite pass shows up as a benchmark regression, not as
// a mysteriously slow CI.
func BenchmarkLintSuite(b *testing.B) {
	pkgs, err := analysis.Load("../..", []string{"./..."})
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	suite := passes.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := analysis.RunChecked(pkgs, suite, suite)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("suite found %d diagnostics on the clean repo", len(diags))
		}
	}
}

package unitchecker

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/passes"
)

// writeCfg marshals a Config for one scratch package unit into dir.
func writeCfg(t *testing.T, dir string, cfg Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// scratchUnit builds a cfg around one source file with no imports (so no
// export data is needed).
func scratchUnit(t *testing.T, src string) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "scratch.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return Config{
		ID:         "scratch",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "scratch",
		GoFiles:    []string{file},
		VetxOutput: filepath.Join(dir, "vet.out"),
	}, dir
}

// capture runs fn with os.Stdout and os.Stderr redirected to pipes and
// returns what was written to each.
func capture(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	defer func() { os.Stdout, os.Stderr = oldOut, oldErr }()
	fn()
	wo.Close()
	we.Close()
	var bufOut, bufErr bytes.Buffer
	if _, err := bufOut.ReadFrom(ro); err != nil {
		t.Fatal(err)
	}
	if _, err := bufErr.ReadFrom(re); err != nil {
		t.Fatal(err)
	}
	return bufOut.String(), bufErr.String()
}

const nakedSrc = `package scratch

func Leak(fn func()) {
	go fn()
}
`

// TestUnitDiagnostics runs a full unit through the driver: the nakedgo
// finding must reach stderr, the exit code must be vet's 2, and the .vetx
// placeholder must exist for the go command's cache.
func TestUnitDiagnostics(t *testing.T) {
	cfg, _ := scratchUnit(t, nakedSrc)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)

	var code int
	_, stderr := capture(t, func() { code = Main(cfgPath, passes.All(), false) })
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "raw go statement") {
		t.Errorf("stderr missing nakedgo diagnostic:\n%s", stderr)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("VetxOutput placeholder not written: %v", err)
	}
}

// TestUnitJSON checks the -json shape: {"pkg": {"analyzer": [findings]}}
// on stdout with exit 0 (vet's JSON mode never fails the build itself).
func TestUnitJSON(t *testing.T) {
	cfg, _ := scratchUnit(t, nakedSrc)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)

	var code int
	stdout, _ := capture(t, func() { code = Main(cfgPath, passes.All(), true) })
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	var out map[string]map[string][]struct{ Posn, Message string }
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not the vet JSON shape: %v\n%s", err, stdout)
	}
	if n := len(out["scratch"]["nakedgo"]); n != 1 {
		t.Errorf("got %d nakedgo findings in JSON, want 1: %v", n, out)
	}
}

// TestUnitSkips pins the three early-return paths: dependency-only units,
// test variants, and units whose sources are all *_test.go.
func TestUnitSkips(t *testing.T) {
	run := func(name string, mutate func(*Config)) {
		t.Helper()
		cfg, _ := scratchUnit(t, nakedSrc)
		mutate(&cfg)
		cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)
		var code int
		_, stderr := capture(t, func() { code = Main(cfgPath, passes.All(), false) })
		if code != 0 || stderr != "" {
			t.Errorf("%s: code=%d stderr=%q, want clean skip", name, code, stderr)
		}
	}
	run("vetxonly", func(c *Config) { c.VetxOnly = true })
	run("test variant", func(c *Config) { c.ImportPath = "scratch [scratch.test]" })
	run("test main", func(c *Config) { c.ImportPath = "scratch.test" })
	run("only test files", func(c *Config) {
		dst := filepath.Join(filepath.Dir(c.GoFiles[0]), "scratch_test.go")
		if err := os.Rename(c.GoFiles[0], dst); err != nil {
			t.Fatal(err)
		}
		c.GoFiles = []string{dst}
	})
}

// TestFlagsJSONShape ensures every analyzer appears exactly once as a
// boolean flag next to the driver's own json flag.
func TestFlagsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := FlagsJSON(&buf, passes.All()); err != nil {
		t.Fatal(err)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("FlagsJSON output invalid: %v\n%s", err, buf.String())
	}
	seen := map[string]int{}
	for _, f := range flags {
		seen[f.Name]++
	}
	for _, a := range passes.All() {
		if seen[a.Name] != 1 {
			t.Errorf("analyzer %q appears %d times in -flags", a.Name, seen[a.Name])
		}
	}
	if seen["json"] != 1 {
		t.Errorf("json flag appears %d times", seen["json"])
	}
}

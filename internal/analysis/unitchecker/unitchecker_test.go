package unitchecker

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

// writeCfg marshals a Config for one scratch package unit into dir.
func writeCfg(t *testing.T, dir string, cfg Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// scratchUnit builds a cfg around one source file with no imports (so no
// export data is needed).
func scratchUnit(t *testing.T, src string) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "scratch.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return Config{
		ID:         "scratch",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "scratch",
		GoFiles:    []string{file},
		VetxOutput: filepath.Join(dir, "vet.out"),
	}, dir
}

// capture runs fn with os.Stdout and os.Stderr redirected to pipes and
// returns what was written to each.
func capture(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	defer func() { os.Stdout, os.Stderr = oldOut, oldErr }()
	fn()
	wo.Close()
	we.Close()
	var bufOut, bufErr bytes.Buffer
	if _, err := bufOut.ReadFrom(ro); err != nil {
		t.Fatal(err)
	}
	if _, err := bufErr.ReadFrom(re); err != nil {
		t.Fatal(err)
	}
	return bufOut.String(), bufErr.String()
}

const nakedSrc = `package scratch

func Leak(fn func()) {
	go fn()
}
`

// TestUnitDiagnostics runs a full unit through the driver: the nakedgo
// finding must reach stderr, the exit code must be vet's 2, and the .vetx
// placeholder must exist for the go command's cache.
func TestUnitDiagnostics(t *testing.T) {
	cfg, _ := scratchUnit(t, nakedSrc)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)

	var code int
	_, stderr := capture(t, func() { code = Main(cfgPath, passes.All(), passes.All(), false) })
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "raw go statement") {
		t.Errorf("stderr missing nakedgo diagnostic:\n%s", stderr)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("VetxOutput placeholder not written: %v", err)
	}
}

// TestUnitJSON checks the -json shape: {"pkg": {"analyzer": [findings]}}
// on stdout with exit 0 (vet's JSON mode never fails the build itself).
func TestUnitJSON(t *testing.T) {
	cfg, _ := scratchUnit(t, nakedSrc)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)

	var code int
	stdout, _ := capture(t, func() { code = Main(cfgPath, passes.All(), passes.All(), true) })
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	var out map[string]map[string][]struct{ Posn, Message string }
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not the vet JSON shape: %v\n%s", err, stdout)
	}
	if n := len(out["scratch"]["nakedgo"]); n != 1 {
		t.Errorf("got %d nakedgo findings in JSON, want 1: %v", n, out)
	}
}

// TestUnitSkips pins the three early-return paths: dependency-only units,
// test variants, and units whose sources are all *_test.go.
func TestUnitSkips(t *testing.T) {
	run := func(name string, mutate func(*Config)) {
		t.Helper()
		cfg, _ := scratchUnit(t, nakedSrc)
		mutate(&cfg)
		cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)
		var code int
		_, stderr := capture(t, func() { code = Main(cfgPath, passes.All(), passes.All(), false) })
		if code != 0 || stderr != "" {
			t.Errorf("%s: code=%d stderr=%q, want clean skip", name, code, stderr)
		}
	}
	run("vetxonly", func(c *Config) { c.VetxOnly = true })
	run("test variant", func(c *Config) { c.ImportPath = "scratch [scratch.test]" })
	run("test main", func(c *Config) { c.ImportPath = "scratch.test" })
	run("only test files", func(c *Config) {
		dst := filepath.Join(filepath.Dir(c.GoFiles[0]), "scratch_test.go")
		if err := os.Rename(c.GoFiles[0], dst); err != nil {
			t.Fatal(err)
		}
		c.GoFiles = []string{dst}
	})
}

// TestFlagsJSONShape ensures every analyzer appears exactly once as a
// boolean flag next to the driver's own json flag.
func TestFlagsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := FlagsJSON(&buf, passes.All()); err != nil {
		t.Fatal(err)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("FlagsJSON output invalid: %v\n%s", err, buf.String())
	}
	seen := map[string]int{}
	for _, f := range flags {
		seen[f.Name]++
	}
	for _, a := range passes.All() {
		if seen[a.Name] != 1 {
			t.Errorf("analyzer %q appears %d times in -flags", a.Name, seen[a.Name])
		}
	}
	if seen["json"] != 1 {
		t.Errorf("json flag appears %d times", seen["json"])
	}
}

// stdExports lazily maps stdlib import paths to export-data files so
// scratch units may import fmt and friends, mirroring the PackageFile map
// cmd/go hands a real vet tool.
var stdExports = struct {
	once sync.Once
	m    map[string]string
	err  error
}{}

func stdExportFiles(t *testing.T) map[string]string {
	t.Helper()
	stdExports.once.Do(func() {
		out, err := exec.Command("go", "list", "-export", "-e",
			"-json=ImportPath,Export", "std").Output()
		if err != nil {
			stdExports.err = err
			return
		}
		m := map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				stdExports.err = err
				return
			}
			if p.Export != "" {
				m[p.ImportPath] = p.Export
			}
		}
		stdExports.m = m
	})
	if stdExports.err != nil {
		t.Fatalf("go list -export std: %v", stdExports.err)
	}
	return stdExports.m
}

// mixedSrc violates three repo-wide analyzers at known lines: nakedgo
// twice, errwrap once, shadow once.
const mixedSrc = `package scratch

import "fmt"

func LeakA(fn func()) {
	go fn()
}

func Wrap(err error) error {
	return fmt.Errorf("scratch: %v", err)
}

func LeakB(fn func()) {
	go fn()
}

func Shadowed() int {
	len := 3
	return len
}
`

// TestUnitMixedJSON runs a unit that trips several analyzers in -json mode
// and pins the grouped shape: one key per firing analyzer, findings within
// a key in ascending position order.
func TestUnitMixedJSON(t *testing.T) {
	cfg, _ := scratchUnit(t, mixedSrc)
	cfg.PackageFile = stdExportFiles(t)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)

	var code int
	stdout, _ := capture(t, func() { code = Main(cfgPath, passes.All(), passes.All(), true) })
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 in JSON mode", code)
	}
	var out map[string]map[string][]struct{ Posn, Message string }
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not the vet JSON shape: %v\n%s", err, stdout)
	}
	got := out["scratch"]
	if n := len(got["nakedgo"]); n != 2 {
		t.Errorf("nakedgo findings = %d, want 2: %v", n, got)
	}
	if n := len(got["errwrap"]); n != 1 {
		t.Errorf("errwrap findings = %d, want 1: %v", n, got)
	}
	if n := len(got["shadow"]); n != 1 {
		t.Errorf("shadow findings = %d, want 1: %v", n, got)
	}
	if len(got) != 3 {
		t.Errorf("got %d analyzer groups, want exactly the three firing ones: %v", len(got), got)
	}
	// Within one analyzer the findings keep driver order: position-sorted.
	ng := got["nakedgo"]
	if len(ng) == 2 && !(lineOf(t, ng[0].Posn) < lineOf(t, ng[1].Posn)) {
		t.Errorf("nakedgo findings out of position order: %v", ng)
	}
}

// lineOf extracts the line number from a file:line:col position string.
func lineOf(t *testing.T, posn string) int {
	t.Helper()
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed position %q", posn)
	}
	n, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed position %q: %v", posn, err)
	}
	return n
}

// TestUnitAnalyzerSubset drives Main with only part of the suite active,
// the way `go vet -vettool=… -nakedgo` does after flag selection: inactive
// analyzers must not report even though their violations are present.
func TestUnitAnalyzerSubset(t *testing.T) {
	var naked []*analysis.Analyzer
	for _, a := range passes.All() {
		if a.Name == "nakedgo" {
			naked = append(naked, a)
		}
	}
	if len(naked) != 1 {
		t.Fatalf("nakedgo not found in the suite")
	}

	cfg, _ := scratchUnit(t, mixedSrc)
	cfg.PackageFile = stdExportFiles(t)
	cfgPath := writeCfg(t, filepath.Dir(cfg.GoFiles[0]), cfg)
	var code int
	_, stderr := capture(t, func() { code = Main(cfgPath, naked, passes.All(), false) })
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "raw go statement") {
		t.Errorf("stderr missing the active analyzer's finding:\n%s", stderr)
	}
	if strings.Contains(stderr, "loses the chain") || strings.Contains(stderr, "shadows") {
		t.Errorf("inactive analyzers reported in subset mode:\n%s", stderr)
	}

	// The complement: everything but nakedgo. The naked go statements must
	// go unreported, the other findings must remain.
	var rest []*analysis.Analyzer
	for _, a := range passes.All() {
		if a.Name != "nakedgo" {
			rest = append(rest, a)
		}
	}
	cfg2, _ := scratchUnit(t, mixedSrc)
	cfg2.PackageFile = stdExportFiles(t)
	cfgPath2 := writeCfg(t, filepath.Dir(cfg2.GoFiles[0]), cfg2)
	_, stderr = capture(t, func() { code = Main(cfgPath2, rest, passes.All(), false) })
	if code != 2 {
		t.Fatalf("complement exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if strings.Contains(stderr, "raw go statement") {
		t.Errorf("disabled analyzer still reported:\n%s", stderr)
	}
	if !strings.Contains(stderr, "loses the chain") || !strings.Contains(stderr, "shadows") {
		t.Errorf("complement run missing expected findings:\n%s", stderr)
	}
}

// Package unitchecker implements the `go vet -vettool` driver protocol for
// the hottileslint suite, offline and stdlib-only (the x/tools
// implementation is not vendorable here). The go command invokes the tool
// three ways:
//
//	tool -V=full          → print a stable version fingerprint (cache key)
//	tool -flags           → print the JSON description of accepted flags
//	tool [flags] pkg.cfg  → analyze one package unit described by the JSON
//	                        config cmd/go wrote next to its build artifacts
//
// The config supplies the file list and an export-data map for every
// import, so type-checking here mirrors internal/analysis.Load but with
// cmd/go doing the dependency resolution. The suite carries no analysis
// facts; the .vetx output the protocol requires is written as an empty
// placeholder and dependency-only invocations (VetxOnly) return
// immediately.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Config is the JSON schema cmd/go writes for each package vet unit. Only
// the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs one unitchecker invocation for the cfg file at cfgPath with
// the given (already flag-selected) analyzers, writing diagnostics to
// stdout/stderr per the protocol. known is the full suite, used by the
// //lint:ignore suppression audit (directives naming analyzers outside the
// active subset are left unaudited). It returns the process exit code.
func Main(cfgPath string, analyzers, known []*analysis.Analyzer, asJSON bool) int {
	code, err := run(cfgPath, analyzers, known, asJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hottileslint: %v\n", err)
		return 1
	}
	return code
}

func run(cfgPath string, analyzers, known []*analysis.Analyzer, asJSON bool) (int, error) {
	data, readErr := os.ReadFile(cfgPath)
	if readErr != nil {
		return 0, readErr
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("bad config %s: %w", cfgPath, err)
	}
	// The go command caches analysis results keyed on the vetx file; it
	// must exist even though this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	// Like the standalone driver, the suite enforces invariants on shipped
	// code only: skip external test packages ("pkg_test [pkg.test]") and the
	// generated test main ("pkg.test"), and drop the *_test.go sources that
	// `go vet` folds into the base unit — the standalone loader's `go list`
	// sees GoFiles but not TestGoFiles, and both paths must agree.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, nil
	}
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	if v := cfg.GoVersion; v != "" && strings.HasPrefix(v, "go") {
		tconf.GoVersion = v
	}
	info := analysis.NewInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{
		Path: cfg.ImportPath, Name: tpkg.Name(), Dir: cfg.Dir,
		Files: files, Fset: fset, Types: tpkg, Info: info,
	}
	diags, err := analysis.RunChecked([]*analysis.Package{pkg}, analyzers, known)
	if err != nil {
		return 0, err
	}
	if asJSON {
		// vet -json shape: {"pkg": {"analyzer": [{posn, message}, …]}}.
		grouped := map[string][]map[string]string{}
		for _, d := range diags {
			grouped[d.Analyzer] = append(grouped[d.Analyzer], map[string]string{
				"posn": d.Posn.String(), "message": d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{cfg.ImportPath: grouped}); err != nil {
			return 0, err
		}
		return 0, nil
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", d.Posn, d.Message)
		}
		return 2, nil
	}
	return 0, nil
}

// Fingerprint prints the -V=full response: tool name plus a content hash
// of the executable, so the go command's vet cache invalidates whenever
// the binary changes (matching what x/tools unitchecker does for non-release
// builds).
func Fingerprint(w io.Writer, progname string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return nil
}

// FlagsJSON prints the -flags response: the JSON array describing every
// flag the tool accepts, which cmd/go uses to validate pass-through flags
// like -shadow.
func FlagsJSON(w io.Writer, analyzers []*analysis.Analyzer) error {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	flags = append(flags,
		jsonFlag{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		jsonFlag{Name: "V", Bool: false, Usage: "print version and exit"},
	)
	return json.NewEncoder(w).Encode(flags)
}

package analysis_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// fireAnalyzer reports on every function whose name starts with Bad;
// quietAnalyzer is a real suite member that never fires. Together they
// cover every branch of the suppression audit without dragging the real
// passes into the driver's own tests.
func fireAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "fire",
		Doc:  "reports every function named Bad*",
		Run: func(pass *analysis.Pass) error {
			pass.Inspect(func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Pos(), "Bad function %s", fd.Name.Name)
				}
				return true
			})
			return nil
		},
	}
}

func quietAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "quiet",
		Doc:  "never reports",
		Run:  func(*analysis.Pass) error { return nil },
	}
}

// lines renders diagnostics as "analyzer:line:message" for compact
// comparison against the audit fixture's pinned layout.
func lines(diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%s", d.Analyzer, d.Posn.Line, d.Message))
	}
	return out
}

func diffLines(t *testing.T, got, want []string) {
	t.Helper()
	for i := 0; i < len(got) || i < len(want); i++ {
		g, w := "<none>", "<none>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, g, w)
		}
	}
}

// TestAuditFullSuite runs the audit fixture with the whole (two-analyzer)
// suite active: stale and unknown directives become lintignore findings,
// used directives stay silent, and the directive naming the auditor itself
// cannot suppress its own finding.
func TestAuditFullSuite(t *testing.T) {
	pkg := analysistest.LoadPackage(t, "testdata", "audit")
	suite := []*analysis.Analyzer{fireAnalyzer(), quietAnalyzer()}
	diags, err := analysis.RunChecked([]*analysis.Package{pkg}, suite, suite)
	if err != nil {
		t.Fatal(err)
	}
	diffLines(t, lines(diags), []string{
		"fire:9:Bad function BadLoud",
		"lintignore:11:stale //lint:ignore: fire does not fire here",
		`lintignore:14://lint:ignore names unknown analyzer "bogus"`,
		"lintignore:17:stale //lint:ignore: quiet does not fire here",
		"lintignore:20:stale //lint:ignore all: no analyzer fires here",
		`lintignore:26://lint:ignore names unknown analyzer "lintignore"`,
		"fire:30:Bad function BadNoReason",
	})
}

// TestAuditSubsetRun pins the partial-run semantics: with only fire active,
// directives naming quiet (known but inactive) and "all" are left
// unaudited, while fire staleness and unknown names are still errors.
func TestAuditSubsetRun(t *testing.T) {
	pkg := analysistest.LoadPackage(t, "testdata", "audit")
	fire, quiet := fireAnalyzer(), quietAnalyzer()
	known := []*analysis.Analyzer{fire, quiet}
	diags, err := analysis.RunChecked([]*analysis.Package{pkg}, []*analysis.Analyzer{fire}, known)
	if err != nil {
		t.Fatal(err)
	}
	diffLines(t, lines(diags), []string{
		"fire:9:Bad function BadLoud",
		"lintignore:11:stale //lint:ignore: fire does not fire here",
		`lintignore:14://lint:ignore names unknown analyzer "bogus"`,
		`lintignore:26://lint:ignore names unknown analyzer "lintignore"`,
		"fire:30:Bad function BadNoReason",
	})
}

// TestAuditDisabled pins Run's contract: no known suite, no audit — only
// unsuppressed analyzer findings come back, so analysistest fixtures can
// carry directives for analyzers outside the one under test.
func TestAuditDisabled(t *testing.T) {
	pkg := analysistest.LoadPackage(t, "testdata", "audit")
	suite := []*analysis.Analyzer{fireAnalyzer(), quietAnalyzer()}
	diags, err := analysis.Run([]*analysis.Package{pkg}, suite)
	if err != nil {
		t.Fatal(err)
	}
	diffLines(t, lines(diags), []string{
		"fire:9:Bad function BadLoud",
		"fire:30:Bad function BadNoReason",
	})
}

package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks one source file and returns the named function and
// the populated type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

func TestCFGShapes(t *testing.T) {
	const src = `package x
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		total += i
	}
	switch total {
	case 0:
		total = 1
	case 1:
		total = 2
		fallthrough
	case 2:
		total = 3
	}
	return total
}`
	fd, _ := parseFunc(t, src, "f")
	g := NewCFG(fd.Body)
	if g.Entry == nil || len(g.Blocks) == 0 {
		t.Fatal("empty CFG")
	}
	// Every node appears exactly once across blocks.
	seen := map[ast.Node]bool{}
	nodes := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if seen[n] {
				t.Errorf("node %T appears in two blocks", n)
			}
			seen[n] = true
			nodes++
		}
	}
	if nodes < 10 {
		t.Errorf("only %d nodes placed, want the full body", nodes)
	}
	// The return statement must be reachable from the entry.
	reach := map[*CFGBlock]bool{}
	var walk func(*CFGBlock)
	walk = func(b *CFGBlock) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	foundReturn := false
	for b := range reach {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				foundReturn = true
			}
		}
	}
	if !foundReturn {
		t.Error("return statement unreachable from entry")
	}
}

// TestSolveForwardRebinding checks flow sensitivity: a variable seeded into
// the tracked set by one statement leaves the set when rebound, and the
// may-union at a join keeps it when only one branch rebinds.
func TestSolveForwardRebinding(t *testing.T) {
	const src = `package x
func g(cond bool, xs []int) {
	s := xs[:0]
	s = append(s, 1) // tracked here
	if cond {
		s = xs
	}
	s = append(s, 2) // still tracked: may-analysis keeps the [:0] path
	s = nil
	s = append(s, 3) // no longer tracked on any path
	_ = s
}`
	fd, info := parseFunc(t, src, "g")
	g := NewCFG(fd.Body)

	// Transfer: s enters the set when assigned a slice expression or an
	// append of a tracked base; leaves it otherwise.
	transfer := func(n ast.Node, set ObjSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		switch rhs := Unparen(as.Rhs[0]).(type) {
		case *ast.SliceExpr:
			set[obj] = true
		case *ast.CallExpr:
			if base, ok := Unparen(rhs.Args[0]).(*ast.Ident); ok && set.Has(info.ObjectOf(base)) {
				set[obj] = true
				return
			}
			delete(set, obj)
		default:
			delete(set, obj)
		}
	}

	// Collect, per append call, whether its base was tracked on entry.
	tracked := map[string]bool{}
	visit := func(n ast.Node, in ObjSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if fn, ok := Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
			return
		}
		base := Unparen(call.Args[0]).(*ast.Ident)
		lit := call.Args[1].(*ast.BasicLit)
		tracked[lit.Value] = in.Has(info.ObjectOf(base))
	}
	SolveForward(g, ObjSet{}, transfer, visit)

	want := map[string]bool{"1": true, "2": true, "3": false}
	for k, w := range want {
		if tracked[k] != w {
			t.Errorf("append #%s: tracked=%v, want %v", k, tracked[k], w)
		}
	}
}

// TestSolveForwardLoop checks that facts generated inside a loop body flow
// around the back edge to earlier statements of the same body.
func TestSolveForwardLoop(t *testing.T) {
	const src = `package x
func h(n int, xs []int) {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i) // tracked from iteration 2 on: may-analysis says yes
		s = xs[:0]
	}
	_ = s
}`
	fd, info := parseFunc(t, src, "h")
	g := NewCFG(fd.Body)

	var sawTracked bool
	transfer := func(n ast.Node, set ObjSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, ok := Unparen(as.Rhs[0]).(*ast.SliceExpr); ok {
			set[obj] = true
		}
	}
	visit := func(n ast.Node, in ObjSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		if call, ok := Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn, ok := Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" {
				if in.Has(info.ObjectOf(as.Lhs[0].(*ast.Ident))) {
					sawTracked = true
				}
			}
		}
	}
	SolveForward(g, ObjSet{}, transfer, visit)
	if !sawTracked {
		t.Error("fact did not flow around the loop back edge")
	}
}

func TestCFGDeadCode(t *testing.T) {
	const src = `package x
func d() int {
	return 1
	println("dead") // syntactically dead, must still land in a block
	return 2
}`
	// parser keeps unreachable statements; ensure the builder does too.
	fd, _ := parseFunc(t, src, "d")
	g := NewCFG(fd.Body)
	var all []string
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if c, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok {
						all = append(all, id.Name)
					}
				}
			}
		}
	}
	if !strings.Contains(strings.Join(all, ","), "println") {
		t.Error("dead statement missing from CFG")
	}
}

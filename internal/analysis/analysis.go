// Package analysis is the repository's static-analysis framework: a
// stdlib-only re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader and a driver
// with //lint:ignore suppression. It exists because the module is built
// offline — x/tools is not vendored — and because the invariants PR 1 and
// PR 2 introduced (serial-identical parallel fan-out, pool-only goroutines,
// always-closed spans; DESIGN.md §9–§11) are exactly the kind of property a
// reviewer misses and a syntax+types pass catches mechanically.
//
// The subset implemented here is deliberately small: no facts, no
// cross-package dependencies between analyzers, no suggested fixes. Each
// analyzer sees one type-checked package at a time and reports positioned
// diagnostics; cmd/hottileslint drives the suite over the module and in
// `go vet -vettool` mode (internal/analysis/unitchecker).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools there are no
// Requires/ResultOf edges: every analyzer is self-contained over a single
// package's syntax and types.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by -help; its first line
	// states the invariant the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The error return is for operational failures (it aborts
	// the run), not for findings.
	Run func(pass *Pass) error
	// Begin, if set, is called once at the start of each driver Run, before
	// any package is analyzed. It exists for whole-suite state (metricname's
	// cross-package collision map); such state is only complete when the
	// driver sees the whole module in one invocation — unitchecker runs one
	// package per process, so cross-package checks degrade to per-package
	// there.
	Begin func()
}

// Pass is the interface between the driver and one (analyzer, package)
// application.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver fills in positions and
	// suppression; analyzers just call Report/Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Filled in by the driver before diagnostics reach the user.
	Analyzer string         `json:"analyzer"`
	Posn     token.Position `json:"-"`
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PathHasSuffix reports whether the package import path equals suffix or
// ends in "/"+suffix. Analyzers scope themselves by path suffix (e.g.
// "internal/par") so the analysistest stub packages — which mirror the real
// layout under testdata/src — fall under the same rules as the real tree.
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// PathHasAnySuffix reports whether the path matches any of the suffixes.
func PathHasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// IsNamed reports whether t (after unwrapping one pointer level) is the
// named type pkgSuffix.name, matching the defining package by path suffix.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// RootIdent unwraps selectors, indexes, derefs and parens to the base
// identifier of an lvalue-ish expression: st.Rows[i].X → st. Returns nil
// when the base is not a plain identifier (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// CalleeFunc returns the called *types.Func for a call expression (method
// or package-level function), or nil.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (pkgPath matched exactly: "fmt", "sort", …).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	f := p.CalleeFunc(call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath
}

// Package audit is the driver suppression-audit fixture: one function per
// directive shape the auditor distinguishes. The driver test pins the
// expected diagnostics by line, so keep the layout stable.
package audit

//lint:ignore fire suppressed: fire reports on the next line
func BadSuppressed() {}

func BadLoud() {} // unsuppressed: fire's diagnostic must survive

//lint:ignore fire stale: nothing fires on a good function
func Good() {}

//lint:ignore bogus misspelled analyzer name
func Good2() {}

//lint:ignore quiet stale: quiet is a real analyzer but never fires
func Good3() {}

//lint:ignore all stale: nothing fires here either
func Good4() {}

//lint:ignore all used: fire does fire here
func BadAllSuppressed() {}

//lint:ignore lintignore the auditor itself must not be silenceable
func Good5() {}

//lint:ignore fire
func BadNoReason() {} // reason missing: the directive is inert, fire survives

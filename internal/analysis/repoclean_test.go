package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

// TestRepoClean is the self-hosting smoke test: the full analyzer suite
// over the whole module must report nothing. A regression here means a
// change broke one of the repo invariants (or an analyzer grew a false
// positive — either way, it blocks).
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
	// RunChecked with the full suite as known: shipped //lint:ignore
	// directives are audited too — a stale one fails this test.
	diags, err := analysis.RunChecked(pkgs, passes.All(), passes.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Posn, d.Analyzer, d.Message)
	}
}

// TestSuiteShape pins the analyzer roster: names are unique, flag-safe and
// documented, so the multichecker's per-analyzer flags cannot collide.
func TestSuiteShape(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range passes.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ContainsAny(a.Name, " -=") {
			t.Errorf("analyzer name %q is not flag-safe", a.Name)
		}
	}
	if len(seen) != 11 {
		t.Errorf("suite has %d analyzers, want the eleven-analyzer roster", len(seen))
	}
}

package analysis

import (
	"cmp"
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"slices"
	"strings"
)

// Run applies every analyzer to every package and returns the surviving
// diagnostics, sorted by position then analyzer. Diagnostics on a line
// covered by a matching //lint:ignore directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				d.Posn = pkg.Fset.Position(d.Pos)
				if !ignores.covers(d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
			}
		}
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := strings.Compare(a.Posn.Filename, b.Posn.Filename); c != 0 {
			return c
		}
		if a.Posn.Line != b.Posn.Line {
			return cmp.Compare(a.Posn.Line, b.Posn.Line)
		}
		if a.Posn.Column != b.Posn.Column {
			return cmp.Compare(a.Posn.Column, b.Posn.Column)
		}
		return strings.Compare(a.Analyzer, b.Analyzer)
	})
	return diags, nil
}

// ignoreSet records //lint:ignore directives: per file, the lines each
// directive covers and the analyzer names it names.
type ignoreSet map[string]map[int][]string

// covers reports whether d's line is suppressed for d.Analyzer.
func (s ignoreSet) covers(d Diagnostic) bool {
	for _, name := range s[d.Posn.Filename][d.Posn.Line] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// collectIgnores scans each file's comments for suppression directives of
// the form
//
//	//lint:ignore name1,name2 reason
//
// A directive covers its own line (trailing-comment style) and the line
// after it (preceding-comment style). The reason is mandatory — a
// directive without one does not suppress anything, so a bare ignore can
// never silence a finding without leaving a written justification behind.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				m := set[posn.Filename]
				if m == nil {
					m = map[int][]string{}
					set[posn.Filename] = m
				}
				m[posn.Line] = append(m[posn.Line], names...)
				m[posn.Line+1] = append(m[posn.Line+1], names...)
			}
		}
	}
	return set
}

// parseIgnore extracts the analyzer names from one //lint:ignore comment.
// It requires a non-empty reason after the name list.
func parseIgnore(text string) ([]string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // names + at least one reason word
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// WriteText prints diagnostics in the conventional file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
	}
}

// jsonDiag is the -json serialization of one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// WriteJSON prints diagnostics as an indented JSON array (always an array,
// "[]" when clean, so scripts can parse unconditionally).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{Analyzer: d.Analyzer, Posn: d.Posn.String(), Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Inspect walks every file in the pass with ast.Inspect.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

package analysis

import (
	"cmp"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"slices"
	"strings"
)

// AuditName is the reserved analyzer name under which the driver reports
// suppression-audit findings (stale or unknown //lint:ignore directives).
// It is not itself suppressible: a directive that silences the auditor
// would defeat the audit.
const AuditName = "lintignore"

// Run applies every analyzer to every package and returns the surviving
// diagnostics, sorted by position then analyzer. Diagnostics on a line
// covered by a matching //lint:ignore directive are dropped. Run performs
// no suppression audit — analysistest fixtures legitimately carry
// directives for analyzers outside the one under test; whole-suite drivers
// use RunChecked.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunChecked(pkgs, analyzers, nil)
}

// RunChecked is Run plus the suppression audit: when known is non-nil,
// every //lint:ignore directive in the analyzed packages must name an
// analyzer in known, and — when that analyzer is in the active set — must
// actually suppress a diagnostic. Violations surface as AuditName
// diagnostics, so a stale or misspelled suppression fails the lint run
// exactly like a finding would. Names not in the active subset are left
// unaudited (a `go vet -shadow`-style partial run cannot tell whether the
// directive still fires).
func RunChecked(pkgs []*Package, analyzers, known []*Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if a.Begin != nil {
			a.Begin()
		}
	}
	var diags []Diagnostic
	var directives []*directive
	for _, pkg := range pkgs {
		ignores, dirs := collectIgnores(pkg)
		directives = append(directives, dirs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				d.Posn = pkg.Fset.Position(d.Pos)
				if !ignores.covers(d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	if known != nil {
		diags = append(diags, auditDirectives(directives, analyzers, known)...)
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := strings.Compare(a.Posn.Filename, b.Posn.Filename); c != 0 {
			return c
		}
		if a.Posn.Line != b.Posn.Line {
			return cmp.Compare(a.Posn.Line, b.Posn.Line)
		}
		if a.Posn.Column != b.Posn.Column {
			return cmp.Compare(a.Posn.Column, b.Posn.Column)
		}
		return strings.Compare(a.Analyzer, b.Analyzer)
	})
	return diags, nil
}

// auditDirectives checks every collected directive name against the known
// suite and its usage during this run.
func auditDirectives(directives []*directive, active, known []*Analyzer) []Diagnostic {
	knownNames := make(map[string]bool, len(known))
	for _, a := range known {
		knownNames[a.Name] = true
	}
	activeNames := make(map[string]bool, len(active))
	for _, a := range active {
		activeNames[a.Name] = true
	}
	fullRun := len(activeNames) == len(knownNames)
	var out []Diagnostic
	for _, d := range directives {
		for _, name := range d.names {
			switch {
			case name == "all":
				// Verifiable only when the whole suite ran.
				if fullRun && !d.used[name] {
					out = append(out, Diagnostic{
						Posn:     d.posn,
						Analyzer: AuditName,
						Message:  "stale //lint:ignore all: no analyzer fires here",
					})
				}
			case !knownNames[name]:
				out = append(out, Diagnostic{
					Posn:     d.posn,
					Analyzer: AuditName,
					Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
				})
			case activeNames[name] && !d.used[name]:
				out = append(out, Diagnostic{
					Posn:     d.posn,
					Analyzer: AuditName,
					Message:  fmt.Sprintf("stale //lint:ignore: %s does not fire here", name),
				})
			}
		}
	}
	return out
}

// directive is one parsed //lint:ignore comment, with per-name usage
// recorded as diagnostics are suppressed.
type directive struct {
	names []string
	posn  token.Position
	used  map[string]bool
}

// ignoreEntry points one covered line at one name of one directive.
type ignoreEntry struct {
	name string
	d    *directive
}

// ignoreSet records //lint:ignore directives: per file, the entries
// covering each line.
type ignoreSet map[string]map[int][]ignoreEntry

// covers reports whether d's line is suppressed for d.Analyzer, marking
// matching directives as used. Audit findings are never suppressible.
func (s ignoreSet) covers(d Diagnostic) bool {
	if d.Analyzer == AuditName {
		return false
	}
	hit := false
	for _, e := range s[d.Posn.Filename][d.Posn.Line] {
		if e.name == d.Analyzer || e.name == "all" {
			e.d.used[e.name] = true
			hit = true
		}
	}
	return hit
}

// collectIgnores scans each file's comments for suppression directives of
// the form
//
//	//lint:ignore name1,name2 reason
//
// A directive covers its own line (trailing-comment style) and the line
// after it (preceding-comment style). The reason is mandatory — a
// directive without one does not suppress anything, so a bare ignore can
// never silence a finding without leaving a written justification behind.
func collectIgnores(pkg *Package) (ignoreSet, []*directive) {
	set := ignoreSet{}
	var all []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				d := &directive{
					names: names,
					posn:  pkg.Fset.Position(c.Pos()),
					used:  map[string]bool{},
				}
				all = append(all, d)
				m := set[d.posn.Filename]
				if m == nil {
					m = map[int][]ignoreEntry{}
					set[d.posn.Filename] = m
				}
				for _, name := range names {
					m[d.posn.Line] = append(m[d.posn.Line], ignoreEntry{name, d})
					m[d.posn.Line+1] = append(m[d.posn.Line+1], ignoreEntry{name, d})
				}
			}
		}
	}
	return set, all
}

// parseIgnore extracts the analyzer names from one //lint:ignore comment.
// It requires a non-empty reason after the name list.
func parseIgnore(text string) ([]string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // names + at least one reason word
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// WriteText prints diagnostics in the conventional file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
	}
}

// jsonDiag is the -json serialization of one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// WriteJSON prints diagnostics as an indented JSON array (always an array,
// "[]" when clean, so scripts can parse unconditionally).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{Analyzer: d.Analyzer, Posn: d.Posn.String(), Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Inspect walks every file in the pass with ast.Inspect.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

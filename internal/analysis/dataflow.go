package analysis

import (
	"go/ast"
	"go/types"
)

// ObjSet is a set of typed objects — the lattice element of the forward
// may-analyses built on the CFG (hotalloc's scratch-backed slices,
// ctxflow's derived contexts).
type ObjSet map[types.Object]bool

// Has reports membership (nil-safe).
func (s ObjSet) Has(o types.Object) bool { return s != nil && s[o] }

// clone copies the set.
func (s ObjSet) Clone() ObjSet {
	out := make(ObjSet, len(s))
	for o := range s {
		out[o] = true
	}
	return out
}

// equal reports set equality.
func (s ObjSet) equal(t ObjSet) bool {
	if len(s) != len(t) {
		return false
	}
	for o := range s {
		if !t[o] {
			return false
		}
	}
	return true
}

// union adds t's members to s, reporting whether s changed.
func (s ObjSet) Union(t ObjSet) bool {
	changed := false
	for o := range t {
		if !s[o] {
			s[o] = true
			changed = true
		}
	}
	return changed
}

// Transfer updates the in-flight set for one CFG node, in block order. It
// must be monotone in the set (adding members to the input may only add
// members to the output) for the fixpoint to exist.
type Transfer func(n ast.Node, set ObjSet)

// SolveForward runs a forward may-dataflow analysis over the CFG to a
// fixpoint: block inputs are the union of predecessor outputs (seed at
// entry), transfer is applied to each node in turn. After convergence,
// visit is called once per node with the set in effect at that node — the
// analyzer's chance to report against stable facts.
func SolveForward(g *CFG, seed ObjSet, transfer Transfer, visit func(n ast.Node, in ObjSet)) {
	n := len(g.Blocks)
	in := make([]ObjSet, n)
	out := make([]ObjSet, n)
	for i := range in {
		in[i] = ObjSet{}
		out[i] = ObjSet{}
	}
	in[g.Entry.index].Union(seed)

	// preds, derived once: the builder only records successors.
	preds := make([][]*CFGBlock, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.index] = append(preds[s.index], b)
		}
	}

	work := make([]*CFGBlock, 0, n)
	queued := make([]bool, n)
	push := func(b *CFGBlock) {
		if !queued[b.index] {
			queued[b.index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b) // include pred-less blocks so dead code is still visited
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.index] = false

		cur := in[b.index]
		for _, p := range preds[b.index] {
			cur.Union(out[p.index])
		}
		cur = cur.Clone()
		for _, node := range b.Nodes {
			transfer(node, cur)
		}
		if !cur.equal(out[b.index]) {
			out[b.index] = cur
			for _, s := range b.Succs {
				push(s)
			}
		}
	}

	if visit == nil {
		return
	}
	for _, b := range g.Blocks {
		cur := in[b.index].Clone()
		for _, node := range b.Nodes {
			visit(node, cur)
			transfer(node, cur)
		}
	}
}

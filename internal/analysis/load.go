package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft type-check failures. Analysis still runs on the
	// partial information (types.Config.Error collects instead of aborting),
	// but drivers surface these so a broken package is never silently
	// reported clean.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns (e.g. "./...") in module directory dir with
// `go list -export -deps`, parses every non-dependency package from source,
// and type-checks it against the compiler's export data for all imports.
// Export data comes from the build cache, so Load works offline and needs
// no GOPATH layout; test files are not loaded (the invariants the suite
// enforces concern the shipped pipeline, and _test.go files legitimately
// use raw goroutines and exact comparisons).
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: bad json: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}
	slices.SortFunc(targets, func(a, b listPkg) int { return strings.Compare(a.ImportPath, b.ImportPath) })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkFromSource(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkFromSource parses and type-checks one listed package.
func checkFromSource(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, g := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", g, err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: t.ImportPath, Name: t.Name, Dir: t.Dir, Files: files, Fset: fset}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = NewInfo()
	tpkg, err := conf.Check(t.ImportPath, fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// NewInfo allocates the full set of type-checker maps every analyzer may
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

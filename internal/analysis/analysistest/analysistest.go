// Package analysistest runs one analyzer over packages laid out GOPATH-
// style under a testdata/src directory and checks its diagnostics against
// `// want "regexp"` comments on the offending lines — the same contract
// as golang.org/x/tools/go/analysis/analysistest, reimplemented offline on
// the stdlib.
//
// Testdata packages may import each other by path (testdata/src/<path>),
// which is how stub packages mirroring the real tree (repro/internal/obs,
// repro/internal/par) give the path-scoped analyzers something to match.
// Standard-library imports are resolved from compiler export data via
// `go list -export`.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads each listed package from dir/src, applies the analyzer, and
// reports any mismatch between diagnostics and want comments as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		srcdir: filepath.Join(dir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   map[string]*analysis.Package{},
	}
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, pkg, diags)
	}
}

// LoadPackage loads one GOPATH-style package from dir/src/path and returns
// it, for driver-level tests that call analysis.Run or analysis.RunChecked
// directly instead of going through Run's want matching.
func LoadPackage(t *testing.T, dir, path string) *analysis.Package {
	t.Helper()
	l := &loader{
		srcdir: filepath.Join(dir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   map[string]*analysis.Package{},
	}
	pkg, err := l.load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return pkg
}

// want is one expectation: a regexp that must match a diagnostic message
// reported on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if w == nil || w.file != filepath.Base(d.Posn.Filename) || w.line != d.Posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				wants[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Posn, d.Message)
		}
	}
	for _, w := range wants {
		if w != nil {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// wantRE extracts the comment payload of a want comment; the payload must
// start with a quoted regexp so prose mentioning "want" is not mistaken
// for an expectation.
var wantRE = regexp.MustCompile("//\\s*want\\s+([\"`].*)$")

// collectWants parses `// want "re1" "re2"` comments from every file.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, posn, m[1]) {
					expr, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", posn, raw, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", posn, raw, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(posn.Filename),
						line: posn.Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits a want payload into its quoted (double or back quote)
// string literals.
func splitQuoted(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		var end int
		switch s[0] {
		case '"':
			end = strings.Index(s[1:], `"`)
		case '`':
			end = strings.Index(s[1:], "`")
		default:
			t.Fatalf("%s: malformed want payload at %q", posn, s)
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want string %q", posn, s)
		}
		out = append(out, s[:end+2])
		s = s[end+2:]
	}
}

// loader type-checks testdata packages from source, resolving imports to
// sibling testdata packages first and to stdlib export data otherwise.
type loader struct {
	srcdir string
	fset   *token.FileSet
	pkgs   map[string]*analysis.Package

	stdOnce sync.Once
	std     types.Importer
}

// stdImporter returns the loader's shared gc export-data importer for the
// standard library. One instance per loader so every import of a stdlib
// package yields the identical *types.Package (type identity across
// testdata packages depends on it).
func (l *loader) stdImporter() types.Importer {
	l.stdOnce.Do(func() {
		l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			m, err := stdExportFiles()
			if err != nil {
				return nil, err
			}
			f, ok := m[path]
			if !ok {
				return nil, fmt.Errorf("no stdlib export data for %q", path)
			}
			return os.Open(f)
		})
	})
	return l.std
}

// load parses and type-checks srcdir/path (caching by path; cycles among
// testdata packages are reported as errors).
func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker

	dir := filepath.Join(l.srcdir, path)
	entries, dirErr := os.ReadDir(dir)
	if dirErr != nil {
		return nil, dirErr
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if _, statErr := os.Stat(filepath.Join(l.srcdir, imp)); statErr == nil {
			pkg, err := l.load(imp)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return l.stdImporter().Import(imp)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &analysis.Package{
		Path: path, Name: tpkg.Name(), Dir: dir,
		Files: files, Fset: l.fset, Types: tpkg, Info: info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExports lazily maps stdlib import paths to export-data files via one
// `go list -export -deps std` invocation shared by every test in the
// process.
var stdExports = struct {
	once sync.Once
	m    map[string]string
	err  error
}{}

func stdExportFiles() (map[string]string, error) {
	stdExports.once.Do(func() {
		out, err := exec.Command("go", "list", "-export", "-e",
			"-json=ImportPath,Export", "std").Output()
		if err != nil {
			stdExports.err = fmt.Errorf("go list std: %w", err)
			return
		}
		m := map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				stdExports.err = err
				return
			}
			if p.Export != "" {
				m[p.ImportPath] = p.Export
			}
		}
		stdExports.m = m
	})
	return stdExports.m, stdExports.err
}

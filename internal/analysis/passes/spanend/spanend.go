// Package spanend enforces the observability layer's span-closure
// discipline: every obs span opened with Start must be closed with End in
// the same block, either directly or via defer (DESIGN.md §10). An
// unclosed span reports a zero duration until Tracer.Finish sweeps it,
// which silently mis-attributes time in run manifests — exactly the
// failure mode the tolerance-aware golden differ cannot catch because the
// span tree shape still matches.
//
// The check is syntactic and local, mirroring how the codebase actually
// uses spans:
//
//	sp := tracer.Phase("exec").Start(key)
//	defer sp.End()           // or sp.End() later in the same block
//
// Recognized closings: `defer sp.End()`, a plain `sp.End()` statement in
// the same block after the Start, or an End inside a deferred closure in
// that block. A Start whose result is discarded is always an error. Spans
// stored into fields or returned are out of scope for the heuristic;
// suppress with //lint:ignore spanend <reason> if such a helper is ever
// needed.
package spanend

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the spanend pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "requires every obs span Start to be paired with End (defer or same block)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlock(pass, block)
		return true
	})
	return nil
}

// checkBlock scans one statement list for span-opening statements and
// verifies each has a closing End later in the same list.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "result of Start discarded: span can never be ended")
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				continue
			}
			call, ok := analysis.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanStart(pass, call) {
				continue
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(s.Pos(), "span assigned to blank identifier: span can never be ended")
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if !endedInBlock(pass, block.List[i+1:], obj) {
				pass.Reportf(s.Pos(),
					"span %q is started but not ended in this block: add `defer %s.End()` (or call %s.End() before leaving the block)",
					id.Name, id.Name, id.Name)
			}
		}
	}
}

// isSpanStart recognizes calls to (*obs.Span).Start and the timeline's
// (*obs.Track).Start — both hand back a handle whose End must run in the
// same block for the recorded slice (or span) to carry a real duration.
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	f, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamed(sig.Recv().Type(), "internal/obs", "Span") ||
		analysis.IsNamed(sig.Recv().Type(), "internal/obs", "Track")
}

// endedInBlock reports whether any of the statements closes obj's span:
// `defer obj.End()`, `obj.End()`, or an End on obj anywhere inside a
// deferred function literal.
func endedInBlock(pass *analysis.Pass, stmts []ast.Stmt, obj types.Object) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if isEndCall(pass, s.Call, obj) {
				return true
			}
			if lit, ok := analysis.Unparen(s.Call.Fun).(*ast.FuncLit); ok && containsEnd(pass, lit, obj) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
				return true
			}
		}
	}
	return false
}

// isEndCall reports whether call is obj.End().
func isEndCall(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := analysis.Unparen(sel.X).(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// containsEnd reports whether the function literal's body ends obj's span.
func containsEnd(pass *analysis.Pass, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// Package obs is a minimal stub of the real observability layer, placed at
// the matching import-path suffix so spanend's type checks apply to
// testdata code.
package obs

// Tracer mirrors the span-producing surface of the real obs.Tracer.
type Tracer struct{}

// Phase returns a span grouping one pipeline stage.
func (t *Tracer) Phase(name string) *Span { return &Span{} }

// Span mirrors the real obs.Span.
type Span struct{}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {}

// Package obs is a minimal stub of the real observability layer, placed at
// the matching import-path suffix so spanend's type checks apply to
// testdata code.
package obs

// Tracer mirrors the span-producing surface of the real obs.Tracer.
type Tracer struct{}

// Phase returns a span grouping one pipeline stage.
func (t *Tracer) Phase(name string) *Span { return &Span{} }

// Span mirrors the real obs.Span.
type Span struct{}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {}

// Timeline mirrors the track-producing surface of the real obs.Timeline.
type Timeline struct{}

// Track returns a named wall-clock timeline track.
func (t *Timeline) Track(name string) *Track { return &Track{} }

// Track mirrors the real obs.Track.
type Track struct{}

// Start opens a slice on the track.
func (tr *Track) Start(name string) *TrackSpan { return &TrackSpan{} }

// TrackSpan mirrors the real obs.TrackSpan.
type TrackSpan struct{}

// End closes the slice and records it.
func (s *TrackSpan) End() {}

// Package spans exercises the spanend analyzer.
package spans

import "repro/internal/obs"

// leakAssigned opens a span and never closes it.
func leakAssigned(tr *obs.Tracer) {
	sp := tr.Phase("exec").Start("job") // want `span "sp" is started but not ended in this block`
	sp.SetAttr("k", "v")
}

// leakDiscarded drops the span on the floor.
func leakDiscarded(tr *obs.Tracer) {
	tr.Phase("exec").Start("job") // want `result of Start discarded`
}

// leakBlank can never be ended either.
func leakBlank(tr *obs.Tracer) {
	_ = tr.Phase("exec").Start("job") // want `span assigned to blank identifier`
}

// leakNested closes a different block's span: the End in the if body does
// not satisfy the same-block rule.
func leakNested(tr *obs.Tracer, ok bool) {
	sp := tr.Phase("exec").Start("job") // want `span "sp" is started but not ended in this block`
	if ok {
		sp.End()
	}
}

// deferEnd is the canonical pattern: silent.
func deferEnd(tr *obs.Tracer) {
	sp := tr.Phase("exec").Start("job")
	defer sp.End()
	sp.SetAttr("k", "v")
}

// sameBlockEnd closes the span before leaving the block: silent.
func sameBlockEnd(tr *obs.Tracer, work func()) {
	sp := tr.Phase("exec").Start("job")
	work()
	sp.End()
}

// chainedEnd starts and ends in one expression: silent.
func chainedEnd(tr *obs.Tracer) {
	tr.Phase("exec").Start("job").End()
}

// deferredClosure ends the span inside a deferred function literal: silent.
func deferredClosure(tr *obs.Tracer, work func()) {
	sp := tr.Phase("exec").Start("job")
	defer func() {
		sp.SetAttr("done", "true")
		sp.End()
	}()
	work()
}

// childSpans nest: each is tracked independently.
func childSpans(tr *obs.Tracer) {
	outer := tr.Phase("exec").Start("outer")
	defer outer.End()
	inner := outer.Start("inner") // want `span "inner" is started but not ended in this block`
	inner.SetAttr("k", "v")
}

// leakTrackSlice opens a timeline slice and never ends it: the recorded
// event would carry a zero duration.
func leakTrackSlice(tl *obs.Timeline) {
	slice := tl.Track("studies").Start("fig10") // want `span "slice" is started but not ended in this block`
	_ = slice
}

// leakTrackDiscarded drops the slice handle on the floor.
func leakTrackDiscarded(tl *obs.Timeline) {
	tl.Track("studies").Start("fig10") // want `result of Start discarded`
}

// trackSliceEnd is the canonical timeline pattern: silent.
func trackSliceEnd(tl *obs.Timeline, work func()) {
	slice := tl.Track("studies").Start("fig10")
	work()
	slice.End()
}

// trackSliceDefer defers the End: silent.
func trackSliceDefer(tl *obs.Timeline, work func()) {
	slice := tl.Track("studies").Start("fig10")
	defer slice.End()
	work()
}

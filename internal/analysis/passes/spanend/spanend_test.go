package spanend_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "spans", "repro/internal/obs")
}

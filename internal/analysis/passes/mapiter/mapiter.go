// Package mapiter flags `range` loops over maps whose iteration order can
// leak into ordered output. Go randomizes map iteration, so a loop that
// appends to a slice (later rendered into golden files, manifests or
// stdout), prints directly, or accumulates floating point (whose addition
// is not associative) produces run-to-run different bytes — the #1 threat
// to the golden-file regression net PR 2 installed (DESIGN.md §10).
//
// A loop is reported when its body
//
//   - appends to a slice declared outside the loop, unless a sort.*/slices.*
//     call mentioning that slice follows in the same enclosing block;
//   - calls an ordered sink (fmt.Print*/Fprint*, or any Write*/Print*
//     method) — printing per-iteration cannot be fixed up afterwards;
//   - accumulates into a float (+=, -=, *=, /=) declared outside the loop,
//     since float reduction order changes low bits.
//
// Writes keyed by the loop variable (m2[k] = v), integer accumulation and
// min/max scans are order-insensitive and stay silent.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration whose order reaches ordered output " +
		"(slice appends without a following sort, direct printing, float accumulation)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, file, rng)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for order-sensitive sinks.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, file, rng, stmt)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isOrderedSink(pass, call) {
				pass.Reportf(call.Pos(),
					"printing inside range over map: iteration order is random, output bytes differ run to run")
			}
		}
		return true
	})
}

// checkAssign flags slice appends and float accumulation targeting
// variables that outlive the loop.
func checkAssign(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			call, ok := analysis.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				continue
			}
			root := analysis.RootIdent(lhs)
			if root == nil || !declaredOutside(pass, root, rng) {
				continue
			}
			// Keyed writes (m2[k] = append(m2[k], v)) group by key, which
			// is the order-insensitive idiom; only flat appends carry the
			// iteration order into the result.
			if hasIndex(lhs) {
				continue
			}
			// Appending the map's values in random order is fine when the
			// caller restores a deterministic order right after the loop.
			if sortedAfter(pass, file, rng, root) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append to %q inside range over map without a following sort: element order is random run to run",
				root.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		root := analysis.RootIdent(as.Lhs[0])
		if root == nil || !declaredOutside(pass, root, rng) || hasIndex(as.Lhs[0]) {
			return
		}
		if t := pass.TypesInfo.Types[as.Lhs[0]].Type; t != nil && isFloat(t) {
			pass.Reportf(as.Pos(),
				"float accumulation into %q inside range over map: reduction order is random, low bits differ run to run",
				root.Name)
		}
	}
}

// hasIndex reports whether the lvalue chain contains an index expression.
func hasIndex(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether id resolves to a variable declared before
// the range statement (so its value survives the loop).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos()
}

// isBuiltinAppend recognizes calls to the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOrderedSink recognizes calls that emit bytes in call order: fmt's
// Print/Fprint family and any method whose name starts with Write or Print
// (io.Writer, strings.Builder, bytes.Buffer, tabwriter, …).
func isOrderedSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil {
		return false
	}
	name := f.Name()
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print")
	}
	return false
}

// sortedAfter reports whether a sort.* or slices.* call mentioning root's
// variable appears after the range statement within the function that
// encloses it.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, root *ast.Ident) bool {
	obj := pass.ObjectOf(root)
	if obj == nil {
		return false
	}
	scope := enclosingFunc(file, rng)
	if scope == nil {
		scope = file
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := pass.CalleeFunc(call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			argRoot := analysis.RootIdent(arg)
			if argRoot != nil && pass.ObjectOf(argRoot) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal whose
// body contains the range statement.
func enclosingFunc(file *ast.File, rng *ast.RangeStmt) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= rng.Pos() && rng.End() <= n.End() {
				best = n // keep descending: innermost wins
			}
		}
		return true
	})
	return best
}

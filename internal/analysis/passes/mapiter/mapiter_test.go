package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", mapiter.Analyzer, "mapiter", "clean")
}

// Package clean is the mapiter negative package: ordered iteration only,
// no diagnostics expected.
package clean

import "sort"

// Render walks a map through sorted keys, the pattern the analyzer wants.
func Render(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

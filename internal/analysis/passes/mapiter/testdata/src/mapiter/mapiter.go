// Package mapiter exercises the mapiter analyzer: positive cases carry
// want comments, the rest must stay silent.
package mapiter

import (
	"fmt"
	"sort"
)

// appendNoSort leaks map order into a slice that is returned as-is.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	return keys
}

// printInLoop emits bytes per iteration; no fix-up is possible afterwards.
func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `printing inside range over map`
	}
}

// floatAccum reduces floats in random order.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// appendThenSort restores a deterministic order after the loop: silent.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keyedWrites group by key, the order-insensitive idiom: silent.
func keyedWrites(m map[string][]int) map[string]int {
	counts := map[string]int{}
	sums := map[string][]int{}
	for k, vs := range m {
		counts[k] = len(vs)
		sums[k] = append(sums[k], len(vs))
	}
	return counts
}

// intAccum is exact regardless of order: silent.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange iterates a slice, which is ordered: silent.
func sliceRange(xs []float64, w fmt.Stringer) float64 {
	total := 0.0
	var out []float64
	for _, x := range xs {
		total += x
		out = append(out, x)
		fmt.Println(x)
	}
	return total + out[0]
}

// localAppend builds and consumes the slice inside the loop body: silent.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Package passes registers the repository's analyzer suite in its
// canonical order. cmd/hottileslint, the unitchecker mode and the repo
// smoke test all consume this one list so a new analyzer lands everywhere
// by being appended here.
package passes

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/detrand"
	"repro/internal/analysis/passes/errwrap"
	"repro/internal/analysis/passes/floateq"
	"repro/internal/analysis/passes/hotalloc"
	"repro/internal/analysis/passes/lockcopy"
	"repro/internal/analysis/passes/mapiter"
	"repro/internal/analysis/passes/metricname"
	"repro/internal/analysis/passes/nakedgo"
	"repro/internal/analysis/passes/shadow"
	"repro/internal/analysis/passes/spanend"
)

// All returns the full analyzer suite in reporting order: the PR-3 six,
// then the PR-8 dataflow-aware five.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		nakedgo.Analyzer,
		spanend.Analyzer,
		floateq.Analyzer,
		lockcopy.Analyzer,
		shadow.Analyzer,
		hotalloc.Analyzer,
		detrand.Analyzer,
		ctxflow.Analyzer,
		errwrap.Analyzer,
		metricname.Analyzer,
	}
}

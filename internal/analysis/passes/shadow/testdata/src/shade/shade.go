// Package shade exercises the shadow analyzer.
package shade

import "strconv"

// reuseAfter shadows x and then uses the outer x again: the classic bug.
func reuseAfter(cond bool) int {
	x := 1
	if cond {
		x := 2 // want `declaration of "x" shadows declaration at .*shade.go:8`
		_ = x
	}
	return x
}

// errShadow loses the inner error: the outer err is checked afterwards.
func errShadow(s string) error {
	var err error
	if s != "" {
		n, err := strconv.Atoi(s) // want `declaration of "err" shadows declaration at .*shade.go:18`
		_ = n
		_ = err
	}
	return err
}

// differentType is deliberate re-use of a name for a new meaning: silent.
func differentType(cond bool) int {
	x := 1
	if cond {
		x := "two"
		_ = x
	}
	return x
}

// notUsedAfter shadows a variable the outer scope never touches again:
// harmless, silent.
func notUsedAfter(cond bool) int {
	x := 1
	if cond {
		x := x + 1
		return x
	}
	return 0
}

// paramShadow: function-literal parameters may reuse outer names: silent.
func paramShadow(xs []int) int {
	n := 0
	f := func(n int) int { return n * 2 }
	for _, x := range xs {
		n += f(x)
	}
	return n
}

// builtinShadow: locals named after function-like builtins are flagged even
// with no outer variable to collide with — the builtin itself is the
// casualty.
func builtinShadow(budget float64) float64 {
	cap := budget / 2 // want `declaration of "cap" shadows the predeclared builtin`
	var len int       // want `declaration of "len" shadows the predeclared builtin`
	_ = len
	return cap
}

// minMaxOK: min and max read as values and stay silent.
func minMaxOK(a, b int) int {
	min := a
	if b < min {
		min = b
	}
	return min
}

// Package shadow is an offline re-implementation of the x/tools shadow
// pass, with its low-false-positive heuristic: an inner declaration is
// reported only when it shadows a function-local variable of the identical
// type AND the outer variable is still used after the inner one's scope
// ends — the case where a reader (or a later edit) can silently pick up
// the wrong variable. Shadowing package-level names, differently-typed
// names, or variables never touched again is deliberate Go style and stays
// silent.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shadow pass.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flags inner declarations that shadow a same-typed outer variable still used after the inner scope ends, and any local that shadows a function-like builtin",
	Run:  run,
}

// funcBuiltins are the function-like predeclared identifiers. Declaring a
// local with one of these names silently disables the builtin for the rest
// of the scope — any later call through it stops compiling, and the fix
// tends to be applied at the call site instead of the declaration. min and
// max are excluded: they read as values and are long-idiomatic variable
// names.
var funcBuiltins = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"copy": true, "delete": true, "len": true, "make": true,
	"new": true, "panic": true, "recover": true,
}

func run(pass *analysis.Pass) error {
	// Gather every use position per object once; the "outer is used later"
	// test needs them.
	uses := map[types.Object][]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}

	// Like x/tools shadow, only short variable declarations and var specs
	// are candidates — function (and function-type) parameters shadowing an
	// outer name are idiomatic and stay silent.
	for _, id := range declaredIdents(pass) {
		obj := pass.TypesInfo.Defs[id]
		v, ok := obj.(*types.Var)
		if !ok || id.Name == "_" || v.IsField() {
			continue
		}
		if funcBuiltins[id.Name] {
			pass.Reportf(id.Pos(), "declaration of %q shadows the predeclared builtin", id.Name)
			continue
		}
		inner := v.Parent()
		if inner == nil || inner.Parent() == nil {
			continue
		}
		// Look up the name outward from the enclosing scope at the
		// declaration position.
		outerScope, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
		if outerObj == nil {
			continue
		}
		outer, ok := outerObj.(*types.Var)
		if !ok || outer.IsField() {
			continue
		}
		// Only function-local shadowing: the outer scope must itself be
		// nested (its parent chain reaches the package scope without being
		// the package or universe scope).
		if outerScope == types.Universe || outerScope == pass.Pkg.Scope() || isFileScope(pass, outerScope) {
			continue
		}
		if !types.Identical(v.Type(), outer.Type()) {
			continue
		}
		if usedAfter(uses[outer], inner.End()) {
			pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s",
				id.Name, pass.Fset.Position(outer.Pos()))
		}
	}
	return nil
}

// declaredIdents collects the identifiers introduced by := statements and
// var declarations throughout the package.
func declaredIdents(pass *analysis.Pass) []*ast.Ident {
	var out []*ast.Ident
	pass.Inspect(func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok == token.DEFINE {
				for _, lhs := range d.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out = append(out, id)
					}
				}
			}
		case *ast.GenDecl:
			if d.Tok == token.VAR {
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						out = append(out, vs.Names...)
					}
				}
			}
		}
		return true
	})
	return out
}

// isFileScope reports whether scope is one of the package's file scopes.
func isFileScope(pass *analysis.Pass, scope *types.Scope) bool {
	for _, f := range pass.Files {
		if pass.TypesInfo.Scopes[f] == scope {
			return true
		}
	}
	return false
}

// usedAfter reports whether any use position lies at or beyond end.
func usedAfter(positions []token.Pos, end token.Pos) bool {
	for _, p := range positions {
		if p >= end {
			return true
		}
	}
	return false
}

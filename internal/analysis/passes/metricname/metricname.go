// Package metricname polices the obs metrics namespace at compile time.
// PR 6 had to teach the debug plane's promNamer to suffix colliding
// Prometheus series with _2 because two dotted registry names can sanitize
// to the same prom base — a silent rename that breaks dashboards. This
// pass makes that machinery unreachable:
//
//   - every obs.NewCounter/NewGauge/NewHistogram name must be a
//     compile-time constant — a dynamic name defeats grepping and can
//     collide at runtime where no analyzer sees it;
//   - names must match the registry grammar: dotted lowercase
//     alphanumeric segments, each starting with a letter
//     (^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)*$). Under that grammar prom
//     sanitization is exactly dot→underscore, so collisions are decidable
//     statically;
//   - histogram names end in ".ns" — every histogram in the repo is a
//     nanosecond latency, and the convention keeps units out of
//     dashboards' guesswork;
//   - across the whole suite (Begin resets the state once per driver
//     run), no two registrations may claim the same name, and no two
//     names may collide in prom space, where a counter claims {base}, a
//     gauge {base, base_max} and a histogram {base, base_bucket,
//     base_sum, base_count}. Whole-suite means whole-module standalone
//     runs; under unitchecker (one package per process) the check
//     degrades to per-package.
//
// Constant obs Timeline track names (Timeline.TrackID / Timeline.Intern)
// get a lighter grammar check (slash/underscore/dash separators allowed);
// dynamic track names are legitimate — tracks are per-worker rows, not
// dashboard series.
//
// PR 10's structured logger extends the same discipline to log names:
// every obs.Logger message (Debug/Info/Warn/Error, and Log's second
// argument) and every inline attr key built with obs.Str/Int/F64 must be
// a compile-time constant matching the registry grammar, so log lines
// stay greppable and a dashboard can alias a metric to the log stream
// that explains it. The obs package itself is exempt — the logger's own
// plumbing (Debug forwarding to Log, the slog bridge) forwards dynamic
// messages by design. Registrations of the per-route httpd.* RED metrics
// go through the ordinary duplicate/prom-collision suite check like any
// other name.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "obs metric registrations use constant dotted-lowercase names, unique across the suite " +
		"and collision-free after prom sanitization (promNamer's _2 suffixing must be unreachable)",
	Run:   run,
	Begin: reset,
}

// nameRE is the registry grammar; trackRE the looser timeline-track one.
var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)*$`)
	trackRE = regexp.MustCompile(`^[a-z][a-z0-9]*([./_-][a-z0-9]+)*$`)
)

// claim records who owns a registry name or a prom series.
type claim struct {
	name string // registry name that made the claim
	posn string // file:line of the registration
}

// suite is the cross-package state, reset once per driver run.
var suite struct {
	names  map[string]claim // registry name → first registration
	series map[string]claim // prom series → owning registration
}

func reset() {
	suite.names = map[string]claim{}
	suite.series = map[string]claim{}
}

// constructors maps obs constructor names to the prom series suffixes each
// metric kind exports (WriteMetricsText's contract).
var constructors = map[string][]string{
	"NewCounter":   {""},
	"NewGauge":     {"", "_max"},
	"NewHistogram": {"", "_bucket", "_sum", "_count"},
}

// logMethods maps obs.Logger method names to the index of the message
// argument (Log takes the level first).
var logMethods = map[string]int{
	"Debug": 0, "Info": 0, "Warn": 0, "Error": 0, "Log": 1,
}

// attrCtors are the package-level obs attr constructors whose first
// argument names a log field.
var attrCtors = map[string]bool{"Str": true, "Int": true, "F64": true}

func run(pass *analysis.Pass) error {
	if suite.names == nil {
		reset() // standalone Run without Begin (unitchecker path)
	}
	// The logger's own plumbing forwards dynamic messages (Debug → Log,
	// the slog bridge); the log-name rules apply to its callers.
	selfObs := analysis.PathHasSuffix(pass.Pkg.Path(), "internal/obs")
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := pass.CalleeFunc(call)
		if f == nil || f.Pkg() == nil || !analysis.PathHasSuffix(f.Pkg().Path(), "internal/obs") {
			return true
		}
		if suffixes, ok := constructors[f.Name()]; ok && len(call.Args) == 1 {
			checkRegistration(pass, call, f.Name(), suffixes)
		}
		if f.Name() == "TrackID" || f.Name() == "Intern" {
			checkTrack(pass, call)
		}
		if !selfObs {
			if idx, ok := logMethods[f.Name()]; ok && loggerMethod(f) && len(call.Args) > idx {
				checkLogName(pass, call.Args[idx], "log message")
			}
			if attrCtors[f.Name()] && !isMethod(f) && len(call.Args) == 2 {
				checkLogName(pass, call.Args[0], "log attr key")
			}
		}
		return true
	})
	return nil
}

// loggerMethod reports whether f is a method on obs.Logger (pointer or
// value receiver) — other obs types may share a method name like Error.
func loggerMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == "Logger"
}

func isMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// checkLogName holds a log message or attr key to the same constant
// dotted-lowercase discipline as metric names.
func checkLogName(pass *analysis.Pass, e ast.Expr, what string) {
	name, ok := constString(pass, e)
	if !ok {
		pass.Reportf(e.Pos(),
			"%s must be a compile-time constant: dynamic log names defeat grepping", what)
		return
	}
	if !nameRE.MatchString(name) {
		pass.Reportf(e.Pos(),
			"%s %q does not match the log-name grammar (dotted lowercase, segments start with a letter)", what, name)
	}
}

// checkRegistration enforces constness, grammar, and suite-wide
// uniqueness for one obs.New* call.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, kind string, suffixes []string) {
	name, ok := constString(pass, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"obs.%s name must be a compile-time constant", kind)
		return
	}
	if !nameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q does not match the registry grammar (dotted lowercase, segments start with a letter)", name)
		return
	}
	if kind == "NewHistogram" && !strings.HasSuffix(name, ".ns") {
		pass.Reportf(call.Args[0].Pos(),
			"histogram %q must end in .ns: every histogram is a nanosecond latency", name)
	}
	posn := pass.Fset.Position(call.Pos()).String()
	if prev, dup := suite.names[name]; dup {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q already registered at %s: one metric, one registration site", name, prev.posn)
		return
	}
	suite.names[name] = claim{name: name, posn: posn}
	base := strings.ReplaceAll(name, ".", "_")
	for _, suffix := range suffixes {
		series := base + suffix
		if prev, collides := suite.series[series]; collides {
			pass.Reportf(call.Args[0].Pos(),
				"metric %q collides with %q (registered at %s) on prom series %q: promNamer would rename it to %s_2",
				name, prev.name, prev.posn, series, series)
			continue
		}
		suite.series[series] = claim{name: name, posn: posn}
	}
}

// checkTrack applies the track grammar to constant TrackID/Intern names;
// dynamic names pass through.
func checkTrack(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	name, ok := constString(pass, call.Args[0])
	if !ok {
		return
	}
	if !trackRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"timeline track %q does not match the track grammar (lowercase segments joined by . / _ -)", name)
	}
}

// constString returns the compile-time string value of e, if it has one.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

package metricname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "work")
}

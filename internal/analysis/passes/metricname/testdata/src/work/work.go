// Package work exercises the metricname analyzer against the obs stub.
package work

import "repro/internal/obs"

const latencyName = "work.step.ns"

var (
	steps   = obs.NewCounter("work.steps")     // silent
	depth   = obs.NewGauge("work.pool.depth")  // silent
	latency = obs.NewHistogram(latencyName)    // silent: constant expression
	wall    = obs.NewHistogram("work.wall")    // want `histogram "work.wall" must end in .ns`
	caps    = obs.NewCounter("Work.Steps")     // want `does not match the registry grammar`
	under   = obs.NewCounter("work_steps")     // want `does not match the registry grammar`
	digits  = obs.NewCounter("work.2fast")     // want `does not match the registry grammar`
	dup     = obs.NewCounter("work.steps")     // want `metric "work.steps" already registered`
	gmax    = obs.NewGauge("work.queue")       // silent: claims work_queue and work_queue_max
	clash   = obs.NewCounter("work.queue.max") // want `collides with "work.queue" .* promNamer would rename`
	hsum    = obs.NewHistogram("work.io.ns")   // silent: claims work_io_ns(+suffixes)
	hclash  = obs.NewCounter("work.io.ns.sum") // want `collides with "work.io.ns"`
)

func dynamic(kind string) *obs.Counter {
	return obs.NewCounter("work." + kind) // want `name must be a compile-time constant`
}

func tracks(tl *obs.Timeline, slot string) {
	_ = tl.TrackID("par/pool")    // silent: track grammar allows slashes
	_ = tl.Intern("fill")         // silent
	_ = tl.TrackID("par/" + slot) // silent: dynamic track names are allowed
	_ = tl.TrackID("Par Pool")    // want `does not match the track grammar`
}

// The per-route RED triple goes through the same suite-wide duplicate and
// prom-collision checks as any other registration.
var (
	httpdReq  = obs.NewCounter("httpd.work.requests")     // silent
	httpdErr  = obs.NewCounter("httpd.work.errors")       // silent
	httpdLat  = obs.NewHistogram("httpd.work.latency.ns") // silent
	httpdDup  = obs.NewCounter("httpd.work.requests")     // want `metric "httpd.work.requests" already registered`
	httpdProm = obs.NewGauge("httpd.work.latency.ns.sum") // want `collides with "httpd.work.latency.ns"`
	httpdCase = obs.NewCounter("httpd.Work.requests")     // want `does not match the registry grammar`
)

const accessMsg = "work.httpd.access"

func logs(log *obs.Logger, route string, lv obs.LogLevel) {
	log.Info("work.start")                                 // silent
	log.Log(lv, accessMsg, obs.Str("req", "id"))           // silent: constant-expression message and key
	log.Debug("work.retry", obs.F64("retry.after.s", 1.5)) // silent: dotted key fits the grammar
	log.Warn("Work.Start")                                 // want `log message "Work.Start" does not match the log-name grammar`
	log.Error("work_fail")                                 // want `log message "work_fail" does not match the log-name grammar`
	log.Info("work." + route)                              // want `log message must be a compile-time constant`
	log.Info("work.ok", obs.Int("N", 1))                   // want `log attr key "N" does not match the log-name grammar`
	log.Info("work.ok2", obs.Str("route."+route, "x"))     // want `log attr key must be a compile-time constant`
}

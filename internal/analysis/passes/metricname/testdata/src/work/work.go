// Package work exercises the metricname analyzer against the obs stub.
package work

import "repro/internal/obs"

const latencyName = "work.step.ns"

var (
	steps   = obs.NewCounter("work.steps")     // silent
	depth   = obs.NewGauge("work.pool.depth")  // silent
	latency = obs.NewHistogram(latencyName)    // silent: constant expression
	wall    = obs.NewHistogram("work.wall")    // want `histogram "work.wall" must end in .ns`
	caps    = obs.NewCounter("Work.Steps")     // want `does not match the registry grammar`
	under   = obs.NewCounter("work_steps")     // want `does not match the registry grammar`
	digits  = obs.NewCounter("work.2fast")     // want `does not match the registry grammar`
	dup     = obs.NewCounter("work.steps")     // want `metric "work.steps" already registered`
	gmax    = obs.NewGauge("work.queue")       // silent: claims work_queue and work_queue_max
	clash   = obs.NewCounter("work.queue.max") // want `collides with "work.queue" .* promNamer would rename`
	hsum    = obs.NewHistogram("work.io.ns")   // silent: claims work_io_ns(+suffixes)
	hclash  = obs.NewCounter("work.io.ns.sum") // want `collides with "work.io.ns"`
)

func dynamic(kind string) *obs.Counter {
	return obs.NewCounter("work." + kind) // want `name must be a compile-time constant`
}

func tracks(tl *obs.Timeline, slot string) {
	_ = tl.TrackID("par/pool")    // silent: track grammar allows slashes
	_ = tl.Intern("fill")         // silent
	_ = tl.TrackID("par/" + slot) // silent: dynamic track names are allowed
	_ = tl.TrackID("Par Pool")    // want `does not match the track grammar`
}

// Package obs is a stub mirroring repro/internal/obs's registration
// surface for the metricname analyzer tests.
package obs

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Timeline struct{}

func NewCounter(name string) *Counter     { return &Counter{} }
func NewGauge(name string) *Gauge         { return &Gauge{} }
func NewHistogram(name string) *Histogram { return &Histogram{} }

func (t *Timeline) TrackID(name string) int32 { return 0 }
func (t *Timeline) Intern(name string) int32  { return 0 }

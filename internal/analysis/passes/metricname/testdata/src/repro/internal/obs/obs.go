// Package obs is a stub mirroring repro/internal/obs's registration
// surface for the metricname analyzer tests.
package obs

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Timeline struct{}

func NewCounter(name string) *Counter     { return &Counter{} }
func NewGauge(name string) *Gauge         { return &Gauge{} }
func NewHistogram(name string) *Histogram { return &Histogram{} }

func (t *Timeline) TrackID(name string) int32 { return 0 }
func (t *Timeline) Intern(name string) int32  { return 0 }

type LogLevel int

type Attr struct{ Key, Val string }

type Logger struct{}

func (l *Logger) Debug(msg string, attrs ...Attr)            {}
func (l *Logger) Info(msg string, attrs ...Attr)             {}
func (l *Logger) Warn(msg string, attrs ...Attr)             {}
func (l *Logger) Error(msg string, attrs ...Attr)            {}
func (l *Logger) Log(lv LogLevel, msg string, attrs ...Attr) {}

func Str(key, val string) Attr         { return Attr{key, val} }
func Int(key string, val int) Attr     { return Attr{Key: key} }
func F64(key string, val float64) Attr { return Attr{Key: key} }

// Package hotalloc forbids heap allocations inside designated hot paths.
// The PR-4 engine rewrite made simulator stepping, the radix sorts and the
// model estimator allocation-free (DESIGN.md §12), pinned at runtime by
// TestEngineStepAllocs; this pass holds the same line at compile time, and
// over the whole designated surface rather than the one code path the
// test happens to drive.
//
// Hot code is opt-in twice over: the enclosing package must be on the
// allowlist below, and the function must carry a `//hot:path` line in its
// doc comment. Inside a hot function the pass flags
//
//   - any call into package fmt (formatting allocates);
//   - map and slice composite literals (array and struct literals are
//     stack-friendly and stay silent);
//   - interface boxing: a concrete non-pointer-shaped value (int, float,
//     struct, string, slice) converted, assigned, passed or returned as an
//     interface value — the runtime must heap-box it;
//   - escaping function literals: returned, stored into a field, global,
//     element or channel, or launched via go/defer. A literal passed
//     directly as a call argument (the slices.SortFunc shape) does not
//     escape and stays silent;
//   - growing appends: `append(s, …)` where s is not scratch-backed. The
//     CFG dataflow (internal/analysis cfg.go/dataflow.go) tracks which
//     slice variables are backed by preallocated storage — a reslice like
//     `s[:0]` or `aux[:len(s)]`, a fresh `make`, a copy of a backed
//     variable, or an append to a backed base — so the engine's
//     `keep := e.active[:0]; keep = append(keep, wi)` compaction idiom
//     passes while a bare accumulating append is flagged. The analysis is
//     flow-sensitive: rebinding s to unknown storage kills the fact on
//     the paths below the rebinding. `make` itself is allowed — sizing a
//     scratch buffer is how hot code avoids growth.
//
// A `//hot:path` annotation outside the allowlist, or on anything other
// than a function declaration, is itself a finding: the contract is only
// auditable where the pass is looking.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// allowed lists the package path suffixes that may declare hot paths:
// the simulator engine, the sparse/tile sort layers, the estimator, and the
// panel-parallel functional kernels.
var allowed = []string{"internal/sim", "internal/sparse", "internal/tile", "internal/model", "internal/dense"}

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbids heap allocations (growing append, map/slice literals, interface boxing, " +
		"escaping closures, fmt calls) in //hot:path functions of the sim/sparse/tile/model/dense packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := analysis.PathHasAnySuffix(pass.Pkg.Path(), allowed)
	for _, file := range pass.Files {
		hotDocs := map[*ast.CommentGroup]bool{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hotDocs[fd.Doc] = true
			if !isHot(fd.Doc) {
				continue
			}
			if !inScope {
				pass.Reportf(fd.Pos(),
					"//hot:path annotation outside the hot-path allowlist (%s): hotalloc does not police %s",
					strings.Join(allowed, ", "), pass.Pkg.Path())
				continue
			}
			if fd.Body != nil {
				checkHotFunc(pass, fd)
			}
		}
		// A //hot:path line anywhere else (floating comment, non-func decl)
		// silently polices nothing — make that loud.
		for _, cg := range file.Comments {
			if hotDocs[cg] {
				continue
			}
			for _, c := range cg.List {
				if isHotLine(c.Text) {
					pass.Reportf(c.Pos(), "//hot:path must be in a function declaration's doc comment")
				}
			}
		}
	}
	return nil
}

// isHot reports whether a doc comment carries a //hot:path line.
func isHot(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if isHotLine(c.Text) {
			return true
		}
	}
	return false
}

func isHotLine(text string) bool {
	return text == "//hot:path" || strings.HasPrefix(text, "//hot:path ")
}

// checkHotFunc applies every allocation check to one hot function body.
func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkSyntactic(pass, fd)
	checkAppends(pass, fd.Body)
	// Function literals get their own flow analysis: their bodies are not
	// part of the enclosing CFG.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkAppends(pass, lit.Body)
		}
		return true
	})
}

// checkSyntactic walks the whole hot body (function literals included) for
// the flow-insensitive allocation shapes.
func checkSyntactic(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.AssignStmt:
			checkBoxingAssign(pass, n)
		case *ast.ValueSpec:
			checkBoxingValueSpec(pass, n)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, fd, n)
		case *ast.FuncLit:
			checkClosure(pass, parents, n)
		}
		return true
	})
}

// checkCompositeLit flags map and slice literals; arrays and structs are
// stack-friendly and stay silent.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hot path: allocates")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hot path: allocates")
	}
}

// checkCall flags fmt calls and interface-boxing arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if f := pass.CalleeFunc(call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates", f.Name())
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			checkBoxed(pass, call.Args[0], "conversion to "+tv.Type.String())
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if ok {
		checkBoxingArgs(pass, call, sig)
	}
}

// checkBoxingArgs flags concrete values passed to interface parameters.
func checkBoxingArgs(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	// f(g()) with a multi-value g: nothing to match syntactically.
	if len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
			if tuple, ok := tv.Type.(*types.Tuple); ok && tuple.Len() > 1 {
				return
			}
		}
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element box
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			checkBoxed(pass, arg, "interface argument")
		}
	}
}

// checkBoxingAssign flags concrete RHS values assigned to interface LHS.
func checkBoxingAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.TypesInfo.Types[lhs].Type
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		checkBoxed(pass, as.Rhs[i], "assignment to interface")
	}
}

// checkBoxingValueSpec flags `var x I = concrete`.
func checkBoxingValueSpec(pass *analysis.Pass, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		obj := pass.TypesInfo.Defs[name]
		if obj == nil || !types.IsInterface(obj.Type()) {
			continue
		}
		checkBoxed(pass, vs.Values[i], "assignment to interface")
	}
}

// checkBoxingReturn flags concrete values returned as interface results.
func checkBoxingReturn(pass *analysis.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return // naked return or multi-value passthrough
	}
	for i, r := range ret.Results {
		if types.IsInterface(results.At(i).Type()) {
			checkBoxed(pass, r, "interface return")
		}
	}
}

// checkBoxed reports expr when converting it to an interface heap-boxes:
// its concrete type is not pointer-shaped (pointer, chan, map, func,
// unsafe.Pointer) and it is not nil or already an interface.
func checkBoxed(pass *analysis.Pass, expr ast.Expr, what string) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return
		}
	}
	pass.Reportf(expr.Pos(), "%s boxes %s in hot path: interface conversion allocates", what, t)
}

// checkClosure flags function literals in escaping positions.
func checkClosure(pass *analysis.Pass, parents map[ast.Node]ast.Node, lit *ast.FuncLit) {
	switch p := parentSkipParens(parents, lit).(type) {
	case *ast.CallExpr:
		if analysis.Unparen(p.Fun) == lit {
			// Immediately-invoked literal: allocation-free unless the call
			// itself is deferred or spawned.
			switch parentSkipParens(parents, p).(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				pass.Reportf(lit.Pos(), "closure in go/defer escapes hot path: allocates")
			}
			return
		}
		// Direct call argument (the slices.SortFunc shape): stays on the
		// stack for the duration of the call.
	case *ast.ReturnStmt:
		pass.Reportf(lit.Pos(), "closure returned from hot path: allocates")
	case *ast.AssignStmt:
		// A plain local variable keeps the closure stack-allocatable; any
		// other lvalue stores it into longer-lived memory.
		for i, rhs := range p.Rhs {
			if analysis.Unparen(rhs) != lit || i >= len(p.Lhs) {
				continue
			}
			if _, ok := analysis.Unparen(p.Lhs[i]).(*ast.Ident); !ok {
				pass.Reportf(lit.Pos(), "closure stored outside the stack frame: allocates")
			}
		}
	case *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		pass.Reportf(lit.Pos(), "closure stored outside the stack frame: allocates")
	}
}

// buildParents maps every node under root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func parentSkipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

// checkAppends runs the scratch-backed dataflow over one function (or
// literal) body and flags growing appends.
func checkAppends(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.NewCFG(body)

	transfer := func(n ast.Node, set analysis.ObjSet) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			transferAssign(pass, n, set)
		case *ast.RangeStmt:
			// Loop variables are rebound each iteration to unknown storage.
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id != nil {
					if obj := pass.ObjectOf(id); obj != nil {
						delete(set, obj)
					}
				}
			}
		}
	}

	visit := func(n ast.Node, in analysis.ObjSet) {
		// Find append calls anywhere in this node, but not inside nested
		// function literals (they have their own CFG pass).
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				return true
			}
			base := analysis.Unparen(call.Args[0])
			id, ok := base.(*ast.Ident)
			if !ok {
				// append(x.f, …) or append(s[i:j], …): not a tracked local.
				pass.Reportf(call.Pos(), "growing append in hot path: base is not a scratch-backed local")
				return true
			}
			if !in.Has(pass.ObjectOf(id)) {
				pass.Reportf(call.Pos(),
					"growing append to %q in hot path: not scratch-backed (reslice with [:0] or size with make first)", id.Name)
			}
			return true
		})
	}

	analysis.SolveForward(g, analysis.ObjSet{}, transfer, visit)
}

// transferAssign applies the gen/kill rules for scratch-backing: a variable
// becomes backed when assigned a reslice, a make, a copy of a backed
// variable, or an append to a backed base; any other assignment kills it.
func transferAssign(pass *analysis.Pass, as *ast.AssignStmt, set analysis.ObjSet) {
	if len(as.Lhs) != len(as.Rhs) {
		// a, b := f(): kill every plain ident on the left.
		for _, lhs := range as.Lhs {
			if id, ok := analysis.Unparen(lhs).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					delete(set, obj)
				}
			}
		}
		return
	}
	// Evaluate gen/kill against the pre-assignment set so parallel swaps
	// (`from, to = to, from`) read the old facts.
	type update struct {
		obj    types.Object
		backed bool
	}
	var ups []update
	for i, lhs := range as.Lhs {
		id, ok := analysis.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // field/index writes don't rebind a local
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		ups = append(ups, update{obj, backedExpr(pass, as.Rhs[i], set)})
	}
	for _, u := range ups {
		if u.backed {
			set[u.obj] = true
		} else {
			delete(set, u.obj)
		}
	}
}

// backedExpr reports whether evaluating e yields a scratch-backed slice
// under the current facts.
func backedExpr(pass *analysis.Pass, e ast.Expr, set analysis.ObjSet) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true // s[a:b] shares existing backing storage
	case *ast.Ident:
		return set.Has(pass.ObjectOf(e))
	case *ast.CallExpr:
		if id, ok := analysis.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return true // freshly sized: appends up to cap don't grow
				case "append":
					if base, ok := analysis.Unparen(e.Args[0]).(*ast.Ident); ok {
						return set.Has(pass.ObjectOf(base))
					}
				}
			}
		}
	}
	return false
}

// isBuiltinAppend recognizes calls to the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "repro/internal/sim", "work")
}

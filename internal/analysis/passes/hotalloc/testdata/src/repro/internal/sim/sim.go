// Package sim is a stub mirroring repro/internal/sim for the hotalloc
// analyzer tests: same path suffix, so the package allowlist matches.
package sim

import "fmt"

// sortFunc stands in for slices.SortFunc: a comparator-taking call with no
// interface parameters, so only the closure rules apply.
func sortFunc(xs []int, less func(a, b int) int) {}

type engine struct {
	active  []int
	scratch []int
	cb      func()
}

// step is the compaction idiom the real engine uses: reslice to zero
// length, append survivors, swap back. Allocation-free, must stay silent.
//
//hot:path
func (e *engine) step(n int) {
	keep := e.active[:0]
	for _, wi := range e.active {
		if wi < n {
			keep = append(keep, wi)
		}
	}
	e.active = keep
}

// cold is unannotated: anything goes.
func (e *engine) cold() []int {
	var out []int
	out = append(out, 1)
	fmt.Println("cold path may format")
	return out
}

//hot:path
func (e *engine) appends(xs []int) {
	e.scratch = append(e.scratch, 1) // want `growing append in hot path: base is not a scratch-backed local`
	var acc []int
	acc = append(acc, 1) // want `growing append to "acc" in hot path`
	s := make([]int, 0, 8)
	s = append(s, 2) // silent: make-backed
	u := s
	u = append(u, 3) // silent: copy of a backed variable
	u = xs
	u = append(u, 4) // want `growing append to "u" in hot path`
	w := u[:0]
	w = append(w, 5) // silent: rebacked by the reslice
	_, _, _ = s, u, w
}

//hot:path
func (e *engine) swap(s []int32) {
	aux := make([]int32, len(s))
	from, to := s, aux
	for pass := 0; pass < 4; pass++ {
		to = to[:len(from)]
		from, to = to, from
	}
	to = append(to, 9) // silent: both swap halves stay backed
	_ = from
}

//hot:path
func (e *engine) format(x int) {
	fmt.Printf("x=%d\n", x) // want `fmt.Printf in hot path: formatting allocates`
}

//hot:path
func (e *engine) literals() {
	m := map[int]int{} // want `map literal in hot path: allocates`
	s := []int{1, 2}   // want `slice literal in hot path: allocates`
	a := [2]int{1, 2}  // silent: array literal lives on the stack
	_, _, _ = m, s, a
}

func sink(v interface{}) { _ = v }

//hot:path
func (e *engine) boxing(n int, p *engine) {
	sink(n)               // want `interface argument boxes int in hot path`
	sink(p)               // silent: pointers are already one word
	sink(nil)             // silent: nil needs no box
	var i interface{} = n // want `assignment to interface boxes int in hot path`
	var j interface{} = p // silent
	var any interface{}
	any = i // silent: interface to interface
	_, _, _ = i, j, any
}

//hot:path
func (e *engine) closures(xs []int) func() {
	sortFunc(xs, func(a, b int) int { return xs[a] - xs[b] }) // silent: direct call argument
	f := func() {}                                            // silent: plain local
	f()
	e.cb = func() {}  // want `closure stored outside the stack frame: allocates`
	defer func() {}() // want `closure in go/defer escapes hot path: allocates`
	return func() {}  // want `closure returned from hot path: allocates`
}

// Package work is outside the hot-path allowlist: the annotation itself
// is the finding here.
package work

//hot:path
func NotEligible() { // want `annotation outside the hot-path allowlist`
	var s []int
	s = append(s, 1) // silent: the package is not policed
	_ = s
}

func helper() {
	//hot:path floating, not a function doc comment // want `must be in a function declaration's doc comment`
	_ = 0
}

// Package ctxflow guards the context chain below the hotcore facade. PR 6
// threaded per-request deadlines through hotcore.PreprocessCtx so daemon
// backpressure actually cancels abandoned preprocessing (DESIGN.md §14); a
// context minted from context.Background() anywhere below that facade
// silently detaches the work from its caller's deadline.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are banned inside internal
//     packages (the facade's cmd/, examples/ and test callers legitimately
//     mint roots; internal/obs owns its own shutdown deadline and is
//     exempt).
//  2. A function that receives a context.Context must thread it: every
//     context-typed argument it passes must derive from the parameter —
//     the parameter itself, a variable assigned from a context-returning
//     call fed by a derived context (context.WithTimeout(ctx, d)), or a
//     call whose own arguments include one. Derivation is tracked
//     flow-sensitively on the CFG, so a reassignment like
//     `ctx = context.Background()` severs it on the paths below. Function
//     literals inside the function may use any context the enclosing body
//     ever derived (captured contexts are threaded, not minted).
//
// The pass cannot see a context-capable sibling called through its
// context-free wrapper (PreprocessOpts calling PreprocessCtx is invisible
// at the wrapper's callsites); that interprocedural gap is documented in
// DESIGN.md §16 and held shut by rule 1.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// exemptSuffixes lists internal packages allowed to mint root contexts:
// the observability layer's graceful-stop deadline has no caller to
// inherit from.
var exemptSuffixes = []string{"internal/obs"}

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "functions receiving a context.Context must thread it to every context-capable callee; " +
		"no context.Background()/TODO() below the facade (internal packages)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	banRoots := strings.Contains("/"+pass.Pkg.Path(), "/internal/") &&
		!analysis.PathHasAnySuffix(pass.Pkg.Path(), exemptSuffixes)
	if banRoots {
		pass.Inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if pass.IsPkgFunc(call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s below the facade: internal code inherits its context from the caller", name)
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// ctxParams collects the context-typed parameter objects of a function
// type.
func ctxParams(pass *analysis.Pass, ft *ast.FuncType) analysis.ObjSet {
	set := analysis.ObjSet{}
	if ft.Params == nil {
		return set
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isContext(obj.Type()) {
				set[obj] = true
			}
		}
	}
	return set
}

// checkFunc applies rule 2 to one declared function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	seed := ctxParams(pass, fd.Type)
	if len(seed) == 0 {
		return
	}
	g := analysis.NewCFG(fd.Body)

	// everDerived accumulates every object that was derived at any point,
	// for the flow-insensitive check inside function literals.
	everDerived := seed.Clone()

	transfer := func(n ast.Node, set analysis.ObjSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		transferAssign(pass, as, set)
		for o := range set {
			everDerived[o] = true
		}
	}

	visit := func(n ast.Node, in analysis.ObjSet) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // checked flow-insensitively below
			}
			if call, ok := m.(*ast.CallExpr); ok {
				checkCallArgs(pass, call, in)
			}
			return true
		})
	}
	analysis.SolveForward(g, seed, transfer, visit)

	// Function literals: captured contexts count as derived if the outer
	// body ever derived them; a literal's own context parameters join in.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := everDerived.Clone()
		inner.Union(ctxParams(pass, lit.Type))
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				checkCallArgs(pass, call, inner)
			}
			return true
		})
		return true
	})
}

// transferAssign marks variables assigned from derived contexts:
// `ctx2 := context.WithTimeout(ctx, d)`-style calls (any tuple position of
// context type becomes derived when an argument is derived) and plain
// copies. Any other assignment to a context variable severs it.
func transferAssign(pass *analysis.Pass, as *ast.AssignStmt, set analysis.ObjSet) {
	rhsDerived := func(i int) bool {
		if len(as.Lhs) == len(as.Rhs) {
			return derivedExpr(pass, as.Rhs[i], set)
		}
		// ctx, cancel := f(...): one multi-value call feeds every slot.
		return derivedExpr(pass, as.Rhs[0], set)
	}
	for i, lhs := range as.Lhs {
		id, ok := analysis.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !isContext(obj.Type()) {
			continue
		}
		if rhsDerived(i) {
			set[obj] = true
		} else {
			delete(set, obj)
		}
	}
}

// derivedExpr reports whether e evaluates to a context derived from the
// tracked set: a derived identifier, or a call any of whose arguments is
// derived (context.WithTimeout, custom wrappers).
func derivedExpr(pass *analysis.Pass, e ast.Expr, set analysis.ObjSet) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return set.Has(pass.ObjectOf(e))
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if derivedExpr(pass, arg, set) {
				return true
			}
		}
	}
	return false
}

// checkCallArgs flags context-typed arguments that do not derive from the
// function's own context.
func checkCallArgs(pass *analysis.Pass, call *ast.CallExpr, set analysis.ObjSet) {
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isContext(tv.Type) {
			continue
		}
		if derivedExpr(pass, arg, set) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"context-capable call does not receive this function's context: thread ctx instead of minting or caching one")
	}
}

package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"repro/internal/hotcore", "repro/internal/obs", "work")
}

// Package obs is a stub mirroring repro/internal/obs: exempt from the
// root-context ban (it owns its own shutdown deadline), but context
// parameters must still be threaded.
package obs

import (
	"context"
	"time"
)

func stop(ctx context.Context) error { return ctx.Err() }

func GracefulStop(drain time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain) // silent: obs is exempt
	defer cancel()
	return stop(ctx)
}

func Forward(ctx context.Context) error {
	return stop(context.TODO()) // want `does not receive this function's context`
}

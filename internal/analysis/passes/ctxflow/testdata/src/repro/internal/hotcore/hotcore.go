// Package hotcore is a stub mirroring repro/internal/hotcore for the
// ctxflow analyzer tests: an internal package, so root contexts are banned
// and context parameters must be threaded.
package hotcore

import (
	"context"
	"time"
)

func doWork(ctx context.Context, n int) error { return ctx.Err() }

func forEach(n int, f func(int) error) error { return f(0) }

func Preprocess(ctx context.Context, n int) error {
	if err := doWork(ctx, n); err != nil { // silent: parameter threaded
		return err
	}
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := doWork(sub, n); err != nil { // silent: derived via WithTimeout
		return err
	}
	ctx = context.Background() // want `context.Background below the facade`
	return doWork(ctx, n)      // want `does not receive this function's context`
}

// PreprocessOpts has no context parameter, so only the root-context ban
// applies to it.
func PreprocessOpts(n int) error {
	return Preprocess(context.Background(), 1) // want `context.Background below the facade`
}

func branch(ctx context.Context, b bool, n int) error {
	if b {
		ctx = context.TODO() // want `context.TODO below the facade`
	}
	// May-analysis: ctx still derives from the parameter on the b==false
	// path, so the threaded call below stays silent.
	return doWork(ctx, n)
}

func fan(ctx context.Context, n int) error {
	return forEach(n, func(i int) error {
		return doWork(ctx, i) // silent: captured context is threaded
	})
}

func fanBad(ctx context.Context, n int) error {
	_ = ctx
	return forEach(n, func(i int) error {
		return doWork(context.TODO(), i) // want `context.TODO below the facade` `does not receive this function's context`
	})
}

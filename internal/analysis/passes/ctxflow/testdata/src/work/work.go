// Package work is not an internal package: minting roots is fine here
// (a cmd/ main would look like this), but received contexts must still be
// threaded.
package work

import "context"

func sub(ctx context.Context, n int) error { return ctx.Err() }

func Root() error {
	ctx := context.Background() // silent: not below the facade
	return handle(ctx, 1)
}

func handle(ctx context.Context, n int) error {
	fresh := context.Background()         // silent: the ban does not apply here
	if err := sub(fresh, n); err != nil { // want `does not receive this function's context`
		return err
	}
	return sub(ctx, n) // silent
}

// Package model is a stub mirroring repro/internal/model for the detrand
// analyzer tests.
package model

import (
	"math/rand"
	"time"
)

func clocks(t0 time.Time) time.Duration {
	now := time.Now()   // want `time.Now in deterministic core`
	d := time.Since(t0) // want `time.Since in deterministic core`
	_ = time.Until(t0)  // want `time.Until in deterministic core`
	_ = now.Sub(t0)     // silent: pure value math
	_ = time.Unix(0, 0) // silent: construction, not a clock read
	_ = d.Seconds()     // silent: method on a value
	return d
}

func draws(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // silent: blessed seeded constructor
	x := r.Float64()                    // silent: method on seeded generator
	x += rand.Float64()                 // want `global rand.Float64 in deterministic core`
	rand.Shuffle(3, func(i, j int) {})  // want `global rand.Shuffle in deterministic core`
	_ = rand.Intn(10)                   // want `global rand.Intn in deterministic core`
	z := rand.NewZipf(r, 1.1, 1, 100)   // silent: blessed constructor
	_ = z.Uint64()
	return x
}

func mapState(m map[string]int) (string, int) {
	var last string
	best := -1
	sum := 0
	for k, v := range m {
		last = k // want `"last" is fed from a map range`
		sum += v // silent: additive reduction, not an element pick
		if v > best {
			best = v // silent: guarded max scan is order-independent
		}
	}
	counts := map[string]int{}
	for k, v := range m {
		counts[k] = v // silent: keyed write lands every element
	}
	for k := range m {
		tmp := k // silent: per-iteration variable
		_ = tmp
	}
	_ = counts
	return last, best + sum
}

// Package detrand forbids nondeterminism sources in the deterministic
// core. The golden-file regression net (DESIGN.md §10) and the daemon's
// content-addressed plan cache both assume that sim/model/partition/tile/
// workload compute bit-identical results from identical inputs; a stray
// wall-clock read or global math/rand call silently breaks that and only
// shows up as an unreproducible golden diff much later.
//
// In the scoped packages the pass flags
//
//   - time.Now / time.Since / time.Until — simulated time comes from the
//     model; wall time, where it is legitimately measured (histograms),
//     goes through the blessed obs.Now/obs.SinceNS clock so the callsites
//     are greppable and the core stays clock-free;
//   - package-level math/rand calls (rand.Intn, rand.Float64, rand.Shuffle,
//     …) — they draw from the global, process-seeded source. Constructing
//     a seeded generator (rand.New, rand.NewSource, rand.NewZipf) and
//     calling its methods is the blessed pattern;
//   - map-range-fed state: an unconditional assignment inside a
//     range-over-map that copies the loop key or value into a variable
//     that outlives the loop — after the loop the variable holds an
//     arbitrary element. (Guarded min/max scans are order-independent and
//     stay silent; ordered *output* from map ranges is mapiter's beat.)
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// scoped lists the deterministic-core package path suffixes.
var scoped = []string{
	"internal/sim", "internal/model", "internal/partition", "internal/tile", "internal/workload",
}

// blessedRand lists the math/rand package-level constructors that are fine:
// they build explicitly seeded generators instead of drawing from the
// global source.
var blessedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbids nondeterminism (time.Now, global math/rand, map-range-fed state) in the " +
		"deterministic sim/model/partition/tile/workload core",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.Pkg.Path(), scoped) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
	return nil
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return
	}
	sig, _ := f.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch f.Pkg().Path() {
	case "time":
		if isMethod {
			return // t.Sub, d.Seconds, … are pure value math
		}
		switch f.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in deterministic core: use the obs clock (obs.Now/obs.SinceNS) so wall time stays out of results", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if isMethod {
			return // methods on an explicitly seeded *rand.Rand
		}
		if !blessedRand[f.Name()] {
			pass.Reportf(call.Pos(),
				"global rand.%s in deterministic core: draw from a seeded rand.New(rand.NewSource(seed)) instead", f.Name())
		}
	}
}

// checkMapRange flags unconditional loop-variable copies into state that
// outlives a range-over-map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pass.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	// Walk only the unconditional spine of the body: statements not nested
	// under if/switch/select/for, where an assignment runs every iteration
	// and the last iteration — an arbitrary one — wins.
	var spine func(stmts []ast.Stmt)
	spine = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.BlockStmt:
				spine(s.List)
			case *ast.AssignStmt:
				checkSpineAssign(pass, rng, loopVars, s)
			}
		}
	}
	spine(rng.Body.List)
}

// checkSpineAssign flags `outer = <expr mentioning k or v>` on the loop
// spine.
func checkSpineAssign(pass *analysis.Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN {
		// := introduces a per-iteration variable; compound tokens (+=, …)
		// are reductions, which mapiter polices where order can matter.
		return
	}
	for i, lhs := range as.Lhs {
		root := analysis.RootIdent(lhs)
		if root == nil {
			continue
		}
		obj := pass.ObjectOf(root)
		if obj == nil || obj.Pos() >= rng.Pos() || loopVars[obj] {
			continue
		}
		// Keyed writes (m2[k] = v) land every element; only whole-variable
		// overwrites keep one arbitrary survivor.
		if hasIndex(lhs) {
			continue
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if mentionsAny(pass, rhs, loopVars) {
			pass.Reportf(as.Pos(),
				"%q is fed from a map range: the surviving element is arbitrary run to run", root.Name)
		}
	}
}

// hasIndex reports whether the lvalue chain contains an index expression.
func hasIndex(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// Package obs is the second nakedgo negative package: the observability
// layer's debug HTTP server owns a process-lifetime accept loop that
// cannot run on the bounded task pool.
package obs

// ServeDebug mimics the real debug server's accept-loop spawn; its go
// statement is allowed.
func ServeDebug(serve func()) (stop func()) {
	done := make(chan struct{})
	go func() {
		serve()
		close(done)
	}()
	return func() { <-done }
}

// Package par is the nakedgo negative package: the pool itself may spawn
// goroutines.
package par

// ForEach mimics the real pool's fan-out; its go statement is allowed.
func ForEach(n int, fn func(int)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// Package hottilesd is the third nakedgo negative package: the daemon's
// HTTP accept loop lives for the whole process and terminates with its
// listener, so it runs as a raw goroutine off the bounded pool.
package hottilesd

// Serve mimics the daemon's accept-loop spawn; its go statement is
// allowed.
func Serve(accept func()) (stop func()) {
	done := make(chan struct{})
	go func() {
		accept()
		close(done)
	}()
	return func() { <-done }
}

// Package work is the nakedgo positive package: raw goroutines outside
// the pool.
package work

import "sync"

// Fan spawns unbounded goroutines directly.
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `raw go statement outside internal/par`
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Background leaks a goroutine with no pool budget at all.
func Background(fn func()) {
	go fn() // want `raw go statement outside internal/par`
}

// Suppressed demonstrates the escape hatch: a justified //lint:ignore
// directive silences the diagnostic (no want here).
func Suppressed(fn func()) {
	//lint:ignore nakedgo testdata: exercising the suppression directive
	go fn()
}

// SuppressedTrailing uses the same-line form.
func SuppressedTrailing(fn func()) {
	go fn() //lint:ignore nakedgo testdata: trailing directive form
}

// WrongName names a different analyzer, so the diagnostic survives.
func WrongName(fn func()) {
	//lint:ignore mapiter testdata: directive for another analyzer
	go fn() // want `raw go statement outside internal/par`
}

// NoReason is malformed (no justification), so it does not suppress.
func NoReason(fn func()) {
	//lint:ignore nakedgo
	go fn() // want `raw go statement outside internal/par`
}

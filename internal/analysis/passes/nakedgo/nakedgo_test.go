package nakedgo_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/nakedgo"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, "testdata", nakedgo.Analyzer, "work",
		"repro/internal/par", "repro/internal/obs", "repro/cmd/hottilesd")
}

// Package nakedgo forbids raw `go` statements outside internal/par. The
// repository's concurrency model (DESIGN.md §9) routes every fan-out
// through par.ForEach/Chunks so total goroutine count stays bounded by the
// GOMAXPROCS pool budget and nested parallel sections cannot deadlock or
// oversubscribe; a stray `go` elsewhere escapes that budget and the
// par.pool.* observability counters. Test files are out of scope (the
// loader does not feed them to the suite) — exercising the pool from tests
// with raw goroutines is legitimate.
package nakedgo

import (
	"go/ast"

	"repro/internal/analysis"
)

// allowed lists the package path suffixes that may spawn goroutines: the
// pool itself, the observability layer's debug HTTP server, and the
// hottilesd daemon — both own process-lifetime accept loops that must
// outlive any single fan-out and terminate with their listener, a shape
// the bounded task pool cannot express. The daemon's request handlers
// still do all preprocessing work on the par pool.
var allowed = []string{"internal/par", "internal/obs", "cmd/hottilesd"}

// Analyzer is the nakedgo pass.
var Analyzer = &analysis.Analyzer{
	Name: "nakedgo",
	Doc:  "forbids raw go statements outside internal/par (all concurrency goes through the bounded pool)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathHasAnySuffix(pass.Pkg.Path(), allowed) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(),
				"raw go statement outside internal/par: use par.ForEach/par.Chunks so concurrency stays inside the bounded pool")
		}
		return true
	})
	return nil
}

// Package work exercises the errwrap analyzer: chain-preserving wrapping
// and sentinel comparisons.
package work

import (
	"errors"
	"fmt"
	"io"
)

var ErrBusy = errors.New("work: busy")

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

func wrap(path string, err error) error {
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err) // silent: wrapped
	}
	return fmt.Errorf("load %s: %v", path, err) // want `error formatted with %v loses the chain`
}

func wrapMore(err error, pe *parseError) {
	_ = fmt.Errorf("oops: %s", err)              // want `error formatted with %s loses the chain`
	_ = fmt.Errorf("oops: %q", pe)               // want `error formatted with %q loses the chain`
	_ = fmt.Errorf("kind %T of %w", pe, err)     // silent: %T prints a type, %w wraps
	_ = fmt.Errorf("%*d apples %v", 3, 7, err)   // want `error formatted with %v loses the chain`
	_ = fmt.Errorf("count %d, text %s", 3, "ok") // silent: no error argument
	f := "dynamic %v"
	_ = fmt.Errorf(f, err)                       // silent: non-constant format is unknowable
	_ = fmt.Errorf("%[1]v and again %[1]v", err) // silent: indexed args bail out
}

func compare(err error) bool {
	if err == io.EOF { // want `sentinel comparison EOF ==`
		return true
	}
	if errors.Is(err, io.EOF) { // silent: the blessed form
		return true
	}
	if err != ErrBusy { // want `sentinel comparison ErrBusy !=`
		return false
	}
	return err == nil // silent: nil check is the error idiom
}

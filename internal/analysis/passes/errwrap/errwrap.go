// Package errwrap keeps error chains intact. The daemon maps sentinel
// errors to HTTP statuses (planstore.ErrBusy → 429) and tests assert on
// wrapped causes with errors.Is; both break silently when an error is
// flattened to text on the way up. The pass flags
//
//   - fmt.Errorf formatting an error value with a value verb (%v, %s, %q,
//     …) instead of %w — the cause survives as prose but leaves the chain,
//     so errors.Is/As stop seeing it;
//   - == / != comparisons against a declared error sentinel (a
//     package-level error variable, io.EOF-style) — wrapped errors compare
//     unequal, so the comparison silently stops matching; errors.Is walks
//     the chain.
//
// Comparisons with nil stay silent (that is the error idiom), as do
// fmt.Errorf calls with a non-constant format string (the verbs are
// unknowable statically).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "errors kept on the chain: fmt.Errorf wraps causes with %w, " +
		"sentinel comparisons use errors.Is instead of ==",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, n)
		case *ast.BinaryExpr:
			checkSentinelCompare(pass, n)
		}
		return true
	})
	return nil
}

// checkErrorf matches fmt.Errorf verbs to arguments and flags error-typed
// arguments formatted with anything but %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !pass.IsPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed arguments (%[n]v): matching is not positional
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb == 'w' || verb == 'T' {
			continue // %w wraps; %T prints only the dynamic type
		}
		if isErrorType(pass.TypesInfo.Types[args[i]].Type) {
			pass.Reportf(args[i].Pos(),
				"error formatted with %%%c loses the chain: wrap it with %%w so errors.Is keeps working", verb)
		}
	}
}

// parseVerbs returns the argument-consuming verbs of a format string in
// order, with '*' width/precision slots represented as '*'. ok is false
// for explicit argument indexes, which break positional matching.
func parseVerbs(format string) (verbs []rune, ok bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an argument of its own.
		for i < len(rs) {
			c := rs[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(rs) {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (nil-safe).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}

// checkSentinelCompare flags ==/!= where one operand is a declared error
// sentinel and the other is a non-nil error value.
func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var sentinel *ast.Ident
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		side, other := pair[0], pair[1]
		name := sentinelIdent(pass, side)
		if name == nil {
			continue
		}
		if t := pass.TypesInfo.Types[other].Type; !isErrorType(t) {
			continue // comparing the sentinel with nil or a non-error
		}
		sentinel = name
		break
	}
	if sentinel == nil {
		return
	}
	pass.Reportf(be.Pos(),
		"sentinel comparison %s %s …: wrapped errors slip through ==, use errors.Is", sentinel.Name, be.Op)
}

// sentinelIdent returns the identifier when e resolves to a package-level
// error variable (possibly selector-qualified: io.EOF).
func sentinelIdent(pass *analysis.Pass, e ast.Expr) *ast.Ident {
	var id *ast.Ident
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return id
}

package errwrap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "work")
}

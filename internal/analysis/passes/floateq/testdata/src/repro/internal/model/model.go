// Package model sits at an in-scope path suffix for the floateq analyzer.
package model

// TimesMatch compares two computed times exactly: both operands flagged
// comparisons.
func TimesMatch(a, b float64) bool {
	if a == b { // want `exact == on floating point`
		return true
	}
	return a-1 != b+1 // want `exact != on floating point`
}

// SentinelChecks compare against compile-time constants: silent.
func SentinelChecks(t float64) bool {
	if t == 0 {
		return false
	}
	const unset = -1.0
	return t != unset
}

// IntCompare is not floating point: silent.
func IntCompare(a, b int) bool { return a == b }

// Package outofscope is outside the floateq path scope: even exact float
// comparison stays silent here.
package outofscope

// Same compares floats exactly but is not in a scoped package.
func Same(a, b float64) bool { return a == b }

// Package floateq flags == and != between computed floating-point values
// in the numeric core (internal/model, internal/partition, internal/sim).
// The analytical model and the simulator both derive times from long float
// pipelines; exact comparison there is either dead (never true) or a
// latent nondeterminism when an optimization reassociates the arithmetic.
// The tolerance-aware golden differ (PR 2) compares with an epsilon for
// exactly this reason — code in these packages must do the same
// (math.Abs(a-b) <= eps) or compare representable sentinels only.
//
// Comparisons where either operand is a compile-time constant (x == 0,
// t != initialSentinel) are exempt: sentinel checks against exactly
// representable values are deliberate and safe.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// scope lists the package path suffixes where exact float comparison is an
// error.
var scope = []string{"internal/model", "internal/partition", "internal/sim"}

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on computed floats in internal/model, internal/partition and internal/sim (use an epsilon)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.Pkg.Path(), scope) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
			return true
		}
		if isConst(pass, cmp.X) || isConst(pass, cmp.Y) {
			return true
		}
		pass.Reportf(cmp.OpPos,
			"exact %s on floating point: compare with an epsilon (math.Abs(a-b) <= eps), matching the golden differ's tolerance",
			cmp.Op)
		return true
	})
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}

package lockcopy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockcopy"
)

func TestLockCopy(t *testing.T) {
	analysistest.Run(t, "testdata", lockcopy.Analyzer, "locks", "repro/internal/par")
}

// Package lockcopy extends go vet's copylocks with the repository's own
// synchronization types and with the singleflight-cache aliasing rule.
//
// Two invariant families are enforced:
//
//  1. Values containing sync primitives or a par.Cache must never be
//     copied: by-value parameters, results, receivers, copy-assignments
//     from an existing value, and by-value range bindings all silently
//     fork the lock (or the cache's flight map), splitting what must be a
//     single synchronization domain. par.Cache fields embedded by value in
//     a long-lived struct are the intended use and stay silent — it is the
//     copy of an existing value that is flagged.
//
//  2. Results obtained from par.Cache.Get are shared: every concurrent
//     caller for a key observes the same pointer (DESIGN.md §9), so
//     mutating through that pointer ("re-wrapping" a cached value) is a
//     data race and corrupts the cache for every later reader. Writes
//     through a variable bound directly to a Cache.Get result are flagged.
package lockcopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockcopy pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcopy",
	Doc:  "flags copies of sync/par.Cache-bearing values and mutation of par.Cache.Get results",
	Run:  run,
}

// syncTypes are the stdlib types whose by-value copy is always a bug.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(pass, x.Recv, "receiver")
			if x.Type.Params != nil {
				checkFieldList(pass, x.Type.Params, "parameter")
			}
			if x.Type.Results != nil {
				checkFieldList(pass, x.Type.Results, "result")
			}
			checkCacheAliasing(pass, x.Body)
		case *ast.FuncLit:
			if x.Type.Params != nil {
				checkFieldList(pass, x.Type.Params, "parameter")
			}
			if x.Type.Results != nil {
				checkFieldList(pass, x.Type.Results, "result")
			}
		case *ast.AssignStmt:
			checkAssign(pass, x)
		case *ast.RangeStmt:
			checkRange(pass, x)
		}
		return true
	})
	return nil
}

// checkFieldList flags by-value lock-bearing parameters/results/receivers.
func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.TypesInfo.Types[f.Type].Type
		if t == nil {
			continue
		}
		if name := lockPath(t); name != "" {
			pass.Reportf(f.Type.Pos(), "%s passes lock by value: type contains %s; use a pointer", kind, name)
		}
	}
}

// checkAssign flags statements that copy an existing lock-bearing value.
// Fresh values (composite literals, new(T)) are fine — it is aliasing an
// existing lock that forks the synchronization domain.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !copiesExistingValue(rhs) {
			continue
		}
		t := pass.TypesInfo.Types[rhs].Type
		if t == nil {
			continue
		}
		if name := lockPath(t); name != "" {
			pass.Reportf(as.Lhs[i].Pos(), "assignment copies lock value: type contains %s; use a pointer", name)
		}
	}
}

// checkRange flags `for _, v := range xs` where v copies a lock-bearing
// element.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// A `:=` range binding is a definition, not a typed expression; resolve
	// its type through the defined object.
	t := pass.TypesInfo.Types[rng.Value].Type
	if t == nil {
		if id, ok := rng.Value.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return
	}
	if name := lockPath(t); name != "" {
		pass.Reportf(rng.Value.Pos(), "range binding copies lock value: type contains %s; range over indices or pointers", name)
	}
}

// copiesExistingValue reports whether e denotes an existing addressable-ish
// value (whose assignment is a copy) rather than a freshly constructed one.
func copiesExistingValue(e ast.Expr) bool {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockPath returns a human-readable description of the first sync primitive
// or par.Cache found by value inside t, or "" if t is copy-safe. Pointers,
// slices, maps and channels stop the walk: copying a pointer to a lock is
// fine.
func lockPath(t types.Type) string {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) string
	walk = func(t types.Type) string {
		if seen[t] {
			return ""
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				if obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
					return "sync." + obj.Name()
				}
				if obj.Name() == "Cache" && analysis.PathHasSuffix(obj.Pkg().Path(), "internal/par") {
					return "par.Cache"
				}
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if name := walk(u.Field(i).Type()); name != "" {
					return name
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return ""
	}
	return walk(t)
}

// checkCacheAliasing flags writes through variables bound to par.Cache.Get
// results within one function body.
func checkCacheAliasing(pass *analysis.Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	// Pass 1: variables directly bound to a Cache.Get result.
	cached := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := analysis.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCacheGet(pass, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				cached[obj] = true
			}
		}
		return true
	})
	if len(cached) == 0 {
		return
	}
	// Pass 2: writes through those variables (v.Field = …, v[i] = …, *v = …).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if _, isIdent := analysis.Unparen(lhs).(*ast.Ident); isIdent {
				continue // rebinding the variable itself is fine
			}
			root := analysis.RootIdent(lhs)
			if root == nil {
				continue
			}
			if obj := pass.ObjectOf(root); obj != nil && cached[obj] {
				pass.Reportf(lhs.Pos(),
					"mutation of %q, a value shared via par.Cache.Get: cached results are observed by every caller; copy before modifying",
					root.Name)
			}
		}
		return true
	})
}

// isCacheGet recognizes calls to (*par.Cache[K, V]).Get.
func isCacheGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return false
	}
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cache" && obj.Pkg() != nil &&
		analysis.PathHasSuffix(obj.Pkg().Path(), "internal/par")
}

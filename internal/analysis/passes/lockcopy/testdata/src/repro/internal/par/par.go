// Package par is a minimal stub of the real singleflight cache, placed at
// the matching import-path suffix so lockcopy's type checks apply to
// testdata code.
package par

import "sync"

// Cache mirrors the real par.Cache surface.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// Get returns the cached value for key, building it on first use.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[key]; ok {
		return v, nil
	}
	v, err := build()
	if err == nil {
		if c.m == nil {
			c.m = map[K]V{}
		}
		c.m[key] = v
	}
	return v, err
}

// Package locks exercises the lockcopy analyzer.
package locks

import (
	"sync"

	"repro/internal/par"
)

// guarded embeds locks by value, the intended way to own them.
type guarded struct {
	mu    sync.Mutex
	cache par.Cache[string, *entry]
	n     int
}

type entry struct {
	Val int
}

// byValueParam receives a lock-bearing struct by value.
func byValueParam(g guarded) int { // want `parameter passes lock by value: type contains sync.Mutex`
	return g.n
}

// byValueCacheParam receives the cache itself by value.
func byValueCacheParam(c par.Cache[string, *entry]) { // want `parameter passes lock by value: type contains par.Cache`
	_, _ = c.Get("k", func() (*entry, error) { return &entry{}, nil })
}

// copyAssign forks an existing mutex.
func copyAssign(g *guarded) {
	mu := g.mu // want `assignment copies lock value: type contains sync.Mutex`
	mu.Lock()
}

// rangeCopy copies lock-bearing elements per iteration.
func rangeCopy(gs []guarded) int {
	n := 0
	for _, g := range gs { // want `range binding copies lock value: type contains sync.Mutex`
		n += g.n
	}
	return n
}

// mutateCached rewrites a value shared through the singleflight cache.
func mutateCached(g *guarded) {
	e, _ := g.cache.Get("k", func() (*entry, error) { return &entry{Val: 1}, nil })
	e.Val = 2 // want `mutation of "e", a value shared via par.Cache.Get`
}

// freshValue constructs locks in place: silent.
func freshValue() *guarded {
	g := guarded{n: 1}
	return &g
}

// pointerParam passes the lock by pointer: silent.
func pointerParam(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// readCached only reads the shared value and rebinds the variable: silent.
func readCached(g *guarded) int {
	e, _ := g.cache.Get("k", func() (*entry, error) { return &entry{Val: 1}, nil })
	n := e.Val
	e = &entry{Val: n} // rebinding the local is not mutation of the shared value
	return e.Val
}

// indexPointers iterates pointers, no lock copies: silent.
func indexPointers(gs []*guarded) int {
	n := 0
	for _, g := range gs {
		n += g.n
	}
	return n
}

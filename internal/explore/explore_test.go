package explore

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func testMatrix(seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	return gen.BlockCommunity(rng, 1024, 64, 0.5, 4)
}

func TestIsoScaleSweep(t *testing.T) {
	entries, err := IsoScale(testMatrix(1), 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("got %d entries, want 9 (0-8 … 8-0)", len(entries))
	}
	for i, e := range entries {
		if e.ColdScale != i || e.HotScale != 8-i {
			t.Fatalf("entry %d is %s", i, e.Name())
		}
		if e.Predicted <= 0 || e.Actual <= 0 {
			t.Fatalf("%s: non-positive runtimes %+v", e.Name(), e)
		}
	}
	if entries[0].Name() != "0-8" || entries[8].Name() != "8-0" {
		t.Fatal("naming wrong")
	}
}

func TestIsoScaleDegenerateEndsAreHomogeneous(t *testing.T) {
	entries, err := IsoScale(testMatrix(2), 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range entries[0].Result.Hot { // 0-4: no cold pool
		if !h {
			t.Fatalf("0-4 entry has cold tile %d", i)
		}
	}
	for i, h := range entries[len(entries)-1].Result.Hot { // 4-0: no hot pool
		if h {
			t.Fatalf("4-0 entry has hot tile %d", i)
		}
	}
}

func TestBest(t *testing.T) {
	entries := []Entry{
		{ColdScale: 0, HotScale: 2, Predicted: 3, Actual: 5},
		{ColdScale: 1, HotScale: 1, Predicted: 1, Actual: 4},
		{ColdScale: 2, HotScale: 0, Predicted: 2, Actual: 1},
	}
	p, a := Best(entries)
	if p != 1 || a != 2 {
		t.Fatalf("Best = %d, %d", p, a)
	}
}

func TestIsoScaleErrors(t *testing.T) {
	if _, err := IsoScale(testMatrix(3), 0, 128); err == nil {
		t.Fatal("expected total-scale error")
	}
}

// Package explore implements the architecture-exploration use case of
// §VIII-B: sweep the "iso-scale" skewed SPADE-Sextans architectures (c-h
// with c+h fixed), partition each with HotTiles, and compare the runtime
// the model predicts against the simulated one — both for the
// fixed-architecture scenario (Figure 16: best average architecture) and
// the reconfigurable scenario (Table IX: best architecture per matrix).
package explore

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// Entry is one (matrix, iso-scale architecture) evaluation.
type Entry struct {
	ColdScale, HotScale int
	// Predicted is the HotTiles model's runtime; Actual the simulated one.
	Predicted, Actual float64
	// Result is the HotTiles partitioning used by both.
	Result partition.Result
}

// Name returns the paper's "c-h" architecture label.
func (e Entry) Name() string { return fmt.Sprintf("%d-%d", e.ColdScale, e.HotScale) }

// IsoScale evaluates every skewed SPADE-Sextans architecture with
// coldScale+hotScale == total on matrix m, using tileSize tiles. Entries
// arrive in 0-total … total-0 order.
func IsoScale(m *sparse.COO, total, tileSize int) ([]Entry, error) {
	if total < 1 {
		return nil, fmt.Errorf("explore: total scale %d < 1", total)
	}
	// The tiling only depends on m and tileSize, not on the skew: build the
	// grid once instead of once per architecture. The skewed architectures'
	// worker parameters do vary with the scale, so estimates are per-entry.
	g, err := tile.Partition(m, tileSize, tileSize)
	if err != nil {
		return nil, err
	}
	// The c-loop entries are independent (HotTiles and the simulator only
	// read the shared grid); run them concurrently into indexed slots.
	out := make([]Entry, total+1)
	if err := par.ForEachErr(total+1, func(c int) error {
		h := total - c
		a := arch.SpadeSextansSkewed(c, h)
		a.TileH, a.TileW = tileSize, tileSize
		res, err := partition.HotTiles(g, a.Config(2))
		if err != nil {
			return err
		}
		// No sim.UnitCache here (unlike GNN layers or batches): every entry
		// simulates a distinct skewed architecture, so no two runs could
		// share built unit pools — the Runner free list inside sim.Run is
		// the applicable reuse.
		r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{
			Serial:         res.Serial,
			SkipFunctional: true,
		})
		if err != nil {
			return err
		}
		out[c] = Entry{
			ColdScale: c,
			HotScale:  h,
			Predicted: res.Predicted,
			Actual:    r.Time,
			Result:    res,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Best returns the indices of the entries with the lowest predicted and
// lowest actual runtimes (the Table IX columns).
func Best(entries []Entry) (predBest, actualBest int) {
	for i, e := range entries {
		if e.Predicted < entries[predBest].Predicted {
			predBest = i
		}
		if e.Actual < entries[actualBest].Actual {
			actualBest = i
		}
	}
	return predBest, actualBest
}

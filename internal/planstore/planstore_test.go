package planstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// newStore builds a test store with a tiny footprint.
func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func constBuild(val []byte) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) { return val, nil }
}

func TestGetBuildsOnceThenHits(t *testing.T) {
	s := newStore(t, Config{})
	calls := 0
	build := func(context.Context) ([]byte, error) {
		calls++
		return []byte("plan"), nil
	}
	for i := 0; i < 3; i++ {
		got, err := s.Get(context.Background(), "k", build)
		if err != nil || string(got) != "plan" {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
	if calls != 1 {
		t.Fatalf("build ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Builds != 1 || st.MemHits != 2 {
		t.Fatalf("stats %+v: want 1 build, 2 mem hits", st)
	}
}

// TestSingleflightCoalesces pins the daemon's batching guarantee: N
// concurrent Gets for one key run the build exactly once, and followers
// join the flight without consuming gate capacity (the gate here has one
// slot and no queue, so a follower needing a slot would be refused).
func TestSingleflightCoalesces(t *testing.T) {
	s := newStore(t, Config{MaxActive: 1, MaxQueue: -1})
	const followers = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var builds int
	build := func(context.Context) ([]byte, error) {
		builds++
		close(entered)
		<-release
		return []byte("shared"), nil
	}

	errs := make([]error, followers+1)
	vals := make([][]byte, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], errs[0] = s.Get(context.Background(), "k", build)
	}()
	<-entered // leader is inside the build; everyone else must coalesce

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = s.Get(context.Background(), "k", build)
		}(i)
	}
	// Wait until every follower has joined the flight, then let the
	// build finish.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil || string(vals[i]) != "shared" {
			t.Fatalf("caller %d: %q, %v", i, vals[i], err)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if st := s.Stats(); st.Builds != 1 || st.Coalesced != followers {
		t.Fatalf("stats %+v", st)
	}
}

// TestBackpressureRefusesWhenFull pins the overload contract: with one
// active slot and a one-deep queue, the third concurrent distinct build is
// refused with ErrBusy instead of waiting unboundedly.
func TestBackpressureRefusesWhenFull(t *testing.T) {
	s := newStore(t, Config{MaxActive: 1, MaxQueue: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := func(context.Context) ([]byte, error) {
		close(entered)
		<-release
		return []byte("a"), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Get(context.Background(), "a", slow); err != nil {
			t.Errorf("active build: %v", err)
		}
	}()
	<-entered

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Get(context.Background(), "b", constBuild([]byte("b"))); err != nil {
			t.Errorf("queued build: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second build never queued: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Get(context.Background(), "c", constBuild([]byte("c"))); !errors.Is(err, ErrBusy) {
		t.Fatalf("third build: err = %v, want ErrBusy", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v: want 1 rejection", st)
	}
	close(release)
	wg.Wait()
}

// TestNoQueueMode: MaxQueue < 0 refuses as soon as the slots are taken.
func TestNoQueueMode(t *testing.T) {
	s := newStore(t, Config{MaxActive: 1, MaxQueue: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Get(context.Background(), "a", func(context.Context) ([]byte, error) {
			close(entered)
			<-release
			return []byte("a"), nil
		})
	}()
	<-entered
	if _, err := s.Get(context.Background(), "b", constBuild(nil)); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	close(release)
	wg.Wait()
}

// TestCanceledWhileQueued: a builder waiting for a slot honors its
// context instead of holding the queue position forever.
func TestCanceledWhileQueued(t *testing.T) {
	s := newStore(t, Config{MaxActive: 1, MaxQueue: 4})
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Get(context.Background(), "a", func(context.Context) ([]byte, error) {
			close(entered)
			<-release
			return []byte("a"), nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Get(ctx, "b", constBuild(nil))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("build never queued: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
	if st := s.Stats(); st.Queued != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestFollowerTimeout: a follower whose context expires stops waiting; the
// leader's build continues and lands in the cache.
func TestFollowerTimeout(t *testing.T) {
	s := newStore(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Get(context.Background(), "k", func(context.Context) ([]byte, error) {
			close(entered)
			<-release
			return []byte("late"), nil
		})
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Get(ctx, "k", constBuild(nil)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	close(release)
	wg.Wait()
	if got, ok := s.Peek("k"); !ok || string(got) != "late" {
		t.Fatalf("leader's build not cached: %q, %v", got, ok)
	}
}

// TestBuildErrorsNotCached: a failed build surfaces its error and the next
// Get retries — transient daemon failures must not poison a hash forever.
func TestBuildErrorsNotCached(t *testing.T) {
	s := newStore(t, Config{})
	boom := errors.New("boom")
	calls := 0
	if _, err := s.Get(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := s.Get(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || string(got) != "ok" {
		t.Fatalf("retry: %q, %v", got, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2", calls)
	}
	if st := s.Stats(); st.BuildErrors != 1 || st.Builds != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, Config{Dir: dir})
	want := bytes.Repeat([]byte("p"), 4096)
	if _, err := s.Get(context.Background(), "abc123", constBuild(want)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "abc123.plan")); err != nil {
		t.Fatalf("plan not spilled: %v", err)
	}

	// A fresh store over the same directory serves the plan from disk
	// without building.
	s2 := newStore(t, Config{Dir: dir})
	got, err := s2.Get(context.Background(), "abc123", func(context.Context) ([]byte, error) {
		t.Fatal("build ran despite disk spill")
		return nil, nil
	})
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("disk read: %d bytes, %v", len(got), err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Peek promotes the disk copy without building, on yet another store.
	s3 := newStore(t, Config{Dir: dir})
	if got, ok := s3.Peek("abc123"); !ok || !bytes.Equal(got, want) {
		t.Fatalf("peek: %d bytes, %v", len(got), ok)
	}
}

// TestDiskPathRejectsHostileKeys: keys that could escape the spill
// directory never touch the filesystem.
func TestDiskPathRejectsHostileKeys(t *testing.T) {
	s := newStore(t, Config{Dir: t.TempDir()})
	for _, key := range []string{"../etc/passwd", "a/b", "", ".hidden", "a b"} {
		if p := s.diskPath(key); p != "" {
			t.Errorf("key %q mapped to %q, want rejection", key, p)
		}
	}
	if p := s.diskPath("sha-256_OK.v1"); p == "" {
		t.Error("benign key rejected")
	}
}

// TestLRUEvicts: the memory cache drops cold entries once over budget and
// the newest value always stays resident.
func TestLRUEvicts(t *testing.T) {
	s := newStore(t, Config{MaxBytes: 10})
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := s.Get(context.Background(), key, constBuild([]byte("1234"))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CachedBytes > 10 {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions: %+v", st)
	}
	if _, ok := s.Peek("k3"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := s.Peek("k0"); ok {
		t.Fatal("oldest entry survived a full cache")
	}
}

func TestRetryAfterBounds(t *testing.T) {
	s := newStore(t, Config{})
	if got := s.RetryAfter(); got != time.Second {
		t.Fatalf("cold RetryAfter = %v, want 1s", got)
	}
	s.observeBuild(int64(5 * time.Second))
	if got := s.RetryAfter(); got < time.Second || got > time.Minute {
		t.Fatalf("RetryAfter = %v out of [1s, 60s]", got)
	}
	s.observeBuild(int64(10 * time.Minute))
	if got := s.RetryAfter(); got != time.Minute {
		t.Fatalf("RetryAfter = %v, want 60s clamp", got)
	}
}

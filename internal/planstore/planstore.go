// Package planstore is the content-addressed plan cache behind the
// hottilesd daemon: a bounded byte store keyed by matrix+config hash, with
// singleflight build deduplication, admission control (bounded active
// builds plus a bounded wait queue — overload is refused, not buffered
// without limit), an in-memory LRU over the serialized plans, and an
// optional disk spill so plans survive restarts. It stores opaque bytes on
// purpose: the daemon serializes plans with hotcore.WritePlan, but nothing
// here depends on the plan format, so the store is testable without
// running the pipeline.
package planstore

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Process-wide store observability, aggregated across instances (a daemon
// runs one store; tests may run several). Per-instance numbers come from
// Stats.
var (
	storeBuilds    = obs.NewCounter("planstore.builds")
	storeBuildErrs = obs.NewCounter("planstore.build.errors")
	storeMemHits   = obs.NewCounter("planstore.hits.mem")
	storeDiskHits  = obs.NewCounter("planstore.hits.disk")
	storeCoalesced = obs.NewCounter("planstore.coalesced")
	storeRejected  = obs.NewCounter("planstore.rejected")
	storeEvictions = obs.NewCounter("planstore.evictions")
	storeActive    = obs.NewGauge("planstore.active")
	storeQueued    = obs.NewGauge("planstore.queued")
	storeBuildNS   = obs.NewHistogram("planstore.build.ns")
)

// ErrBusy is returned when both the active-build slots and the wait queue
// are full. Callers translate it into backpressure (hottilesd answers
// 429 with a Retry-After derived from RetryAfter).
var ErrBusy = errors.New("planstore: build queue full")

// Config sizes a Store. The zero value is usable: defaults are one active
// build (preprocessing saturates the machine; more builds than cores just
// thrash), a 64-deep wait queue, a 256 MiB memory cache, and no disk spill.
type Config struct {
	// Dir, when non-empty, is the disk spill directory: every built plan
	// is persisted there (write-to-temp, rename) and memory misses check
	// it before rebuilding. The directory is created if missing.
	Dir string
	// MaxBytes bounds the in-memory cache (sum of value lengths).
	MaxBytes int64
	// MaxActive bounds concurrently running builds.
	MaxActive int
	// MaxQueue bounds builders waiting for an active slot; a request
	// arriving with the queue full gets ErrBusy. Negative means "no
	// queue": every build either gets a slot immediately or is refused.
	MaxQueue int
}

const (
	defaultMaxBytes  = 256 << 20
	defaultMaxActive = 1
	defaultMaxQueue  = 64
)

// Stats is a point-in-time view of one Store's behavior. Builds counts
// build function invocations — the singleflight and cache tests pin their
// guarantees on it.
type Stats struct {
	Builds      int64 // build invocations (cache misses that ran the pipeline)
	BuildErrors int64 // builds that returned an error (not cached)
	MemHits     int64 // lookups served from the memory LRU
	DiskHits    int64 // lookups served from the spill directory
	Coalesced   int64 // lookups that joined another caller's in-flight build
	Rejected    int64 // lookups refused with ErrBusy
	Evictions   int64 // values dropped from the memory LRU
	Active      int   // builds running now
	Queued      int   // builders waiting for a slot now
	CachedPlans int   // values in the memory LRU
	CachedBytes int64 // sum of value lengths in the memory LRU
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

type memEntry struct {
	key string
	val []byte
}

// Store is the content-addressed cache. Create with New.
type Store struct {
	cfg Config

	mu      sync.Mutex
	flights map[string]*flight
	mem     map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64

	slots  chan struct{} // buffered MaxActive: holding a token = building
	queued atomic.Int64

	builds, buildErrs, memHits, diskHits atomic.Int64
	coalesced, rejected, evictions       atomic.Int64

	// ewmaBuildNS tracks recent build cost for Retry-After estimation.
	ewmaBuildNS atomic.Int64
}

// New returns a Store sized by cfg, creating the spill directory when one
// is configured.
func New(cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultMaxBytes
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = defaultMaxActive
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("planstore: spill dir: %w", err)
		}
	}
	return &Store{
		cfg:     cfg,
		flights: map[string]*flight{},
		mem:     map[string]*list.Element{},
		lru:     list.New(),
		slots:   make(chan struct{}, cfg.MaxActive),
	}, nil
}

// Get returns the bytes for key, building them at most once per miss:
// concurrent callers with the same key share one build (followers do not
// consume queue slots). Build errors are returned to every waiter of that
// flight but are not cached — the next Get for the key tries again,
// because unlike par.Cache's deterministic memos a daemon build can fail
// transiently (timeout, cancellation). A follower whose ctx expires stops
// waiting without disturbing the build.
func (s *Store) Get(ctx context.Context, key string, build func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	log := obs.CtxLog(ctx)
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.lru.MoveToFront(e)
		val := e.Value.(*memEntry).val
		s.mu.Unlock()
		s.memHits.Add(1)
		storeMemHits.Inc()
		log.Debug("planstore.hit", obs.Str("key", keyShort(key)))
		return val, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		storeCoalesced.Inc()
		log.Debug("planstore.join", obs.Str("key", keyShort(key)))
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			log.Warn("planstore.join.abandon",
				obs.Str("key", keyShort(key)), obs.Str("err", ctx.Err().Error()))
			return nil, fmt.Errorf("planstore: waiting for in-flight build: %w", ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.val, f.err = s.runBuild(ctx, key, build)

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		s.putLocked(log, key, f.val)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Peek returns the bytes for key if they are already cached in memory or
// on disk, without ever building. It promotes disk hits into memory.
func (s *Store) Peek(key string) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.lru.MoveToFront(e)
		val := e.Value.(*memEntry).val
		s.mu.Unlock()
		s.memHits.Add(1)
		storeMemHits.Inc()
		return val, true
	}
	s.mu.Unlock()
	if val, ok := s.readDisk(key); ok {
		s.mu.Lock()
		s.putLocked(nil, key, val)
		s.mu.Unlock()
		return val, true
	}
	return nil, false
}

// runBuild admits the build through the gate, checks disk, and runs it.
func (s *Store) runBuild(ctx context.Context, key string, build func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	log := obs.CtxLog(ctx)
	// Disk check happens before admission: reading a spilled plan back is
	// IO, not preprocessing, and must not be refused under build load.
	if val, ok := s.readDisk(key); ok {
		log.Debug("planstore.hit.disk", obs.Str("key", keyShort(key)))
		return val, nil
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("planstore: canceled before build: %w", err)
	}
	log.Debug("planstore.build.start", obs.Str("key", keyShort(key)))
	t0 := time.Now()
	val, err := build(ctx)
	dur := time.Since(t0).Nanoseconds()
	storeBuildNS.Observe(dur)
	s.observeBuild(dur)
	s.builds.Add(1)
	storeBuilds.Inc()
	if err != nil {
		s.buildErrs.Add(1)
		storeBuildErrs.Inc()
		log.Warn("planstore.build.fail",
			obs.Str("key", keyShort(key)),
			obs.Str("dur", time.Duration(dur).String()),
			obs.Str("err", err.Error()))
		return nil, err
	}
	log.Info("planstore.build.done",
		obs.Str("key", keyShort(key)),
		obs.Str("dur", time.Duration(dur).String()),
		obs.Int("bytes", len(val)))
	s.writeDisk(key, val)
	return val, nil
}

// acquire claims a build slot, waiting in the bounded queue if none is
// free. Full queue → ErrBusy; canceled wait → ctx error.
func (s *Store) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		storeActive.Set(int64(len(s.slots)))
		return nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) || s.cfg.MaxQueue < 0 {
		s.queued.Add(-1)
		s.rejected.Add(1)
		storeRejected.Inc()
		obs.CtxLog(ctx).Warn("planstore.reject", obs.Int("queued", int(q-1)))
		return ErrBusy
	}
	storeQueued.Set(s.queued.Load())
	defer func() {
		storeQueued.Set(s.queued.Add(-1))
	}()
	select {
	case s.slots <- struct{}{}:
		storeActive.Set(int64(len(s.slots)))
		return nil
	case <-ctx.Done():
		return fmt.Errorf("planstore: canceled while queued: %w", ctx.Err())
	}
}

func (s *Store) release() {
	<-s.slots
	storeActive.Set(int64(len(s.slots)))
}

// putLocked inserts a value into the memory LRU and evicts from the cold
// end until the byte budget holds again (the newest value always stays,
// even when it alone exceeds the budget). log, when non-nil, tags eviction
// lines with the request that caused them (Peek passes nil).
func (s *Store) putLocked(log *obs.Logger, key string, val []byte) {
	if e, ok := s.mem[key]; ok {
		s.bytes += int64(len(val)) - int64(len(e.Value.(*memEntry).val))
		e.Value.(*memEntry).val = val
		s.lru.MoveToFront(e)
	} else {
		s.mem[key] = s.lru.PushFront(&memEntry{key: key, val: val})
		s.bytes += int64(len(val))
	}
	for s.bytes > s.cfg.MaxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		ent := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.mem, ent.key)
		s.bytes -= int64(len(ent.val))
		s.evictions.Add(1)
		storeEvictions.Inc()
		log.Debug("planstore.evict",
			obs.Str("key", keyShort(ent.key)), obs.Int("bytes", len(ent.val)))
	}
}

// keyShort abbreviates a content hash for log lines: the full 64 hex chars
// are noise at a glance and the prefix stays greppable against X-Plan-Hash.
func keyShort(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// observeBuild folds one build duration into the EWMA (α = 1/4).
func (s *Store) observeBuild(ns int64) {
	for {
		old := s.ewmaBuildNS.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/4
		}
		if s.ewmaBuildNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter suggests how long a refused caller should wait before
// retrying: the recent build cost times the work queued ahead of it,
// clamped to [1s, 60s] so the header is always sane even before the first
// build lands.
func (s *Store) RetryAfter() time.Duration {
	ewma := time.Duration(s.ewmaBuildNS.Load())
	backlog := 1 + int(s.queued.Load())/s.cfg.MaxActive
	d := ewma * time.Duration(backlog)
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Stats snapshots the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	plans, bytes := s.lru.Len(), s.bytes
	s.mu.Unlock()
	return Stats{
		Builds:      s.builds.Load(),
		BuildErrors: s.buildErrs.Load(),
		MemHits:     s.memHits.Load(),
		DiskHits:    s.diskHits.Load(),
		Coalesced:   s.coalesced.Load(),
		Rejected:    s.rejected.Load(),
		Evictions:   s.evictions.Load(),
		Active:      len(s.slots),
		Queued:      int(s.queued.Load()),
		CachedPlans: plans,
		CachedBytes: bytes,
	}
}

// diskPath maps a key onto the spill directory; "" when spill is off or
// the key would escape the directory.
func (s *Store) diskPath(key string) string {
	if s.cfg.Dir == "" || key == "" {
		return ""
	}
	for _, r := range key {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.'
		if !ok || key[0] == '.' {
			return ""
		}
	}
	return filepath.Join(s.cfg.Dir, key+".plan")
}

func (s *Store) readDisk(key string) ([]byte, bool) {
	path := s.diskPath(key)
	if path == "" {
		return nil, false
	}
	val, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	s.diskHits.Add(1)
	storeDiskHits.Inc()
	return val, true
}

// writeDisk spills one value (write-to-temp, rename, so readers never see
// a torn file). Spill failure is not a build failure: the plan is still
// served from memory.
func (s *Store) writeDisk(key string, val []byte) {
	path := s.diskPath(key)
	if path == "" {
		return
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, "spill-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

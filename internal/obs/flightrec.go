// Flight recorder: a fixed-capacity ring of per-request records for the
// daemon (DESIGN.md §18). Every request leaves a compact record (route, ID,
// status, latency, bytes, phase timings derived from its span tree); slow
// or 5xx requests are additionally captured whole — full span tree plus a
// timeline slice — in a separate small post-mortem ring, served as JSON at
// /debug/requests and dumpable on SIGQUIT. The rings are bounded and
// overwrite oldest-first, so the recorder's memory is constant no matter
// how long the daemon runs.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// PhaseNS is one top-level phase of a request's span tree, flattened for
// the compact per-request record.
type PhaseNS struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// RequestRecord is the compact flight-recorder entry every request leaves.
type RequestRecord struct {
	ID        string    `json:"id"`
	Method    string    `json:"method,omitempty"`
	Route     string    `json:"route"`
	Path      string    `json:"path,omitempty"`
	Status    int       `json:"status"`
	Start     time.Time `json:"start"`
	LatencyNS int64     `json:"latency_ns"`
	Bytes     int64     `json:"bytes"`
	Remote    string    `json:"remote,omitempty"`
	Err       string    `json:"err,omitempty"`
	Phases    []PhaseNS `json:"phases,omitempty"`
}

// PostmortemRecord is the full capture of one bad request: the compact
// record plus why it was captured, its span tree, and the tail of the
// daemon timeline at completion.
type PostmortemRecord struct {
	RequestRecord
	Reason   string      `json:"reason"` // "error", "slow", or "error,slow"
	Spans    *SpanRecord `json:"spans,omitempty"`
	Timeline []EventView `json:"timeline,omitempty"`
}

// FlightConfig sizes a FlightRecorder. Zero values select the defaults.
type FlightConfig struct {
	// Capacity is the compact ring's size (default 256).
	Capacity int
	// PostCapacity is the post-mortem ring's size (default 16).
	PostCapacity int
	// SlowThreshold marks requests at or above this latency for post-mortem
	// capture (default 1s; negative disables slow capture).
	SlowThreshold time.Duration
	// PostTimelineEvents bounds the timeline tail captured per post-mortem
	// (default 64).
	PostTimelineEvents int
}

const (
	defaultFlightCapacity     = 256
	defaultPostCapacity       = 16
	defaultSlowThreshold      = time.Second
	defaultPostTimelineEvents = 64
)

// FlightRecorder holds the two request rings. Build with NewFlightRecorder;
// a nil recorder accepts every method as a no-op.
type FlightRecorder struct {
	slow    time.Duration
	tailEvs int
	mu      sync.Mutex
	recent  []RequestRecord // ring; recent[total%cap] is the next slot
	total   uint64
	post    []PostmortemRecord
	postTot uint64
}

// NewFlightRecorder builds a recorder from cfg (zero fields get defaults).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultFlightCapacity
	}
	if cfg.PostCapacity <= 0 {
		cfg.PostCapacity = defaultPostCapacity
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = defaultSlowThreshold
	}
	if cfg.PostTimelineEvents <= 0 {
		cfg.PostTimelineEvents = defaultPostTimelineEvents
	}
	return &FlightRecorder{
		slow:    cfg.SlowThreshold,
		tailEvs: cfg.PostTimelineEvents,
		recent:  make([]RequestRecord, 0, cfg.Capacity),
		post:    make([]PostmortemRecord, 0, cfg.PostCapacity),
	}
}

// flightCaptured counts post-mortem captures (slow or 5xx requests).
var flightCaptured = NewCounter("obs.flight.captured")

// Record files one completed request. When rec.Phases is empty it is
// derived from the span tree's top-level children. spans and tl are only
// retained when the request qualifies for post-mortem capture (status ≥ 500
// or latency ≥ the slow threshold); both may be nil.
func (f *FlightRecorder) Record(rec RequestRecord, spans *SpanRecord, tl *Timeline) {
	if f == nil {
		return
	}
	if len(rec.Phases) == 0 && spans != nil {
		for _, c := range spans.Children {
			rec.Phases = append(rec.Phases, PhaseNS{Name: c.Name, DurNS: c.DurationNS})
		}
	}
	reason := ""
	if rec.Status >= 500 {
		reason = "error"
	}
	if f.slow >= 0 && rec.LatencyNS >= f.slow.Nanoseconds() {
		if reason != "" {
			reason += ",slow"
		} else {
			reason = "slow"
		}
	}
	var pm PostmortemRecord
	if reason != "" {
		flightCaptured.Inc()
		pm = PostmortemRecord{
			RequestRecord: rec,
			Reason:        reason,
			Spans:         spans,
			Timeline:      tl.TailView(f.tailEvs),
		}
	}
	f.mu.Lock()
	if len(f.recent) < cap(f.recent) {
		f.recent = append(f.recent, rec)
	} else {
		f.recent[f.total%uint64(cap(f.recent))] = rec
	}
	f.total++
	if reason != "" {
		if len(f.post) < cap(f.post) {
			f.post = append(f.post, pm)
		} else {
			f.post[f.postTot%uint64(cap(f.post))] = pm
		}
		f.postTot++
	}
	f.mu.Unlock()
}

// FlightView is the /debug/requests response shape.
type FlightView struct {
	// Total counts requests ever recorded; Captured counts post-mortems.
	Total    uint64 `json:"total"`
	Captured uint64 `json:"captured"`
	// SlowThresholdNS is the capture threshold in effect.
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	// Recent holds the compact ring newest-first; Postmortem the capture
	// ring newest-first.
	Recent     []RequestRecord    `json:"recent"`
	Postmortem []PostmortemRecord `json:"postmortem,omitempty"`
}

// Snapshot copies both rings, newest-first.
func (f *FlightRecorder) Snapshot() FlightView {
	if f == nil {
		return FlightView{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v := FlightView{
		Total:           f.total,
		Captured:        f.postTot,
		SlowThresholdNS: f.slow.Nanoseconds(),
		Recent:          ringNewestFirst(f.recent, f.total),
		Postmortem:      ringNewestFirst(f.post, f.postTot),
	}
	return v
}

// ringNewestFirst copies a ring whose next write lands at total%cap,
// ordering entries newest-first.
func ringNewestFirst[T any](ring []T, total uint64) []T {
	out := make([]T, 0, len(ring))
	n := uint64(len(ring))
	for i := uint64(1); i <= n; i++ {
		out = append(out, ring[(total-i)%uint64(cap(ring))])
	}
	return out
}

// WritePostmortem dumps the post-mortem ring as one JSON document — the
// SIGQUIT handler's output.
func (f *FlightRecorder) WritePostmortem(w io.Writer) error {
	v := f.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Captured   uint64             `json:"captured"`
		Postmortem []PostmortemRecord `json:"postmortem"`
	}{v.Captured, v.Postmortem})
}

// flight is the process-wide recorder /debug/requests serves. An atomic
// pointer (not a plain var) so tests and daemons reconfigure it without
// racing in-flight Record calls.
var flight atomic.Pointer[FlightRecorder]

// Flight returns the process-wide flight recorder, creating a
// default-configured one on first use.
func Flight() *FlightRecorder {
	if f := flight.Load(); f != nil {
		return f
	}
	f := NewFlightRecorder(FlightConfig{})
	if flight.CompareAndSwap(nil, f) {
		return f
	}
	return flight.Load()
}

// ConfigureFlight replaces the process-wide recorder with a fresh one built
// from cfg and returns it. Records already filed stay with the old
// recorder; in-flight Record calls land in whichever recorder they resolved.
func ConfigureFlight(cfg FlightConfig) *FlightRecorder {
	f := NewFlightRecorder(cfg)
	flight.Store(f)
	return f
}

// EventView is one timeline event with its interned names resolved, the
// shape post-mortems and JSON consumers see.
type EventView struct {
	Track string  `json:"track"`
	Name  string  `json:"name,omitempty"`
	Kind  string  `json:"kind"`
	TSNS  int64   `json:"ts_ns"`
	DurNS int64   `json:"dur_ns,omitempty"`
	Arg   int64   `json:"arg,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// kindNames spells EventKind for EventView.
var kindNames = [...]string{
	EvSlice:       "slice",
	EvWorkerRun:   "worker.run",
	EvWorkerIdle:  "worker.idle",
	EvGrant:       "grant",
	EvTaskEnqueue: "task.enqueue",
	EvTaskRun:     "task.run",
	EvQueueDepth:  "queue.depth",
}

// TailView returns the newest n events with names resolved, oldest-first.
func (t *Timeline) TailView(n int) []EventView {
	if t == nil || n <= 0 {
		return nil
	}
	evs := t.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	if len(evs) == 0 {
		return nil
	}
	out := make([]EventView, 0, len(evs))
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range evs {
		kind := "?"
		if int(ev.Kind) < len(kindNames) {
			kind = kindNames[ev.Kind]
		}
		v := EventView{
			Track: t.trackName(ev.Track),
			Kind:  kind,
			TSNS:  ev.TS,
			DurNS: ev.Dur,
			Arg:   ev.Arg,
			Value: ev.Value,
		}
		if ev.Kind == EvSlice {
			v.Name = t.eventName(ev.Name)
		}
		out = append(out, v)
	}
	return out
}

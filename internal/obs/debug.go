// Live debug endpoint: an opt-in HTTP server (the CLIs' -debug-addr flag)
// exposing the standard Go diagnostics (net/http/pprof, expvar) next to
// this package's own state — the full metric registry in Prometheus text
// exposition at /metrics and the running study fan-out at /progress. The
// mux is built separately from the server so tests drive it through
// httptest without binding a port.
package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"slices"
	"strings"
	"time"
)

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset: runs of characters outside [a-zA-Z0-9_:] become one underscore
// (so "sim.engine.steps" serves as "sim_engine_steps").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promNamer assigns each registry name a unique Prometheus name.
// Sanitization is lossy ("sim.engine.steps" and "sim_engine_steps" both map
// to "sim_engine_steps"), and a collided exposition carries duplicate # TYPE
// lines and duplicate series, which Prometheus rejects as a malformed
// scrape. The namer claims every series a metric will emit (the base name
// plus kind-specific companions like a gauge's _max or a histogram's
// _bucket/_sum/_count) and resolves collisions by suffixing _2, _3, ... —
// deterministic because metrics are assigned in a fixed order (counters,
// gauges, histograms; each sorted by registry name).
type promNamer struct {
	taken map[string]bool
}

// assign returns the unique exposition name for a registry name, reserving
// name+suffix for every companion series the metric emits.
func (p *promNamer) assign(name string, companions ...string) string {
	if p.taken == nil {
		p.taken = map[string]bool{}
	}
	base := sanitizeMetricName(name)
	for n := 1; ; n++ {
		cand := base
		if n > 1 {
			cand = fmt.Sprintf("%s_%d", base, n)
		}
		free := !p.taken[cand]
		for _, c := range companions {
			free = free && !p.taken[cand+c]
		}
		if !free {
			continue
		}
		p.taken[cand] = true
		for _, c := range companions {
			p.taken[cand+c] = true
		}
		return cand
	}
}

// WriteMetricsText renders the view in the Prometheus text exposition
// format (version 0.0.4): counters, gauges (level plus a companion _max
// gauge for the high-water mark), and histograms with cumulative _bucket
// series, _sum, and _count. Output is sorted by metric name so scrapes
// diff cleanly, and distinct registry names that sanitize to the same
// Prometheus name are disambiguated through promNamer so one exposition
// never carries duplicate series.
func (v *RegistryView) WriteMetricsText(w io.Writer) error {
	var namer promNamer
	names := make([]string, 0, len(v.Counters))
	for name := range v.Counters {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		p := namer.assign(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, v.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range v.Gauges {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		g := v.Gauges[name]
		p := namer.assign(name, "_max")
		_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			p, p, g.Value, p, p, g.Max)
		if err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range v.Histograms {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		h := v.Histograms[name]
		p := namer.assign(name, "_bucket", "_sum", "_count")
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, b.UpperNS, b.Count); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.SumNS, p, h.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// debugIndex is the landing page listing the endpoint's routes.
const debugIndex = `<html><head><title>hottiles debug</title></head><body>
<h1>hottiles debug endpoint</h1>
<ul>
<li><a href="/metrics">/metrics</a> — obs registry, Prometheus text exposition</li>
<li><a href="/progress">/progress</a> — running study fan-out, JSON</li>
<li><a href="/debug/requests">/debug/requests</a> — flight recorder: recent requests + post-mortems, JSON</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar (memstats, cmdline)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — CPU, heap, goroutine, block profiles</li>
</ul></body></html>
`

// DebugMux builds the debug endpoint's routing table. Tests wrap it in
// httptest.Server; ServeDebug binds it to a real listener.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := RegistrySnapshot().WriteMetricsText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Resolved per request: ConfigureFlight may swap the recorder after
		// the mux was built.
		if err := enc.Encode(Flight().Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ProgressSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, debugIndex)
	})
	return mux
}

// debugDrainTimeout bounds how long ServeDebug's stop function waits for
// in-flight scrapes before cutting their connections.
const debugDrainTimeout = 2 * time.Second

// GracefulStop shuts an HTTP server down without truncating in-flight
// responses: it stops the listeners, waits up to drain for running handlers
// to finish, and only then falls back to Close (which severs whatever is
// still open). It returns the Shutdown error when the drain deadline was
// exceeded — nil means every in-flight response completed. Both the debug
// endpoint and the hottilesd daemon stop through this one drain path.
func GracefulStop(srv *http.Server, drain time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("obs: drain incomplete after %v: %w", drain, err)
	}
	return nil
}

// ServeDebug starts the debug endpoint on addr (e.g. ":6060"). It returns
// the bound address (useful when addr requested port 0) and a stop function
// that drains in-flight requests (a scrape racing shutdown still gets its
// full body) before closing the listener and any remaining connections. The
// accept loop is the one goroutine the repository runs outside the par
// pool: it must outlive any single fan-out and terminate with the
// listener, which the pool's bounded-task shape cannot express.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { GracefulStop(srv, debugDrainTimeout) }, nil
}

// Live debug endpoint: an opt-in HTTP server (the CLIs' -debug-addr flag)
// exposing the standard Go diagnostics (net/http/pprof, expvar) next to
// this package's own state — the full metric registry in Prometheus text
// exposition at /metrics and the running study fan-out at /progress. The
// mux is built separately from the server so tests drive it through
// httptest without binding a port.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"slices"
	"strings"
)

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset: runs of characters outside [a-zA-Z0-9_:] become one underscore
// (so "sim.engine.steps" serves as "sim_engine_steps").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteMetricsText renders the view in the Prometheus text exposition
// format (version 0.0.4): counters, gauges (level plus a companion _max
// gauge for the high-water mark), and histograms with cumulative _bucket
// series, _sum, and _count. Output is sorted by metric name so scrapes
// diff cleanly.
func (v *RegistryView) WriteMetricsText(w io.Writer) error {
	names := make([]string, 0, len(v.Counters))
	for name := range v.Counters {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		p := sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, v.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range v.Gauges {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		g := v.Gauges[name]
		p := sanitizeMetricName(name)
		_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			p, p, g.Value, p, p, g.Max)
		if err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range v.Histograms {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		h := v.Histograms[name]
		p := sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, b.UpperNS, b.Count); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.SumNS, p, h.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// debugIndex is the landing page listing the endpoint's routes.
const debugIndex = `<html><head><title>hottiles debug</title></head><body>
<h1>hottiles debug endpoint</h1>
<ul>
<li><a href="/metrics">/metrics</a> — obs registry, Prometheus text exposition</li>
<li><a href="/progress">/progress</a> — running study fan-out, JSON</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar (memstats, cmdline)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — CPU, heap, goroutine, block profiles</li>
</ul></body></html>
`

// DebugMux builds the debug endpoint's routing table. Tests wrap it in
// httptest.Server; ServeDebug binds it to a real listener.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := RegistrySnapshot().WriteMetricsText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ProgressSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, debugIndex)
	})
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. ":6060"). It returns
// the bound address (useful when addr requested port 0) and a stop
// function that closes the listener and any in-flight connections. The
// accept loop is the one goroutine the repository runs outside the par
// pool: it must outlive any single fan-out and terminate with the
// listener, which the pool's bounded-task shape cannot express.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.engine.steps":   "sim_engine_steps",
		"par.cache.get.ns":   "par_cache_get_ns",
		"already_fine:colon": "already_fine:colon",
		"9starts.with.digit": "_9starts_with_digit",
		"spaces and-dashes":  "spaces_and_dashes",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsEndpoint asserts the acceptance criterion: /metrics returns
// every registered metric in the Prometheus text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	NewCounter("debugtest.hits").Add(7)
	NewGauge("debugtest.depth").Set(3)
	NewHistogram("debugtest.lat.ns").Observe(1500)

	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)

	// Every metric the process has registered — whatever other tests or
	// init functions created — must appear, sanitized, in the exposition.
	for _, name := range MetricNames() {
		if !strings.Contains(body, sanitizeMetricName(name)) {
			t.Errorf("/metrics missing registered metric %q", name)
		}
	}

	// Shape checks on the metrics this test owns.
	if !strings.Contains(body, "# TYPE debugtest_hits counter\ndebugtest_hits 7") {
		t.Error("counter exposition wrong")
	}
	if !strings.Contains(body, "debugtest_depth 3") || !strings.Contains(body, "debugtest_depth_max 3") {
		t.Error("gauge exposition missing level or high-water mark")
	}
	if !strings.Contains(body, "# TYPE debugtest_lat_ns histogram") {
		t.Error("histogram TYPE line missing")
	}
	if !strings.Contains(body, `debugtest_lat_ns_bucket{le="+Inf"}`) {
		t.Error("histogram +Inf bucket missing")
	}
	if !strings.Contains(body, "debugtest_lat_ns_sum") || !strings.Contains(body, "debugtest_lat_ns_count") {
		t.Error("histogram _sum/_count missing")
	}
}

func TestProgressEndpoint(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	done := StartProgress("debugtest-study")
	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var view ProgressView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	found := false
	for _, r := range view.Running {
		if r.Name == "debugtest-study" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/progress does not list the running study: %+v", view)
	}
	done()
	done() // idempotent

	resp, err = http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range view.Running {
		if r.Name == "debugtest-study" {
			t.Fatal("finished study still listed as running")
		}
	}
	recent := false
	for _, r := range view.Recent {
		if r.Name == "debugtest-study" {
			recent = true
		}
	}
	if !recent || view.Completed < 1 {
		t.Fatalf("finished study not in recent list: %+v", view)
	}
}

func TestDebugIndexAndVars(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "/metrics") {
		t.Fatalf("index page wrong (status %d)", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars lacks memstats")
	}
}

func TestServeDebug(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /metrics returned %d", resp.StatusCode)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after stop")
	}

	// A second listener on the same port must surface the bind error.
	addr2, stop2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if _, _, err := ServeDebug(addr2); err == nil {
		t.Fatal("double bind did not error")
	}
}

// TestDebugServerConcurrentScrapes drives the live endpoint from several
// goroutines while metrics and progress mutate underneath — the shape a
// Prometheus scraper plus a watching user produce mid-run. Run under
// `make race`, this pins the endpoint's thread safety.
func TestDebugServerConcurrentScrapes(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	hits := NewCounter("debugtest.scrape.hits")
	lat := NewHistogram("debugtest.scrape.lat.ns")
	stopWriters := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWriters:
				return
			default:
			}
			hits.Inc()
			lat.Observe(int64(i%1000 + 1))
			done := StartProgress("scrape-work")
			done()
		}
	}()

	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				for _, route := range []string{"/metrics", "/progress"} {
					resp, err := http.Get(srv.URL + route)
					if err != nil {
						t.Errorf("%s: %v", route, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s returned %d", route, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stopWriters)
	writers.Wait()
}

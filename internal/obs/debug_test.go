package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.engine.steps":   "sim_engine_steps",
		"par.cache.get.ns":   "par_cache_get_ns",
		"already_fine:colon": "already_fine:colon",
		"9starts.with.digit": "_9starts_with_digit",
		"spaces and-dashes":  "spaces_and_dashes",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseExposition splits a Prometheus text exposition into its # TYPE
// declarations and its series names, failing the test on any line that is
// neither.
func parseExposition(t *testing.T, body string) (types []string, series []string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			types = append(types, strings.Fields(rest)[0])
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		series = append(series, name)
	}
	return types, series
}

// TestWriteMetricsTextCollisions is the regression test for the sanitizer
// collision bug: "sim.engine.steps" and "sim_engine_steps" both sanitize to
// "sim_engine_steps", and the pre-fix exposition emitted two # TYPE lines
// and two series under that one name — a scrape Prometheus rejects as
// malformed. Collided registry names must now serve under distinct,
// deterministic exposition names, companions (_max, _bucket, _sum, _count)
// included.
func TestWriteMetricsTextCollisions(t *testing.T) {
	v := &RegistryView{
		Counters: map[string]int64{
			"sim.engine.steps": 3,
			"sim_engine_steps": 4,
			"queue.depth.max":  9, // collides with the gauge's _max companion
		},
		Gauges: map[string]GaugeSnapshot{
			"queue.depth": {Value: 1, Max: 2},
			"queue_depth": {Value: 5, Max: 6},
		},
		Histograms: map[string]HistogramSnapshot{
			"req.lat.ns": {Count: 1, SumNS: 10, Buckets: []HistBucket{{UpperNS: 15, Count: 1}}},
			"req_lat.ns": {Count: 2, SumNS: 20, Buckets: []HistBucket{{UpperNS: 31, Count: 2}}},
		},
	}
	var buf bytes.Buffer
	if err := v.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	types, series := parseExposition(t, body)
	seenType := map[string]bool{}
	for _, name := range types {
		if seenType[name] {
			t.Errorf("duplicate # TYPE line for %q", name)
		}
		seenType[name] = true
	}
	// Within one # TYPE block repeated series names are legitimate only for
	// histogram buckets; here every histogram has distinct buckets, so a
	// duplicated (name, kind) pair can only come from a collision.
	seenSeries := map[string]int{}
	for _, name := range series {
		seenSeries[name]++
	}
	for name, n := range seenSeries {
		if n > 1 && !strings.HasSuffix(name, "_bucket") {
			t.Errorf("series %q emitted %d times", name, n)
		}
	}

	// Every registry value must still be present under its deterministic
	// name: the counter claims queue_depth_max, which pushes both gauges
	// (whose _max companion would collide) onto suffixed names.
	for _, want := range []string{
		"sim_engine_steps 3", "sim_engine_steps_2 4",
		"queue_depth_max 9",
		"queue_depth_2 1", "queue_depth_2_max 2",
		"queue_depth_3 5", "queue_depth_3_max 6",
		"req_lat_ns_sum 10", "req_lat_ns_2_sum 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lost a collided metric: missing %q in\n%s", want, body)
		}
	}
	// Determinism: two renders of the same view are identical.
	var buf2 bytes.Buffer
	if err := v.WriteMetricsText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != body {
		t.Error("collision resolution is not deterministic")
	}
}

// TestMetricsEndpoint asserts the acceptance criterion: /metrics returns
// every registered metric in the Prometheus text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	NewCounter("debugtest.hits").Add(7)
	NewGauge("debugtest.depth").Set(3)
	NewHistogram("debugtest.lat.ns").Observe(1500)

	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)

	// Every metric the process has registered — whatever other tests or
	// init functions created — must appear, sanitized, in the exposition.
	for _, name := range MetricNames() {
		if !strings.Contains(body, sanitizeMetricName(name)) {
			t.Errorf("/metrics missing registered metric %q", name)
		}
	}

	// Shape checks on the metrics this test owns.
	if !strings.Contains(body, "# TYPE debugtest_hits counter\ndebugtest_hits 7") {
		t.Error("counter exposition wrong")
	}
	if !strings.Contains(body, "debugtest_depth 3") || !strings.Contains(body, "debugtest_depth_max 3") {
		t.Error("gauge exposition missing level or high-water mark")
	}
	if !strings.Contains(body, "# TYPE debugtest_lat_ns histogram") {
		t.Error("histogram TYPE line missing")
	}
	if !strings.Contains(body, `debugtest_lat_ns_bucket{le="+Inf"}`) {
		t.Error("histogram +Inf bucket missing")
	}
	if !strings.Contains(body, "debugtest_lat_ns_sum") || !strings.Contains(body, "debugtest_lat_ns_count") {
		t.Error("histogram _sum/_count missing")
	}
}

func TestProgressEndpoint(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	done := StartProgress("debugtest-study")
	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var view ProgressView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	found := false
	for _, r := range view.Running {
		if r.Name == "debugtest-study" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/progress does not list the running study: %+v", view)
	}
	done()
	done() // idempotent

	resp, err = http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range view.Running {
		if r.Name == "debugtest-study" {
			t.Fatal("finished study still listed as running")
		}
	}
	recent := false
	for _, r := range view.Recent {
		if r.Name == "debugtest-study" {
			recent = true
		}
	}
	if !recent || view.Completed < 1 {
		t.Fatalf("finished study not in recent list: %+v", view)
	}
}

func TestDebugIndexAndVars(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "/metrics") {
		t.Fatalf("index page wrong (status %d)", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars lacks memstats")
	}
}

func TestServeDebug(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /metrics returned %d", resp.StatusCode)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after stop")
	}

	// A second listener on the same port must surface the bind error.
	addr2, stop2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if _, _, err := ServeDebug(addr2); err == nil {
		t.Fatal("double bind did not error")
	}
}

// TestGracefulStopDrainsSlowHandler is the regression test for the
// non-draining shutdown bug: the pre-fix stop path called srv.Close(),
// which severs in-flight connections, so a scrape racing shutdown got a
// truncated body. GracefulStop must let a slow handler finish its full
// response before the server goes away.
func TestGracefulStopDrainsSlowHandler(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	tail := strings.Repeat("x", 1<<16)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		// Slow handler: the body lands only after shutdown has begun.
		time.Sleep(200 * time.Millisecond)
		io.WriteString(w, "head\n"+tail)
	})}
	go srv.Serve(ln)

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		got <- result{body: string(data), err: err}
	}()

	<-started
	if err := GracefulStop(srv, 5*time.Second); err != nil {
		t.Fatalf("GracefulStop: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape cut by shutdown: %v", r.err)
	}
	if r.body != "head\n"+tail {
		t.Fatalf("in-flight scrape truncated: got %d bytes, want %d", len(r.body), 5+len(tail))
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("server still accepting after GracefulStop")
	}
}

// TestGracefulStopDeadline pins the fallback: a handler that outlives the
// drain window must not wedge shutdown — GracefulStop reports the deadline
// and closes the connection instead.
func TestGracefulStopDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	})}
	go srv.Serve(ln)
	go http.Get("http://" + ln.Addr().String() + "/")

	<-started
	t0 := time.Now()
	err = GracefulStop(srv, 50*time.Millisecond)
	close(release)
	if err == nil {
		t.Fatal("GracefulStop returned nil despite a wedged handler")
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("GracefulStop took %v, the Close fallback did not fire", d)
	}
}

// TestDebugServerConcurrentScrapes drives the live endpoint from several
// goroutines while metrics and progress mutate underneath — the shape a
// Prometheus scraper plus a watching user produce mid-run. Run under
// `make race`, this pins the endpoint's thread safety.
func TestDebugServerConcurrentScrapes(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	hits := NewCounter("debugtest.scrape.hits")
	lat := NewHistogram("debugtest.scrape.lat.ns")
	stopWriters := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWriters:
				return
			default:
			}
			hits.Inc()
			lat.Observe(int64(i%1000 + 1))
			done := StartProgress("scrape-work")
			done()
		}
	}()

	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				for _, route := range []string{"/metrics", "/progress"} {
					resp, err := http.Get(srv.URL + route)
					if err != nil {
						t.Errorf("%s: %v", route, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s returned %d", route, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stopWriters)
	writers.Wait()
}

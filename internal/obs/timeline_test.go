package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNilTimelineIsNoOp(t *testing.T) {
	var tl *Timeline
	if tl.Now() != 0 {
		t.Fatal("nil timeline has a clock")
	}
	if tl.Intern("x") != -1 || tl.TrackID("x") != -1 {
		t.Fatal("nil timeline interned a name")
	}
	tl.Append(Event{Kind: EvSlice})
	if tl.Events() != nil || tl.Total() != 0 || tl.Dropped() != 0 {
		t.Fatal("nil timeline recorded events")
	}
	tr := tl.Track("row")
	if tr != nil {
		t.Fatal("nil timeline produced a track")
	}
	sp := tr.Start("slice")
	if sp != nil {
		t.Fatal("nil track produced a span")
	}
	sp.End()
	if err := tl.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil timeline export did not error")
	}
}

func TestTimelineRingWrap(t *testing.T) {
	tl := NewTimeline(4)
	id := tl.TrackID("row")
	for i := int64(0); i < 10; i++ {
		tl.Append(Event{TS: i, Track: id, Name: -1, Kind: EvQueueDepth})
	}
	if tl.Total() != 10 {
		t.Fatalf("total = %d, want 10", tl.Total())
	}
	if tl.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tl.Dropped())
	}
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Events come back oldest-first: the surviving tail is TS 6..9.
	for i, ev := range evs {
		if want := int64(6 + i); ev.TS != want {
			t.Fatalf("event %d has TS %d, want %d", i, ev.TS, want)
		}
	}
}

func TestTimelineInternReuse(t *testing.T) {
	tl := NewTimeline(16)
	a := tl.Intern("alpha")
	b := tl.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if again := tl.Intern("alpha"); again != a {
		t.Fatalf("re-intern of alpha = %d, want %d", again, a)
	}
	if tl.eventName(a) != "alpha" || tl.eventName(b) != "beta" {
		t.Fatal("name table does not round-trip")
	}
	r := tl.TrackID("row")
	if again := tl.TrackID("row"); again != r {
		t.Fatal("re-intern of track changed id")
	}
	if tl.trackName(r) != "row" {
		t.Fatal("track table does not round-trip")
	}
	if tl.trackName(99) != "?" || tl.eventName(-1) != "?" {
		t.Fatal("out-of-range ids must render as ?")
	}
}

func TestTimelineTrackOverflow(t *testing.T) {
	tl := NewTimeline(16)
	for i := 0; i < maxTracks+10; i++ {
		tl.TrackID(fmt.Sprintf("track-%d", i))
	}
	if len(tl.tracks) > maxTracks {
		t.Fatalf("track table grew to %d, limit %d", len(tl.tracks), maxTracks)
	}
	over := tl.TrackID("yet-another")
	if tl.trackName(over) != "(overflow)" {
		t.Fatalf("overflow track renders as %q", tl.trackName(over))
	}
	// Pre-overflow tracks keep their identity.
	if tl.trackName(tl.TrackID("track-0")) != "track-0" {
		t.Fatal("early track lost after overflow")
	}
}

func TestTrackSpanRecordsSlice(t *testing.T) {
	tl := NewTimeline(16)
	row := tl.Track("studies")
	sp := row.Start("fig10")
	sp.End()
	sp.End() // idempotent: must not record a second slice
	evs := tl.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EvSlice || ev.Dur < 0 || tl.trackName(ev.Track) != "studies" || tl.eventName(ev.Name) != "fig10" {
		t.Fatalf("bad slice event %+v", ev)
	}
}

// TestWriteChromeTrace checks the export against the Chrome trace-event
// schema: a traceEvents array whose entries carry a known phase, with both
// clock processes named and every referenced thread labeled.
func TestWriteChromeTrace(t *testing.T) {
	tl := NewTimeline(64)
	wallTrack := tl.TrackID("spmmsim/studies")
	simTrack := tl.TrackID("fig10/hot/w0")
	poolTrack := tl.TrackID("par/pool")
	name := tl.Intern("fig10")
	tl.Append(
		Event{TS: 100, Dur: 2000, Track: wallTrack, Name: name, Kind: EvSlice},
		Event{TS: 0, Dur: 500, Track: simTrack, Name: -1, Kind: EvWorkerRun, Arg: 3, Value: 4096},
		Event{TS: 500, Track: simTrack, Name: -1, Kind: EvWorkerIdle},
		Event{TS: 250, Track: simTrack, Name: -1, Kind: EvGrant, Value: 1e9},
		Event{TS: 120, Track: poolTrack, Name: -1, Kind: EvTaskEnqueue, Arg: 8},
		Event{TS: 130, Dur: 700, Track: poolTrack, Name: -1, Kind: EvTaskRun, Arg: 5},
		Event{TS: 140, Track: poolTrack, Name: -1, Kind: EvQueueDepth, Value: 2},
	)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	phases := map[string]int{}
	processes := map[string]bool{}
	threads := map[string]bool{}
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X", "i", "C":
			if ev.Pid != pidWall && ev.Pid != pidSim {
				t.Fatalf("event %q has pid %d", ev.Name, ev.Pid)
			}
		case "M":
			switch ev.Name {
			case "process_name":
				processes[ev.Args["name"].(string)] = true
			case "thread_name":
				threads[ev.Args["name"].(string)] = true
			}
		default:
			t.Fatalf("unknown phase %q in export", ev.Ph)
		}
		if ev.Ph == "i" && ev.S != "t" {
			t.Fatalf("instant %q has scope %q, want t", ev.Name, ev.S)
		}
		phases[ev.Ph]++
	}
	if phases["X"] != 3 || phases["i"] != 2 || phases["C"] != 2 {
		t.Fatalf("phase counts %v, want 3 X / 2 i / 2 C", phases)
	}
	if !processes["wall clock"] || !processes["simulated time"] {
		t.Fatalf("missing process metadata: %v", processes)
	}
	for _, want := range []string{"spmmsim/studies", "fig10/hot/w0", "par/pool"} {
		if !threads[want] {
			t.Fatalf("missing thread_name for %q (have %v)", want, threads)
		}
	}

	// Spot-check the kind-specific payloads survive the mapping.
	var sawRun, sawGrant bool
	for _, ev := range out.TraceEvents {
		if ev.Ph == "X" && ev.Name == "u3" {
			sawRun = true
			if ev.Args["bytes"].(float64) != 4096 {
				t.Fatalf("worker-run bytes = %v", ev.Args["bytes"])
			}
			if ev.Dur != 0.5 { // 500ns = 0.5µs
				t.Fatalf("worker-run dur = %v µs, want 0.5", ev.Dur)
			}
		}
		if ev.Ph == "C" && strings.HasPrefix(ev.Name, "bw ") {
			sawGrant = true
			if ev.Args["bytes_per_s"].(float64) != 1e9 {
				t.Fatalf("grant value = %v", ev.Args["bytes_per_s"])
			}
		}
	}
	if !sawRun || !sawGrant {
		t.Fatal("worker-run or grant event missing from export")
	}
}

func TestWriteTimelineSummary(t *testing.T) {
	tl := NewTimeline(64)
	simTrack := tl.TrackID("fig10/hot/w0")
	tl.Append(
		Event{TS: 0, Dur: 800, Track: simTrack, Name: -1, Kind: EvWorkerRun, Value: 1024},
		Event{TS: 900, Dur: 100, Track: simTrack, Name: -1, Kind: EvWorkerRun, Value: 1024},
	)
	wall := tl.Track("studies")
	sp := wall.Start("fig10")
	sp.End()

	var buf bytes.Buffer
	if err := tl.WriteTimelineSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 events recorded") {
		t.Fatalf("summary header wrong:\n%s", out)
	}
	// Simulated tracks sort before wall tracks.
	if sim, wallIdx := strings.Index(out, "fig10/hot/w0"), strings.Index(out, "studies"); sim < 0 || wallIdx < 0 || sim > wallIdx {
		t.Fatalf("sim track not listed first:\n%s", out)
	}
	// busy 900ns over span 1000ns = 90% utilization.
	if !strings.Contains(out, "90.0") {
		t.Fatalf("expected 90.0%% utilization:\n%s", out)
	}
}

func TestWriteTimelineFile(t *testing.T) {
	tl := NewTimeline(16)
	tl.Track("row").Start("x").End()
	path := filepath.Join(t.TempDir(), "sub", "tl.json")
	if err := WriteTimeline(tl, path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("written timeline is not JSON: %v", err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Fatal("written timeline lacks traceEvents")
	}
	if err := WriteTimeline(nil, path, nil); err == nil {
		t.Fatal("nil timeline write did not error")
	}
}

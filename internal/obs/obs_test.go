package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil {
		t.Fatal("nil tracer has a root")
	}
	sp := tr.Phase("exec").Start("child", Str("k", "v"))
	if sp != nil {
		t.Fatal("nil phase produced a span")
	}
	sp.End()
	sp.SetAttr("a", "b")
	if sp.Duration() != 0 {
		t.Fatal("nil span has duration")
	}
	tr.Finish()
	tr.SetConfig("k", "v")
	tr.AddOutput("x", []byte("y"))
	if tr.Manifest() != nil {
		t.Fatal("nil tracer produced a manifest")
	}
}

func TestSpanTree(t *testing.T) {
	tr := New("run")
	ph := tr.Phase("exec")
	if tr.Phase("exec") != ph {
		t.Fatal("Phase not deduplicated by name")
	}
	sp := ph.Start("job", Int("tiles", 42))
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() <= 0 {
		t.Fatalf("ended span has duration %v", sp.Duration())
	}
	d := sp.Duration()
	sp.End() // idempotent
	if sp.Duration() != d {
		t.Fatal("second End changed the duration")
	}
	tr.Finish()

	m := tr.Manifest()
	if m.Name != "run" {
		t.Fatalf("manifest name %q", m.Name)
	}
	phases := m.Phases()
	if len(phases) != 1 || phases[0] != "exec" {
		t.Fatalf("phases %v", phases)
	}
	if m.Spans.DurationNS <= 0 {
		t.Fatal("root not closed by Finish")
	}
	job := m.Spans.Children[0].Children[0]
	if job.Name != "job" || job.Attrs["tiles"] != "42" {
		t.Fatalf("child span %+v", job)
	}
	if job.DurationNS < int64(time.Millisecond) {
		t.Fatalf("child duration %d ns", job.DurationNS)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("race")
	ph := tr.Phase("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := ph.Start("item", Int("i", i))
			sp.SetAttr("done", "yes")
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	m := tr.Manifest()
	if got := len(m.Spans.Children[0].Children); got != 32 {
		t.Fatalf("%d children, want 32", got)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := NewCounter("test.counter")
	if NewCounter("test.counter") != c {
		t.Fatal("NewCounter not idempotent")
	}
	before := c.Load()
	c.Inc()
	c.Add(4)
	if got := c.Load() - before; got != 5 {
		t.Fatalf("counter delta %d, want 5", got)
	}

	g := NewGauge("test.gauge")
	g.Set(3)
	g.Set(7)
	g.Set(2)
	if g.Load() != 2 || g.Max() != 7 {
		t.Fatalf("gauge cur=%d max=%d", g.Load(), g.Max())
	}

	snap := Snapshot()
	if snap["test.counter"] < 5 {
		t.Fatalf("snapshot counter %d", snap["test.counter"])
	}
	if snap["test.gauge"] != 2 || snap["test.gauge.max"] != 7 {
		t.Fatalf("snapshot gauge %d/%d", snap["test.gauge"], snap["test.gauge.max"])
	}
	found := false
	for _, n := range MetricNames() {
		if n == "test.gauge" {
			found = true
		}
	}
	if !found {
		t.Fatal("gauge missing from MetricNames")
	}

	var nilC *Counter
	nilC.Inc()
	nilC.Add(2)
	if nilC.Load() != 0 {
		t.Fatal("nil counter not zero")
	}
	var nilG *Gauge
	nilG.Set(9)
	if nilG.Load() != 0 || nilG.Max() != 0 {
		t.Fatal("nil gauge not zero")
	}
}

func TestAttrHelpers(t *testing.T) {
	if a := Str("k", "v"); a.Key != "k" || a.Val != "v" {
		t.Fatalf("Str: %+v", a)
	}
	if a := Int("n", 12); a.Val != "12" {
		t.Fatalf("Int: %+v", a)
	}
	if a := F64("x", 1.5); a.Val != "1.5" {
		t.Fatalf("F64: %+v", a)
	}
}

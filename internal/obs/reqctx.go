// Request correlation: the context plumbing that lets one hottilesd request
// carry a single ID through its access-log line, response header, span
// tree, planstore singleflight joins, and hotcore preprocessing stages
// (DESIGN.md §18). IDs arrive on X-Request-ID or the W3C traceparent
// header and are minted otherwise; the request-scoped logger and span ride
// the same context so library code tags records without knowing about HTTP.
package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"strings"
	"sync/atomic"
)

// RequestIDHeader is the header requests supply (and responses echo) the
// request ID on.
const RequestIDHeader = "X-Request-ID"

// TraceparentHeader is the W3C trace-context header; its trace-id field is
// accepted as a request ID when no X-Request-ID is present.
const TraceparentHeader = "traceparent"

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
	ctxKeySpan
)

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the request ID on ctx ("" when absent).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithLogger returns ctx carrying a request-scoped logger.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger, l)
}

// CtxLog returns the logger on ctx. Absent one it returns nil, which is a
// valid no-op logger — callers log unconditionally.
func CtxLog(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ctxKeyLogger).(*Logger)
	return l
}

// WithSpan returns ctx carrying the current span, so lower layers attach
// children to the request's span tree.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKeySpan, s)
}

// CtxSpan returns the span on ctx (nil, a valid no-op span, when absent).
func CtxSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKeySpan).(*Span)
	return s
}

// mintFallback feeds MintRequestID when the system randomness source fails;
// monotonic so IDs stay unique within the process.
var mintFallback atomic.Uint64

// MintRequestID returns a fresh 16-hex-char request ID.
func MintRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], mintFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds accepted inbound IDs so a hostile client cannot
// bloat the flight recorder or log stream.
const maxRequestIDLen = 64

// ValidRequestID reports whether s is acceptable as an inbound request ID:
// 1–64 characters from [A-Za-z0-9._-].
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// InboundRequestID extracts a request ID from inbound headers: a valid
// X-Request-ID wins, else the traceparent trace-id. Returns "" when neither
// yields one (the caller mints).
func InboundRequestID(h http.Header) string {
	if id := h.Get(RequestIDHeader); ValidRequestID(id) {
		return id
	}
	return traceparentID(h.Get(TraceparentHeader))
}

// traceparentID extracts the trace-id from a W3C traceparent value
// ("00-<32 hex>-<16 hex>-<2 hex>"), or "" if malformed or all-zero.
func traceparentID(v string) string {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[1]) != 32 {
		return ""
	}
	id := strings.ToLower(parts[1])
	zero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return ""
	}
	return id
}

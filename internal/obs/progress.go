// Progress board: a process-wide view of the work currently in flight,
// served as JSON by the debug endpoint's /progress route. The experiment
// engine marks each study and each cache-missed cell as it starts and
// finishes, so `curl :6060/progress` during a long sweep shows what the
// fan-out is doing right now rather than only what it has counted so far.
package obs

import (
	"cmp"
	"slices"
	"sync"
	"time"
)

// progressRecent bounds the finished-item ring the board retains.
const progressRecent = 32

// progressBoard is the process-wide board. Items are keyed by a sequence
// number so two concurrent starts of the same name stay distinct.
var progressBoard struct {
	mu        sync.Mutex
	seq       uint64
	running   map[uint64]*progressItem
	done      []FinishedItem
	completed int
}

// progressItem is one in-flight piece of work.
type progressItem struct {
	name    string
	started time.Time
}

// RunningItem is one in-flight entry of a ProgressView.
type RunningItem struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FinishedItem is one recently completed entry of a ProgressView.
type FinishedItem struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// ProgressView is the JSON shape /progress serves.
type ProgressView struct {
	Running   []RunningItem  `json:"running"`
	Recent    []FinishedItem `json:"recent,omitempty"`
	Completed int            `json:"completed"`
}

// StartProgress marks one named piece of work as in flight and returns the
// function that marks it finished (idempotent).
func StartProgress(name string) (done func()) {
	b := &progressBoard
	b.mu.Lock()
	if b.running == nil {
		b.running = map[uint64]*progressItem{}
	}
	b.seq++
	id := b.seq
	b.running[id] = &progressItem{name: name, started: time.Now()}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		it, ok := b.running[id]
		if !ok {
			return
		}
		delete(b.running, id)
		b.completed++
		b.done = append(b.done, FinishedItem{
			Name: it.name,
			MS:   float64(time.Since(it.started).Nanoseconds()) / 1e6,
		})
		if len(b.done) > progressRecent {
			b.done = b.done[len(b.done)-progressRecent:]
		}
	}
}

// ProgressSnapshot returns the board's current state: in-flight work
// longest-running first, plus the tail of recently finished items.
func ProgressSnapshot() ProgressView {
	b := &progressBoard
	b.mu.Lock()
	defer b.mu.Unlock()
	v := ProgressView{
		Running:   make([]RunningItem, 0, len(b.running)),
		Completed: b.completed,
	}
	now := time.Now()
	for _, it := range b.running {
		v.Running = append(v.Running, RunningItem{
			Name:      it.name,
			ElapsedMS: float64(now.Sub(it.started).Nanoseconds()) / 1e6,
		})
	}
	slices.SortFunc(v.Running, func(a, b RunningItem) int {
		if a.ElapsedMS != b.ElapsedMS {
			return cmp.Compare(b.ElapsedMS, a.ElapsedMS)
		}
		return cmp.Compare(a.Name, b.Name)
	})
	v.Recent = append(v.Recent, b.done...)
	return v
}

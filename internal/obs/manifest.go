package obs

import (
	"cmp"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// Manifest is the pinned record of one run: configuration, the span tree,
// every registered counter/gauge, and a content hash of each produced
// artifact. Written as JSON to runs/<name>.json by the CLIs (DESIGN.md §10).
type Manifest struct {
	Name    string            `json:"name"`
	Created string            `json:"created"` // RFC3339
	Config  map[string]string `json:"config,omitempty"`
	Spans   *SpanRecord       `json:"spans"`
	// Counters and Histograms are rendered from one RegistrySnapshot, so a
	// manifest can never pair a counter view and a histogram view taken at
	// different moments of the run.
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Outputs    []Output                     `json:"outputs,omitempty"`
}

// SpanRecord is the serialized form of one span.
type SpanRecord struct {
	Name       string            `json:"name"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanRecord     `json:"children,omitempty"`
}

// Output pins one produced artifact (a rendered table or figure, a written
// file) by content hash, so a later run can prove it regenerated the same
// bytes.
type Output struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// HashOutput returns the Output record for one artifact's bytes.
func HashOutput(name string, data []byte) Output {
	sum := sha256.Sum256(data)
	return Output{Name: name, SHA256: hex.EncodeToString(sum[:]), Bytes: len(data)}
}

// AddOutput records a produced artifact's content hash for the manifest.
func (t *Tracer) AddOutput(name string, data []byte) {
	if t == nil {
		return
	}
	out := HashOutput(name, data)
	t.cfgMu.Lock()
	t.outputs = append(t.outputs, out)
	t.cfgMu.Unlock()
}

// record serializes a span subtree. Caller holds t.mu.
func record(s *Span) *SpanRecord {
	r := &SpanRecord{Name: s.Name, DurationNS: s.dur.Nanoseconds()}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			r.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.children {
		r.Children = append(r.Children, record(c))
	}
	return r
}

// SpanTree finalizes the tracer (Finish) and returns the serialized span
// tree alone — the shape the flight recorder retains per captured request,
// without the whole-process registry snapshot a Manifest carries.
func (t *Tracer) SpanTree() *SpanRecord {
	if t == nil {
		return nil
	}
	t.Finish()
	t.mu.Lock()
	defer t.mu.Unlock()
	return record(t.root)
}

// Manifest finalizes the tracer (Finish) and assembles the run manifest,
// snapshotting every registered counter and gauge.
func (t *Tracer) Manifest() *Manifest {
	if t == nil {
		return nil
	}
	t.Finish()
	t.mu.Lock()
	spans := record(t.root)
	name := t.root.Name
	created := t.root.start.Format(time.RFC3339)
	t.mu.Unlock()

	t.cfgMu.Lock()
	cfg := make(map[string]string, len(t.config))
	for k, v := range t.config {
		cfg[k] = v
	}
	outputs := append([]Output(nil), t.outputs...)
	t.cfgMu.Unlock()

	view := RegistrySnapshot()
	hists := make(map[string]HistogramSnapshot, len(view.Histograms))
	for name, h := range view.Histograms {
		if h.Count > 0 {
			hists[name] = h
		}
	}
	return &Manifest{
		Name:       name,
		Created:    created,
		Config:     cfg,
		Spans:      spans,
		Counters:   view.flatten(),
		Histograms: hists,
		Outputs:    outputs,
	}
}

// WriteManifest finalizes the tracer and writes the manifest as indented
// JSON.
func (t *Tracer) WriteManifest(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Manifest())
}

// ReadManifest parses a manifest previously written by WriteManifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: bad manifest: %w", err)
	}
	if m.Spans == nil {
		return nil, fmt.Errorf("obs: manifest has no span tree")
	}
	return &m, nil
}

// Phases returns the names of the root's direct children (the pipeline
// phases), in creation order.
func (m *Manifest) Phases() []string {
	var out []string
	for _, c := range m.Spans.Children {
		out = append(out, c.Name)
	}
	return out
}

// byTime is one row of the cumulative-time summary.
type byTime struct {
	name  string
	count int
	total time.Duration
}

// WriteSummary finalizes the tracer and prints a human-readable digest: the
// top span names by cumulative (inclusive) time, then the nonzero counters.
// This is what `-trace -` shows.
func (t *Tracer) WriteSummary(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	m := t.Manifest()

	agg := map[string]*byTime{}
	var walk func(r *SpanRecord, depth int)
	walk = func(r *SpanRecord, depth int) {
		if depth > 0 { // the root's duration is the whole run; skip it
			e, ok := agg[r.Name]
			if !ok {
				e = &byTime{name: r.Name}
				agg[r.Name] = e
			}
			e.count++
			e.total += time.Duration(r.DurationNS)
		}
		for _, c := range r.Children {
			walk(c, depth+1)
		}
	}
	walk(m.Spans, 0)

	rows := make([]*byTime, 0, len(agg))
	for _, e := range agg {
		rows = append(rows, e)
	}
	slices.SortFunc(rows, func(a, b *byTime) int {
		if a.total != b.total {
			return cmp.Compare(b.total, a.total)
		}
		return strings.Compare(a.name, b.name)
	})

	fmt.Fprintf(w, "trace %s — total %v\n", m.Name, time.Duration(m.Spans.DurationNS).Round(time.Microsecond))
	fmt.Fprintf(w, "%-32s%8s%14s\n", "span", "count", "cumulative")
	const top = 20
	for i, r := range rows {
		if i >= top {
			fmt.Fprintf(w, "… %d more span names\n", len(rows)-top)
			break
		}
		fmt.Fprintf(w, "%-32s%8d%14v\n", r.name, r.count, r.total.Round(time.Microsecond))
	}

	names := make([]string, 0, len(m.Counters))
	for name, v := range m.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	if len(names) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range names {
			fmt.Fprintf(w, "  %-30s%12d\n", name, m.Counters[name])
		}
	}
	if len(m.Histograms) > 0 {
		hnames := make([]string, 0, len(m.Histograms))
		for name := range m.Histograms {
			hnames = append(hnames, name)
		}
		slices.Sort(hnames)
		fmt.Fprintln(w, "histograms:")
		fmt.Fprintf(w, "  %-28s%10s%14s%14s%14s%14s\n", "name", "count", "p50", "p90", "p99", "max")
		for _, name := range hnames {
			h := m.Histograms[name]
			fmt.Fprintf(w, "  %-28s%10d%14v%14v%14v%14v\n", name, h.Count,
				time.Duration(h.P50NS).Round(time.Nanosecond),
				time.Duration(h.P90NS).Round(time.Nanosecond),
				time.Duration(h.P99NS).Round(time.Nanosecond),
				time.Duration(h.MaxNS).Round(time.Nanosecond))
		}
	}
	for _, o := range m.Outputs {
		fmt.Fprintf(w, "output %s: %d bytes, sha256 %s\n", o.Name, o.Bytes, o.SHA256[:12])
	}
	return nil
}

package obs

import (
	"slices"
	"sync"
	"sync/atomic"
)

// Counter is a process-wide monotonically increasing atomic counter.
// Counters are always live — an Add is a single atomic increment — so
// instrumented packages register them at init and bump them without caring
// whether a trace is being collected. A nil Counter is a no-op.
type Counter struct {
	name string
	n    atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge tracks an instantaneous level and its high-water mark (e.g. the
// worker pool's extra-goroutine depth). A nil Gauge is a no-op.
type Gauge struct {
	name     string
	cur, max atomic.Int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.cur.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// registry holds every counter, gauge, and histogram created through
// NewCounter/NewGauge/NewHistogram so RegistrySnapshot can enumerate them
// for manifests and the debug endpoint's Prometheus exposition.
var registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewCounter returns the process-wide counter with the given name, creating
// it on first use (calls with the same name share one counter).
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = map[string]*Counter{}
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewGauge returns the process-wide gauge with the given name, creating it
// on first use.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = map[string]*Gauge{}
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// NewHistogram returns the process-wide histogram with the given name,
// creating it on first use. Names end in ".ns" by convention: every
// histogram records nanoseconds.
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.histograms == nil {
		registry.histograms = map[string]*Histogram{}
	}
	if h, ok := registry.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	registry.histograms[name] = h
	return h
}

// GaugeSnapshot is one gauge's state in a RegistryView.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// RegistryView is the state of every registered metric, enumerated in one
// pass under the registry lock. Both the run manifest and the debug
// endpoint's Prometheus exposition are rendered from one RegistryView, so
// the two can never disagree about which metrics exist mid-run.
type RegistryView struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// RegistrySnapshot enumerates every registered counter, gauge, and
// histogram under one registry lock and reads each exactly once.
func RegistrySnapshot() *RegistryView {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	v := &RegistryView{
		Counters: make(map[string]int64, len(registry.counters)),
	}
	for name, c := range registry.counters {
		v.Counters[name] = c.Load()
	}
	if len(registry.gauges) > 0 {
		v.Gauges = make(map[string]GaugeSnapshot, len(registry.gauges))
		for name, g := range registry.gauges {
			v.Gauges[name] = GaugeSnapshot{Value: g.Load(), Max: g.Max()}
		}
	}
	if len(registry.histograms) > 0 {
		v.Histograms = make(map[string]HistogramSnapshot, len(registry.histograms))
		for name, h := range registry.histograms {
			v.Histograms[name] = h.snapshot()
		}
	}
	return v
}

// flatten folds a RegistryView into the manifest's flat counter map: every
// counter by name, plus each gauge's level (name) and high-water mark
// (name + ".max").
func (v *RegistryView) flatten() map[string]int64 {
	out := make(map[string]int64, len(v.Counters)+2*len(v.Gauges))
	for name, c := range v.Counters {
		out[name] = c
	}
	for name, g := range v.Gauges {
		out[name] = g.Value
		out[name+".max"] = g.Max
	}
	return out
}

// Snapshot returns the current value of every registered counter, plus each
// gauge's level (name) and high-water mark (name + ".max").
func Snapshot() map[string]int64 {
	return RegistrySnapshot().flatten()
}

// MetricNames returns the registered counter, gauge, and histogram names,
// sorted.
func MetricNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.counters)+len(registry.gauges)+len(registry.histograms))
	for name := range registry.counters {
		names = append(names, name)
	}
	for name := range registry.gauges {
		names = append(names, name)
	}
	for name := range registry.histograms {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

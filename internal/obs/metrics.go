package obs

import (
	"slices"
	"sync"
	"sync/atomic"
)

// Counter is a process-wide monotonically increasing atomic counter.
// Counters are always live — an Add is a single atomic increment — so
// instrumented packages register them at init and bump them without caring
// whether a trace is being collected. A nil Counter is a no-op.
type Counter struct {
	name string
	n    atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge tracks an instantaneous level and its high-water mark (e.g. the
// worker pool's extra-goroutine depth). A nil Gauge is a no-op.
type Gauge struct {
	name     string
	cur, max atomic.Int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.cur.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// registry holds every counter and gauge created through NewCounter and
// NewGauge so Snapshot can enumerate them for manifests.
var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewCounter returns the process-wide counter with the given name, creating
// it on first use (calls with the same name share one counter).
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = map[string]*Counter{}
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewGauge returns the process-wide gauge with the given name, creating it
// on first use.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = map[string]*Gauge{}
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// Snapshot returns the current value of every registered counter, plus each
// gauge's level (name) and high-water mark (name + ".max").
func Snapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters)+2*len(registry.gauges))
	for name, c := range registry.counters {
		out[name] = c.Load()
	}
	for name, g := range registry.gauges {
		out[name] = g.Load()
		out[name+".max"] = g.Max()
	}
	return out
}

// MetricNames returns the registered counter and gauge names, sorted.
func MetricNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.counters)+len(registry.gauges))
	for name := range registry.counters {
		names = append(names, name)
	}
	for name := range registry.gauges {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

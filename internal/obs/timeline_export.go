package obs

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"time"
)

// Trace-process ids of the Chrome export: wall-clock events and simulated
// events render as separate processes so Perfetto never mixes the two time
// bases on one row.
const (
	pidWall = 1
	pidSim  = 2
)

// chromeEvent is one entry of the Chrome trace-event JSON schema (the
// subset Perfetto and chrome://tracing consume: complete slices "X",
// instants "i", counters "C", and metadata "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chrome converts one recorded event. ok is false for kinds the export
// skips (none today, but the schema stays closed over the known kinds).
func (t *Timeline) chrome(ev Event) (chromeEvent, bool) {
	c := chromeEvent{
		TS:  float64(ev.TS) / 1e3,
		Pid: pidWall,
		Tid: int(ev.Track),
	}
	if ev.Kind.simClock() {
		c.Pid = pidSim
	}
	switch ev.Kind {
	case EvSlice:
		c.Ph, c.Name, c.Dur = "X", t.eventName(ev.Name), float64(ev.Dur)/1e3
	case EvWorkerRun:
		c.Ph, c.Name, c.Dur = "X", "u"+strconv.FormatInt(ev.Arg, 10), float64(ev.Dur)/1e3
		c.Args = map[string]any{"bytes": ev.Value}
	case EvWorkerIdle:
		c.Ph, c.Name, c.S = "i", "idle", "t"
	case EvGrant:
		c.Ph, c.Name = "C", "bw "+t.trackName(ev.Track)
		c.Args = map[string]any{"bytes_per_s": ev.Value}
	case EvTaskEnqueue:
		c.Ph, c.Name, c.S = "i", "enqueue", "t"
		c.Args = map[string]any{"items": ev.Arg}
	case EvTaskRun:
		c.Ph, c.Name, c.Dur = "X", "drain", float64(ev.Dur)/1e3
		c.Args = map[string]any{"items": ev.Arg}
	case EvQueueDepth:
		c.Ph, c.Name = "C", "pool depth"
		c.Args = map[string]any{"depth": ev.Value}
	default:
		return chromeEvent{}, false
	}
	return c, true
}

// WriteChromeTrace renders the ring as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChromeTrace on nil timeline")
	}
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+16)}

	// Metadata first: name the two processes and every referenced thread.
	type row struct{ pid, tid int }
	seen := map[row]bool{}
	for _, ev := range events {
		pid := pidWall
		if ev.Kind.simClock() {
			pid = pidSim
		}
		seen[row{pid, int(ev.Track)}] = true
	}
	rows := make([]row, 0, len(seen))
	for r := range seen {
		rows = append(rows, r)
	}
	slices.SortFunc(rows, func(a, b row) int {
		if a.pid != b.pid {
			return cmp.Compare(a.pid, b.pid)
		}
		return cmp.Compare(a.tid, b.tid)
	})
	for _, pid := range []int{pidWall, pidSim} {
		name := "wall clock"
		if pid == pidSim {
			name = "simulated time"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name},
		})
	}
	for _, r := range rows {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: r.pid, Tid: r.tid,
			Args: map[string]any{"name": t.trackName(int32(r.tid))},
		})
	}

	for _, ev := range events {
		if c, ok := t.chrome(ev); ok {
			out.TraceEvents = append(out.TraceEvents, c)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// trackAgg accumulates one track's summary row.
type trackAgg struct {
	track    int32
	sim      bool
	events   int
	busy     int64 // Σ slice durations
	bytes    float64
	minStart int64
	maxEnd   int64
}

// WriteTimelineSummary prints the terminal digest `-timeline -` shows:
// per-track busy time, span, utilization, and bytes, simulated workers
// first. Utilization is busy/span where span is the track's own active
// window (simulated tracks start at 0 by construction).
func (t *Timeline) WriteTimelineSummary(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteTimelineSummary on nil timeline")
	}
	events := t.Events()
	aggs := map[int32]*trackAgg{}
	for _, ev := range events {
		a, ok := aggs[ev.Track]
		if !ok {
			a = &trackAgg{track: ev.Track, sim: ev.Kind.simClock(), minStart: ev.TS}
			aggs[ev.Track] = a
		}
		a.events++
		if ev.TS < a.minStart {
			a.minStart = ev.TS
		}
		if end := ev.TS + ev.Dur; end > a.maxEnd {
			a.maxEnd = end
		}
		switch ev.Kind {
		case EvSlice, EvTaskRun:
			a.busy += ev.Dur
		case EvWorkerRun:
			a.busy += ev.Dur
			a.bytes += ev.Value
		}
	}
	rows := make([]*trackAgg, 0, len(aggs))
	for _, a := range aggs {
		rows = append(rows, a)
	}
	slices.SortFunc(rows, func(a, b *trackAgg) int {
		if a.sim != b.sim {
			if a.sim {
				return -1
			}
			return 1
		}
		if a.busy != b.busy {
			return cmp.Compare(b.busy, a.busy)
		}
		return cmp.Compare(a.track, b.track)
	})

	fmt.Fprintf(w, "timeline: %d events recorded (%d overwritten), %d tracks\n",
		len(events), t.Dropped(), len(rows))
	fmt.Fprintf(w, "%-40s%6s%8s%14s%14s%8s%14s\n",
		"track", "clock", "events", "busy", "span", "util%", "bytes")
	const top = 40
	for i, a := range rows {
		if i >= top {
			fmt.Fprintf(w, "… %d more tracks\n", len(rows)-top)
			break
		}
		span := a.maxEnd - a.minStart
		if a.sim {
			span = a.maxEnd // simulated runs start at t=0
		}
		util := 0.0
		if span > 0 {
			util = float64(a.busy) / float64(span) * 100
		}
		clock := "wall"
		if a.sim {
			clock = "sim"
		}
		bytes := ""
		if a.bytes > 0 {
			bytes = fmt.Sprintf("%14.3g", a.bytes)
		}
		fmt.Fprintf(w, "%-40s%6s%8d%14v%14v%8.1f%s\n",
			t.trackName(a.track), clock, a.events,
			time.Duration(a.busy).Round(time.Microsecond),
			time.Duration(span).Round(time.Microsecond),
			util, bytes)
	}
	return nil
}

// WriteTimeline emits the timeline the way the CLIs' -timeline flag
// specifies: path "-" prints the per-track summary to w; any other path
// gets Chrome trace-event JSON, with parent directories created as needed.
func WriteTimeline(t *Timeline, path string, w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteTimeline on nil timeline")
	}
	if path == "-" {
		return t.WriteTimelineSummary(w)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

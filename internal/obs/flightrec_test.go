package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Capacity: 4, SlowThreshold: -1})
	for i := 0; i < 6; i++ {
		f.Record(RequestRecord{ID: fmt.Sprintf("r%d", i), Route: "plan", Status: 200}, nil, nil)
	}
	v := f.Snapshot()
	if v.Total != 6 {
		t.Errorf("Total = %d, want 6", v.Total)
	}
	if len(v.Recent) != 4 {
		t.Fatalf("Recent has %d entries, want 4", len(v.Recent))
	}
	for i, want := range []string{"r5", "r4", "r3", "r2"} {
		if v.Recent[i].ID != want {
			t.Errorf("Recent[%d] = %q, want %q (newest first)", i, v.Recent[i].ID, want)
		}
	}
	if len(v.Postmortem) != 0 || v.Captured != 0 {
		t.Errorf("slow capture disabled but postmortem ring has %d/%d", len(v.Postmortem), v.Captured)
	}
}

// buildSpanTree makes a finished tracer with two phases for phase-timing
// assertions.
func buildSpanTree() *SpanRecord {
	tr := New("httpd.plan")
	sp := tr.Root().Start("hotcore.scan")
	sp.End()
	sp = tr.Root().Start("hotcore.partition")
	sp.End()
	return tr.SpanTree()
}

func TestFlightPostmortemCapture(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SlowThreshold: 10 * time.Millisecond})
	tl := NewTimeline(16)
	ts := tl.Track("httpd/plan").Start("r-slow")
	ts.End()

	f.Record(RequestRecord{ID: "r-ok", Status: 200, LatencyNS: 1000}, buildSpanTree(), tl)
	f.Record(RequestRecord{ID: "r-5xx", Status: 503, LatencyNS: 1000}, buildSpanTree(), tl)
	f.Record(RequestRecord{ID: "r-slow", Status: 200,
		LatencyNS: (20 * time.Millisecond).Nanoseconds()}, buildSpanTree(), tl)
	f.Record(RequestRecord{ID: "r-both", Status: 500,
		LatencyNS: (20 * time.Millisecond).Nanoseconds()}, buildSpanTree(), tl)

	v := f.Snapshot()
	if v.Total != 4 || v.Captured != 3 {
		t.Fatalf("Total/Captured = %d/%d, want 4/3", v.Total, v.Captured)
	}
	wantReason := map[string]string{"r-5xx": "error", "r-slow": "slow", "r-both": "error,slow"}
	for _, pm := range v.Postmortem {
		want, ok := wantReason[pm.ID]
		if !ok {
			t.Errorf("unexpected postmortem %q", pm.ID)
			continue
		}
		if pm.Reason != want {
			t.Errorf("%s: reason = %q, want %q", pm.ID, pm.Reason, want)
		}
		if pm.Spans == nil || len(pm.Spans.Children) != 2 {
			t.Errorf("%s: postmortem lost its span tree", pm.ID)
		}
		if len(pm.Phases) != 2 || pm.Phases[0].Name != "hotcore.scan" {
			t.Errorf("%s: phases = %v, want the span tree's top level", pm.ID, pm.Phases)
		}
		if len(pm.Timeline) == 0 {
			t.Errorf("%s: postmortem lost its timeline slice", pm.ID)
		}
	}
	// The compact ring records everything, captured or not.
	for _, rec := range v.Recent {
		if rec.ID == "r-ok" && len(rec.Phases) != 2 {
			t.Errorf("compact record lost phase timings: %v", rec)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestRecord{ID: "x"}, nil, nil)
	if v := f.Snapshot(); v.Total != 0 {
		t.Errorf("nil recorder snapshot = %+v", v)
	}
}

func TestWritePostmortem(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SlowThreshold: -1})
	f.Record(RequestRecord{ID: "bad", Status: 502}, buildSpanTree(), nil)
	var buf bytes.Buffer
	if err := f.WritePostmortem(&buf); err != nil {
		t.Fatalf("WritePostmortem: %v", err)
	}
	var doc struct {
		Captured   uint64             `json:"captured"`
		Postmortem []PostmortemRecord `json:"postmortem"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("postmortem dump is not JSON: %v", err)
	}
	if doc.Captured != 1 || len(doc.Postmortem) != 1 || doc.Postmortem[0].ID != "bad" {
		t.Errorf("dump = %+v, want the one captured request", doc)
	}
}

func TestDebugRequestsRoute(t *testing.T) {
	f := ConfigureFlight(FlightConfig{Capacity: 8})
	f.Record(RequestRecord{ID: "via-http", Route: "plan", Status: 200}, nil, nil)

	srv := httptest.NewServer(DebugMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatalf("GET /debug/requests: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var v FlightView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(v.Recent) != 1 || v.Recent[0].ID != "via-http" {
		t.Errorf("route served %+v, want the recorded request", v)
	}

	// The route resolves the recorder per request: reconfiguring swaps what
	// it serves without rebuilding the mux.
	ConfigureFlight(FlightConfig{})
	resp2, err := srv.Client().Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatalf("GET after ConfigureFlight: %v", err)
	}
	defer resp2.Body.Close()
	var v2 FlightView
	if err := json.NewDecoder(resp2.Body).Decode(&v2); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if v2.Total != 0 {
		t.Errorf("after reconfigure Total = %d, want 0", v2.Total)
	}
}

func TestTimelineTailView(t *testing.T) {
	tl := NewTimeline(8)
	for i := 0; i < 3; i++ {
		s := tl.Track("httpd/plan").Start(fmt.Sprintf("req%d", i))
		s.End()
	}
	tl.Append(Event{Kind: EvQueueDepth, Track: tl.TrackID("pool"), Name: -1, Value: 2})

	all := tl.TailView(10)
	if len(all) != 4 {
		t.Fatalf("TailView(10) = %d events, want 4", len(all))
	}
	if all[0].Track != "httpd/plan" || all[0].Name != "req0" || all[0].Kind != "slice" {
		t.Errorf("first event = %+v", all[0])
	}
	if all[3].Kind != "queue.depth" || all[3].Value != 2 {
		t.Errorf("last event = %+v", all[3])
	}

	tail := tl.TailView(2)
	if len(tail) != 2 || tail[0].Name != "req2" {
		t.Errorf("TailView(2) = %+v, want the newest two", tail)
	}
	var nilTL *Timeline
	if nilTL.TailView(4) != nil {
		t.Errorf("nil timeline TailView should be nil")
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr := New("root")
	child := tr.Root().Start("phase.a", Str("k", "v"))
	child.Start("inner").End()
	child.End()
	tree := tr.SpanTree()
	if tree == nil || tree.Name != "root" {
		t.Fatalf("SpanTree = %+v", tree)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "phase.a" {
		t.Fatalf("children = %+v", tree.Children)
	}
	if tree.Children[0].Attrs["k"] != "v" {
		t.Errorf("attrs lost: %+v", tree.Children[0].Attrs)
	}
	if len(tree.Children[0].Children) != 1 {
		t.Errorf("grandchild lost")
	}
	var nilTr *Tracer
	if nilTr.SpanTree() != nil {
		t.Errorf("nil tracer SpanTree should be nil")
	}
}

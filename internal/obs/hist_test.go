package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	// Every positive observation must land in a bucket whose upper bound
	// covers it.
	for _, ns := range []int64{1, 2, 3, 100, 1e6, 1e9, math.MaxInt64} {
		b := bucketOf(ns)
		if up := bucketUpper(b); up < ns {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d < observation", ns, up)
		}
		if b > 1 {
			if low := bucketUpper(b - 1); low >= ns {
				t.Errorf("observation %d also fits bucket %d (upper %d)", ns, b-1, low)
			}
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~1µs) and 10 slow ones (~1ms): p50/p90 must sit
	// in the fast bucket's range, p99 and max in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := int64(90*1000 + 10*1_000_000); s.SumNS != want {
		t.Fatalf("sum = %d, want %d", s.SumNS, want)
	}
	if s.MaxNS != 1_000_000 {
		t.Fatalf("max = %d, want 1000000", s.MaxNS)
	}
	if s.P50NS < 1000 || s.P50NS >= 2048 {
		t.Errorf("p50 = %d, want within the 1µs bucket [1000, 2048)", s.P50NS)
	}
	if s.P90NS < 1000 || s.P90NS >= 2048 {
		t.Errorf("p90 = %d, want within the 1µs bucket [1000, 2048)", s.P90NS)
	}
	if s.P99NS < 1_000_000 {
		t.Errorf("p99 = %d, want >= 1ms", s.P99NS)
	}
	// Quantile estimates are clamped to the observed max.
	if s.P99NS > s.MaxNS {
		t.Errorf("p99 = %d exceeds max %d", s.P99NS, s.MaxNS)
	}

	// The cumulative buckets must end at the full count, strictly increase,
	// and each upper bound must be representable.
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count <= prev {
			t.Errorf("bucket cumulative count %d not increasing (prev %d)", b.Count, prev)
		}
		prev = b.Count
	}
	if prev != s.Count {
		t.Errorf("last cumulative count %d != total %d", prev, s.Count)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	if s.Count != 0 || s.P50NS != 0 || s.P99NS != 0 || s.MaxNS != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var h Histogram
	var l LocalHist
	for i := int64(1); i <= 100; i++ {
		l.Observe(i * 1000)
	}
	h.Observe(7) // pre-existing direct observation
	h.Merge(&l)
	if h.Count() != 101 {
		t.Fatalf("count after merge = %d, want 101", h.Count())
	}
	s := h.snapshot()
	if want := int64(7 + 1000*(100*101/2)); s.SumNS != want {
		t.Fatalf("sum after merge = %d, want %d", s.SumNS, want)
	}
	if s.MaxNS != 100_000 {
		t.Fatalf("max after merge = %d, want 100000", s.MaxNS)
	}
	// Merge resets the local buffer so it can be reused.
	if l.count != 0 || l.sum != 0 || l.max != 0 {
		t.Fatalf("LocalHist not reset by Merge: %+v", l)
	}
	h.Merge(&l) // merging an empty local is a no-op
	if h.Count() != 101 {
		t.Fatalf("empty merge changed count: %d", h.Count())
	}
}

func TestHistogramNilAndObserveSince(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(time.Now())
	h.Merge(&LocalHist{})
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}

	var real Histogram
	real.ObserveSince(time.Now().Add(-time.Millisecond))
	s := real.snapshot()
	if s.Count != 1 || s.MaxNS < time.Millisecond.Nanoseconds() {
		t.Fatalf("ObserveSince recorded %+v, want one ~1ms observation", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i + 1))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	s := h.snapshot()
	if s.MaxNS != goroutines*per {
		t.Fatalf("max = %d, want %d", s.MaxNS, goroutines*per)
	}
	total := int64(0)
	for i, b := range s.Buckets {
		if i == len(s.Buckets)-1 {
			total = b.Count
		}
	}
	if total != goroutines*per {
		t.Fatalf("cumulative bucket total = %d, want %d", total, goroutines*per)
	}
}

func TestSetDeepTiming(t *testing.T) {
	prev := SetDeepTiming(true)
	defer SetDeepTiming(prev)
	if !DeepTiming() {
		t.Fatal("DeepTiming false after SetDeepTiming(true)")
	}
	if !SetDeepTiming(false) {
		t.Fatal("SetDeepTiming did not report the previous setting")
	}
	if DeepTiming() {
		t.Fatal("DeepTiming true after SetDeepTiming(false)")
	}
}

// Timeline tracing: a ring-buffered event recorder for the fine-grained
// behavior the span tree and counters deliberately discard — individual
// simulated workers starting and finishing units, bandwidth grants
// changing, pool goroutines draining fan-outs. Events live in a fixed ring
// (oldest overwritten first), so a full `spmmsim all` run records the tail
// of its activity in bounded memory. Exported as Chrome trace-event JSON
// (viewable in Perfetto or chrome://tracing) or as a terminal per-track
// utilization summary.
//
// Two clocks coexist: wall-clock events (pool activity, study slices)
// carry nanoseconds since the timeline's epoch, while simulator events
// carry *simulated* nanoseconds. The Chrome export separates them into two
// trace "processes" so Perfetto never mixes the time bases on one row.
//
// Everything is nil-safe: a nil *Timeline (and the nil *Track it hands
// out) accepts every method as a no-op, so instrumented code records
// unconditionally and the disabled path costs a nil check — no
// allocations, no locks (TestEngineStepAllocs and BenchmarkObsDisabled pin
// this for the engine and experiment paths).
package obs

import (
	"sync"
	"time"
)

// EventKind classifies one timeline event.
type EventKind uint8

const (
	// EvSlice is a named wall-clock slice recorded by Track.Start/End
	// (study and phase activity). Name indexes the timeline's name table.
	EvSlice EventKind = iota
	// EvWorkerRun is one simulated worker executing one unit: the slice
	// [TS, TS+Dur) on the simulated clock, Arg = unit index within the
	// worker's pool (the tile id for hot pools), Value = bytes the worker
	// moved to/from main memory during the unit.
	EvWorkerRun
	// EvWorkerIdle marks the simulated instant a worker's pool queue ran
	// dry (the worker idles for the rest of the run).
	EvWorkerIdle
	// EvGrant samples a simulated worker's bandwidth grant after a
	// reallocation changed it; Value = the new grant in bytes/s.
	EvGrant
	// EvTaskEnqueue marks a fan-out submitted to the worker pool; Arg = the
	// number of items enqueued.
	EvTaskEnqueue
	// EvTaskRun is one goroutine's participation in a fan-out: the
	// wall-clock slice [TS, TS+Dur) spent draining items, Arg = items
	// drained.
	EvTaskRun
	// EvQueueDepth samples the pool's extra-goroutine depth; Value = depth.
	EvQueueDepth
)

// simClock reports whether the kind's TS/Dur are simulated nanoseconds
// rather than wall-clock nanoseconds since the epoch.
func (k EventKind) simClock() bool {
	return k == EvWorkerRun || k == EvWorkerIdle || k == EvGrant
}

// Event is one timeline record. Events are plain values sized for the
// ring: names and track labels are interned, so recording never retains
// caller memory.
type Event struct {
	TS    int64 // ns: wall-clock since epoch, or simulated (see EventKind)
	Dur   int64 // slice width in ns; 0 for instants and samples
	Track int32 // track id from Timeline.TrackID
	Name  int32 // interned name id (EvSlice only); -1 otherwise
	Kind  EventKind
	Arg   int64   // kind-specific: unit index, item count
	Value float64 // kind-specific: bytes, bytes/s, depth
}

// Timeline is the ring-buffered recorder. Build with NewTimeline; a nil
// Timeline is a valid, always-disabled recorder.
type Timeline struct {
	epoch time.Time

	mu     sync.Mutex
	buf    []Event
	total  uint64 // events ever appended; ring holds the last len(buf)
	names  []string
	nameID map[string]int32
	tracks []string
	trackI map[string]int32
}

// maxTracks and maxNames bound the string tables: a long sweep creates
// tracks per simulated run, and the tables must not grow without bound
// when the ring does not. Excess entries collapse onto a shared overflow
// slot.
const (
	maxTracks = 4096
	maxNames  = 1 << 16
)

// DefaultTimelineEvents is the ring capacity NewTimeline uses for
// non-positive requests: enough for the tail of a full study sweep while
// staying a few megabytes.
const DefaultTimelineEvents = 1 << 16

// NewTimeline returns a recorder whose ring holds the last capacity
// events (capacity <= 0 selects DefaultTimelineEvents).
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineEvents
	}
	return &Timeline{
		epoch:  time.Now(),
		buf:    make([]Event, 0, capacity),
		nameID: map[string]int32{},
		trackI: map[string]int32{},
	}
}

// Now returns nanoseconds since the timeline's epoch (0 for a nil
// timeline).
func (t *Timeline) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Intern maps a name to its stable id in the timeline's name table,
// creating it on first use.
func (t *Timeline) Intern(name string) int32 {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return internLocked(t.nameID, &t.names, name, maxNames)
}

// TrackID maps a track label to its stable id, creating the track on first
// use. Once the table is full, further labels share one "(overflow)" track
// rather than growing it.
func (t *Timeline) TrackID(name string) int32 {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return internLocked(t.trackI, &t.tracks, name, maxTracks)
}

// internLocked find-or-creates name in one of the timeline's string
// tables. Caller holds t.mu. When the table has limit-1 entries, unseen
// names collapse onto a shared "(overflow)" entry, bounding the table at
// limit even though the ring keeps rolling.
func internLocked(index map[string]int32, table *[]string, name string, limit int) int32 {
	if id, ok := index[name]; ok {
		return id
	}
	if len(*table) >= limit-1 {
		name = "(overflow)"
		if id, ok := index[name]; ok {
			return id
		}
	}
	id := int32(len(*table))
	*table = append(*table, name)
	index[name] = id
	return id
}

// Append copies events into the ring, overwriting the oldest when full.
// The events themselves are plain values, so Append allocates nothing once
// the ring is warm.
func (t *Timeline) Append(evs ...Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, ev := range evs {
		if len(t.buf) < cap(t.buf) {
			t.buf = append(t.buf, ev)
		} else {
			t.buf[t.total%uint64(cap(t.buf))] = ev
		}
		t.total++
	}
	t.mu.Unlock()
}

// Events returns the recorded events oldest-first (a copy).
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if t.total <= uint64(cap(t.buf)) {
		copy(out, t.buf)
		return out
	}
	head := int(t.total % uint64(cap(t.buf))) // oldest event's slot
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// Dropped returns how many events the ring has overwritten.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(cap(t.buf)) {
		return 0
	}
	return t.total - uint64(cap(t.buf))
}

// Total returns how many events were ever appended.
func (t *Timeline) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// trackName resolves a track id for rendering.
func (t *Timeline) trackName(id int32) string {
	if t == nil || id < 0 || int(id) >= len(t.tracks) {
		return "?"
	}
	return t.tracks[id]
}

// eventName resolves an interned name id for rendering.
func (t *Timeline) eventName(id int32) string {
	if t == nil || id < 0 || int(id) >= len(t.names) {
		return "?"
	}
	return t.names[id]
}

// Track is a handle for recording wall-clock slices onto one timeline row.
// A nil Track (from a nil Timeline) is a no-op recorder, mirroring the
// nil-Span contract.
type Track struct {
	tl *Timeline
	id int32
}

// Track returns the handle for the given label, creating the row on first
// use.
func (t *Timeline) Track(name string) *Track {
	if t == nil {
		return nil
	}
	return &Track{tl: t, id: t.TrackID(name)}
}

// Start opens a wall-clock slice on the track. Like obs.Span, every Start
// must be paired with End (the spanend analyzer enforces this).
func (tr *Track) Start(name string) *TrackSpan {
	if tr == nil {
		return nil
	}
	return &TrackSpan{tr: tr, name: tr.tl.Intern(name), t0: tr.tl.Now()}
}

// TrackSpan is one in-flight wall-clock slice; End records it.
type TrackSpan struct {
	tr    *Track
	name  int32
	t0    int64
	ended bool
}

// End closes the slice and appends it to the timeline. Idempotent; a nil
// TrackSpan is a no-op.
func (s *TrackSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.tl.Append(Event{
		TS:    s.t0,
		Dur:   s.tr.tl.Now() - s.t0,
		Track: s.tr.id,
		Name:  s.name,
		Kind:  EvSlice,
	})
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// progressNames collects the names with the given prefix from a slice of
// running or finished items.
func runningNames(v ProgressView, prefix string) []string {
	var out []string
	for _, it := range v.Running {
		if len(it.Name) >= len(prefix) && it.Name[:len(prefix)] == prefix {
			out = append(out, it.Name)
		}
	}
	return out
}

func recentNames(v ProgressView, prefix string) []string {
	var out []string
	for _, it := range v.Recent {
		if len(it.Name) >= len(prefix) && it.Name[:len(prefix)] == prefix {
			out = append(out, it.Name)
		}
	}
	return out
}

// The board is process-global, so assertions are relative to a baseline and
// use prefixed names that no other test starts.
func TestStartProgressBoard(t *testing.T) {
	base := ProgressSnapshot().Completed
	doneA := StartProgress("ptest.alpha")
	doneB := StartProgress("ptest.beta")

	v := ProgressSnapshot()
	if got := runningNames(v, "ptest."); len(got) != 2 {
		t.Fatalf("running = %v, want both ptest items", got)
	}
	if v.Completed != base {
		t.Errorf("Completed moved before done: %d != %d", v.Completed, base)
	}

	doneA()
	doneA() // idempotent
	v = ProgressSnapshot()
	if got := runningNames(v, "ptest."); len(got) != 1 || got[0] != "ptest.beta" {
		t.Errorf("after doneA running = %v, want only ptest.beta", got)
	}
	if v.Completed != base+1 {
		t.Errorf("Completed = %d, want %d (idempotent done)", v.Completed, base+1)
	}
	if got := recentNames(v, "ptest."); len(got) != 1 || got[0] != "ptest.alpha" {
		t.Errorf("recent = %v, want finished ptest.alpha", got)
	}

	doneB()
	if got := runningNames(ProgressSnapshot(), "ptest."); len(got) != 0 {
		t.Errorf("items leaked on the board: %v", got)
	}
}

// Two concurrent starts of the same name are distinct board entries.
func TestStartProgressSameName(t *testing.T) {
	done1 := StartProgress("ptest.dup")
	done2 := StartProgress("ptest.dup")
	if got := runningNames(ProgressSnapshot(), "ptest.dup"); len(got) != 2 {
		t.Errorf("running = %v, want two ptest.dup entries", got)
	}
	done1()
	if got := runningNames(ProgressSnapshot(), "ptest.dup"); len(got) != 1 {
		t.Errorf("running = %v, want one ptest.dup left", got)
	}
	done2()
}

func TestProgressConcurrent(t *testing.T) {
	base := ProgressSnapshot().Completed
	const workers, per = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				done := StartProgress("ptest.conc")
				ProgressSnapshot() // reads race with starts under -race
				done()
			}
		}()
	}
	wg.Wait()
	v := ProgressSnapshot()
	if v.Completed != base+workers*per {
		t.Errorf("Completed = %d, want %d", v.Completed, base+workers*per)
	}
	if got := runningNames(v, "ptest.conc"); len(got) != 0 {
		t.Errorf("%d ptest.conc items still running", len(got))
	}
	// The finished ring stays bounded no matter how many items completed.
	if len(v.Recent) > progressRecent {
		t.Errorf("recent ring grew to %d, cap is %d", len(v.Recent), progressRecent)
	}
}

func TestProgressJSONShape(t *testing.T) {
	done := StartProgress("ptest.http")
	defer done()

	srv := httptest.NewServer(DebugMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}

	// Pin the wire shape, not just the Go struct: the keys are the JSON
	// contract dashboards scrape.
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if _, ok := raw["running"]; !ok {
		t.Fatalf("response lacks \"running\": %v", raw)
	}
	if _, ok := raw["completed"]; !ok {
		t.Fatalf("response lacks \"completed\": %v", raw)
	}
	var running []RunningItem
	if err := json.Unmarshal(raw["running"], &running); err != nil {
		t.Fatalf("running key: %v", err)
	}
	found := false
	for _, it := range running {
		if it.Name == "ptest.http" {
			found = true
			if it.ElapsedMS < 0 {
				t.Errorf("negative elapsed: %v", it)
			}
		}
	}
	if !found {
		t.Errorf("/progress does not show the in-flight item: %v", running)
	}
}

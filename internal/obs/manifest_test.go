package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	tr := New("spmmsim")
	tr.SetConfig("scale", "512")
	tr.SetConfig("seed", "1")
	for _, phase := range []string{"generate", "tile", "estimate", "exec"} {
		sp := tr.Phase(phase).Start("pap")
		sp.End()
	}
	NewCounter("manifest.test.hits").Add(3)
	tr.AddOutput("fig10", []byte("rendered table\n"))

	var buf bytes.Buffer
	if err := tr.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "spmmsim" || m.Config["scale"] != "512" || m.Config["seed"] != "1" {
		t.Fatalf("config lost: %+v", m)
	}
	phases := m.Phases()
	if len(phases) != 4 {
		t.Fatalf("phases %v", phases)
	}
	for i, want := range []string{"generate", "tile", "estimate", "exec"} {
		if phases[i] != want {
			t.Fatalf("phase %d = %s, want %s", i, phases[i], want)
		}
	}
	if m.Counters["manifest.test.hits"] != 3 {
		t.Fatalf("counter %d", m.Counters["manifest.test.hits"])
	}
	if len(m.Outputs) != 1 {
		t.Fatalf("outputs %v", m.Outputs)
	}
	o := m.Outputs[0]
	want := HashOutput("fig10", []byte("rendered table\n"))
	if o != want {
		t.Fatalf("output %+v, want %+v", o, want)
	}
	if o.Bytes != 15 || len(o.SHA256) != 64 {
		t.Fatalf("hash record %+v", o)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadManifest(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Fatal("manifest without spans accepted")
	}
}

func TestWriteSummary(t *testing.T) {
	tr := New("sum")
	ph := tr.Phase("exec")
	for i := 0; i < 3; i++ {
		ph.Start("job").End()
	}
	NewCounter("summary.test.count").Inc()
	tr.AddOutput("tab6", []byte("x"))
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace sum", "exec", "job", "summary.test.count", "output tab6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	var nilTr *Tracer
	if err := nilTr.WriteSummary(&buf); err == nil {
		t.Fatal("nil tracer summary succeeded")
	}
	if err := nilTr.WriteManifest(&buf); err == nil {
		t.Fatal("nil tracer manifest succeeded")
	}
}

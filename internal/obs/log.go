// Structured logging: a zero-dependency leveled logger emitting JSON lines
// or human-readable text (DESIGN.md §18). It reuses the span Attr vocabulary
// (Str/Int/F64) so instrumented code annotates spans and log lines with one
// idiom, serializes concurrent writers through one mutex so multi-goroutine
// shutdown output stays line-atomic and ordered, and rate-bounds sub-Warn
// records so a hot loop logging per request cannot melt the daemon. A
// log/slog bridge (Logger.Handler) lets stdlib-flavored code join the same
// stream.
//
// Like the rest of the package, a nil *Logger accepts every method as a
// no-op, so library code logs unconditionally and pays a nil check when the
// caller wired no logger.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders log records by severity. The numeric values match
// log/slog's levels so the Handler bridge is a plain cast.
type LogLevel int

const (
	LogDebug LogLevel = -4
	LogInfo  LogLevel = 0
	LogWarn  LogLevel = 4
	LogError LogLevel = 8
)

// String renders the level the way both output formats spell it.
func (l LogLevel) String() string {
	switch {
	case l < LogInfo:
		return "debug"
	case l < LogWarn:
		return "info"
	case l < LogError:
		return "warn"
	default:
		return "error"
	}
}

// ParseLogLevel maps a level name to its LogLevel.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LogDebug, nil
	case "info":
		return LogInfo, nil
	case "warn", "warning":
		return LogWarn, nil
	case "error":
		return LogError, nil
	}
	return LogInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// LogOptions configures NewLogger.
type LogOptions struct {
	// Level is the minimum severity emitted (default LogInfo).
	Level LogLevel
	// Format selects "text" (default) or "json" output.
	Format string
	// SampleRate bounds records below LogWarn to this many per second;
	// 0 means unlimited. Warn and Error always pass. Dropped records are
	// counted (obs.log.dropped) and summarized when the stream resumes.
	SampleRate int
}

// ParseLogFlag parses the CLIs' -log flag value: "level", "format", or
// "level:format" (e.g. "debug", "json", "warn:json").
func ParseLogFlag(spec string) (LogOptions, error) {
	o := LogOptions{Level: LogInfo, Format: "text"}
	if spec == "" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ":") {
		switch strings.ToLower(part) {
		case "text", "json":
			o.Format = strings.ToLower(part)
			continue
		}
		lv, err := ParseLogLevel(part)
		if err != nil {
			return o, fmt.Errorf("obs: bad -log value %q: %w", spec, err)
		}
		o.Level = lv
	}
	return o, nil
}

// logDropped counts records suppressed by the sampler, across all loggers.
var logDropped = NewCounter("obs.log.dropped")

// logSampler is a per-second token window shared by a logger and its With
// clones. It exists so an overloaded daemon logging per request degrades to
// a bounded stream plus a drop summary instead of an unbounded one.
type logSampler struct {
	mu      sync.Mutex
	sec     int64 // unix second the window covers
	n       int   // records emitted this window
	max     int
	dropped int64 // records suppressed this window
}

// allow reports whether a record may be emitted now, plus how many records
// the previous window dropped (nonzero exactly once per resumed stream, so
// the caller can emit one summary line).
func (s *logSampler) allow(now time.Time) (ok bool, droppedPrev int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := now.Unix()
	if sec != s.sec {
		droppedPrev = s.dropped
		s.sec, s.n, s.dropped = sec, 0, 0
	}
	if s.n >= s.max {
		s.dropped++
		logDropped.Inc()
		return false, droppedPrev
	}
	s.n++
	return true, droppedPrev
}

// Logger emits leveled, structured records. Build with NewLogger; derive
// request-scoped loggers with With. All clones share the writer, its mutex,
// the level, and the sampler, so one process-wide rate bound and one total
// order of lines hold across every derived logger.
type Logger struct {
	mu      *sync.Mutex
	w       io.Writer
	json    bool
	level   *atomic.Int32
	sampler *logSampler
	base    []Attr
}

// NewLogger builds a logger writing to w.
func NewLogger(w io.Writer, o LogOptions) *Logger {
	l := &Logger{
		mu:    &sync.Mutex{},
		w:     w,
		json:  o.Format == "json",
		level: &atomic.Int32{},
	}
	l.level.Store(int32(o.Level))
	if o.SampleRate > 0 {
		l.sampler = &logSampler{max: o.SampleRate}
	}
	return l
}

// With returns a logger that appends attrs to every record. The clone
// shares the parent's writer, level, and sampler.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	c := *l
	// Re-slice to force future appends to copy: two Withs off one parent
	// must not write into the same backing array.
	c.base = append(l.base[:len(l.base):len(l.base)], attrs...)
	return &c
}

// Level returns the minimum severity emitted.
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LogError + 1
	}
	return LogLevel(l.level.Load())
}

// SetLevel changes the minimum severity for this logger and every clone
// derived from the same root.
func (l *Logger) SetLevel(lv LogLevel) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// Enabled reports whether records at lv would be emitted.
func (l *Logger) Enabled(lv LogLevel) bool {
	return l != nil && lv >= l.Level()
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LogDebug, msg, attrs...) }

// Info emits an info record.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(LogInfo, msg, attrs...) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(LogWarn, msg, attrs...) }

// Error emits an error record.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LogError, msg, attrs...) }

// Log emits one record at the given level. msg is the record's event name;
// the metricname analyzer holds it to the same constant dotted-lowercase
// grammar as metric names so log streams grep and aggregate like metrics.
func (l *Logger) Log(lv LogLevel, msg string, attrs ...Attr) {
	if !l.Enabled(lv) {
		return
	}
	now := time.Now()
	if lv < LogWarn && l.sampler != nil {
		ok, resumed := l.sampler.allow(now)
		if resumed > 0 {
			l.emit(now, LogWarn, "obs.log.sampled", []Attr{
				{Key: "dropped", Val: strconv.FormatInt(resumed, 10)},
			})
		}
		if !ok {
			return
		}
	}
	l.emit(now, lv, msg, attrs)
}

// emit formats and writes one record, holding the writer mutex only for
// the write so lines from concurrent goroutines interleave whole.
func (l *Logger) emit(now time.Time, lv LogLevel, msg string, attrs []Attr) {
	buf := make([]byte, 0, 256)
	if l.json {
		buf = appendJSONRecord(buf, now, lv, msg, l.base, attrs)
	} else {
		buf = appendTextRecord(buf, now, lv, msg, l.base, attrs)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// appendJSONRecord renders {"ts":...,"level":...,"msg":...,attrs...}. Keys
// are emitted in argument order (base attrs first) — no map, no iteration-
// order hazard, and duplicate keys simply repeat, which line consumers
// resolve last-wins.
func appendJSONRecord(b []byte, now time.Time, lv LogLevel, msg string, base, attrs []Attr) []byte {
	b = append(b, `{"ts":"`...)
	b = now.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, lv.String()...)
	b = append(b, `","msg":`...)
	b = appendJSONString(b, msg)
	for _, a := range base {
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendJSONString(b, a.Val)
	}
	for _, a := range attrs {
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendJSONString(b, a.Val)
	}
	return append(b, '}')
}

// appendTextRecord renders `ts LEVEL msg key=value ...` with values quoted
// only when they contain whitespace, quotes, or control characters.
func appendTextRecord(b []byte, now time.Time, lv LogLevel, msg string, base, attrs []Attr) []byte {
	b = now.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, ' ')
	b = append(b, strings.ToUpper(lv.String())...)
	b = append(b, ' ')
	b = append(b, msg...)
	for _, a := range base {
		b = appendTextAttr(b, a)
	}
	for _, a := range attrs {
		b = appendTextAttr(b, a)
	}
	return b
}

func appendTextAttr(b []byte, a Attr) []byte {
	b = append(b, ' ')
	b = append(b, a.Key...)
	b = append(b, '=')
	if strings.ContainsAny(a.Val, " \t\n\r\"=") || a.Val == "" {
		return strconv.AppendQuote(b, a.Val)
	}
	return append(b, a.Val...)
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			const hexdig = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hexdig[c>>4], hexdig[c&0xf])
		default:
			// Multi-byte UTF-8 sequences pass through byte-for-byte: JSON
			// strings carry raw UTF-8.
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// Handler returns a log/slog handler feeding this logger, so stdlib-style
// code (slog.New(l.Handler())) joins the same serialized stream. Groups
// flatten into dotted key prefixes; a request ID on the context becomes a
// "req" attr.
func (l *Logger) Handler() slog.Handler {
	return slogBridge{l: l}
}

type slogBridge struct {
	l      *Logger
	prefix string
	attrs  []Attr
}

func (h slogBridge) Enabled(_ context.Context, lv slog.Level) bool {
	return h.l.Enabled(LogLevel(lv))
}

func (h slogBridge) Handle(ctx context.Context, r slog.Record) error {
	attrs := make([]Attr, 0, len(h.attrs)+r.NumAttrs()+1)
	if id := RequestID(ctx); id != "" {
		attrs = append(attrs, Attr{Key: "req", Val: id})
	}
	attrs = append(attrs, h.attrs...)
	r.Attrs(func(a slog.Attr) bool {
		attrs = append(attrs, Attr{Key: h.prefix + a.Key, Val: a.Value.String()})
		return true
	})
	h.l.Log(LogLevel(r.Level), r.Message, attrs...)
	return nil
}

func (h slogBridge) WithAttrs(as []slog.Attr) slog.Handler {
	attrs := make([]Attr, 0, len(h.attrs)+len(as))
	attrs = append(attrs, h.attrs...)
	for _, a := range as {
		attrs = append(attrs, Attr{Key: h.prefix + a.Key, Val: a.Value.String()})
	}
	return slogBridge{l: h.l, prefix: h.prefix, attrs: attrs}
}

func (h slogBridge) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return slogBridge{l: h.l, prefix: h.prefix + name + ".", attrs: h.attrs}
}

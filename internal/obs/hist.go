package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numHistBuckets covers int64 nanosecond observations with power-of-two
// bucket boundaries: bucket i counts observations v with bits.Len64(v) == i,
// i.e. v in [2^(i-1), 2^i). Bucket 0 holds non-positive observations. 64
// buckets span 1ns to ~292 years, so one fixed scheme fits every duration
// the pipeline records (tile estimates, study wall times, simulated step
// widths, cache lookups) without per-histogram configuration.
const numHistBuckets = 64

// Histogram is a process-wide fixed-bucket atomic histogram of nanosecond
// observations. Like Counter it is always live: Observe is a handful of
// atomic adds with no locks, so leaf packages register histograms at init
// and record unconditionally (hot loops gate on DeepTiming to skip the
// clock reads, not the histogram). A nil Histogram is a no-op.
type Histogram struct {
	name    string
	buckets [numHistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf returns the bucket index for one nanosecond observation.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= numHistBuckets {
		return numHistBuckets - 1
	}
	return b
}

// bucketUpper returns bucket i's inclusive upper bound in nanoseconds.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64: the overflow bucket
	}
	return int64(1)<<i - 1
}

// Observe records one nanosecond observation.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// ObserveSince records the wall time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Now returns a wall-clock reading for latency measurement. The
// deterministic core (sim, model, partition, tile, workload) must not call
// time.Now directly — the detrand analyzer enforces that the one sanctioned
// clock lives behind the obs facade, where it only ever feeds histograms,
// never simulation state.
func Now() time.Time { return time.Now() }

// SinceNS returns the nanoseconds elapsed since a Now reading. Pair with
// Now for deep-timing measurements in the deterministic core.
func SinceNS(t0 time.Time) int64 { return time.Since(t0).Nanoseconds() }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Merge folds a LocalHist's accumulated counts into the histogram and
// resets the local. Engine-style single-goroutine hot loops accumulate into
// a LocalHist (plain integer adds, no atomics) and merge once per run.
func (h *Histogram) Merge(l *LocalHist) {
	if h == nil || l == nil || l.count == 0 {
		return
	}
	for i, c := range l.counts {
		if c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(l.count)
	h.sum.Add(l.sum)
	for {
		m := h.max.Load()
		if l.max <= m || h.max.CompareAndSwap(m, l.max) {
			break
		}
	}
	*l = LocalHist{}
}

// LocalHist is the allocation-free, single-goroutine accumulation buffer
// behind Histogram.Merge. The zero value is ready to use.
type LocalHist struct {
	counts [numHistBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// Observe records one nanosecond observation into the local buffer.
func (l *LocalHist) Observe(ns int64) {
	l.counts[bucketOf(ns)]++
	l.count++
	l.sum += ns
	if ns > l.max {
		l.max = ns
	}
}

// HistBucket is one cumulative bucket of a histogram snapshot: Count
// observations were ≤ UpperNS.
type HistBucket struct {
	UpperNS int64
	Count   int64
}

// HistogramSnapshot is one histogram's state at a point in time. The
// quantiles are upper-bound estimates (the top of the power-of-two bucket
// holding the quantile), which is the right bias for latency reporting.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`

	// Buckets carries the cumulative distribution for the Prometheus
	// exposition; it is omitted from run manifests to keep them readable.
	Buckets []HistBucket `json:"-"`
}

// snapshotLocked assembles the snapshot. Reads are atomic loads, so a
// snapshot taken during concurrent Observes is a consistent-enough view:
// each bucket count is exact at its read time.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var counts [numHistBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()

	quantile := func(q float64) int64 {
		if s.Count == 0 {
			return 0
		}
		want := int64(q * float64(s.Count))
		if want < 1 {
			want = 1
		}
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if cum >= want {
				u := bucketUpper(i)
				if u > s.MaxNS && s.MaxNS > 0 {
					return s.MaxNS
				}
				return u
			}
		}
		return s.MaxNS
	}
	s.P50NS = quantile(0.50)
	s.P90NS = quantile(0.90)
	s.P99NS = quantile(0.99)

	cum := int64(0)
	for i, c := range counts {
		cum += c
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNS: bucketUpper(i), Count: cum})
		}
	}
	return s
}

// deepTiming gates the wall-clock reads on per-tile and per-step hot loops:
// histograms themselves are always live, but reading the clock twice per
// tile is only worth paying when someone is looking (a -timeline, -trace,
// or -debug-addr consumer).
var deepTiming atomic.Bool

// SetDeepTiming enables or disables the hot-loop timing observations
// (per-tile model estimates, per-step simulated widths, cache lookups) and
// returns the previous setting.
func SetDeepTiming(on bool) bool { return deepTiming.Swap(on) }

// DeepTiming reports whether hot-loop timing observations are enabled.
func DeepTiming() bool { return deepTiming.Load() }

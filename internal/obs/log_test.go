package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// decodeLogLines unmarshals each line of a JSON log stream, failing on any
// line that is not a flat string-to-string object.
func decodeLogLines(t *testing.T, buf *bytes.Buffer) []map[string]string {
	t.Helper()
	var out []map[string]string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]string
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %q is not valid JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Level: LogDebug, Format: "json"})
	l.Info("test.event", Str("key", "value"), Int("n", 7))
	l.Error("test.fail", Str("err", `quote " backslash \ newline`+"\n"))

	recs := decodeLogLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r := recs[0]
	if r["level"] != "info" || r["msg"] != "test.event" || r["key"] != "value" || r["n"] != "7" {
		t.Errorf("first record wrong: %v", r)
	}
	if r["ts"] == "" {
		t.Errorf("record missing ts: %v", r)
	}
	if recs[1]["level"] != "error" {
		t.Errorf("second record level = %q, want error", recs[1]["level"])
	}
	if want := `quote " backslash \ newline` + "\n"; recs[1]["err"] != want {
		t.Errorf("escaping round-trip: got %q want %q", recs[1]["err"], want)
	}
}

func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{})
	l.Info("test.event", Str("plain", "bare"), Str("spaced", "two words"))
	line := strings.TrimRight(buf.String(), "\n")
	for _, want := range []string{" INFO test.event", " plain=bare", ` spaced="two words"`} {
		if !strings.Contains(line, want) {
			t.Errorf("text line %q missing %q", line, want)
		}
	}
}

func TestLoggerLevelsAndWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Level: LogWarn, Format: "json"})
	child := l.With(Str("req", "abc123"))
	child.Info("test.hidden") // below level
	child.Warn("test.shown", Str("extra", "x"))
	recs := decodeLogLines(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (info filtered)", len(recs))
	}
	if recs[0]["req"] != "abc123" || recs[0]["extra"] != "x" {
		t.Errorf("With attrs missing: %v", recs[0])
	}

	// SetLevel is shared between a logger and its clones.
	buf.Reset()
	l.SetLevel(LogDebug)
	child.Debug("test.now.visible")
	if got := len(decodeLogLines(t, &buf)); got != 1 {
		t.Errorf("after SetLevel(debug), child emitted %d records, want 1", got)
	}

	// Two Withs off one parent must not clobber each other's attrs.
	buf.Reset()
	a := l.With(Str("which", "a"))
	b := l.With(Str("which", "b"))
	a.Info("test.a")
	b.Info("test.b")
	recs = decodeLogLines(t, &buf)
	if len(recs) != 2 || recs[0]["which"] != "a" || recs[1]["which"] != "b" {
		t.Errorf("sibling With loggers interfere: %v", recs)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", Str("k", "v"))
	l.Warn("x")
	l.Error("x")
	if l.With(Str("k", "v")) != nil {
		t.Errorf("nil.With should stay nil")
	}
	if l.Enabled(LogError) {
		t.Errorf("nil logger must report disabled")
	}
	l.SetLevel(LogDebug)
}

func TestLoggerSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Level: LogDebug, Format: "json", SampleRate: 5})
	before := logDropped.Load()
	for i := 0; i < 20; i++ {
		l.Info("test.flood", Int("i", i))
	}
	dropped := logDropped.Load() - before
	var flood int
	for _, r := range decodeLogLines(t, &buf) {
		if r["msg"] == "test.flood" {
			flood++
		}
	}
	// The 20 records span at most two one-second windows: at most 10 pass.
	if flood > 10 {
		t.Errorf("sampler passed %d records, want <= 10", flood)
	}
	if dropped < 10 {
		t.Errorf("sampler dropped %d records, want >= 10", dropped)
	}
	// Warn bypasses the sampler even mid-flood.
	buf.Reset()
	l.Warn("test.always")
	found := false
	for _, r := range decodeLogLines(t, &buf) {
		if r["msg"] == "test.always" {
			found = true
		}
	}
	if !found {
		t.Errorf("warn record was sampled away")
	}
}

func TestLoggerConcurrentLinesAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Format: "json"})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rl := l.With(Str("worker", fmt.Sprintf("w%d", w)))
			for i := 0; i < per; i++ {
				rl.Info("test.concurrent", Int("i", i))
			}
		}(w)
	}
	wg.Wait()
	recs := decodeLogLines(t, &buf) // fails on any torn line
	if len(recs) != workers*per {
		t.Errorf("got %d records, want %d", len(recs), workers*per)
	}
}

func TestSlogBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Level: LogDebug, Format: "json"})
	sl := slog.New(l.Handler())
	ctx := WithRequestID(context.Background(), "req-42")
	sl.InfoContext(ctx, "test.slog", "k", "v", "n", 3)
	sl.WithGroup("grp").With("a", "b").Warn("test.grouped")

	recs := decodeLogLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0]["req"] != "req-42" || recs[0]["k"] != "v" || recs[0]["n"] != "3" {
		t.Errorf("slog record missing attrs: %v", recs[0])
	}
	if recs[1]["grp.a"] != "b" || recs[1]["level"] != "warn" {
		t.Errorf("slog group record wrong: %v", recs[1])
	}
	if !sl.Enabled(context.Background(), slog.LevelDebug) {
		t.Errorf("bridge Enabled disagrees with logger level")
	}
}

func TestParseLogFlag(t *testing.T) {
	cases := []struct {
		in      string
		level   LogLevel
		format  string
		wantErr bool
	}{
		{"", LogInfo, "text", false},
		{"debug", LogDebug, "text", false},
		{"json", LogInfo, "json", false},
		{"warn:json", LogWarn, "json", false},
		{"json:error", LogError, "json", false},
		{"bogus", LogInfo, "text", true},
	}
	for _, c := range cases {
		o, err := ParseLogFlag(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseLogFlag(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (o.Level != c.level || o.Format != c.format) {
			t.Errorf("ParseLogFlag(%q) = %+v, want level %v format %q", c.in, o, c.level, c.format)
		}
	}
	if lv, err := ParseLogLevel("warning"); err != nil || lv != LogWarn {
		t.Errorf("ParseLogLevel(warning) = %v, %v", lv, err)
	}
}

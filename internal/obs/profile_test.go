package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to serialize.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStartProfilesEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadCPUPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "cpu.pprof")
	stop, err := StartProfiles(bad, "")
	if err == nil {
		t.Fatal("unwritable CPU profile path did not error")
	}
	if stop == nil {
		t.Fatal("stop must be non-nil even on error")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop after failed start errored: %v", err)
	}
}

func TestStartProfilesBadMemPath(t *testing.T) {
	// The heap profile is written at stop time, so a bad path surfaces there.
	bad := filepath.Join(t.TempDir(), "missing-dir", "heap.pprof")
	stop, err := StartProfiles("", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("unwritable heap profile path did not error at stop")
	}
}

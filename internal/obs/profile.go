package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins the pprof captures the CLIs expose: a CPU profile at
// cpuPath (started immediately) and a heap profile at memPath (written when
// the returned stop function runs). Either path may be empty. The stop
// function is never nil and is safe to defer unconditionally.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() error { return nil }, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // fold transient garbage out of the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// WriteTrace finishes the tracer and emits it the way the CLIs' -trace flag
// specifies: path "-" prints the human-readable summary to w (top spans by
// cumulative time plus counters); any other path gets the JSON manifest,
// with parent directories created as needed (so -trace runs/x.json works on
// a fresh checkout).
func WriteTrace(t *Tracer, path string, w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteTrace on nil tracer")
	}
	if path == "-" {
		return t.WriteSummary(w)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteManifest(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context carries id %q", got)
	}
	var nilCtx context.Context
	if got := RequestID(nilCtx); got != "" {
		t.Errorf("nil context carries id %q", got)
	}
	ctx = WithRequestID(ctx, "abc-123")
	if got := RequestID(ctx); got != "abc-123" {
		t.Errorf("RequestID = %q, want abc-123", got)
	}
}

func TestCtxLoggerAndSpan(t *testing.T) {
	var nilCtx context.Context
	if CtxLog(nilCtx) != nil || CtxSpan(nilCtx) != nil {
		t.Errorf("nil context must yield nil logger/span")
	}
	ctx := context.Background()
	if CtxLog(ctx) != nil || CtxSpan(ctx) != nil {
		t.Errorf("empty context must yield nil logger/span")
	}
	// The nil results are valid no-op receivers.
	CtxLog(ctx).Info("test.noop")
	CtxSpan(ctx).Start("noop").End()

	l := NewLogger(nil, LogOptions{})
	tr := New("test")
	ctx = WithLogger(WithSpan(ctx, tr.Root()), l)
	if CtxLog(ctx) != l {
		t.Errorf("CtxLog did not round-trip")
	}
	if CtxSpan(ctx) != tr.Root() {
		t.Errorf("CtxSpan did not round-trip")
	}
}

func TestMintRequestID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := MintRequestID()
		if !ValidRequestID(id) {
			t.Fatalf("minted id %q is not valid", id)
		}
		if len(id) != 16 {
			t.Fatalf("minted id %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("minted id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	cases := map[string]bool{
		"abc":                        true,
		"A-b_c.9":                    true,
		"":                           false,
		"has space":                  false,
		"has\"quote":                 false,
		strings.Repeat("x", 64):      true,
		strings.Repeat("x", 65):      false,
		"unicode-é":                  false,
		"0123456789abcdef0123456789": true,
	}
	for in, want := range cases {
		if got := ValidRequestID(in); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestInboundRequestID(t *testing.T) {
	mk := func(kv ...string) http.Header {
		h := http.Header{}
		for i := 0; i < len(kv); i += 2 {
			h.Set(kv[i], kv[i+1])
		}
		return h
	}
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		h    http.Header
		want string
	}{
		{"none", mk(), ""},
		{"xrid", mk(RequestIDHeader, "client-7"), "client-7"},
		{"xrid-wins", mk(RequestIDHeader, "client-7", TraceparentHeader, tp), "client-7"},
		{"xrid-invalid-falls-through", mk(RequestIDHeader, "bad id!", TraceparentHeader, tp),
			"4bf92f3577b34da6a3ce929d0e0e4736"},
		{"traceparent", mk(TraceparentHeader, tp), "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"traceparent-upper", mk(TraceparentHeader, "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"),
			"4bf92f3577b34da6a3ce929d0e0e4736"},
		{"traceparent-zero", mk(TraceparentHeader, "00-00000000000000000000000000000000-00f067aa0ba902b7-01"), ""},
		{"traceparent-short", mk(TraceparentHeader, "00-abc-def-01"), ""},
		{"traceparent-nonhex", mk(TraceparentHeader, "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"), ""},
	}
	for _, c := range cases {
		if got := InboundRequestID(c.h); got != c.want {
			t.Errorf("%s: InboundRequestID = %q, want %q", c.name, got, c.want)
		}
	}
}

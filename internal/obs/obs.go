// Package obs is the reproduction's observability layer: hierarchical wall-
// clock spans, process-wide atomic counters and gauges, and per-run JSON
// manifests (DESIGN.md §10). It exists so perf work on the pipeline —
// tiling, model estimation, partitioning, simulated execution — can
// attribute time to stages and pin what a run produced, the measurement
// substrate the paper's evaluation methodology (§VI) assumes.
//
// Everything is nil-safe by design: a nil *Tracer or *Span accepts every
// method as a no-op, so instrumented code calls
//
//	sp := tracer.Phase("exec").Start(key)
//	defer sp.End()
//
// unconditionally and the disabled path costs only a nil check (no
// allocations, no locks; BenchmarkObsDisabled pins this). Counters are
// always live — single atomic adds placed at call granularity, never inside
// per-nonzero loops.
package obs

import (
	"strconv"
	"sync"
	"time"
)

// Tracer collects one run's span tree. The zero value is not useful; build
// with New. A nil Tracer is a valid, always-disabled tracer.
type Tracer struct {
	mu   sync.Mutex
	root *Span

	cfgMu   sync.Mutex
	config  map[string]string
	outputs []Output
}

// New returns a Tracer whose root span carries the given name (typically
// the command or study name) and starts now.
func New(name string) *Tracer {
	t := &Tracer{}
	t.root = &Span{tracer: t, Name: name, start: time.Now()}
	return t
}

// Root returns the root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Phase returns the direct child of the root with the given name, creating
// it on first use. Phases group the spans of one pipeline stage (generate,
// tile, estimate, exec); they stay open until Finish so concurrent work can
// keep attaching children.
func (t *Tracer) Phase(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.root.children {
		if c.Name == name {
			return c
		}
	}
	c := &Span{tracer: t, Name: name, start: time.Now()}
	t.root.children = append(t.root.children, c)
	return c
}

// Finish closes the root span and every still-open descendant (phases in
// particular), fixing their durations. Idempotent.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	var closeAll func(s *Span)
	closeAll = func(s *Span) {
		if !s.ended {
			s.dur = now.Sub(s.start)
			s.ended = true
		}
		for _, c := range s.children {
			closeAll(c)
		}
	}
	closeAll(t.root)
}

// SetConfig records one run-configuration key (scale, seed, arch, …) for
// the manifest.
func (t *Tracer) SetConfig(key, val string) {
	if t == nil {
		return
	}
	t.cfgMu.Lock()
	defer t.cfgMu.Unlock()
	if t.config == nil {
		t.config = map[string]string{}
	}
	t.config[key] = val
}

// Span is one timed region of the run. A nil Span accepts every method as a
// no-op, which is how disabled tracing stays free.
type Span struct {
	tracer *Tracer
	Name   string

	start time.Time
	dur   time.Duration
	ended bool

	attrs    []Attr
	children []*Span
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key, Val string
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{key, val} }

// Int builds an integer attribute.
func Int(key string, val int) Attr { return Attr{key, strconv.Itoa(val)} }

// F64 builds a float attribute.
func F64(key string, val float64) Attr {
	return Attr{key, strconv.FormatFloat(val, 'g', 6, 64)}
}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	c := &Span{tracer: t, Name: name, start: time.Now(), attrs: attrs}
	t.mu.Lock()
	s.children = append(s.children, c)
	t.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent; children left open
// are closed by Tracer.Finish.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.tracer.mu.Unlock()
}

// SetAttr attaches (or appends) a key=value annotation.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.tracer.mu.Unlock()
}

// Duration returns the span's wall time (zero until ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.dur
}

package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func randomCOO(rng *rand.Rand, n, nnz int) *sparse.COO {
	m := sparse.NewCOO(n, nnz)
	seen := map[[2]int32]bool{}
	for len(seen) < nnz && len(seen) < n*n {
		r, c := int32(rng.Intn(n)), int32(rng.Intn(n))
		if seen[[2]int32{r, c}] {
			continue
		}
		seen[[2]int32{r, c}] = true
		m.Append(r, c, rng.NormFloat64())
	}
	m.SortRowMajor()
	return m
}

func TestPartitionFigure3Tiles(t *testing.T) {
	// Reproduce the paper's Figure 3 tiles: 3x3 tiles, T1 with one nonzero,
	// T2 with five nonzeros spread over three columns.
	m := sparse.NewCOO(6, 6)
	// T1: tile (0,0) — single nonzero "a" at (0,0).
	m.Append(0, 0, 1)
	// T2: tile (1,1) — five nonzeros over rows 3..5, cols 3..5 with 3
	// distinct columns.
	m.Append(3, 3, 1)
	m.Append(3, 4, 1)
	m.Append(4, 4, 1)
	m.Append(4, 5, 1)
	m.Append(5, 3, 1)
	m.SortRowMajor()

	g, err := Partition(m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tiles) != 2 {
		t.Fatalf("tiles = %d, want 2 (empty tiles eliminated)", len(g.Tiles))
	}
	t1, t2 := g.Tiles[0], g.Tiles[1]
	if t1.NNZ() != 1 || t1.UniqCols != 1 || t1.UniqRows != 1 {
		t.Fatalf("T1 stats: nnz=%d uniqR=%d uniqC=%d", t1.NNZ(), t1.UniqRows, t1.UniqCols)
	}
	// The paper's point: a demand-access cold worker fetches uniq_cids=3 Din
	// rows for T2 vs the hot worker's tile_width=3 streamed rows; for T1 it
	// fetches 1 vs 3.
	if t2.NNZ() != 5 || t2.UniqCols != 3 || t2.UniqRows != 3 {
		t.Fatalf("T2 stats: nnz=%d uniqR=%d uniqC=%d", t2.NNZ(), t2.UniqRows, t2.UniqCols)
	}
}

func TestPartitionErrors(t *testing.T) {
	m := randomCOO(rand.New(rand.NewSource(1)), 8, 10)
	if _, err := Partition(m, 0, 4); err == nil {
		t.Fatal("expected tileH error")
	}
	if _, err := Partition(m, 4, -1); err == nil {
		t.Fatal("expected tileW error")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCOO(rng, 50, 400)
	g, err := Partition(m, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := g.ToCOO()
	if back.NNZ() != m.NNZ() {
		t.Fatalf("nnz %d -> %d", m.NNZ(), back.NNZ())
	}
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, v1 := m.At(i)
		r2, c2, v2 := back.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatalf("entry %d differs after tiling round trip", i)
		}
	}
}

func TestPanelStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCOO(rng, 40, 200)
	g, err := Partition(m, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tr := 0; tr < g.NumTR; tr++ {
		for _, tl := range g.Panel(tr) {
			if tl.TR != tr {
				t.Fatalf("panel %d contains tile with TR=%d", tr, tl.TR)
			}
			total += tl.NNZ()
		}
		lo, hi := g.PanelRows(tr)
		if lo != tr*10 || hi > 40 || hi <= lo {
			t.Fatalf("panel %d rows [%d,%d)", tr, lo, hi)
		}
	}
	if total != m.NNZ() {
		t.Fatalf("panels cover %d nonzeros, want %d", total, m.NNZ())
	}
}

func TestPanelRowsLastPanelClamped(t *testing.T) {
	m := sparse.NewCOO(10, 1)
	m.Append(9, 9, 1)
	g, err := Partition(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTR != 3 {
		t.Fatalf("NumTR = %d, want 3", g.NumTR)
	}
	lo, hi := g.PanelRows(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("last panel rows [%d,%d), want [8,10)", lo, hi)
	}
}

func TestPanelUniqRows(t *testing.T) {
	m := sparse.NewCOO(4, 4)
	m.Append(0, 0, 1) // tile (0,0)
	m.Append(0, 2, 1) // tile (0,1)
	m.Append(1, 0, 1) // tile (0,0)
	m.Append(1, 3, 1) // tile (0,1)
	m.SortRowMajor()
	g, err := Partition(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PanelUniqRows(0, nil); got != 2 {
		t.Fatalf("all tiles: uniq rows = %d, want 2", got)
	}
	if got := g.PanelUniqRows(0, func(i int) bool { return i == 0 }); got != 2 {
		t.Fatalf("tile 0 only: uniq rows = %d, want 2", got)
	}
	if got := g.PanelUniqRows(0, func(i int) bool { return false }); got != 0 {
		t.Fatalf("no tiles: uniq rows = %d, want 0", got)
	}
}

func TestTileNonzerosSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCOO(rng, 30, 150)
	g, err := Partition(m, 7, 5) // non-divisible tile sizes
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for ti := range g.Tiles {
		rows, cols, vals := g.TileNonzeros(ti)
		if len(rows) != g.Tiles[ti].NNZ() || len(cols) != len(rows) || len(vals) != len(rows) {
			t.Fatalf("tile %d ragged spans", ti)
		}
	}
}

// Property: for any matrix and tile size, the grid validates, covers all
// nonzeros exactly once, and per-tile uniq stats are bounded by min(nnz,
// tile dimension).
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := randomCOO(rng, n, rng.Intn(3*n))
		th := 1 + rng.Intn(n)
		tw := 1 + rng.Intn(n)
		g, err := Partition(m, th, tw)
		if err != nil || g.Validate() != nil {
			return false
		}
		covered := 0
		for i := range g.Tiles {
			tl := &g.Tiles[i]
			covered += tl.NNZ()
			if tl.UniqRows > th || tl.UniqCols > tw {
				return false
			}
		}
		return covered == m.NNZ() && g.ToCOO().NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCOO(rng, 20, 80)
	g, err := Partition(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.Tiles[0].UniqRows = 0
	if g.Validate() == nil {
		t.Fatal("expected uniq-stat error")
	}
	g2, _ := Partition(m, 5, 5)
	g2.Rows[g2.Tiles[0].Start] = 19 // move nonzero outside tile bounds
	if g2.Validate() == nil {
		t.Fatal("expected out-of-bounds error")
	}
	g3, _ := Partition(m, 5, 5)
	if len(g3.Tiles) > 1 {
		g3.Tiles[1].Start++ // break contiguity
		if g3.Validate() == nil {
			t.Fatal("expected contiguity error")
		}
	}
}

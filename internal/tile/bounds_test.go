package tile

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/sparse"
)

// TestPartitionRejectsOutOfBoundsCoords is the regression test for the
// crash on malformed input: a nonzero outside the declared dimensions used
// to panic with an index-out-of-range inside the counting pass. It must be
// a descriptive error instead.
func TestPartitionRejectsOutOfBoundsCoords(t *testing.T) {
	cases := []struct {
		name string
		r, c int32
	}{
		{"column past n", 5, 120},
		{"row past n", 120, 5},
		{"negative row", -1, 5},
		{"negative column", 5, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := sparse.NewCOO(100, 0)
			m.Append(tc.r, tc.c, 1)
			g, err := Partition(m, 32, 32)
			if err == nil {
				t.Fatalf("Partition accepted nonzero at (%d, %d) in a 100x100 matrix: %+v", tc.r, tc.c, g)
			}
			if !strings.Contains(err.Error(), "outside") {
				t.Fatalf("error %q does not describe the out-of-bounds nonzero", err)
			}
		})
	}
}

// TestPartitionParallelMatchesSerial pins the determinism contract of the
// parallel per-tile stat pass: the grid built with the worker pool enabled
// is deeply identical to the serial build.
func TestPartitionParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(200)
		nnz := rng.Intn(6 * n)
		m := sparse.NewCOO(n, nnz)
		for i := 0; i < nnz; i++ {
			m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
		}
		m.SortRowMajor()

		var serial, parallel *Grid
		var serr, perr error
		func() {
			defer par.SetWorkers(par.SetWorkers(1))
			serial, serr = Partition(m, 32, 48)
		}()
		func() {
			defer par.SetWorkers(par.SetWorkers(8))
			parallel, perr = Partition(m, 32, 48)
		}()
		if serr != nil || perr != nil {
			t.Fatalf("trial %d: serial err %v, parallel err %v", trial, serr, perr)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("trial %d: parallel grid differs from serial", trial)
		}
	}
}

// Package tile partitions a sparse matrix into a grid of tiles and computes
// the per-tile statistics the HotTiles analytical model consumes (paper
// §IV): nonzero count, number of unique row ids (tile_uniq_rids) and unique
// column ids (tile_uniq_cids). Tiles are grouped into row panels —
// horizontal stripes of tile_height rows — because both the tiled traversal
// (Figure 6(b)) and the inter-tile reuse accounting operate panel by panel.
package tile

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Tiling observability: grids built and non-empty tiles materialized.
var (
	gridsBuilt       = obs.NewCounter("tile.grids")
	tilesPartitioned = obs.NewCounter("tile.partitioned")
)

// Tile is one non-empty tile of the grid. Its nonzeros live in the owning
// Grid's tile-ordered arrays at [Start, End).
type Tile struct {
	TR, TC     int // tile row (panel index) and tile column
	Start, End int // span in Grid.Rows/Cols/Vals
	UniqRows   int // distinct row ids among the tile's nonzeros
	UniqCols   int // distinct column ids among the tile's nonzeros
}

// NNZ reports the tile's nonzero count.
func (t *Tile) NNZ() int { return t.End - t.Start }

// Grid is a tiling of a sparse matrix. Empty tiles are not materialized
// (the paper eliminates them during preprocessing, §IX-D). Nonzeros are
// stored twice conceptually: the original row-major matrix (for untiled
// traversals) is retained by the caller; the Grid owns a tile-ordered copy,
// sorted by (panel, tile column, row, col) — the order of Figure 6(b).
type Grid struct {
	N            int
	TileH, TileW int
	NumTR, NumTC int

	Tiles []Tile // non-empty tiles, ordered by (TR, TC)
	// PanelStart[p] is the index in Tiles of panel p's first tile;
	// PanelStart[NumTR] == len(Tiles).
	PanelStart []int

	// Tile-ordered nonzero arrays.
	Rows []int32
	Cols []int32
	Vals []float64

	// Lazily built row-major view (RowMajor). Unexported so gob round trips
	// (hotcore plans) skip it and rebuild on demand.
	rmOnce sync.Once
	rmKeys []uint64
	rmTile []int32
}

// Partition tiles a row-major matrix m into tileH×tileW tiles.
func Partition(m *sparse.COO, tileH, tileW int) (*Grid, error) {
	if tileH <= 0 || tileW <= 0 {
		return nil, fmt.Errorf("tile: non-positive tile size %dx%d", tileH, tileW)
	}
	g := &Grid{
		N:     m.N,
		TileH: tileH,
		TileW: tileW,
		NumTR: (m.N + tileH - 1) / tileH,
		NumTC: (m.N + tileW - 1) / tileW,
		Rows:  make([]int32, m.NNZ()),
		Cols:  make([]int32, m.NNZ()),
		Vals:  make([]float64, m.NNZ()),
	}
	g.PanelStart = make([]int, g.NumTR+1)

	// Counting sort nonzeros into (panel, tile column) buckets. The input is
	// row-major, so within a bucket entries arrive already ordered by
	// (row, col) — exactly the intra-tile order of a tiled row-ordered
	// traversal. Coordinates are validated here, before they index any
	// bucket: a malformed input (e.g. a MatrixMarket file with entries
	// outside the declared dimensions) must surface as an error, not an
	// index-out-of-range panic.
	nbuckets := g.NumTR * g.NumTC
	counts := make([]int, nbuckets+1)
	nnz := m.NNZ()
	if tileH&(tileH-1) == 0 && tileW&(tileW-1) == 0 {
		// Power-of-two tiles — the TileSize default and every benchmark
		// configuration — map to buckets with shifts instead of two integer
		// divisions per nonzero. Identical mapping, and the loop bodies are
		// spelled out (no per-nonzero closure call) because these two loops
		// sit on the sweep hot path.
		hs := uint(bits.TrailingZeros(uint(tileH)))
		ws := uint(bits.TrailingZeros(uint(tileW)))
		numTC := g.NumTC
		for i := 0; i < nnz; i++ {
			r, c := m.Rows[i], m.Cols[i]
			if r < 0 || int(r) >= m.N || c < 0 || int(c) >= m.N {
				return nil, fmt.Errorf("tile: nonzero %d at (%d, %d) outside the %dx%d matrix", i, r, c, m.N, m.N)
			}
			counts[(int(r)>>hs)*numTC+int(c)>>ws+1]++
		}
		for b := 0; b < nbuckets; b++ {
			counts[b+1] += counts[b]
		}
		offsets := append([]int(nil), counts[:nbuckets]...)
		for i := 0; i < nnz; i++ {
			b := (int(m.Rows[i])>>hs)*numTC + int(m.Cols[i])>>ws
			o := offsets[b]
			offsets[b]++
			g.Rows[o] = m.Rows[i]
			g.Cols[o] = m.Cols[i]
			g.Vals[o] = m.Vals[i]
		}
	} else {
		for i := 0; i < nnz; i++ {
			r, c := m.Rows[i], m.Cols[i]
			if r < 0 || int(r) >= m.N || c < 0 || int(c) >= m.N {
				return nil, fmt.Errorf("tile: nonzero %d at (%d, %d) outside the %dx%d matrix", i, r, c, m.N, m.N)
			}
			counts[(int(r)/tileH)*g.NumTC+int(c)/tileW+1]++
		}
		for b := 0; b < nbuckets; b++ {
			counts[b+1] += counts[b]
		}
		offsets := append([]int(nil), counts[:nbuckets]...)
		for i := 0; i < nnz; i++ {
			b := (int(m.Rows[i])/tileH)*g.NumTC + int(m.Cols[i])/tileW
			o := offsets[b]
			offsets[b]++
			g.Rows[o] = m.Rows[i]
			g.Cols[o] = m.Cols[i]
			g.Vals[o] = m.Vals[i]
		}
	}

	// Materialize non-empty tiles, then compute the per-tile statistics on
	// the worker pool: the UniqCols sort dominates tiling time and each
	// tile's stats are independent, so every tile writes only its own
	// fields and the result matches the serial evaluation bit for bit.
	for tr := 0; tr < g.NumTR; tr++ {
		g.PanelStart[tr] = len(g.Tiles)
		for tc := 0; tc < g.NumTC; tc++ {
			b := tr*g.NumTC + tc
			start, end := counts[b], counts[b+1]
			if start == end {
				continue
			}
			g.Tiles = append(g.Tiles, Tile{TR: tr, TC: tc, Start: start, End: end})
		}
	}
	g.PanelStart[g.NumTR] = len(g.Tiles)
	gridsBuilt.Inc()
	tilesPartitioned.Add(int64(len(g.Tiles)))
	par.Chunks(len(g.Tiles), func(lo, hi int) {
		var scratch, aux []int32
		for ti := lo; ti < hi; ti++ {
			t := &g.Tiles[ti]
			t.UniqRows = countRuns(g.Rows[t.Start:t.End])
			scratch = append(scratch[:0], g.Cols[t.Start:t.End]...)
			aux = sortInt32(scratch, aux)
			t.UniqCols = countRuns(scratch)
		}
	})
	return g, nil
}

// sortInt32 sorts s (non-negative int32 values) ascending in place. Small
// inputs take the generic pdqsort; larger ones an LSD radix sort over aux,
// which the caller reuses across tiles (the returned slice is the possibly
// grown aux). Both paths produce the identical sorted order.
//
//hot:path
func sortInt32(s, aux []int32) []int32 {
	const radixMin = 128
	if len(s) < radixMin {
		slices.Sort(s)
		return aux
	}
	if cap(aux) < len(s) {
		aux = make([]int32, len(s))
	}
	aux = aux[:len(s)]
	var count [4][256]int
	for _, v := range s {
		count[0][v&0xff]++
		count[1][(v>>8)&0xff]++
		count[2][(v>>16)&0xff]++
		count[3][(v>>24)&0xff]++
	}
	from, to := s, aux
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 8)
		c := &count[pass]
		// All keys share this byte: the pass is the identity, skip it.
		if c[(from[0]>>shift)&0xff] == len(s) {
			continue
		}
		offs := 0
		for b := 0; b < 256; b++ {
			n := c[b]
			c[b] = offs
			offs += n
		}
		for _, v := range from {
			b := (v >> shift) & 0xff
			to[c[b]] = v
			c[b]++
		}
		from, to = to, from
	}
	if &from[0] != &s[0] {
		copy(s, from)
	}
	return aux
}

// countRuns counts distinct values in a slice where equal values are
// contiguous (sorted or row-major grouped).
//
//hot:path
func countRuns(s []int32) int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

// NNZ reports the total nonzeros across all tiles.
func (g *Grid) NNZ() int { return len(g.Vals) }

// RowMajor returns the grid's nonzeros in global (row, col)-ascending order
// as packed keys (row<<32 | col), aligned with the tile index owning each
// nonzero. The view is built once per grid and shared by every caller
// (read-only; callers must not mutate the returned slices), so sweeps that
// traverse the same matrix untiled — the cold-pool builder does, once per
// simulated run — stop re-sorting the nonzeros per run.
//
// Ordering argument: the build is a counting sort by row that is stable
// over the tile order. A row lives in exactly one panel; that panel's tiles
// are visited in ascending tile-column order, tile column ranges are
// disjoint and ascending, and within a tile entries are (row, col) sorted.
// So within each row the columns come out ascending, and the result is
// exactly the order slices.Sort would give the packed keys.
func (g *Grid) RowMajor() (keys []uint64, tileOf []int32) {
	g.rmOnce.Do(g.buildRowMajor)
	return g.rmKeys, g.rmTile
}

func (g *Grid) buildRowMajor() {
	nnz := g.NNZ()
	g.rmKeys = make([]uint64, nnz)
	g.rmTile = make([]int32, nnz)
	counts := make([]int, g.N+1)
	for _, r := range g.Rows {
		counts[r+1]++
	}
	for r := 0; r < g.N; r++ {
		counts[r+1] += counts[r]
	}
	for ti := range g.Tiles {
		t := &g.Tiles[ti]
		for j := t.Start; j < t.End; j++ {
			r := g.Rows[j]
			o := counts[r]
			counts[r] = o + 1
			g.rmKeys[o] = uint64(r)<<32 | uint64(uint32(g.Cols[j]))
			g.rmTile[o] = int32(ti)
		}
	}
}

// Panel returns the tiles of row panel tr as a sub-slice of g.Tiles.
func (g *Grid) Panel(tr int) []Tile {
	return g.Tiles[g.PanelStart[tr]:g.PanelStart[tr+1]]
}

// PanelRows returns the row range [lo, hi) covered by panel tr.
func (g *Grid) PanelRows(tr int) (lo, hi int) {
	lo = tr * g.TileH
	hi = lo + g.TileH
	if hi > g.N {
		hi = g.N
	}
	return lo, hi
}

// TileNonzeros returns the nonzeros of tile index ti as sub-slices of the
// grid's tile-ordered arrays (no copies).
func (g *Grid) TileNonzeros(ti int) (rows, cols []int32, vals []float64) {
	t := &g.Tiles[ti]
	return g.Rows[t.Start:t.End], g.Cols[t.Start:t.End], g.Vals[t.Start:t.End]
}

// PanelUniqRows returns, for panel tr, the number of distinct row ids among
// the nonzeros of the tiles selected by keep (indexed by position within the
// panel). It is used by the model's reuse readjustment: the Dout rows a
// worker touches in a panel equal the distinct r_ids across the tiles
// assigned to it.
func (g *Grid) PanelUniqRows(tr int, keep func(i int) bool) int {
	n, _ := g.PanelUniqRowsScratch(tr, keep, nil)
	return n
}

// PanelUniqRowsScratch is PanelUniqRows over a caller-owned seen buffer,
// for loops that visit every panel (the model's reuse readjustment): the
// buffer is cleared and grown as needed and returned for reuse, so the
// per-panel allocation disappears. Passing nil allocates a fresh buffer.
func (g *Grid) PanelUniqRowsScratch(tr int, keep func(i int) bool, seen []bool) (int, []bool) {
	lo, hi := g.PanelRows(tr)
	if cap(seen) < hi-lo {
		seen = make([]bool, hi-lo)
	} else {
		seen = seen[:hi-lo]
		clear(seen)
	}
	n := 0
	for i, t := range g.Panel(tr) {
		if keep != nil && !keep(i) {
			continue
		}
		for _, r := range g.Rows[t.Start:t.End] {
			if !seen[int(r)-lo] {
				seen[int(r)-lo] = true
				n++
			}
		}
	}
	return n, seen
}

// Validate checks the grid's structural invariants: tiles ordered by
// (TR, TC), spans contiguous and covering, stats consistent, and all
// nonzeros inside their tile's bounds. Slice lengths and span bounds are
// checked before any indexing: hotcore.ReadPlan runs this on gob-decoded
// grids, where a corrupt stream can produce ragged coordinate slices or
// spans pointing past them, and Validate must reject those rather than
// panic.
func (g *Grid) Validate() error {
	if len(g.Rows) != len(g.Vals) || len(g.Cols) != len(g.Vals) {
		return fmt.Errorf("tile: ragged coordinate slices: rows=%d cols=%d vals=%d",
			len(g.Rows), len(g.Cols), len(g.Vals))
	}
	prev := 0
	for i := range g.Tiles {
		t := &g.Tiles[i]
		if t.Start != prev {
			return fmt.Errorf("tile: tile %d span starts at %d, want %d", i, t.Start, prev)
		}
		if t.End <= t.Start {
			return fmt.Errorf("tile: tile %d empty or inverted span", i)
		}
		if t.End > len(g.Vals) {
			return fmt.Errorf("tile: tile %d span ends at %d beyond %d nonzeros", i, t.End, len(g.Vals))
		}
		prev = t.End
		if i > 0 {
			p := &g.Tiles[i-1]
			if t.TR < p.TR || (t.TR == p.TR && t.TC <= p.TC) {
				return fmt.Errorf("tile: tiles out of order at %d", i)
			}
		}
		rlo, rhi := t.TR*g.TileH, (t.TR+1)*g.TileH
		clo, chi := t.TC*g.TileW, (t.TC+1)*g.TileW
		for j := t.Start; j < t.End; j++ {
			if int(g.Rows[j]) < rlo || int(g.Rows[j]) >= rhi ||
				int(g.Cols[j]) < clo || int(g.Cols[j]) >= chi {
				return fmt.Errorf("tile: nonzero %d (%d,%d) outside tile (%d,%d)",
					j, g.Rows[j], g.Cols[j], t.TR, t.TC)
			}
		}
		if t.UniqRows < 1 || t.UniqRows > t.NNZ() || t.UniqCols < 1 || t.UniqCols > t.NNZ() {
			return fmt.Errorf("tile: tile %d has inconsistent uniq stats", i)
		}
	}
	if prev != len(g.Vals) {
		return fmt.Errorf("tile: tiles cover %d nonzeros, want %d", prev, len(g.Vals))
	}
	return nil
}

// ToCOO reassembles the grid's nonzeros into a row-major COO (used to verify
// the tiling is a permutation of the original matrix).
func (g *Grid) ToCOO() *sparse.COO {
	m := sparse.NewCOO(g.N, g.NNZ())
	m.Rows = append(m.Rows, g.Rows...)
	m.Cols = append(m.Cols, g.Cols...)
	m.Vals = append(m.Vals, g.Vals...)
	m.SortRowMajor()
	return m
}

package gen

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sparse"
)

func validOrFatal(t *testing.T, m *sparse.COO, name string) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if m.NNZ() == 0 {
		t.Fatalf("%s: empty matrix", name)
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(rand.New(rand.NewSource(1)), 100, 500)
	validOrFatal(t, m, "uniform")
	if m.N != 100 || m.NNZ() > 500 {
		t.Fatalf("N=%d nnz=%d", m.N, m.NNZ())
	}
}

func TestRMATShape(t *testing.T) {
	m := RMAT(rand.New(rand.NewSource(2)), 8, 8)
	validOrFatal(t, m, "rmat")
	if m.N != 256 {
		t.Fatalf("N = %d, want 256", m.N)
	}
	// RMAT must be skewed: the densest row should have far more nonzeros
	// than the average.
	counts := m.RowNNZ()
	max, avg := 0, float64(m.NNZ())/256
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 3*avg {
		t.Fatalf("RMAT not skewed: max row %d vs avg %.1f", max, avg)
	}
}

func TestPowerLawSkew(t *testing.T) {
	m := PowerLaw(rand.New(rand.NewSource(3)), 2000, 10, 2.1)
	validOrFatal(t, m, "powerlaw")
	counts := m.RowNNZ()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := float64(m.NNZ()) / 2000
	if float64(max) < 5*avg {
		t.Fatalf("power law not skewed: max %d vs avg %.1f", max, avg)
	}
	// gamma <= 1 falls back to a sane default rather than diverging.
	m2 := PowerLaw(rand.New(rand.NewSource(3)), 200, 4, 0.5)
	validOrFatal(t, m2, "powerlaw-clamped")
}

func TestMesh2DRegularity(t *testing.T) {
	m := Mesh2D(20, 20)
	validOrFatal(t, m, "mesh2d")
	if m.N != 400 {
		t.Fatalf("N = %d", m.N)
	}
	counts := m.RowNNZ()
	for r, c := range counts {
		if c < 3 || c > 7 {
			t.Fatalf("mesh row %d has %d nonzeros, want 3..7", r, c)
		}
	}
	// Meshes are symmetric.
	tr := m.Transpose()
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, _ := m.At(i)
		r2, c2, _ := tr.At(i)
		if r1 != r2 || c1 != c2 {
			t.Fatal("mesh not symmetric")
		}
	}
}

func TestStencil3D(t *testing.T) {
	m := Stencil3D(6, 6, 6, 1)
	validOrFatal(t, m, "stencil")
	if m.N != 216 {
		t.Fatalf("N = %d", m.N)
	}
	counts := m.RowNNZ()
	// Interior points have 27 neighbors, corners 8.
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max != 27 || min != 8 {
		t.Fatalf("stencil degrees [%d,%d], want [8,27]", min, max)
	}
	// Block version multiplies both dimension and degree by the block size.
	b := Stencil3D(4, 4, 4, 2)
	validOrFatal(t, b, "block-stencil")
	if b.N != 128 {
		t.Fatalf("block N = %d", b.N)
	}
}

func TestBanded(t *testing.T) {
	m := Banded(rand.New(rand.NewSource(4)), 500, 10, 8, 0)
	validOrFatal(t, m, "banded")
	// With longRangeFrac=0 every nonzero is within the (wrapped) band.
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		d := int(r) - int(c)
		if d < 0 {
			d = -d
		}
		if d > 10 && d < 500-10 {
			t.Fatalf("nonzero (%d,%d) outside band", r, c)
		}
	}
}

func TestBlockCommunityDiagonalConcentration(t *testing.T) {
	m := BlockCommunity(rand.New(rand.NewSource(5)), 2000, 64, 0.5, 2)
	validOrFatal(t, m, "blockcommunity")
	near, far := 0, 0
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		d := int(r) - int(c)
		if d < 0 {
			d = -d
		}
		if d <= 256 {
			near++
		} else {
			far++
		}
	}
	if near < 4*far {
		t.Fatalf("communities not diagonal-concentrated: near=%d far=%d", near, far)
	}
}

func TestMycielskianSizes(t *testing.T) {
	// n_k = 3·2^(k-2) − 1 for k ≥ 3 starting from K2 (n_2 = 2).
	wantN := map[int]int{3: 5, 4: 11, 5: 23, 6: 47}
	for k, n := range wantN {
		m := Mycielskian(k)
		validOrFatal(t, m, "mycielskian")
		if m.N != n {
			t.Fatalf("M%d has %d vertices, want %d", k, m.N, n)
		}
	}
	// Triangle-free graphs with growing chromatic number: check symmetry and
	// zero diagonal.
	m := Mycielskian(6)
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		if r == c {
			t.Fatal("self loop in Mycielskian")
		}
	}
}

func TestDenseBlocks(t *testing.T) {
	m := DenseBlocks(rand.New(rand.NewSource(6)), 400, 4, 0.05)
	validOrFatal(t, m, "denseblocks")
	if m.Density() < 0.02 {
		t.Fatalf("density %.4f too low", m.Density())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw(rand.New(rand.NewSource(42)), 300, 6, 2.1)
	b := PowerLaw(rand.New(rand.NewSource(42)), 300, 6, 2.1)
	if a.NNZ() != b.NNZ() {
		t.Fatal("power law not deterministic")
	}
	for i := 0; i < a.NNZ(); i++ {
		r1, c1, v1 := a.At(i)
		r2, c2, v2 := b.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatal("power law not deterministic")
		}
	}
}

func TestBenchmarksSuite(t *testing.T) {
	suite := Benchmarks()
	if len(suite) != 10 {
		t.Fatalf("Table V suite has %d entries, want 10", len(suite))
	}
	wantOrder := []string{"ski", "pap", "del", "dgr", "kro", "myc", "pac", "ser", "pok", "wik"}
	for i, b := range suite {
		if b.Short != wantOrder[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, b.Short, wantOrder[i])
		}
		if b.AvgDeg() <= 0 {
			t.Fatalf("%s: bad AvgDeg", b.Short)
		}
	}
}

func TestDenseBenchmarksSuite(t *testing.T) {
	suite := DenseBenchmarks()
	if len(suite) != 5 {
		t.Fatalf("Table VIII suite has %d entries, want 5", len(suite))
	}
	wantOrder := []string{"gea", "mou", "nd2", "rm0", "si4"}
	for i, b := range suite {
		if b.Short != wantOrder[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, b.Short, wantOrder[i])
		}
	}
}

func TestBenchmarkBuildsAtTinyScale(t *testing.T) {
	// Build every mimic at a very coarse scale to keep the test fast, and
	// verify each produces a valid, structurally plausible matrix.
	for _, b := range append(Benchmarks(), DenseBenchmarks()...) {
		b := b
		t.Run(b.Short, func(t *testing.T) {
			t.Parallel()
			m := b.Build(1, 2048)
			validOrFatal(t, m, b.Short)
			if m.N < 128 {
				t.Fatalf("%s: N = %d too small", b.Short, m.N)
			}
			if float64(m.NNZ())/float64(m.N) < 1 {
				t.Fatalf("%s: avg degree %.2f < 1", b.Short, float64(m.NNZ())/float64(m.N))
			}
		})
	}
}

func TestDenseSuiteIsDenser(t *testing.T) {
	// The Table VIII set exists because it favors hot workers; its mimics
	// must have clearly higher density than the Table V set at equal scale.
	medianDensity := func(suite []Benchmark) float64 {
		ds := make([]float64, 0, len(suite))
		for _, b := range suite {
			m := b.Build(1, 256)
			ds = append(ds, m.Density())
		}
		sort.Float64s(ds)
		return ds[len(ds)/2]
	}
	sparse10 := medianDensity(Benchmarks())
	dense5 := medianDensity(DenseBenchmarks())
	if dense5 < 2*sparse10 {
		t.Fatalf("dense suite density %.2e not clearly above sparse suite %.2e", dense5, sparse10)
	}
}

func TestByShort(t *testing.T) {
	b, ok := ByShort("pap")
	if !ok || b.Name != "coPapersCiteseer" {
		t.Fatalf("ByShort(pap) = %+v, %v", b, ok)
	}
	if _, ok := ByShort("nope"); ok {
		t.Fatal("ByShort(nope) should fail")
	}
}

package gen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Benchmark describes one matrix of the paper's benchmark suites (Tables V
// and VIII) together with the generator that synthesizes its structural
// mimic at a requested scale.
type Benchmark struct {
	Short  string // the paper's short name, e.g. "pap"
	Name   string // the SuiteSparse matrix it mimics
	Domain string // application domain from Table V/VIII

	PaperRows float64 // millions of rows in the original
	PaperNNZ  float64 // millions of nonzeros in the original

	// Build synthesizes the mimic with rows ≈ PaperRows/scale and the
	// original's average degree preserved (capped at rows/8 for the
	// near-dense Table VIII matrices). Deterministic in seed.
	Build func(seed int64, scale int) *sparse.COO
}

// AvgDeg returns the original matrix's average nonzeros per row.
func (b Benchmark) AvgDeg() float64 { return b.PaperNNZ / b.PaperRows }

// rowsAt converts paper-scale millions of rows into a scaled-down dimension,
// clamped below at 512 so tiny scales still produce a few tiles.
func rowsAt(paperRowsMillions float64, scale int) int {
	n := int(paperRowsMillions * 1e6 / float64(scale))
	if n < 512 {
		n = 512
	}
	return n
}

// degAt caps the preserved average degree at n/8 so the near-dense mimics
// stay generatable at small scales.
func degAt(deg float64, n int) float64 {
	if max := float64(n) / 8; deg > max {
		return max
	}
	return deg
}

// Benchmarks returns the ten Table V benchmark mimics in the paper's order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{
			Short: "ski", Name: "as-Skitter", Domain: "Internet topology",
			PaperRows: 1.7, PaperNNZ: 22,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(1.7, scale)
				return PowerLaw(rand.New(rand.NewSource(seed)), n, degAt(22.0/1.7, n), 2.3)
			},
		},
		{
			Short: "pap", Name: "coPapersCiteseer", Domain: "Citation network",
			PaperRows: 0.4, PaperNNZ: 32,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.4, scale)
				rng := rand.New(rand.NewSource(seed))
				return BlockCommunity(rng, n, 96, 0.72, 10)
			},
		},
		{
			Short: "del", Name: "delaunay_n22", Domain: "Geometry problem",
			PaperRows: 4.2, PaperNNZ: 25,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(4.2, scale)
				side := int(math.Sqrt(float64(n)))
				return Mesh2D(side, side)
			},
		},
		{
			Short: "dgr", Name: "dgreen", Domain: "VLSI",
			PaperRows: 1.2, PaperNNZ: 27,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(1.2, scale)
				return Banded(rand.New(rand.NewSource(seed)), n, n/64, int(degAt(27.0/1.2, n)), 0.05)
			},
		},
		{
			Short: "kro", Name: "kron_g500-logn19", Domain: "Synthetic graph",
			PaperRows: 0.5, PaperNNZ: 44,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.5, scale)
				logn := int(math.Round(math.Log2(float64(n))))
				return RMAT(rand.New(rand.NewSource(seed)), logn, int(degAt(44.0/0.5, 1<<logn)))
			},
		},
		{
			Short: "myc", Name: "mycielskian17", Domain: "Math",
			PaperRows: 0.1, PaperNNZ: 100,
			Build: func(seed int64, scale int) *sparse.COO {
				// Pick the Mycielskian order whose vertex count 3·2^(k-2)−1
				// best matches the scaled row target.
				target := rowsAt(0.1, scale)
				k := 2 + int(math.Round(math.Log2(float64(target+1)/3)))
				if k < 5 {
					k = 5
				}
				return Mycielskian(k)
			},
		},
		{
			Short: "pac", Name: "packing-500x100x100-b050", Domain: "Numerical simulation",
			PaperRows: 2.1, PaperNNZ: 35,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(2.1, scale)
				side := int(math.Cbrt(float64(n)))
				return Stencil3D(4*side, side/2+1, side/2+1, 1)
			},
		},
		{
			Short: "ser", Name: "Serena", Domain: "Environ. science",
			PaperRows: 1.4, PaperNNZ: 64,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(1.4, scale) / 2
				side := int(math.Cbrt(float64(n)))
				return Stencil3D(side, side, side, 2)
			},
		},
		{
			Short: "pok", Name: "soc-Pokec", Domain: "Social network",
			PaperRows: 1.6, PaperNNZ: 31,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(1.6, scale)
				return PowerLaw(rand.New(rand.NewSource(seed)), n, degAt(31.0/1.6, n), 2.1)
			},
		},
		{
			Short: "wik", Name: "wiki-topcats", Domain: "Web graph",
			PaperRows: 1.8, PaperNNZ: 29,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(1.8, scale)
				return PowerLaw(rand.New(rand.NewSource(seed)), n, degAt(29.0/1.8, n), 1.9)
			},
		},
	}
}

// DenseBenchmarks returns the five higher-density Table VIII mimics.
func DenseBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Short: "gea", Name: "gearbox", Domain: "Aerospace engineering",
			PaperRows: 0.15, PaperNNZ: 9,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.15, scale)
				return Banded(rand.New(rand.NewSource(seed)), n, n/128, int(degAt(60, n)), 0.01)
			},
		},
		{
			Short: "mou", Name: "mouse_gene", Domain: "Molecular biology",
			PaperRows: 0.05, PaperNNZ: 29,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.05, scale)
				return DenseBlocks(rand.New(rand.NewSource(seed)), n, 4, degAt(580, n)/float64(n))
			},
		},
		{
			Short: "nd2", Name: "nd24k", Domain: "2D/3D problem",
			PaperRows: 0.07, PaperNNZ: 29,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.07, scale)
				return DenseBlocks(rand.New(rand.NewSource(seed)), n, 8, degAt(414, n)/float64(n))
			},
		},
		{
			Short: "rm0", Name: "RM07R", Domain: "Comput. dynamics",
			PaperRows: 0.38, PaperNNZ: 37,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.38, scale)
				return Banded(rand.New(rand.NewSource(seed)), n, n/96, int(degAt(97, n)), 0.02)
			},
		},
		{
			Short: "si4", Name: "Si41Ge41H72", Domain: "Quantum chemistry",
			PaperRows: 0.19, PaperNNZ: 15,
			Build: func(seed int64, scale int) *sparse.COO {
				n := rowsAt(0.19, scale)
				return Banded(rand.New(rand.NewSource(seed)), n, n/64, int(degAt(79, n)), 0.03)
			},
		},
	}
}

// ByShort returns the benchmark with the given short name from either suite,
// or false if unknown.
func ByShort(short string) (Benchmark, bool) {
	for _, b := range append(Benchmarks(), DenseBenchmarks()...) {
		if b.Short == short {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Package gen synthesizes sparse matrices whose structure mimics the
// SuiteSparse benchmarks of the paper's Tables V and VIII. The real
// collections are multi-gigabyte downloads; per the reproduction rules we
// substitute generators that preserve the structural property each
// benchmark contributes to the evaluation — power-law skew, diagonal
// communities, near-regular meshes, Kronecker self-similarity, banded FEM
// structure, and near-dense math graphs. All generators are deterministic
// given a seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// finishMatrix sorts, deduplicates and validates a freshly generated COO.
func finishMatrix(m *sparse.COO) *sparse.COO {
	m.SortRowMajor()
	m.DedupSum()
	return m
}

// val draws a nonzero value; generated matrices carry small nonzero weights
// so functional SpMM results stay well-conditioned.
func val(rng *rand.Rand) float64 {
	return rng.Float64() + 0.5
}

// Uniform returns an n×n matrix with approximately nnz nonzeros placed
// uniformly at random — the distribution the IMH-unaware AESPA-style model
// assumes for every matrix.
func Uniform(rng *rand.Rand, n, nnz int) *sparse.COO {
	m := sparse.NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), val(rng))
	}
	return finishMatrix(m)
}

// RMAT returns a Kronecker/R-MAT graph adjacency matrix with 2^scale rows
// and approximately edgeFactor·2^scale nonzeros, using the standard
// (a,b,c,d) = (0.57,0.19,0.19,0.05) Graph500 parameters. It mimics
// kron_g500-logn19 ("kro"): self-similar dense corners and a heavy diagonal
// concentration.
func RMAT(rng *rand.Rand, scale, edgeFactor int) *sparse.COO {
	n := 1 << scale
	nnz := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19
	m := sparse.NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		r, cc := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			p := rng.Float64()
			switch {
			case p < a:
				// top-left quadrant
			case p < a+b:
				cc |= 1 << bit
			case p < a+b+c:
				r |= 1 << bit
			default:
				r |= 1 << bit
				cc |= 1 << bit
			}
		}
		m.Append(int32(r), int32(cc), val(rng))
	}
	return finishMatrix(m)
}

// PowerLaw returns an n×n Chung-Lu style graph where expected degrees follow
// w_i ∝ (i+1)^(-1/(gamma-1)), producing the skewed adjacency structure of
// web/social graphs (ski, pok, wik). avgDeg controls the expected nonzeros
// per row. Endpoints are drawn from the degree-weighted distribution so a
// few rows/cols are very dense (the "hot" hubs) while the tail is sparse.
func PowerLaw(rng *rand.Rand, n int, avgDeg float64, gamma float64) *sparse.COO {
	if gamma <= 1 {
		gamma = 2.1
	}
	alpha := 1 / (gamma - 1)
	// Cumulative weight table for inverse-transform sampling.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -alpha)
	}
	total := cum[n]
	// Acceleration index over the inverse-transform search: bucket b holds
	// the least l with cum[l+1] >= b·total/B, so a draw starts its binary
	// search on the short range [start[b], start[b+1]] instead of [0, n].
	// The bracket is re-validated against the exact predicate before the
	// search, so floating-point rounding in the bucket arithmetic can never
	// change which index a given target maps to — draws are bit-identical
	// to the full-range search, and the rand stream is untouched.
	nb := n
	if nb > 1<<16 {
		nb = 1 << 16
	}
	start := make([]int32, nb+2)
	for b, l := 1, 0; b <= nb; b++ {
		t := float64(b) * total / float64(nb)
		for l < n-1 && cum[l+1] < t {
			l++
		}
		start[b] = int32(l)
	}
	start[nb+1] = int32(n - 1)
	invBucket := float64(nb) / total
	draw := func() int32 {
		target := rng.Float64() * total
		b := int(target * invBucket)
		if b > nb {
			b = nb
		}
		lo, hi := int(start[b]), int(start[b+1])
		for lo > 0 && cum[lo] >= target {
			lo--
		}
		for hi < n-1 && cum[hi+1] < target {
			hi++
		}
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	nnz := int(avgDeg * float64(n))
	m := sparse.NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(draw(), draw(), val(rng))
	}
	return finishMatrix(m)
}

// Mesh2D returns the adjacency matrix of a w×h grid triangulated like a
// Delaunay mesh: each vertex connects to its 4 axis neighbors plus one
// diagonal, giving ~6 nonzeros per row including the self loop. It mimics
// delaunay_n22 ("del"): near-regular, very sparse, no hot regions.
func Mesh2D(w, h int) *sparse.COO {
	n := w * h
	m := sparse.NewCOO(n, 7*n)
	idx := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			self := idx(x, y)
			m.Append(self, self, 1)
			if x+1 < w {
				m.Append(self, idx(x+1, y), 1)
				m.Append(idx(x+1, y), self, 1)
			}
			if y+1 < h {
				m.Append(self, idx(x, y+1), 1)
				m.Append(idx(x, y+1), self, 1)
			}
			if x+1 < w && y+1 < h { // diagonal of the triangulation
				m.Append(self, idx(x+1, y+1), 1)
				m.Append(idx(x+1, y+1), self, 1)
			}
		}
	}
	return finishMatrix(m)
}

// Stencil3D returns the 27-point stencil adjacency of a wx×wy×wz grid with
// blockSize unknowns per grid point (blockSize=1 gives the plain stencil).
// With blockSize>1 each point-to-point coupling becomes a dense
// blockSize×blockSize block, mimicking FEM matrices such as Serena ("ser")
// and packing-500x100x100 ("pac", blockSize=1).
func Stencil3D(wx, wy, wz, blockSize int) *sparse.COO {
	n := wx * wy * wz * blockSize
	m := sparse.NewCOO(n, 27*n)
	pt := func(x, y, z int) int { return (z*wy+y)*wx + x }
	// Interior points visit all 27 neighbors, so the per-neighbor bounds
	// checks only matter on the six faces; the interior fast path emits the
	// same neighbors in the same (dz, dy, dx) order without them.
	emit := func(p, q int) {
		for bi := 0; bi < blockSize; bi++ {
			for bj := 0; bj < blockSize; bj++ {
				m.Append(int32(p*blockSize+bi), int32(q*blockSize+bj), 1)
			}
		}
	}
	for z := 0; z < wz; z++ {
		for y := 0; y < wy; y++ {
			for x := 0; x < wx; x++ {
				p := pt(x, y, z)
				if x > 0 && x < wx-1 && y > 0 && y < wy-1 && z > 0 && z < wz-1 {
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							base := pt(x-1, y+dy, z+dz)
							emit(p, base)
							emit(p, base+1)
							emit(p, base+2)
						}
					}
					continue
				}
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || nx >= wx || ny < 0 || ny >= wy || nz < 0 || nz >= wz {
								continue
							}
							emit(p, pt(nx, ny, nz))
						}
					}
				}
			}
		}
	}
	return finishMatrix(m)
}

// Banded returns an n×n matrix where each row has approximately rowNNZ
// nonzeros confined to a band of half-width band around the diagonal, plus
// a small fraction of long-range entries (VLSI matrices like dgreen have
// mostly local connectivity with some global nets).
func Banded(rng *rand.Rand, n, band, rowNNZ int, longRangeFrac float64) *sparse.COO {
	m := sparse.NewCOO(n, n*rowNNZ)
	for r := 0; r < n; r++ {
		m.Append(int32(r), int32(r), 1)
		for j := 1; j < rowNNZ; j++ {
			var c int
			if rng.Float64() < longRangeFrac {
				c = rng.Intn(n)
			} else {
				c = r + rng.Intn(2*band+1) - band
				if c < 0 {
					c += n
				}
				if c >= n {
					c -= n
				}
			}
			m.Append(int32(r), int32(c), val(rng))
		}
	}
	return finishMatrix(m)
}

// BlockCommunity returns an n×n matrix of dense communities along the
// diagonal over a sparse background, the structure of citation networks
// such as coPapersCiteseer ("pap"; the paper observes its denser
// sub-communities cluster around the diagonal, Figure 5). Communities have
// geometrically distributed sizes around meanBlock and internal density
// blockDensity; backgroundDeg nonzeros per row land uniformly.
func BlockCommunity(rng *rand.Rand, n, meanBlock int, blockDensity, backgroundDeg float64) *sparse.COO {
	m := sparse.NewCOO(n, int(float64(n)*(blockDensity*float64(meanBlock)+backgroundDeg)))
	for start := 0; start < n; {
		size := 1 + int(rng.ExpFloat64()*float64(meanBlock))
		if start+size > n {
			size = n - start
		}
		// Fill the community block at the requested density.
		fills := int(blockDensity * float64(size) * float64(size))
		for i := 0; i < fills; i++ {
			r := start + rng.Intn(size)
			c := start + rng.Intn(size)
			m.Append(int32(r), int32(c), val(rng))
		}
		start += size
	}
	bg := int(backgroundDeg * float64(n))
	for i := 0; i < bg; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), val(rng))
	}
	return finishMatrix(m)
}

// Mycielskian returns the adjacency matrix of the Mycielski construction
// iterated from K2, the family the "myc" benchmark (mycielskian17) comes
// from: triangle-free yet increasingly dense. order k ≥ 2 yields
// 3·2^(k-2)−1 vertices; mycielskian17 is k=17, our scaled runs use k≈12.
func Mycielskian(k int) *sparse.COO {
	// Edge list representation; start from K2.
	type edge struct{ u, v int32 }
	edges := []edge{{0, 1}}
	nverts := int32(2)
	for it := 2; it < k; it++ {
		// Mycielskian M(G): vertices v_0..v_{n-1} (original), u_0..u_{n-1}
		// (shadows), w. Edges: original edges; u_i ~ v_j for each original
		// edge (i,j), both directions of the shadow; u_i ~ w.
		n := nverts
		w := 2 * n
		next := make([]edge, 0, 3*len(edges)+int(n))
		next = append(next, edges...)
		for _, e := range edges {
			next = append(next, edge{e.u + n, e.v}) // u_i ~ v_j
			next = append(next, edge{e.v + n, e.u}) // u_j ~ v_i
		}
		for i := int32(0); i < n; i++ {
			next = append(next, edge{i + n, w})
		}
		edges = next
		nverts = 2*n + 1
	}
	m := sparse.NewCOO(int(nverts), 2*len(edges))
	for _, e := range edges {
		m.Append(e.u, e.v, 1)
		m.Append(e.v, e.u, 1)
	}
	return finishMatrix(m)
}

// DenseBlocks returns an n×n matrix composed of large dense row/column
// blocks covering most of the matrix, mimicking the near-dense Table VIII
// matrices (mouse_gene, nd24k) whose density is ~1e-2 at 50-70K rows.
func DenseBlocks(rng *rand.Rand, n, blocks int, density float64) *sparse.COO {
	m := sparse.NewCOO(n, int(density*float64(n)*float64(n)))
	bs := (n + blocks - 1) / blocks
	for b := 0; b < blocks; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		size := hi - lo
		fills := int(density * float64(blocks) * float64(size) * float64(size))
		for i := 0; i < fills; i++ {
			m.Append(int32(lo+rng.Intn(size)), int32(lo+rng.Intn(size)), val(rng))
		}
	}
	// Thin global coupling so the matrix is irreducible.
	for r := 0; r < n; r++ {
		m.Append(int32(r), int32(rng.Intn(n)), val(rng))
	}
	return finishMatrix(m)
}

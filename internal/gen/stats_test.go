package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestRMATQuadrantDistribution: with (a,b,c,d) = (0.57,0.19,0.19,0.05),
// the top-left quadrant must receive the plurality of nonzeros and the
// bottom-right the fewest — the Graph500 self-similarity.
func TestRMATQuadrantDistribution(t *testing.T) {
	m := RMAT(rand.New(rand.NewSource(1)), 10, 16)
	half := int32(m.N / 2)
	var q [4]int
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		idx := 0
		if r >= half {
			idx += 2
		}
		if c >= half {
			idx++
		}
		q[idx]++
	}
	if q[0] <= q[1] || q[0] <= q[2] || q[0] <= q[3] {
		t.Fatalf("top-left not dominant: %v", q)
	}
	if q[3] >= q[1] || q[3] >= q[2] {
		t.Fatalf("bottom-right not smallest: %v", q)
	}
	// Dedup erodes the exact proportions, but top-left should still hold
	// roughly half the mass.
	frac := float64(q[0]) / float64(m.NNZ())
	if frac < 0.35 || frac > 0.75 {
		t.Fatalf("top-left fraction %.2f implausible", frac)
	}
}

// TestPowerLawTail: the degree distribution must have a heavy tail — the
// top 1% of rows hold a disproportionate share of nonzeros, and the degree
// sequence spans orders of magnitude.
func TestPowerLawTail(t *testing.T) {
	m := PowerLaw(rand.New(rand.NewSource(2)), 8192, 12, 2.1)
	counts := m.RowNNZ()
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	cut := len(counts) / 100
	for _, c := range counts[:cut] {
		top += c
	}
	share := float64(top) / float64(m.NNZ())
	if share < 0.10 {
		t.Fatalf("top 1%% of rows hold only %.1f%% of nonzeros", share*100)
	}
	if counts[0] < 20*counts[len(counts)/2] && counts[len(counts)/2] > 0 {
		t.Fatalf("max degree %d vs median %d: tail too light", counts[0], counts[len(counts)/2])
	}
}

// TestMycielskianDensityGrowth: each Mycielski iteration increases edge
// density relative to a comparable random graph — the property that makes
// myc the hot-favored benchmark.
func TestMycielskianDensityGrowth(t *testing.T) {
	var lastDeg float64
	for k := 5; k <= 9; k++ {
		m := Mycielskian(k)
		deg := float64(m.NNZ()) / float64(m.N)
		if deg <= lastDeg {
			t.Fatalf("M%d average degree %.1f did not grow (prev %.1f)", k, deg, lastDeg)
		}
		lastDeg = deg
	}
}

// TestStencilBlockStructure: the block variant produces fully dense
// blockSize×blockSize coupling blocks.
func TestStencilBlockStructure(t *testing.T) {
	m := Stencil3D(3, 3, 3, 2)
	// Every (point, neighbor) pair contributes a dense 2×2 block, so nnz is
	// exactly 4× the scalar stencil's.
	scalar := Stencil3D(3, 3, 3, 1)
	if m.NNZ() != 4*scalar.NNZ() {
		t.Fatalf("block nnz %d, want %d", m.NNZ(), 4*scalar.NNZ())
	}
}

// TestBandedLongRangeFraction: with longRangeFrac = 0.5 roughly half the
// off-diagonal entries land outside the band.
func TestBandedLongRangeFraction(t *testing.T) {
	n, band := 4096, 16
	m := Banded(rand.New(rand.NewSource(3)), n, band, 10, 0.5)
	outside := 0
	offDiag := 0
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		if r == c {
			continue
		}
		offDiag++
		d := int(math.Abs(float64(r) - float64(c)))
		if d > band && d < n-band {
			outside++
		}
	}
	frac := float64(outside) / float64(offDiag)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("long-range fraction %.2f, want ≈ 0.5", frac)
	}
}

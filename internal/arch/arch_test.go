package arch

import (
	"testing"

	"repro/internal/model"
)

func TestSpadeSextansTableIVScaling(t *testing.T) {
	// Table IV: PE counts and throughput grow with scale; bandwidth and
	// frequency stay constant.
	for _, scale := range []int{1, 2, 4, 8} {
		a := SpadeSextans(scale)
		if err := a.Validate(); err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		if a.Cold.Count != 4*scale {
			t.Errorf("scale %d: %d SPADE PEs, want %d", scale, a.Cold.Count, 4*scale)
		}
		if a.Hot.Count != 1 {
			t.Errorf("scale %d: %d Sextans PEs, want 1", scale, a.Hot.Count)
		}
		if a.Hot.MACsPerCycle != 5*float64(scale) {
			t.Errorf("scale %d: Sextans MACs/cycle %g, want %d", scale, a.Hot.MACsPerCycle, 5*scale)
		}
		if a.BWBytes != 205e9 {
			t.Errorf("scale %d: bandwidth %g, want 205e9", scale, a.BWBytes)
		}
		if a.Cold.FreqHz != 0.8e9 || a.Hot.FreqHz != 0.8e9 {
			t.Errorf("scale %d: PE frequency changed", scale)
		}
		if a.AtomicRMW {
			t.Errorf("scale %d: SPADE-Sextans has no atomic engine", scale)
		}
	}
	// Scratchpad grows proportionally to scale (Table IV's 0.5/1/2/4 MB).
	s1, s8 := SpadeSextans(1), SpadeSextans(8)
	if s8.Hot.ScratchpadBytes != 8*s1.Hot.ScratchpadBytes {
		t.Errorf("scratchpad scaling: %d vs %d", s1.Hot.ScratchpadBytes, s8.Hot.ScratchpadBytes)
	}
}

func TestSpadeSextansWorkerRolesTableIII(t *testing.T) {
	a := SpadeSextans(4)
	// Table III rows for SPADE PE and Sextans.
	if a.Cold.Kind != model.Cold || a.Cold.Format != model.FormatCOO ||
		a.Cold.DinReuse != model.ReuseNone || a.Cold.DoutReuse != model.ReuseInter {
		t.Errorf("SPADE PE row of Table III violated: %+v", a.Cold)
	}
	if a.Hot.Kind != model.Hot || a.Hot.Format != model.FormatCOO ||
		a.Hot.DinReuse != model.ReuseIntraStream || a.Hot.DoutReuse != model.ReuseInter {
		t.Errorf("Sextans row of Table III violated: %+v", a.Hot)
	}
	if a.Cold.TiledTraversal {
		t.Error("SPADE PEs use an untiled traversal (Fig 6(a))")
	}
	if !a.Hot.TiledTraversal {
		t.Error("Sextans uses a tiled traversal (Fig 6(b))")
	}
	if a.Cold.ElemBytes != 4 {
		t.Error("SPADE-Sextans stores values in single precision (§VII-A)")
	}
}

func TestSkewedIsoScale(t *testing.T) {
	for c := 0; c <= 8; c++ {
		h := 8 - c
		a := SpadeSextansSkewed(c, h)
		if c == 0 && a.Cold.Count != 0 {
			t.Errorf("0-%d: cold pool not empty", h)
		}
		if h == 0 && a.Hot.Count != 0 {
			t.Errorf("%d-0: hot pool not empty", c)
		}
		if c > 0 && a.Cold.Count != 4*c {
			t.Errorf("%d-%d: cold count %d", c, h, a.Cold.Count)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%d-%d: %v", c, h, err)
		}
	}
}

func TestSpadeSextansPCIe(t *testing.T) {
	a := SpadeSextansPCIe()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Hot.NNZPerCycle != 20 {
		t.Errorf("enhanced Sextans NNZPerCycle = %g, want 20", a.Hot.NNZPerCycle)
	}
	if a.Hot.MaxStreamBW != 32e9 {
		t.Errorf("PCIe link = %g, want 32e9", a.Hot.MaxStreamBW)
	}
	// Intensity independence: compute time identical across OpsPerMAC.
	if a.Hot.ComputeTime(1000, 32, 2) != a.Hot.ComputeTime(1000, 32, 64) {
		t.Error("enhanced Sextans compute time must not depend on AI")
	}
	// The on-chip SPADE PEs slow down with AI as usual.
	if a.Cold.ComputeTime(1000, 32, 64) <= a.Cold.ComputeTime(1000, 32, 2) {
		t.Error("SPADE PEs must slow down with AI")
	}
}

func TestPIUMA(t *testing.T) {
	a := PIUMA()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Cold.Count != 4 || a.Hot.Count != 2 {
		t.Errorf("PIUMA pools %d/%d, want 4 MTPs / 2 STPs", a.Cold.Count, a.Hot.Count)
	}
	if !a.AtomicRMW {
		t.Error("PIUMA's atomic engine enables shared-buffer RMW")
	}
	// Table III rows for MTP/STP; PIUMA stores double precision (§VII-A).
	if a.Cold.Format != model.FormatCSR || a.Hot.Format != model.FormatCSR {
		t.Error("PIUMA workers use CSR-like formats")
	}
	if a.Hot.DoutReuse != model.ReuseIntraDemand {
		t.Error("STP Dout reuse is intra-tile (demand)")
	}
	if a.Cold.ElemBytes != 8 || a.Hot.ElemBytes != 8 {
		t.Error("PIUMA stores values in double precision")
	}
	// Hot:cold throughput ratio is smaller than in SPADE-Sextans (§VIII-A
	// explains myc's different behavior with this).
	ss := SpadeSextans(4)
	piumaRatio := a.Hot.PeakFLOPs(32, 2) * float64(a.Hot.Count) /
		(a.Cold.PeakFLOPs(32, 2) * float64(a.Cold.Count))
	ssRatio := ss.Hot.PeakFLOPs(32, 2) * float64(ss.Hot.Count) /
		(ss.Cold.PeakFLOPs(32, 2) * float64(ss.Cold.Count))
	_ = piumaRatio
	perWorkerPIUMA := a.Hot.PeakFLOPs(32, 2) / a.Cold.PeakFLOPs(32, 2)
	perWorkerSS := ss.Hot.PeakFLOPs(32, 2) / ss.Cold.PeakFLOPs(32, 2)
	if perWorkerPIUMA >= perWorkerSS {
		t.Errorf("PIUMA per-worker hot:cold ratio %.1f should be below SPADE-Sextans %.1f",
			perWorkerPIUMA, perWorkerSS)
	}
	_ = ssRatio
}

func TestValidateCatchesBadArch(t *testing.T) {
	a := SpadeSextans(4)
	a.BWBytes = 0
	if a.Validate() == nil {
		t.Error("expected bandwidth error")
	}
	a = SpadeSextans(4)
	a.TileW = 0
	if a.Validate() == nil {
		t.Error("expected tile error")
	}
	a = SpadeSextans(4)
	a.TileW = 1 << 20 // overflows the hot scratchpad
	if a.Validate() == nil {
		t.Error("expected scratchpad overflow error")
	}
	a = SpadeSextansSkewed(0, 0)
	if a.Validate() == nil {
		t.Error("expected no-workers error")
	}
	a = SpadeSextans(4)
	a.Cold.ElemBytes = 0
	if a.Validate() == nil {
		t.Error("expected worker validation error")
	}
	a = SpadeSextans(4)
	a.Hot.FreqHz = 0
	if a.Validate() == nil {
		t.Error("expected hot worker validation error")
	}
}

func TestConfigBridge(t *testing.T) {
	a := PIUMA()
	cfg := a.Config(2)
	if cfg.Hot != &a.Hot || cfg.Cold != &a.Cold {
		t.Error("config must reference the arch's workers")
	}
	if !cfg.AtomicRMW || cfg.BWBytes != a.BWBytes {
		t.Error("config fields wrong")
	}
	if cfg.Params.K != 32 || cfg.Params.OpsPerMAC != 2 {
		t.Errorf("params %+v", cfg.Params)
	}
}

func TestCPUDSA(t *testing.T) {
	a := CPUDSA()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.AtomicRMW {
		t.Error("cache-coherent CPUs need no merge buffers")
	}
	if a.SharedL2Bytes <= 0 {
		t.Error("CPU+DSA models a shared last-level cache (§X)")
	}
	if a.Cold.Count != 16 || a.Hot.Count != 1 {
		t.Errorf("pools %d/%d, want 16 cores + 1 DSA", a.Cold.Count, a.Hot.Count)
	}
	if a.Hot.DinReuse != model.ReuseIntraStream || a.Cold.DinReuse != model.ReuseNone {
		t.Error("DSA streams, cores demand-access")
	}
}

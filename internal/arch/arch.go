// Package arch describes the three heterogeneous accelerator architectures
// of the paper's evaluation (§VI-A, Figure 9): SPADE-Sextans at the four
// Table IV system scales (plus the skewed iso-scale variants of §VIII-B),
// SPADE-Sextans+PCIe with the enhanced off-die Sextans, and PIUMA with MTP
// cold workers and STP hot workers.
//
// Substitution note (DESIGN.md §2): the benchmark matrices are scaled ~32×
// below the paper's, so the default tile size is 512 instead of 8192 and
// scratchpad capacities scale accordingly; every ratio the evaluation
// depends on (worker-to-bandwidth, hot-to-cold throughput, cache-to-tile)
// is preserved.
package arch

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/partition"
)

// Arch is a complete heterogeneous architecture description: the two worker
// pools, the shared memory system, and the simulation-level parameters the
// analytical model deliberately ignores (caches, chunk granularity).
type Arch struct {
	Name string

	Hot, Cold model.Worker

	// BWBytes is the shared main-memory bandwidth in bytes/s.
	BWBytes float64
	// AtomicRMW is true when an atomic engine lets both pools update one
	// output buffer (PIUMA), eliminating the merge step.
	AtomicRMW bool

	// TileH, TileW are the sparse-matrix tile dimensions.
	TileH, TileW int
	// K is the dense-matrix column count.
	K int

	// ColdCacheBytes/ColdCacheLine configure the per-cold-PE cache the
	// simulator models (the reuse source the model ignores, §IV-C); zero
	// disables it.
	ColdCacheBytes, ColdCacheLine int
	// SharedL2Bytes adds a shared last-level cache behind the cold workers'
	// private caches in the simulator — the "reuse through shared levels of
	// fast local memory" the paper's §X leaves to future work. Zero
	// disables it.
	SharedL2Bytes int
	// ChunkRows is the number of consecutive sparse rows a cold worker
	// processes at a time in its untiled traversal (64 for SPADE, §VII-A).
	ChunkRows int
}

// Config returns the partitioner configuration for this architecture with
// the given arithmetic-intensity factor (2 = plain SpMM).
func (a *Arch) Config(opsPerMAC float64) partition.Config {
	return partition.Config{
		Hot:       &a.Hot,
		Cold:      &a.Cold,
		BWBytes:   a.BWBytes,
		AtomicRMW: a.AtomicRMW,
		Params:    model.Params{K: a.K, OpsPerMAC: opsPerMAC},
	}
}

// Validate checks the architecture description.
func (a *Arch) Validate() error {
	if a.BWBytes <= 0 {
		return fmt.Errorf("arch %s: non-positive bandwidth", a.Name)
	}
	if a.TileH <= 0 || a.TileW <= 0 || a.K <= 0 {
		return fmt.Errorf("arch %s: invalid tiling/K", a.Name)
	}
	if a.Hot.Count > 0 {
		if err := a.Hot.Validate(); err != nil {
			return err
		}
		// §IV: tile dims must not overflow any worker's scratchpad.
		if a.Hot.ScratchpadBytes > 0 {
			need := a.TileW * a.K * a.Hot.ElemBytes
			if need > a.Hot.ScratchpadBytes {
				return fmt.Errorf("arch %s: tile width %d overflows hot scratchpad (%d > %d bytes)",
					a.Name, a.TileW, need, a.Hot.ScratchpadBytes)
			}
		}
	}
	if a.Cold.Count > 0 {
		if err := a.Cold.Validate(); err != nil {
			return err
		}
	}
	if a.Hot.Count <= 0 && a.Cold.Count <= 0 {
		return fmt.Errorf("arch %s: no workers", a.Name)
	}
	return nil
}

const (
	peFreqHz  = 0.8e9 // PE frequency for all SPADE-Sextans scales (§VII-A)
	defaultK  = 32    // dense columns, as in the paper (§VII-B)
	tileSize  = 512   // scaled stand-in for the paper's 8192 (DESIGN.md §2)
	spadeBWps = 8e9   // per-SPADE-PE sustained stream (GB/s level seen in Table VII)
	sexBWps   = 20e9  // Sextans streaming bandwidth per unit scale
)

// SpadeSextans returns the on-die SPADE(cold)+Sextans(hot) architecture at
// a Table IV system scale (1, 2, 4 or 8); scale 4 is the paper's baseline.
// Memory bandwidth stays constant across scales (205 GB/s) while worker
// counts/throughput and the Sextans scratchpad grow with scale.
func SpadeSextans(scale int) Arch {
	return SpadeSextansSkewed(scale, scale)
}

// SpadeSextansSkewed returns a SPADE-Sextans variant with independent cold
// and hot scales — the "c-h" iso-scale architectures of §VIII-B (e.g. 3-5
// has cold scale 3 and hot scale 5). A zero scale removes that pool.
func SpadeSextansSkewed(coldScale, hotScale int) Arch {
	a := Arch{
		Name:    fmt.Sprintf("SPADE-Sextans %d-%d", coldScale, hotScale),
		BWBytes: 205e9,
		TileH:   tileSize,
		TileW:   tileSize,
		K:       defaultK,
		// Table IV's 32 kB L1 per SPADE PE, scaled by the same ~16× factor
		// as the tile size and scratchpads (DESIGN.md §2) so cacheability
		// relative to the matrices is preserved.
		ColdCacheBytes: 2 << 10,
		ColdCacheLine:  64,
		ChunkRows:      64,
	}
	if coldScale > 0 {
		a.Cold = model.Worker{
			Name: "SPADE PE", Kind: model.Cold, Count: 4 * coldScale,
			FreqHz: peFreqHz, MACsPerCycle: 1,
			VisLatPerByte:  1 / spadeBWps,
			Format:         model.FormatCOO,
			DinReuse:       model.ReuseNone,
			DoutReuse:      model.ReuseInter,
			TiledTraversal: false,
			OverlapGroups:  model.FullOverlap(), // OoO non-speculative, latency tolerant
			ElemBytes:      4, IdxBytes: 4,
			MaxStreamBW: float64(4*coldScale) * spadeBWps,
		}
	}
	if hotScale > 0 {
		a.Hot = model.Worker{
			Name: "Sextans", Kind: model.Hot, Count: 1,
			FreqHz: peFreqHz, MACsPerCycle: 5 * float64(hotScale),
			VisLatPerByte:  1 / (sexBWps * float64(hotScale)),
			Format:         model.FormatCOO,
			DinReuse:       model.ReuseIntraStream,
			DoutReuse:      model.ReuseInter,
			TiledTraversal: true,
			OverlapGroups:  model.StreamOverlap(),
			ElemBytes:      4, IdxBytes: 4,
			// Scaled stand-in for Table IV's 0.5·scale MB: holds a double-
			// buffered Din tile plus the panel's Dout tile.
			ScratchpadBytes: tileSize * defaultK * 4 * 4 * hotScale / 2,
			MaxStreamBW:     sexBWps * float64(hotScale),
		}
	}
	return a
}

// SpadeSextansPCIe returns the second evaluated architecture (§VI-A(b)):
// on-chip SPADE PEs at scale 4 plus an off-die, computationally enhanced
// Sextans behind a 32 GB/s PCIe link. The enhanced Sextans processes 20
// nonzeros per cycle regardless of the kernel's arithmetic intensity
// (§VII-A), which is what makes the gSpMM intensity sweep of Figure 14
// interesting.
func SpadeSextansPCIe() Arch {
	a := SpadeSextans(4)
	a.Name = "SPADE-Sextans+PCIe"
	const pcieBW = 32e9
	a.Hot.NNZPerCycle = 20
	a.Hot.MACsPerCycle = 0
	a.Hot.VisLatPerByte = 1 / pcieBW
	a.Hot.MaxStreamBW = pcieBW
	return a
}

// CPUDSA returns the heterogeneous system the paper's §X proposes as
// future work: general-purpose CPU cores (cold workers — cache-based,
// demand access, strong latency tolerance through out-of-order execution)
// paired with an on-chip streaming accelerator in the spirit of Intel's
// Data Streaming Accelerator (hot worker — bulk streaming, no cache). The
// parameters sketch a server socket: 16 cores at 2.4 GHz with AVX-class
// SIMD, a DSA-like engine streaming at 30 GB/s, 120 GB/s of socket memory
// bandwidth, and a shared last-level cache in front of the cold workers'
// misses.
func CPUDSA() Arch {
	const coreFreq = 2.4e9
	return Arch{
		Name:    "CPU+DSA",
		BWBytes: 120e9,
		// Cache-coherent RMW on a CPU: no merge buffers needed.
		AtomicRMW:      true,
		TileH:          tileSize,
		TileW:          tileSize,
		K:              defaultK,
		ColdCacheBytes: 4 << 10, // per-core L1/L2 share, scaled like other presets
		ColdCacheLine:  64,
		SharedL2Bytes:  256 << 10,
		ChunkRows:      64,
		Cold: model.Worker{
			Name: "CPU core", Kind: model.Cold, Count: 16,
			FreqHz: coreFreq, MACsPerCycle: 2,
			VisLatPerByte:  1 / 6e9,
			Format:         model.FormatCSR,
			DinReuse:       model.ReuseNone, // demand access through caches
			DoutReuse:      model.ReuseInter,
			TiledTraversal: false,
			OverlapGroups:  model.FullOverlap(),
			ElemBytes:      4, IdxBytes: 4,
			MaxStreamBW: 96e9,
		},
		Hot: model.Worker{
			Name: "DSA", Kind: model.Hot, Count: 1,
			FreqHz: coreFreq, MACsPerCycle: 16,
			VisLatPerByte:  1 / 30e9,
			Format:         model.FormatCSR,
			DinReuse:       model.ReuseIntraStream,
			DoutReuse:      model.ReuseInter,
			TiledTraversal: true,
			OverlapGroups:  model.StreamOverlap(),
			ElemBytes:      4, IdxBytes: 4,
			ScratchpadBytes: tileSize * defaultK * 4 * 4,
			MaxStreamBW:     30e9,
		},
	}
}

// PIUMA returns the third evaluated architecture (§VI-A(c)): 4 MTP cold
// workers and 2 STP hot workers sharing the memory subsystem, CSR-like
// formats, double-precision values, and an atomic engine that removes the
// merge step so the pools always run in parallel with only the Parallel
// heuristics considered.
func PIUMA() Arch {
	const (
		freq  = 1.0e9
		mtpBW = 5e9
		stpBW = 24e9 // STP + DMA engines exploit memory-level parallelism
	)
	return Arch{
		Name:           "PIUMA",
		BWBytes:        96e9,
		AtomicRMW:      true,
		TileH:          tileSize,
		TileW:          tileSize,
		K:              defaultK,
		ColdCacheBytes: 1 << 10, // MTP cache, scaled like the SPADE L1
		ColdCacheLine:  64,
		ChunkRows:      64,
		Cold: model.Worker{
			Name: "PIUMA MTP", Kind: model.Cold, Count: 4,
			FreqHz: freq, MACsPerCycle: 1,
			VisLatPerByte:  1 / mtpBW,
			Format:         model.FormatCSR,
			DinReuse:       model.ReuseNone,
			DoutReuse:      model.ReuseInter,
			TiledTraversal: false,
			OverlapGroups:  model.FullOverlap(), // fine-grained multithreading
			ElemBytes:      8, IdxBytes: 4,
			MaxStreamBW: 4 * mtpBW,
		},
		Hot: model.Worker{
			Name: "PIUMA STP", Kind: model.Hot, Count: 2,
			FreqHz: freq, MACsPerCycle: 4,
			VisLatPerByte:  1 / stpBW,
			Format:         model.FormatCSR,
			DinReuse:       model.ReuseIntraStream,
			DoutReuse:      model.ReuseIntraDemand,
			TiledTraversal: true,
			OverlapGroups:  model.StreamOverlap(),
			ElemBytes:      8, IdxBytes: 4,
			ScratchpadBytes: tileSize * defaultK * 8 * 2,
			MaxStreamBW:     2 * stpBW,
		},
	}
}

package hotcore

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestPlanRoundTrip(t *testing.T) {
	m := testMatrix(t, 51, 512, 64, 3000, 1500)
	a := smallArch()
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Grid.NNZ() != p.Grid.NNZ() || back.Grid.N != p.Grid.N {
		t.Fatal("grid changed")
	}
	if len(back.Partition.Hot) != len(p.Partition.Hot) {
		t.Fatal("assignment changed length")
	}
	for i := range p.Partition.Hot {
		if back.Partition.Hot[i] != p.Partition.Hot[i] {
			t.Fatal("assignment changed")
		}
	}
	if back.Partition.Predicted != p.Partition.Predicted ||
		back.Partition.Heuristic != p.Partition.Heuristic ||
		back.Partition.Serial != p.Partition.Serial {
		t.Fatal("partition metadata changed")
	}
	if back.Hot.NNZ() != p.Hot.NNZ() || back.Cold.NNZ() != p.Cold.NNZ() {
		t.Fatal("formats changed")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRoundTripPIUMACSR(t *testing.T) {
	m := testMatrix(t, 52, 512, 64, 2000, 1000)
	a := arch.PIUMA()
	a.TileH, a.TileW = 64, 64
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ColdCSR == nil || back.ColdCSR.NNZ() != p.ColdCSR.NNZ() {
		t.Fatal("CSR cold section lost")
	}
	if !back.Hot.CSR {
		t.Fatal("CSR flag lost")
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	if _, err := ReadPlan(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
	if err := WritePlan(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected nil-plan error")
	}
}

func TestReadPlanRejectsCorruptedGrid(t *testing.T) {
	m := testMatrix(t, 53, 256, 32, 800, 400)
	a := smallArch()
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the in-memory plan, serialize, and expect the load-time
	// validation to refuse it.
	p.Grid.Rows[p.Grid.Tiles[0].Start] = int32(p.Grid.N - 1)
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(&buf); err == nil {
		t.Fatal("expected grid validation error")
	}
}

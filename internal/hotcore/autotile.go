package hotcore

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// AutoTileResult reports one candidate of the tile-size search.
type AutoTileResult struct {
	TileSize  int
	Predicted float64 // HotTiles-predicted runtime, seconds
	Valid     bool    // false when the size overflows a scratchpad
}

// AutoTileSize implements the free-dimension sizing of §IV: when a tile
// dimension is not pinned by a scratchpad, "the IMH-aware modeling and
// partitioning methodology can be iteratively applied to find the value
// that is predicted to deliver the maximum performance". It evaluates each
// candidate square tile size with the full HotTiles pipeline prediction and
// returns the candidate with the lowest predicted runtime, together with
// the per-candidate sweep. Candidates that overflow a worker's scratchpad
// are marked invalid and skipped (the paper's hard constraint); an error is
// returned only when no candidate is feasible.
func AutoTileSize(m *sparse.COO, a *arch.Arch, candidates []int, opsPerMAC float64) (int, []AutoTileResult, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("hotcore: no tile-size candidates")
	}
	results := make([]AutoTileResult, 0, len(candidates))
	best := -1
	for _, ts := range candidates {
		r := AutoTileResult{TileSize: ts}
		trial := *a
		trial.TileH, trial.TileW = ts, ts
		if ts <= 0 || trial.Validate() != nil {
			results = append(results, r)
			continue
		}
		g, err := tile.Partition(m, ts, ts)
		if err != nil {
			return 0, nil, err
		}
		res, err := partition.HotTiles(g, trial.Config(opsPerMAC))
		if err != nil {
			return 0, nil, err
		}
		r.Valid = true
		r.Predicted = res.Predicted
		if best < 0 || r.Predicted < results[best].Predicted {
			best = len(results)
		}
		results = append(results, r)
	}
	if best < 0 {
		return 0, results, fmt.Errorf("hotcore: no feasible tile size among %v", candidates)
	}
	return results[best].TileSize, results, nil
}

package hotcore

import (
	"testing"

	"repro/internal/arch"
)

func TestAutoTileSizePicksFeasibleBest(t *testing.T) {
	m := testMatrix(t, 31, 1024, 128, 6000, 3000)
	a := arch.SpadeSextans(4)
	best, sweep, err := AutoTileSize(m, &a, []int{64, 128, 256, 512}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	var bestPred float64
	found := false
	for _, r := range sweep {
		if !r.Valid {
			t.Fatalf("size %d unexpectedly invalid", r.TileSize)
		}
		if r.TileSize == best {
			bestPred = r.Predicted
			found = true
		}
	}
	if !found {
		t.Fatal("winner not in sweep")
	}
	for _, r := range sweep {
		if r.Valid && r.Predicted < bestPred {
			t.Fatalf("size %d predicts %.3e < winner's %.3e", r.TileSize, r.Predicted, bestPred)
		}
	}
}

func TestAutoTileSizeSkipsScratchpadOverflow(t *testing.T) {
	m := testMatrix(t, 32, 512, 64, 2000, 1000)
	a := arch.SpadeSextans(4)
	// The Sextans scratchpad (scaled) caps the tile width; 1<<20 overflows.
	best, sweep, err := AutoTileSize(m, &a, []int{1 << 20, 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best != 128 {
		t.Fatalf("best = %d, want 128", best)
	}
	if sweep[0].Valid || !sweep[1].Valid {
		t.Fatalf("validity flags wrong: %+v", sweep)
	}
}

func TestAutoTileSizeErrors(t *testing.T) {
	m := testMatrix(t, 33, 256, 32, 500, 300)
	a := arch.SpadeSextans(4)
	if _, _, err := AutoTileSize(m, &a, nil, 2); err == nil {
		t.Fatal("expected no-candidates error")
	}
	if _, _, err := AutoTileSize(m, &a, []int{1 << 20, -3}, 2); err == nil {
		t.Fatal("expected no-feasible error")
	}
}

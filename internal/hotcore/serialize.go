package hotcore

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// planWire is the gob wire form of a Prep: the paper's workflow stores the
// generated formats once (e.g. during GNN training) and reuses them later
// (inference) without re-running the scan/model/partition pipeline (§VI-B).
// The tiling grid is stored structurally and revalidated on load.
type planWire struct {
	N            int
	TileH, TileW int
	NumTR, NumTC int
	Tiles        []tile.Tile
	PanelStart   []int
	Rows         []int32
	Cols         []int32
	Vals         []float64

	Hot       []bool
	Heuristic partition.Heuristic
	Serial    bool
	Predicted float64
	Totals    partition.Totals

	HotFormat *TiledMatrix
	Cold      *sparse.COO
	ColdCSR   *sparse.CSR
}

// WritePlan serializes a preprocessing plan. Timings are not persisted
// (they describe the machine that ran the pipeline, not the plan).
func WritePlan(w io.Writer, p *Prep) error {
	if p == nil || p.Grid == nil {
		return fmt.Errorf("hotcore: nil plan")
	}
	wire := planWire{
		N:          p.Grid.N,
		TileH:      p.Grid.TileH,
		TileW:      p.Grid.TileW,
		NumTR:      p.Grid.NumTR,
		NumTC:      p.Grid.NumTC,
		Tiles:      p.Grid.Tiles,
		PanelStart: p.Grid.PanelStart,
		Rows:       p.Grid.Rows,
		Cols:       p.Grid.Cols,
		Vals:       p.Grid.Vals,
		Hot:        p.Partition.Hot,
		Heuristic:  p.Partition.Heuristic,
		Serial:     p.Partition.Serial,
		Predicted:  p.Partition.Predicted,
		Totals:     p.Partition.Totals,
		HotFormat:  p.Hot,
		Cold:       p.Cold,
		ColdCSR:    p.ColdCSR,
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// ReadPlan deserializes a plan written by WritePlan and revalidates its
// structural invariants before returning it.
func ReadPlan(r io.Reader) (*Prep, error) {
	var wire planWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("hotcore: decoding plan: %w", err)
	}
	g := &tile.Grid{
		N:          wire.N,
		TileH:      wire.TileH,
		TileW:      wire.TileW,
		NumTR:      wire.NumTR,
		NumTC:      wire.NumTC,
		Tiles:      wire.Tiles,
		PanelStart: wire.PanelStart,
		Rows:       wire.Rows,
		Cols:       wire.Cols,
		Vals:       wire.Vals,
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("hotcore: stored grid invalid: %w", err)
	}
	if len(wire.Hot) != len(g.Tiles) {
		return nil, fmt.Errorf("hotcore: stored assignment length %d, grid has %d tiles",
			len(wire.Hot), len(g.Tiles))
	}
	// A corrupt stream can decode into a missing hot section or one whose
	// private geometry disagrees with the grid; reject both before
	// Validate leans on them.
	if wire.HotFormat == nil {
		return nil, fmt.Errorf("hotcore: stored plan missing hot section")
	}
	if wire.HotFormat.N != g.N || wire.HotFormat.TileH != g.TileH || wire.HotFormat.TileW != g.TileW {
		return nil, fmt.Errorf("hotcore: stored hot section geometry %d/%dx%d disagrees with grid %d/%dx%d",
			wire.HotFormat.N, wire.HotFormat.TileH, wire.HotFormat.TileW, g.N, g.TileH, g.TileW)
	}
	p := &Prep{
		Grid: g,
		Partition: partition.Result{
			Hot:       wire.Hot,
			Heuristic: wire.Heuristic,
			Serial:    wire.Serial,
			Predicted: wire.Predicted,
			Totals:    wire.Totals,
		},
		Hot:     wire.HotFormat,
		Cold:    wire.Cold,
		ColdCSR: wire.ColdCSR,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("hotcore: stored plan invalid: %w", err)
	}
	return p, nil
}

// Package hotcore implements the HotTiles preprocessing pipeline of the
// paper's Figure 7, as run on the host of the heterogeneous architecture:
// (1) scan the matrix into tiles and feed them to the hot and cold
// performance models, (2) partition the tiles with the HotTiles heuristics,
// and (3) generate the sparse-matrix sections in the compression format
// each worker type consumes (tiled formats for the hot streamers, untiled
// row-ordered formats for the cold workers). Stage wall-clock timings are
// recorded for the preprocessing-cost study (Figure 18).
package hotcore

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// TileBlock is one tile of a tiled sparse format: its grid coordinates and
// its nonzeros in (row, col) order with global indices.
type TileBlock struct {
	TR, TC int
	Rows   []int32
	Cols   []int32
	Vals   []float64
}

// TiledMatrix is the hot workers' format: the assigned tiles in panel-major
// order, ready for a Figure 6(b) traversal. When CSR is true each block
// additionally carries a per-panel-row pointer array.
type TiledMatrix struct {
	N            int
	TileH, TileW int
	CSR          bool
	Blocks       []TileBlock
	// RowPtr[b] is the CSR row-pointer array of Blocks[b] over its panel's
	// rows (length panelHeight+1, local row ids); nil for COO.
	RowPtr [][]int64
}

// NNZ reports the tiled format's total nonzeros.
func (t *TiledMatrix) NNZ() int {
	n := 0
	for i := range t.Blocks {
		n += len(t.Blocks[i].Vals)
	}
	return n
}

// Timing is the per-stage preprocessing cost breakdown of Figure 18.
// BaseFormat is the cost any accelerator (homogeneous included) pays to
// convert MatrixMarket input into its operating format; the other stages
// are the HotTiles-specific overhead (scan+model, partitioning, and the
// format for the second worker type).
type Timing struct {
	Scan        time.Duration // tiling + per-tile statistics + model
	Partition   time.Duration // heuristic partitioning
	BaseFormat  time.Duration // format generation for one worker type
	ExtraFormat time.Duration // format generation for the second worker type
}

// Total returns the end-to-end preprocessing time.
func (t Timing) Total() time.Duration {
	return t.Scan + t.Partition + t.BaseFormat + t.ExtraFormat
}

// Overhead returns the HotTiles-specific share of preprocessing (everything
// beyond the single-format cost a homogeneous accelerator already pays).
func (t Timing) Overhead() time.Duration {
	return t.Scan + t.Partition + t.ExtraFormat
}

// Prep is the output of the preprocessing pipeline: the tiling, the
// partitioning decision, the two per-worker-type formats, and stage
// timings.
type Prep struct {
	Grid      *tile.Grid
	Partition partition.Result

	// Hot is the tiled section for the hot workers (nil when no tile is
	// hot); Cold the untiled row-ordered section for the cold workers
	// (empty when everything is hot). ColdCSR is set instead of Cold when
	// the cold worker consumes CSR.
	Hot     *TiledMatrix
	Cold    *sparse.COO
	ColdCSR *sparse.CSR

	Timing Timing
}

// Strategy selects how Preprocess assigns tiles.
type Strategy int

const (
	// StrategyHotTiles runs the full four-heuristic HotTiles method.
	StrategyHotTiles Strategy = iota
	// StrategyIUnaware runs the IMH-unaware baseline of §III-B.
	StrategyIUnaware
	// StrategyHotOnly and StrategyColdOnly are the homogeneous executions.
	StrategyHotOnly
	StrategyColdOnly
)

func (s Strategy) String() string {
	switch s {
	case StrategyHotTiles:
		return "HotTiles"
	case StrategyIUnaware:
		return "IUnaware"
	case StrategyHotOnly:
		return "HotOnly"
	case StrategyColdOnly:
		return "ColdOnly"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the preprocessing pipeline beyond the plain-SpMM
// defaults.
type Options struct {
	Strategy Strategy
	// OpsPerMAC carries the semiring's arithmetic-intensity factor
	// (0 means the plain SpMM value of 2).
	OpsPerMAC float64
	// Kernel selects SpMM (zero value), SpMV or SDDMM (paper §X).
	Kernel model.Kernel
	// Seed feeds IUnaware's random assignment.
	Seed int64
}

// Preprocess runs the Figure 7 pipeline for matrix m on architecture a with
// the given strategy. opsPerMAC carries the semiring's arithmetic-intensity
// factor (2 for plain SpMM). seed feeds IUnaware's random assignment.
func Preprocess(m *sparse.COO, a *arch.Arch, strategy Strategy, opsPerMAC float64, seed int64) (*Prep, error) {
	return PreprocessOpts(m, a, Options{Strategy: strategy, OpsPerMAC: opsPerMAC, Seed: seed})
}

// PreprocessOpts is Preprocess with full kernel control.
func PreprocessOpts(m *sparse.COO, a *arch.Arch, o Options) (*Prep, error) {
	// This is the context-free facade itself: callers who have no ctx land
	// here, and the Background is the documented "no cancellation" root.
	//lint:ignore ctxflow PreprocessOpts is the no-context entry point; everything below threads ctx.
	return PreprocessCtx(context.Background(), m, a, o)
}

// PreprocessCtx is PreprocessOpts with cancellation: ctx is checked at
// every stage boundary (scan, partition, each format generation), so a
// caller-side timeout or a dropped daemon request abandons the pipeline
// between stages rather than running it to completion. Cancellation
// granularity is one stage — an individual stage, once started, runs to
// its end on the par pool.
func PreprocessCtx(ctx context.Context, m *sparse.COO, a *arch.Arch, o Options) (*Prep, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if o.OpsPerMAC == 0 {
		o.OpsPerMAC = 2
	}
	strategy := o.Strategy
	seed := o.Seed
	cfg := a.Config(o.OpsPerMAC)
	cfg.Params.Kernel = o.Kernel
	if o.Kernel == model.KernelSpMV {
		cfg.Params.K = 1
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}

	// The request's logger and span ride ctx (nil-safe no-ops when absent):
	// each stage boundary closes a child span on the caller's span tree and
	// leaves a debug line tagged with the request ID, so a daemon post-
	// mortem attributes preprocessing time stage by stage. Both are gated
	// up front: with no consumer attached (the CLI fast path) the attr
	// arguments are never built, keeping preprocessing allocation-free.
	log := obs.CtxLog(ctx)
	parent := obs.CtxSpan(ctx)
	debug := log.Enabled(obs.LogDebug)

	// Stage 1: matrix scan — tiling and per-tile statistics.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("hotcore: preprocessing canceled: %w", cerr)
	}
	sp := parent.Start("hotcore.scan")
	if sp != nil {
		sp.SetAttr("nnz", strconv.Itoa(m.NNZ()))
	}
	t0 := time.Now()
	g, err := tile.Partition(m, a.TileH, a.TileW)
	sp.End()
	if err != nil {
		return nil, err
	}
	scan := time.Since(t0)
	if debug {
		log.Debug("hotcore.stage",
			obs.Str("stage", "scan"), obs.Int("tiles", len(g.Tiles)), obs.Str("dur", scan.String()))
	}

	// Stage 2: partitioning heuristic.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("hotcore: preprocessing canceled: %w", cerr)
	}
	sp = parent.Start("hotcore.partition")
	t0 = time.Now()
	var res partition.Result
	switch strategy {
	case StrategyHotTiles:
		res, err = partition.HotTiles(g, cfg)
	case StrategyIUnaware:
		res, err = partition.IUnaware(g, cfg, seed)
	case StrategyHotOnly:
		hot := partition.AllHot(g)
		var pred float64
		var tot partition.Totals
		pred, tot, err = partition.Predict(g, &cfg, hot, false)
		res = partition.Result{Hot: hot, Predicted: pred, Totals: tot}
	case StrategyColdOnly:
		cold := partition.AllCold(g)
		var pred float64
		var tot partition.Totals
		pred, tot, err = partition.Predict(g, &cfg, cold, false)
		res = partition.Result{Hot: cold, Predicted: pred, Totals: tot}
	default:
		sp.End()
		return nil, fmt.Errorf("hotcore: unknown strategy %d", int(strategy))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	part := time.Since(t0)
	if debug {
		log.Debug("hotcore.stage",
			obs.Str("stage", "partition"), obs.F64("predicted", res.Predicted), obs.Str("dur", part.String()))
	}

	p := &Prep{Grid: g, Partition: res}
	p.Timing.Scan = scan
	p.Timing.Partition = part

	// Stage 3a: cold (base) format — the untiled row-ordered section.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("hotcore: preprocessing canceled: %w", cerr)
	}
	sp = parent.Start("hotcore.baseformat")
	t0 = time.Now()
	cold := coldSection(g, res.Hot)
	if a.Cold.Format == model.FormatCSR {
		p.ColdCSR = sparse.ToCSR(cold)
	} else {
		p.Cold = cold
	}
	sp.End()
	p.Timing.BaseFormat = time.Since(t0)
	if debug {
		log.Debug("hotcore.stage",
			obs.Str("stage", "baseformat"), obs.Str("dur", p.Timing.BaseFormat.String()))
	}

	// Stage 3b: hot (extra) format — the tiled section.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("hotcore: preprocessing canceled: %w", cerr)
	}
	sp = parent.Start("hotcore.extraformat")
	t0 = time.Now()
	p.Hot = hotSection(g, res.Hot, a.Hot.Format == model.FormatCSR)
	sp.End()
	p.Timing.ExtraFormat = time.Since(t0)
	if debug {
		log.Debug("hotcore.stage",
			obs.Str("stage", "extraformat"), obs.Str("dur", p.Timing.ExtraFormat.String()))
	}

	return p, nil
}

// coldSection gathers the nonzeros of the non-hot tiles into a row-major
// COO (the untiled traversal order of Figure 6(a)).
func coldSection(g *tile.Grid, hot []bool) *sparse.COO {
	m := sparse.NewCOO(g.N, 0)
	for i := range g.Tiles {
		if hot[i] {
			continue
		}
		rows, cols, vals := g.TileNonzeros(i)
		m.Rows = append(m.Rows, rows...)
		m.Cols = append(m.Cols, cols...)
		m.Vals = append(m.Vals, vals...)
	}
	m.SortRowMajor()
	return m
}

// hotSection gathers the hot tiles into the tiled format, panel-major.
func hotSection(g *tile.Grid, hot []bool, csr bool) *TiledMatrix {
	t := &TiledMatrix{N: g.N, TileH: g.TileH, TileW: g.TileW, CSR: csr}
	for i := range g.Tiles {
		if !hot[i] {
			continue
		}
		tl := &g.Tiles[i]
		rows, cols, vals := g.TileNonzeros(i)
		b := TileBlock{
			TR:   tl.TR,
			TC:   tl.TC,
			Rows: append([]int32(nil), rows...),
			Cols: append([]int32(nil), cols...),
			Vals: append([]float64(nil), vals...),
		}
		t.Blocks = append(t.Blocks, b)
		if csr {
			lo, hi := g.PanelRows(tl.TR)
			ptr := make([]int64, hi-lo+1)
			for _, r := range rows {
				ptr[int(r)-lo+1]++
			}
			for j := 0; j < len(ptr)-1; j++ {
				ptr[j+1] += ptr[j]
			}
			t.RowPtr = append(t.RowPtr, ptr)
		} else {
			t.RowPtr = append(t.RowPtr, nil)
		}
	}
	return t
}

// Validate checks that the preprocessing output partitions the matrix: the
// hot and cold sections together hold exactly the grid's nonzeros. It must
// never panic, whatever the field values — ReadPlan runs it on
// gob-decoded data from disk, where truncation or bit rot can produce a
// structurally arbitrary Prep (nil hot section, ragged block slices,
// zero tile geometry), so every invariant is checked before it is relied
// on for indexing or division.
func (p *Prep) Validate() error {
	if p.Hot == nil {
		return fmt.Errorf("hotcore: plan missing hot section")
	}
	if len(p.Hot.Blocks) > 0 && (p.Hot.TileH <= 0 || p.Hot.TileW <= 0) {
		return fmt.Errorf("hotcore: hot section tile geometry %dx%d invalid",
			p.Hot.TileH, p.Hot.TileW)
	}
	if len(p.Hot.RowPtr) != len(p.Hot.Blocks) {
		return fmt.Errorf("hotcore: hot section has %d row-pointer arrays for %d blocks",
			len(p.Hot.RowPtr), len(p.Hot.Blocks))
	}
	coldNNZ := 0
	switch {
	case p.Cold != nil:
		if err := p.Cold.Validate(); err != nil {
			return fmt.Errorf("hotcore: cold section: %w", err)
		}
		coldNNZ = p.Cold.NNZ()
	case p.ColdCSR != nil:
		if err := p.ColdCSR.Validate(); err != nil {
			return fmt.Errorf("hotcore: cold CSR section: %w", err)
		}
		coldNNZ = p.ColdCSR.NNZ()
	}
	if got := coldNNZ + p.Hot.NNZ(); got != p.Grid.NNZ() {
		return fmt.Errorf("hotcore: sections hold %d nonzeros, grid has %d", got, p.Grid.NNZ())
	}
	for b := range p.Hot.Blocks {
		blk := &p.Hot.Blocks[b]
		if len(blk.Cols) != len(blk.Rows) || len(blk.Vals) != len(blk.Rows) {
			return fmt.Errorf("hotcore: hot block %d ragged: rows=%d cols=%d vals=%d",
				b, len(blk.Rows), len(blk.Cols), len(blk.Vals))
		}
		if p.Hot.CSR {
			ptr := p.Hot.RowPtr[b]
			if len(ptr) == 0 || ptr[len(ptr)-1] != int64(len(blk.Vals)) {
				return fmt.Errorf("hotcore: hot block %d CSR pointers inconsistent", b)
			}
		}
		for i, r := range blk.Rows {
			if int(r)/p.Hot.TileH != blk.TR || int(blk.Cols[i])/p.Hot.TileW != blk.TC {
				return fmt.Errorf("hotcore: hot block %d nonzero %d outside tile", b, i)
			}
		}
	}
	return nil
}

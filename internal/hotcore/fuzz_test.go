package hotcore

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/arch"
)

// planBytes serializes a small valid plan; csr selects the PIUMA-style
// architecture whose cold section is CSR (exercising the second wire shape).
func planBytes(tb testing.TB, csr bool) []byte {
	tb.Helper()
	m := testMatrix(tb, 61, 256, 32, 900, 400)
	var a arch.Arch
	if csr {
		a = arch.PIUMA()
		a.TileH, a.TileW = 64, 64
	} else {
		a = smallArch()
	}
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadPlan feeds arbitrary byte streams to the plan deserializer — the
// bytes the daemon reads back from its content-addressed cache on disk.
// ReadPlan must reject corruption with a clean error, never panic, and any
// stream it accepts must re-serialize.
func FuzzReadPlan(f *testing.F) {
	coo := planBytes(f, false)
	csr := planBytes(f, true)
	f.Add(coo)
	f.Add(csr)
	f.Add(coo[:len(coo)/2])
	f.Add([]byte("not a gob stream"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WritePlan(&buf, p); err != nil {
			t.Fatalf("accepted plan does not re-serialize: %v", err)
		}
		if _, err := ReadPlan(&buf); err != nil {
			t.Fatalf("accepted plan does not re-read: %v", err)
		}
	})
}

// TestReadPlanTruncated walks prefixes of a valid plan stream: every strict
// truncation must come back as an error, not a panic and not a silently
// shorter plan.
func TestReadPlanTruncated(t *testing.T) {
	for _, csr := range []bool{false, true} {
		data := planBytes(t, csr)
		step := len(data) / 97
		if step < 1 {
			step = 1
		}
		for cut := 0; cut < len(data); cut += step {
			if _, err := ReadPlan(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("csr=%v: truncation at %d/%d accepted", csr, cut, len(data))
			}
		}
	}
}

// TestReadPlanBitFlips flips single bits across a valid plan stream and
// requires ReadPlan to survive each corruption: either a clean rejection or
// a plan that still satisfies Validate (a flip inside a float payload can
// be semantically invisible). The pre-fix code panicked on several of
// these shapes (nil hot section, ragged blocks, zero tile geometry).
func TestReadPlanBitFlips(t *testing.T) {
	for _, csr := range []bool{false, true} {
		data := planBytes(t, csr)
		step := len(data) / 512
		if step < 1 {
			step = 1
		}
		for pos := 0; pos < len(data); pos += step {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << (pos % 8)
			p, err := ReadPlan(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("csr=%v: flip at byte %d accepted an invalid plan: %v", csr, pos, err)
			}
		}
	}
}

// encodeWire gob-encodes a hand-built wire record, bypassing WritePlan's
// guards — the shape a corrupted or hostile cache file can take.
func encodeWire(t *testing.T, w *planWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validWire decodes a valid plan stream back into its wire form so tests
// can corrupt individual fields.
func validWire(t *testing.T, csr bool) *planWire {
	t.Helper()
	var w planWire
	if err := gob.NewDecoder(bytes.NewReader(planBytes(t, csr))).Decode(&w); err != nil {
		t.Fatal(err)
	}
	return &w
}

// TestReadPlanAdversarialWire is the regression test for the
// deserialization panics: each case decoded fine pre-fix and then crashed
// ReadPlan's validation (nil-pointer dereference, out-of-range index, or
// integer division by zero). All must now come back as clean errors.
func TestReadPlanAdversarialWire(t *testing.T) {
	cases := map[string]func(w *planWire){
		"nil hot section": func(w *planWire) {
			w.HotFormat = nil
		},
		"row pointers missing": func(w *planWire) {
			w.HotFormat.RowPtr = nil
		},
		"ragged block columns": func(w *planWire) {
			w.HotFormat.Blocks[0].Cols = w.HotFormat.Blocks[0].Cols[:0]
		},
		"zero tile geometry": func(w *planWire) {
			w.TileH, w.TileW = 0, 0
			w.HotFormat.TileH, w.HotFormat.TileW = 0, 0
		},
		"hot geometry disagrees with grid": func(w *planWire) {
			w.HotFormat.TileH = w.TileH + 1
		},
	}
	for name, corrupt := range cases {
		for _, csr := range []bool{false, true} {
			w := validWire(t, csr)
			if len(w.HotFormat.Blocks) == 0 {
				t.Fatalf("csr=%v: test plan has no hot blocks; corruption would be vacuous", csr)
			}
			corrupt(w)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s (csr=%v): ReadPlan panicked: %v", name, csr, r)
					}
				}()
				if _, err := ReadPlan(bytes.NewReader(encodeWire(t, w))); err == nil {
					t.Errorf("%s (csr=%v): corrupt wire accepted", name, csr)
				}
			}()
		}
	}
}

// TestReadPlanNonMonotoneColdCSR pins the CSR hardening: a cold section
// whose row pointers are locally increasing but globally non-monotone used
// to index past the column slice inside CSR.Validate.
func TestReadPlanNonMonotoneColdCSR(t *testing.T) {
	w := validWire(t, true)
	if w.ColdCSR == nil || w.ColdCSR.N < 2 || w.ColdCSR.NNZ() < 2 {
		t.Fatal("test plan has no usable cold CSR section")
	}
	// [0, ..., nnz] → [0, nnz+big, ..., nnz]: row 0 now spans past Cols.
	w.ColdCSR.RowPtr[1] = int64(w.ColdCSR.NNZ() + 1000)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadPlan panicked on non-monotone cold CSR: %v", r)
			}
		}()
		if _, err := ReadPlan(bytes.NewReader(encodeWire(t, w))); err == nil {
			t.Fatal("non-monotone cold CSR accepted")
		}
	}()
}

package hotcore

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/sparse"
)

func testMatrix(t testing.TB, seed int64, n, blockN, blockNNZ, bgNNZ int) *sparse.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.NewCOO(n, blockNNZ+bgNNZ)
	for i := 0; i < blockNNZ; i++ {
		m.Append(int32(rng.Intn(blockN)), int32(rng.Intn(blockN)), rng.Float64()+0.5)
	}
	for i := 0; i < bgNNZ; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64()+0.5)
	}
	m.SortRowMajor()
	m.DedupSum()
	return m
}

// smallArch returns a SPADE-Sextans-like architecture with a tile size that
// suits the small test matrices.
func smallArch() arch.Arch {
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = 64, 64
	return a
}

func TestPreprocessHotTilesPartitionsMatrix(t *testing.T) {
	m := testMatrix(t, 1, 512, 64, 3000, 1500)
	a := smallArch()
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Hot.NNZ() == 0 {
		t.Fatal("expected some hot tiles for a matrix with a dense block")
	}
	if p.Cold == nil || p.Cold.NNZ() == 0 {
		t.Fatal("expected some cold nonzeros")
	}
	if p.Cold.NNZ()+p.Hot.NNZ() != m.NNZ() {
		t.Fatal("sections do not partition the matrix")
	}
	// SPADE-Sextans consumes COO on both sides.
	if p.ColdCSR != nil || p.Hot.CSR {
		t.Fatal("wrong formats for SPADE-Sextans")
	}
}

func TestPreprocessPIUMACSRFormats(t *testing.T) {
	m := testMatrix(t, 2, 512, 64, 3000, 1500)
	a := arch.PIUMA()
	a.TileH, a.TileW = 64, 64
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ColdCSR == nil || p.Cold != nil {
		t.Fatal("PIUMA cold section must be CSR")
	}
	if !p.Hot.CSR {
		t.Fatal("PIUMA hot section must be tiled CSR")
	}
	for b, ptr := range p.Hot.RowPtr {
		if len(ptr) != 64+1 && p.Hot.Blocks[b].TR != p.Grid.NumTR-1 {
			t.Fatalf("block %d row pointer length %d", b, len(ptr))
		}
	}
}

func TestPreprocessStrategies(t *testing.T) {
	m := testMatrix(t, 3, 256, 32, 1000, 800)
	a := smallArch()
	for _, s := range []Strategy{StrategyHotTiles, StrategyIUnaware, StrategyHotOnly, StrategyColdOnly} {
		p, err := Preprocess(m, &a, s, 2, 11)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		switch s {
		case StrategyHotOnly:
			if p.Cold.NNZ() != 0 {
				t.Fatalf("HotOnly left %d cold nonzeros", p.Cold.NNZ())
			}
		case StrategyColdOnly:
			if p.Hot.NNZ() != 0 {
				t.Fatalf("ColdOnly assigned %d hot nonzeros", p.Hot.NNZ())
			}
		}
		if p.Partition.Predicted <= 0 {
			t.Fatalf("%v: non-positive prediction", s)
		}
	}
	if _, err := Preprocess(m, &a, Strategy(42), 2, 0); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategyHotTiles: "HotTiles", StrategyIUnaware: "IUnaware",
		StrategyHotOnly: "HotOnly", StrategyColdOnly: "ColdOnly",
	}
	for s, w := range names {
		if s.String() != w {
			t.Errorf("%d: %s", int(s), s.String())
		}
	}
	if Strategy(9).String() == "" {
		t.Error("fallback empty")
	}
}

func TestPreprocessValidation(t *testing.T) {
	a := smallArch()
	bad := sparse.NewCOO(4, 1)
	bad.Append(9, 0, 1) // out of range
	if _, err := Preprocess(bad, &a, StrategyHotTiles, 2, 0); err == nil {
		t.Fatal("expected matrix validation error")
	}
	m := testMatrix(t, 4, 128, 16, 200, 100)
	badArch := smallArch()
	badArch.BWBytes = 0
	if _, err := Preprocess(m, &badArch, StrategyHotTiles, 2, 0); err == nil {
		t.Fatal("expected arch validation error")
	}
}

func TestTimingBreakdown(t *testing.T) {
	m := testMatrix(t, 5, 512, 64, 4000, 2000)
	a := smallArch()
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tm := p.Timing
	if tm.Total() <= 0 {
		t.Fatal("no preprocessing time recorded")
	}
	if tm.Total() != tm.Scan+tm.Partition+tm.BaseFormat+tm.ExtraFormat {
		t.Fatal("Total() is not the sum of stages")
	}
	if tm.Overhead() != tm.Scan+tm.Partition+tm.ExtraFormat {
		t.Fatal("Overhead() wrong")
	}
}

// TestFunctionalEquivalence is the pipeline's core integration invariant:
// executing the hot section (tiled traversal) plus the cold section
// (untiled traversal) and merging the two private output buffers must
// reproduce the reference SpMM exactly up to summation order.
func TestFunctionalEquivalence(t *testing.T) {
	m := testMatrix(t, 6, 512, 64, 3000, 1500)
	a := smallArch()
	p, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	din := dense.NewRandom(rng, m.N, a.K)

	// Reference.
	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		t.Fatal(err)
	}

	// Cold buffer: untiled row-ordered execution.
	coldBuf := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(p.Cold, din, coldBuf); err != nil {
		t.Fatal(err)
	}

	// Hot buffer: tiled traversal over the hot blocks.
	hotBuf := dense.NewMatrix(m.N, a.K)
	for _, b := range p.Hot.Blocks {
		for i := range b.Vals {
			r, c, v := b.Rows[i], b.Cols[i], b.Vals[i]
			in := din.Row(int(c))
			out := hotBuf.Row(int(r))
			for j := range out {
				out[j] += v * in[j]
			}
		}
	}

	// Merger module.
	if err := dense.Merge(coldBuf, hotBuf); err != nil {
		t.Fatal(err)
	}
	if !coldBuf.AlmostEqual(want, 1e-9) {
		d, _ := coldBuf.MaxAbsDiff(want)
		t.Fatalf("partitioned execution differs from reference by %g", d)
	}
}

package hotcore

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

func TestPreprocessOptsSpMV(t *testing.T) {
	m := testMatrix(t, 41, 512, 64, 3000, 1500)
	a := smallArch()
	p, err := PreprocessOpts(m, &a, Options{
		Strategy: StrategyHotTiles,
		Kernel:   model.KernelSpMV,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// SpMV (K=1) moves far less dense traffic, so the predicted runtime
	// must be well below the SpMM plan's for the same matrix.
	spmm, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partition.Predicted >= spmm.Partition.Predicted {
		t.Fatalf("SpMV predicted %.3e not below SpMM %.3e",
			p.Partition.Predicted, spmm.Partition.Predicted)
	}
}

func TestPreprocessOptsSDDMM(t *testing.T) {
	m := testMatrix(t, 42, 512, 64, 3000, 1500)
	a := smallArch()
	p, err := PreprocessOpts(m, &a, Options{
		Strategy: StrategyHotTiles,
		Kernel:   model.KernelSDDMM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Partition.Predicted <= 0 {
		t.Fatal("no prediction")
	}
}

func TestPreprocessOptsDefaultsOpsPerMAC(t *testing.T) {
	m := testMatrix(t, 43, 256, 32, 800, 400)
	a := smallArch()
	viaOpts, err := PreprocessOpts(m, &a, Options{Strategy: StrategyHotTiles})
	if err != nil {
		t.Fatal(err)
	}
	viaShorthand, err := Preprocess(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaOpts.Partition.Predicted != viaShorthand.Partition.Predicted {
		t.Fatal("OpsPerMAC default differs from the SpMM shorthand")
	}
}

func TestPreprocessOptsRejectsBadKernel(t *testing.T) {
	m := testMatrix(t, 44, 256, 32, 800, 400)
	a := smallArch()
	if _, err := PreprocessOpts(m, &a, Options{Strategy: StrategyHotTiles, Kernel: model.Kernel(42)}); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestPreprocessOptsPIUMAKernels(t *testing.T) {
	m := testMatrix(t, 45, 512, 64, 3000, 1500)
	a := arch.PIUMA()
	a.TileH, a.TileW = 64, 64
	for _, k := range []model.Kernel{model.KernelSpMM, model.KernelSpMV, model.KernelSDDMM} {
		p, err := PreprocessOpts(m, &a, Options{Strategy: StrategyHotTiles, Kernel: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/hotcore"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// gnnLayers is the forward-pass depth of the GNN study — deep enough that
// the one-plan amortization is visible, shallow enough to stay cheap.
const gnnLayers = 4

// GNNRow is one matrix's multi-layer forward pass under both strategies.
type GNNRow struct {
	Short string
	// LayerMS is the per-layer simulated time under HotTiles (identical
	// across layers — the plan is built once and the timing model is
	// value-independent, so one number tells the whole story).
	LayerMS float64
	// HotTilesMS and IUnawareMS are the totals across all layers.
	HotTilesMS, IUnawareMS float64
	// Speedup is IUnaware/HotTiles.
	Speedup float64
	// FunctionalOK reports that the chained simulated output matches the
	// reference SpMM chained by hand (printed as ok/FAIL, never a float:
	// golden files must not depend on platform rounding).
	FunctionalOK bool
}

// GNNStudy is the multi-layer GNN inference experiment: the §VI-B
// train-once/infer-many workload, executed rather than gestured at.
type GNNStudy struct {
	Rows    []GNNRow
	Geomean float64
}

// gnnSuite picks three suite matrices spanning the IMH spectrum.
func gnnSuite() []string { return []string{"ski", "pok", "wik"} }

// GNN runs the multi-layer GNN study on SPADE-Sextans (scale 4), one
// concurrent job per matrix. ctx bounds every preprocessing call the study
// issues.
func (e *Env) GNN(ctx context.Context) (*GNNStudy, error) {
	shorts := gnnSuite()
	rows := make([]GNNRow, len(shorts))
	if err := par.ForEachErr(len(shorts), func(i int) error {
		b, ok := gen.ByShort(shorts[i])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", shorts[i])
		}
		a := arch.SpadeSextans(4)
		a.TileH, a.TileW = e.TileSize(), e.TileSize()
		m := e.Matrix(b)
		features := dense.NewRandom(rand.New(rand.NewSource(e.Seed)), m.N, a.K)

		ht, err := workload.GNN(ctx, m, &a, features, workload.GNNConfig{
			Layers: gnnLayers, Seed: e.Seed, Label: "gnn/" + b.Short, Timeline: e.timeline,
		})
		if err != nil {
			return err
		}
		iu, err := workload.GNN(ctx, m, &a, nil, workload.GNNConfig{
			Layers: gnnLayers, Strategy: hotcore.StrategyIUnaware, Seed: e.Seed,
			SkipFunctional: true,
		})
		if err != nil {
			return err
		}

		// Verify the chained numerics against the reference, by hand.
		want := features.Clone()
		for layer := 0; layer < gnnLayers; layer++ {
			next := dense.NewMatrix(m.N, a.K)
			if serr := dense.SpMM(m, want, next); serr != nil {
				return serr
			}
			if layer < gnnLayers-1 {
				for j, v := range next.Data {
					if v < 0 {
						next.Data[j] = 0
					}
				}
			}
			want = next
		}
		// Relative comparison: four unnormalized layers grow the values by
		// orders of magnitude, so an absolute tolerance would be meaningless.
		diff, err := ht.Output.MaxAbsDiff(want)
		if err != nil {
			return err
		}
		maxAbs := 1.0
		for _, v := range want.Data {
			if v > maxAbs {
				maxAbs = v
			} else if -v > maxAbs {
				maxAbs = -v
			}
		}
		rows[i] = GNNRow{
			Short:        b.Short,
			LayerMS:      ht.LayerTimes[0] * 1e3,
			HotTilesMS:   ht.SimTotal * 1e3,
			IUnawareMS:   iu.SimTotal * 1e3,
			Speedup:      iu.SimTotal / ht.SimTotal,
			FunctionalOK: diff <= 1e-9*maxAbs,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	st := &GNNStudy{Rows: rows}
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.Speedup)
	}
	st.Geomean = geomean(sp)
	return st, nil
}

// Render prints the GNN study.
func (g *GNNStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "GNN inference, %d layers (SPADE-Sextans 4-4) — one plan amortized across layers\n", gnnLayers)
	fmt.Fprintf(w, "%-8s%12s%16s%16s%10s%8s\n",
		"matrix", "layer ms", "HotTiles ms", "IUnaware ms", "speedup", "chain")
	for _, r := range g.Rows {
		chain := "ok"
		if !r.FunctionalOK {
			chain = "FAIL"
		}
		fmt.Fprintf(w, "%-8s%12.4f%16.4f%16.4f%10.2f%8s\n",
			r.Short, r.LayerMS, r.HotTilesMS, r.IUnawareMS, r.Speedup, chain)
	}
	fmt.Fprintf(w, "geomean speedup over IUnaware: %.2fx\n", g.Geomean)
}

// Evolve-study shape: one edit stream, a descending threshold ladder, and a
// re-plan cost charged in units of simulated inference time so the combined
// cost column is deterministic (no wall clock in golden files).
const (
	evolveShort   = "pok" // social network: churn-heavy in the wild
	evolveBatches = 6
	// replanCostX prices one re-plan at this many inferences — the order of
	// magnitude Figure 18 measures for preprocessing vs one SpMM.
	replanCostX = 20
)

// EvolveRow is one threshold's outcome on the shared edit stream.
type EvolveRow struct {
	// Threshold < 0 renders as "never", 0 as "always".
	Threshold float64
	Replans   int
	// SimMS is the summed inference time; CombinedMS adds the priced
	// re-plans; MaxDrift is the largest staleness the trigger saw.
	SimMS, CombinedMS, MaxDrift float64
}

// EvolveStudy is the staleness-vs-re-plan-cost sweep.
type EvolveStudy struct {
	Short                  string
	InsertsPer, DeletesPer int
	// BaselineMS is one inference on the initial plan — the unit the
	// re-plan cost is priced in.
	BaselineMS float64
	Rows       []EvolveRow
	// Best is the threshold with the lowest combined cost.
	Best EvolveRow
}

// evolveThresholds is the descending ladder: never, looser to tighter, always.
func evolveThresholds() []float64 { return []float64{-1, 0.5, 0.2, 0.1, 0.05, 0.02, 0} }

// Evolve runs the evolving-graph study: one preferential-attachment edit
// stream against the pok matrix, swept over the re-plan threshold ladder,
// one concurrent job per threshold. ctx bounds the baseline preprocessing
// and every per-threshold run.
func (e *Env) Evolve(ctx context.Context) (*EvolveStudy, error) {
	b, ok := gen.ByShort(evolveShort)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", evolveShort)
	}
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	m := e.Matrix(b)

	// Batches sized relative to the matrix so the study sweeps the same
	// relative churn at every scale.
	insertsPer, deletesPer := m.NNZ()/5, m.NNZ()/20
	batches, err := workload.EditStream(e.Seed, m, evolveBatches, insertsPer, deletesPer)
	if err != nil {
		return nil, err
	}

	// Baseline: one inference on the initial plan, pricing the re-plan.
	plan, err := hotcore.PreprocessCtx(ctx, m, &a, hotcore.Options{
		OpsPerMAC: 2, Seed: e.Seed,
	})
	if err != nil {
		return nil, err
	}
	sr := semiring.PlusTimes()
	base, err := sim.Run(plan.Grid, plan.Partition.Hot, &a, nil, sim.Options{
		Serial: plan.Partition.Serial, Semiring: &sr, SkipFunctional: true,
	})
	if err != nil {
		return nil, err
	}
	replanCost := replanCostX * base.Time

	ths := evolveThresholds()
	rows := make([]EvolveRow, len(ths))
	if err := par.ForEachErr(len(ths), func(i int) error {
		res, err := workload.Evolve(ctx, m, &a, batches, workload.EvolveConfig{
			Threshold: ths[i], Seed: e.Seed, SkipFunctional: true,
			Label: fmt.Sprintf("evolve/th%g", ths[i]), Timeline: e.timeline,
		})
		if err != nil {
			return err
		}
		row := EvolveRow{Threshold: ths[i], Replans: res.Replans, SimMS: res.SimTotal * 1e3}
		for _, st := range res.Steps {
			if st.Drift > row.MaxDrift {
				row.MaxDrift = st.Drift
			}
		}
		row.CombinedMS = row.SimMS + float64(res.Replans)*replanCost*1e3
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}

	st := &EvolveStudy{
		Short: evolveShort, InsertsPer: insertsPer, DeletesPer: deletesPer,
		BaselineMS: base.Time * 1e3, Rows: rows, Best: rows[0],
	}
	for _, r := range rows[1:] {
		if r.CombinedMS < st.Best.CombinedMS {
			st.Best = r
		}
	}
	return st, nil
}

// thresholdLabel renders the ladder's spelling of a threshold.
func thresholdLabel(th float64) string {
	switch {
	case th < 0:
		return "never"
	case th == 0:
		return "always"
	default:
		return fmt.Sprintf("%.2f", th)
	}
}

// Render prints the evolve study.
func (s *EvolveStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Evolving graph (%s, SPADE-Sextans 4-4) — staleness vs re-plan cost\n", s.Short)
	fmt.Fprintf(w, "%d batches of +%d/-%d edges; a re-plan costs %dx one inference (%.4f ms)\n",
		evolveBatches, s.InsertsPer, s.DeletesPer, replanCostX, s.BaselineMS)
	fmt.Fprintf(w, "%-10s%9s%14s%12s%14s\n", "threshold", "replans", "sim ms", "max drift", "combined ms")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10s%9d%14.4f%12.4f%14.4f\n",
			thresholdLabel(r.Threshold), r.Replans, r.SimMS, r.MaxDrift, r.CombinedMS)
	}
	fmt.Fprintf(w, "best combined cost at threshold %s (%.4f ms)\n",
		thresholdLabel(s.Best.Threshold), s.Best.CombinedMS)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/semiring"
	"repro/internal/sim"
)

// KernelsRow is one matrix's HotTiles outcome for the three kernels.
type KernelsRow struct {
	Short string
	// Times (seconds) and hot-nonzero fractions per kernel.
	SpMM, SpMV, SDDMM             float64
	FracSpMM, FracSpMV, FracSDDMM float64
}

// KernelsStudy extends the paper's evaluation to the kernels §X names as
// direct applications of HotTiles: SpMV (K = 1) and SDDMM (sparse output).
type KernelsStudy struct {
	Rows []KernelsRow
	// AvgSDDMMOverSpMM is the geomean SDDMM/SpMM runtime ratio (< 1: the
	// sparse output makes SDDMM cheaper at equal K).
	AvgSDDMMOverSpMM float64
}

// Kernels runs the kernel study on SPADE-Sextans (scale 4), one concurrent
// job per benchmark. The non-SpMM kernels deliberately bypass the Env's
// estimates cache (its keys do not carry the kernel) and partition directly.
func (e *Env) Kernels() (*KernelsStudy, error) {
	base := arch.SpadeSextans(4)
	base.TileH, base.TileW = e.TileSize(), e.TileSize()
	suite := gen.Benchmarks()
	rows := make([]KernelsRow, len(suite))
	if err := par.ForEachErr(len(suite), func(i int) error {
		b := suite[i]
		g, err := e.Grid(b, base.TileH)
		if err != nil {
			return err
		}
		row := KernelsRow{Short: b.Short}
		for _, k := range []model.Kernel{model.KernelSpMM, model.KernelSpMV, model.KernelSDDMM} {
			a := base
			cfg := a.Config(2)
			cfg.Params.Kernel = k
			if k == model.KernelSpMV {
				cfg.Params.K = 1
				a.K = 1
			}
			res, err := partition.HotTiles(g, cfg)
			if err != nil {
				return err
			}
			sr := semiring.PlusTimes()
			r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{
				Serial: res.Serial, Kernel: k, Semiring: &sr, SkipFunctional: true,
			})
			if err != nil {
				return err
			}
			_, frac := res.HotNNZ(g)
			switch k {
			case model.KernelSpMM:
				row.SpMM, row.FracSpMM = r.Time, frac
			case model.KernelSpMV:
				row.SpMV, row.FracSpMV = r.Time, frac
			case model.KernelSDDMM:
				row.SDDMM, row.FracSDDMM = r.Time, frac
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	out := &KernelsStudy{Rows: rows}
	var ratios []float64
	for _, row := range rows {
		ratios = append(ratios, row.SDDMM/row.SpMM)
	}
	out.AvgSDDMMOverSpMM = geomean(ratios)
	return out, nil
}

// Render prints the kernel study.
func (k *KernelsStudy) Render(w io.Writer) {
	fmt.Fprintln(w, "HotTiles across kernels (SPADE-Sextans 4-4) — runtime ms / hot nnz %")
	fmt.Fprintf(w, "%-8s%18s%18s%18s\n", "matrix", "SpMM", "SpMV (K=1)", "SDDMM")
	for _, r := range k.Rows {
		fmt.Fprintf(w, "%-8s%12.4f/%3.0f%%%12.4f/%3.0f%%%12.4f/%3.0f%%\n",
			r.Short, r.SpMM*1e3, r.FracSpMM*100,
			r.SpMV*1e3, r.FracSpMV*100,
			r.SDDMM*1e3, r.FracSDDMM*100)
	}
	fmt.Fprintf(w, "SDDMM runs at %.2fx of SpMM's time on average (sparse output)\n",
		k.AvgSDDMMOverSpMM)
}

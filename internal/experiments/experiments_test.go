package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
)

// testEnv runs at a very coarse scale so the full suite stays fast; the
// structural properties asserted here are scale-independent.
func testEnv() *Env { return NewEnv(512, 1) }

func TestFig4(t *testing.T) {
	e := testEnv()
	studies, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 {
		t.Fatalf("%d studies, want 2 (SPADE-Sextans, PIUMA)", len(studies))
	}
	for _, st := range studies {
		if len(st.Rows) != 10 {
			t.Fatalf("%s: %d rows", st.ArchName, len(st.Rows))
		}
		for _, r := range st.Rows {
			// Speedups are relative to the worst homogeneous execution, so
			// the worst homogeneous bar is exactly 1.
			worst := r.Speedups[StratHotOnly]
			if r.Speedups[StratColdOnly] < worst {
				worst = r.Speedups[StratColdOnly]
			}
			if worst != 1 {
				t.Errorf("%s/%s: worst homogeneous speedup %.3f != 1", st.ArchName, r.Short, worst)
			}
			// IUnaware always helps against the worst homogeneous (§III-B).
			if r.Speedups[StratIUnaware] < 0.9 {
				t.Errorf("%s/%s: IUnaware speedup %.2f < 0.9", st.ArchName, r.Short, r.Speedups[StratIUnaware])
			}
		}
	}
	var buf bytes.Buffer
	studies[0].Render(&buf)
	if !strings.Contains(buf.String(), "speedup over worst homogeneous") {
		t.Error("render missing header")
	}
}

func TestFig5(t *testing.T) {
	e := testEnv()
	f, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTR <= 0 || f.NumTC <= 0 {
		t.Fatal("empty grid")
	}
	if len(f.HotHotTiles) == 0 {
		t.Fatal("HotTiles assigned nothing hot on the community matrix")
	}
	if f.HotNNZFracHotTiles <= 0 || f.HotNNZFracHotTiles > 1 {
		t.Fatalf("HotTiles hot-nnz fraction %g", f.HotNNZFracHotTiles)
	}
	// The paper's observation: HotTiles concentrates hot tiles on the dense
	// communities, so its hot share of nonzeros exceeds its hot share of
	// tiles; IUnaware's random pick cannot do that systematically.
	tileFrac := float64(len(f.HotHotTiles)) / float64(f.NumTR*f.NumTC)
	if f.HotNNZFracHotTiles <= tileFrac {
		t.Errorf("HotTiles hot nnz frac %.2f not above its tile frac %.2f",
			f.HotNNZFracHotTiles, tileFrac)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Error("render has no hot tiles")
	}
}

func TestFig10AndTableVIConsistent(t *testing.T) {
	e := testEnv()
	st, err := e.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 10 || len(tab.Rows) != 10 {
		t.Fatal("row counts wrong")
	}
	for i, r := range tab.Rows {
		if r.Short != st.Rows[i].Short {
			t.Fatal("matrix order differs")
		}
		// The table's ms and the study's seconds describe the same runs.
		if diff := r.HotTiles/1e3 - st.Rows[i].Times[StratHotTiles]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: table %.6f ms vs study %.6f ms", r.Short, r.HotTiles, st.Rows[i].Times[StratHotTiles]*1e3)
		}
		if r.BestHom > r.HotOnly || r.BestHom > r.ColdOnly {
			t.Errorf("%s: BestHom %.3f not the min", r.Short, r.BestHom)
		}
	}
	// Headline result: HotTiles helps on average against every baseline.
	for _, base := range []string{StratHotOnly, StratColdOnly, StratIUnaware} {
		if st.AvgSpeedupOver[base] < 1 {
			t.Errorf("HotTiles average speedup vs %s = %.2f < 1", base, st.AvgSpeedupOver[base])
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "Runtime in ms") {
		t.Error("table render broken")
	}
}

func TestFig11PIUMA(t *testing.T) {
	e := testEnv()
	st, err := e.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if st.ArchName != "PIUMA" || len(st.Rows) != 10 {
		t.Fatalf("study %s with %d rows", st.ArchName, len(st.Rows))
	}
	if st.AvgSpeedupOver[StratIUnaware] < 1 {
		t.Errorf("HotTiles vs IUnaware on PIUMA = %.2f < 1", st.AvgSpeedupOver[StratIUnaware])
	}
}

func TestFig12(t *testing.T) {
	e := testEnv()
	f, err := e.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("%d scales, want 4", len(f.Rows))
	}
	for _, r := range f.Rows {
		// HotTiles picks per matrix by *predicted* runtime, so its average
		// tracks the best single heuristic closely but — unlike in the
		// paper — can dip slightly below it when the model mispredicts
		// under heavy bandwidth pressure.
		best := 0.0
		for name, s := range r.SpeedupVsBestHom {
			if name != StratHotTiles && s > best {
				best = s
			}
		}
		if r.SpeedupVsBestHom[StratHotTiles] < 0.85*best {
			t.Errorf("scale %d: HotTiles %.3f far below best heuristic %.3f",
				r.Scale, r.SpeedupVsBestHom[StratHotTiles], best)
		}
		if r.AvgHomBandwidthGBs <= 0 {
			t.Errorf("scale %d: no bandwidth stat", r.Scale)
		}
	}
	// Paper trends across scales: at small scales (low bandwidth pressure)
	// MinTime Parallel is the strongest heuristic; at the largest scale the
	// Serial heuristics overtake the Parallel ones by avoiding the merge.
	small, large := f.Rows[0].SpeedupVsBestHom, f.Rows[3].SpeedupVsBestHom
	if small["MinTime Parallel"] < small["MinTime Serial"] ||
		small["MinTime Parallel"] < small["MinByte Serial"] {
		t.Error("scale 1: MinTime Parallel should lead the serial heuristics")
	}
	bestSerial := large["MinTime Serial"]
	if large["MinByte Serial"] > bestSerial {
		bestSerial = large["MinByte Serial"]
	}
	if bestSerial < large["MinTime Parallel"] {
		t.Error("scale 8: a Serial heuristic should overtake MinTime Parallel")
	}
	// Bandwidth pressure grows with system scale (the paper's annotation).
	if f.Rows[3].AvgHomBandwidthGBs <= f.Rows[0].AvgHomBandwidthGBs {
		t.Errorf("bandwidth util should grow with scale: %.1f vs %.1f",
			f.Rows[0].AvgHomBandwidthGBs, f.Rows[3].AvgHomBandwidthGBs)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "MinByte Serial") {
		t.Error("render missing heuristics")
	}
}

func TestTableVII(t *testing.T) {
	e := testEnv()
	tab, err := e.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Scales) != 2 || tab.Scales[0].Scale != 1 || tab.Scales[1].Scale != 4 {
		t.Fatal("scales wrong")
	}
	for _, sc := range tab.Scales {
		if sc.BandwidthGBs[StratHotTiles] <= 0 || sc.LinesPerNNZ[StratColdOnly] <= 0 {
			t.Fatalf("scale %d: missing stats", sc.Scale)
		}
		// HotOnly leaves the cold pool idle and vice versa.
		if sc.ColdGFLOPs[StratHotOnly] != 0 {
			t.Errorf("scale %d: cold pool active under HotOnly", sc.Scale)
		}
		if sc.HotGFLOPs[StratColdOnly] != 0 {
			t.Errorf("scale %d: hot pool active under ColdOnly", sc.Scale)
		}
		// HotTiles reduces redundant traffic vs HotOnly (Table VII trend).
		if sc.LinesPerNNZ[StratHotTiles] >= sc.LinesPerNNZ[StratHotOnly] {
			t.Errorf("scale %d: HotTiles lines/nnz %.2f not below HotOnly %.2f",
				sc.Scale, sc.LinesPerNNZ[StratHotTiles], sc.LinesPerNNZ[StratHotOnly])
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "Bandwidth Util.") {
		t.Error("render broken")
	}
}

func TestFig13(t *testing.T) {
	e := testEnv()
	f, err := e.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 10 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	if f.AvgVsHotOnly8 <= 0 || f.AvgVsColdOnly8 <= 0 {
		t.Fatal("averages missing")
	}
	// The paper's takeaway: heterogeneous 4-4 beats double-size homogeneous
	// on average (2.9x and 1.6x); at least the hot side must hold clearly.
	if f.AvgVsHotOnly8 < 1 {
		t.Errorf("HotTiles4 vs HotOnly8 = %.2f < 1", f.AvgVsHotOnly8)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "vs ColdOnly8") {
		t.Error("render broken")
	}
}

func TestFig14(t *testing.T) {
	e := testEnv()
	f, err := e.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 5 {
		t.Fatalf("%d intensity points, want 5", len(f.Rows))
	}
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	// As arithmetic intensity grows, work shifts to the enhanced hot worker
	// (the paper's Figure 14 trend).
	if last.HotNNZFrac <= first.HotNNZFrac {
		t.Errorf("hot share did not grow with AI: %.2f -> %.2f", first.HotNNZFrac, last.HotNNZFrac)
	}
	// At low AI HotTiles crushes HotOnly (PCIe bottleneck); at high AI it
	// crushes ColdOnly (compute bottleneck).
	if first.VsHotOnly < last.VsHotOnly {
		t.Errorf("vs HotOnly should shrink with AI: %.2f -> %.2f", first.VsHotOnly, last.VsHotOnly)
	}
	if last.VsColdOnly < first.VsColdOnly {
		t.Errorf("vs ColdOnly should grow with AI: %.2f -> %.2f", first.VsColdOnly, last.VsColdOnly)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "ops/nnz") {
		t.Error("render broken")
	}
}

func TestFig15DenseSuite(t *testing.T) {
	e := testEnv()
	studies, err := e.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 {
		t.Fatal("want scales 1 and 4")
	}
	for _, st := range studies {
		if len(st.Rows) != 5 {
			t.Fatalf("%s: %d rows, want 5", st.ArchName, len(st.Rows))
		}
		if st.AvgSpeedupOver[StratIUnaware] < 1 {
			t.Errorf("%s: HotTiles vs IUnaware %.2f < 1", st.ArchName, st.AvgSpeedupOver[StratIUnaware])
		}
	}
}

func TestFig16(t *testing.T) {
	e := testEnv()
	f, err := e.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Names) != 9 || len(f.Predicted) != 9 || len(f.Actual) != 9 {
		t.Fatal("want 9 iso-scale architectures")
	}
	// 4-4 is the baseline: its actual speedup over itself is exactly 1.
	if f.Actual[4] != 1 || f.Predicted[4] != 1 {
		t.Fatalf("4-4 speedups %.3f/%.3f, want 1/1", f.Predicted[4], f.Actual[4])
	}
	if f.PredictedBest == "" || f.ActualBest == "" {
		t.Fatal("missing winners")
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "predicted best") {
		t.Error("render broken")
	}
}

func TestTableIX(t *testing.T) {
	e := testEnv()
	tab, err := e.TableIX()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatal("want 10 rows")
	}
	for _, r := range tab.Rows {
		// The oracle is at least as good as the prediction-driven choice.
		if r.OracleSpeedup+1e-12 < r.PredSpeedup {
			t.Errorf("%s: oracle %.3f below predicted choice %.3f", r.Short, r.OracleSpeedup, r.PredSpeedup)
		}
		if r.Correct && r.PredBest != r.ActualBest {
			t.Errorf("%s: marked correct but %s != %s", r.Short, r.PredBest, r.ActualBest)
		}
	}
	if tab.Accuracy < 0 || tab.Accuracy > 1 {
		t.Fatalf("accuracy %g", tab.Accuracy)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("render broken")
	}
}

func TestFig17(t *testing.T) {
	e := testEnv()
	f, err := e.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Archs) != 2 {
		t.Fatal("want 2 architectures")
	}
	for _, s := range []string{StratHotOnly, StratColdOnly, StratHotTiles} {
		if f.AvgError[s] < 0 {
			t.Fatalf("%s: negative average |error|", s)
		}
	}
	// The paper's error structure: HotOnly (no caches involved on the
	// streaming side) predicts better than ColdOnly, whose matrices enjoy
	// cache reuse the model ignores.
	if f.AvgError[StratHotOnly] > f.AvgError[StratColdOnly] {
		t.Errorf("HotOnly error %.2f should be below ColdOnly %.2f",
			f.AvgError[StratHotOnly], f.AvgError[StratColdOnly])
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "average |error|") {
		t.Error("render broken")
	}
}

func TestFig18(t *testing.T) {
	e := testEnv()
	f, err := e.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 10 {
		t.Fatal("want 10 rows")
	}
	for _, r := range f.Rows {
		if r.OverheadFrac <= 0 || r.OverheadFrac >= 1 {
			t.Errorf("%s: overhead fraction %.2f outside (0,1)", r.Short, r.OverheadFrac)
		}
	}
	if f.AvgOverheadFrac <= 0 || f.AvgOverheadFrac >= 1 {
		t.Fatalf("average overhead %.2f", f.AvgOverheadFrac)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "Preprocessing breakdown") {
		t.Error("render broken")
	}
}

func TestVerifyFunctionalAcrossArchitectures(t *testing.T) {
	// The repository-wide correctness invariant: every benchmark's HotTiles
	// partitioning, functionally executed on every architecture, reproduces
	// the reference SpMM exactly (up to summation order).
	e := testEnv()
	for _, a := range []arch.Arch{arch.SpadeSextans(4), arch.PIUMA(), arch.SpadeSextansPCIe()} {
		for _, b := range gen.Benchmarks() {
			diff, err := e.Verify(a, b)
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name, b.Short, err)
			}
			if diff > 1e-9 {
				t.Errorf("%s/%s: functional divergence %g", a.Name, b.Short, diff)
			}
		}
	}
	for _, b := range gen.DenseBenchmarks() {
		diff, err := e.Verify(arch.SpadeSextans(1), b)
		if err != nil {
			t.Fatalf("dense/%s: %v", b.Short, err)
		}
		if diff > 1e-9 {
			t.Errorf("dense/%s: functional divergence %g", b.Short, diff)
		}
	}
}

func TestEnvCaching(t *testing.T) {
	e := testEnv()
	b, _ := gen.ByShort("pap")
	m1 := e.Matrix(b)
	m2 := e.Matrix(b)
	if m1 != m2 {
		t.Fatal("matrix not cached")
	}
	g1, err := e.Grid(b, e.TileSize())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := e.Grid(b, e.TileSize())
	if g1 != g2 {
		t.Fatal("grid not cached")
	}
	a := arch.SpadeSextans(4)
	r1, err := e.exec(a, b, StratHotTiles, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e.exec(a, b, StratHotTiles, 2)
	if r1 != r2 {
		t.Fatal("run not cached")
	}
	if _, err := e.exec(a, b, "Nope", 2); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
}

func TestTileSizeClamps(t *testing.T) {
	if got := NewEnv(8, 0).TileSize(); got != 512 {
		t.Fatalf("scale 8 tile %d, want 512", got)
	}
	if got := NewEnv(4096, 0).TileSize(); got != 64 {
		t.Fatalf("scale 4096 tile %d, want 64", got)
	}
}

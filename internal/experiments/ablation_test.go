package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestReorderAblation(t *testing.T) {
	e := testEnv()
	r, err := e.Reorder()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Original <= 0 || row.Clustered <= 0 || row.Shuffled <= 0 {
			t.Fatalf("%s: non-positive runtime %+v", row.Short, row)
		}
	}
	// Destroying intra-matrix heterogeneity with a random shuffle must slow
	// HotTiles down on average — the core premise of the paper.
	if r.AvgShuffleSlowdown < 1.05 {
		t.Errorf("random shuffle slowdown %.2f too small; IMH not being exploited?",
			r.AvgShuffleSlowdown)
	}
	// BFS clustering must not wreck performance (it reorganizes, not
	// destroys, structure).
	if r.AvgClusterSpeedup < 0.7 {
		t.Errorf("BFS clustering hurt HotTiles by %.2fx", 1/r.AvgClusterSpeedup)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "random shuffle slows") {
		t.Error("render broken")
	}
}

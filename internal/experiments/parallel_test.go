package experiments

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
)

// TestParallelStudyMatchesSerial pins the determinism contract of the
// parallel experiments fan-out: with fresh Envs, a study computed with the
// worker pool enabled is bit-identical (reflect.DeepEqual over float64s,
// not approximate) to the same study computed serially.
func TestParallelStudyMatchesSerial(t *testing.T) {
	a := arch.SpadeSextans(4)
	suite := gen.Benchmarks()[:3]
	strategies := []string{StratHotOnly, StratColdOnly, StratIUnaware, StratHotTiles}

	run := func(workers int) *StrategyStudy {
		defer par.SetWorkers(par.SetWorkers(workers))
		st, err := testEnv().runStudy(a, suite, strategies)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel study differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestParallelFig12MatchesSerial covers the heuristic fan-out path
// (execHeuristic) the same way.
func TestParallelFig12MatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale study")
	}
	run := func(workers int) *Fig12Result {
		defer par.SetWorkers(par.SetWorkers(workers))
		f, err := testEnv().Fig12()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Fig12 differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestVisLatSensitivity(t *testing.T) {
	e := testEnv()
	v, err := e.VisLat()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 5 {
		t.Fatalf("%d rows", len(v.Rows))
	}
	var unit *VisLatRow
	for i := range v.Rows {
		r := &v.Rows[i]
		if r.AvgRuntimeVsBaseline <= 0 {
			t.Fatalf("factor %.2f: bad ratio", r.Factor)
		}
		if r.Factor == 1 {
			unit = r
		}
	}
	if unit == nil {
		t.Fatal("missing factor 1 row")
	}
	// The unperturbed model reproduces the baseline exactly.
	if unit.AvgRuntimeVsBaseline != 1 || unit.AvgHotFracDelta != 0 {
		t.Fatalf("factor 1 row is not the identity: %+v", *unit)
	}
	// No perturbation should be able to *improve* on the calibrated model
	// by more than noise (it plans with wrong numbers).
	for _, r := range v.Rows {
		if r.AvgRuntimeVsBaseline < 0.97 {
			t.Errorf("factor %.2f beat the calibrated model: %.3f", r.Factor, r.AvgRuntimeVsBaseline)
		}
	}
	var buf bytes.Buffer
	v.Render(&buf)
	if !strings.Contains(buf.String(), "vis_lat sensitivity") {
		t.Error("render broken")
	}
}

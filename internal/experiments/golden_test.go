package experiments

// Golden-file regression tests: every deterministic study renders at a fixed
// small scale and seed and is compared against the pinned output under
// testdata/golden/. The differ is tolerance-aware — the non-numeric skeleton
// must match exactly, numeric tokens may drift within a small relative
// tolerance (guarding against platform float-formatting jitter without
// letting real regressions through). Regenerate after an intentional change
// with:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Fig18 is excluded: its preprocessing-overhead columns are wall-clock
// measurements and differ on every run.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden/")

// goldenTol is the maximum allowed relative drift per numeric token.
const goldenTol = 1e-6

// goldenStudies maps golden-file names to render functions, mirroring the
// spmmsim experiment table minus the nondeterministic fig18.
var goldenStudies = map[string]func(e *Env, w io.Writer) error{
	"fig4": func(e *Env, w io.Writer) error {
		studies, err := e.Fig4()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig5": func(e *Env, w io.Writer) error {
		f, err := e.Fig5()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig10": func(e *Env, w io.Writer) error {
		st, err := e.Fig10()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig11": func(e *Env, w io.Writer) error {
		st, err := e.Fig11()
		if err != nil {
			return err
		}
		st.Render(w)
		return nil
	},
	"fig12": func(e *Env, w io.Writer) error {
		f, err := e.Fig12()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig13": func(e *Env, w io.Writer) error {
		f, err := e.Fig13()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig14": func(e *Env, w io.Writer) error {
		f, err := e.Fig14()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig15": func(e *Env, w io.Writer) error {
		studies, err := e.Fig15()
		if err != nil {
			return err
		}
		for _, st := range studies {
			st.Render(w)
		}
		return nil
	},
	"fig16": func(e *Env, w io.Writer) error {
		f, err := e.Fig16()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"fig17": func(e *Env, w io.Writer) error {
		f, err := e.Fig17()
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	},
	"tab6": func(e *Env, w io.Writer) error {
		t, err := e.TableVI()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab7": func(e *Env, w io.Writer) error {
		t, err := e.TableVII()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"tab9": func(e *Env, w io.Writer) error {
		t, err := e.TableIX()
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	},
	"kernels": func(e *Env, w io.Writer) error {
		k, err := e.Kernels()
		if err != nil {
			return err
		}
		k.Render(w)
		return nil
	},
	"reorder": func(e *Env, w io.Writer) error {
		r, err := e.Reorder()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"vislat": func(e *Env, w io.Writer) error {
		v, err := e.VisLat()
		if err != nil {
			return err
		}
		v.Render(w)
		return nil
	},
	"gnn": func(e *Env, w io.Writer) error {
		g, err := e.GNN(context.Background())
		if err != nil {
			return err
		}
		g.Render(w)
		return nil
	},
	"evolve": func(e *Env, w io.Writer) error {
		s, err := e.Evolve(context.Background())
		if err != nil {
			return err
		}
		s.Render(w)
		return nil
	},
}

func TestGolden(t *testing.T) {
	// One shared Env: the studies overlap heavily and the singleflight
	// caches keep the whole sweep close to the cost of the largest study.
	e := NewEnv(512, 1)
	names := make([]string, 0, len(goldenStudies))
	for n := range goldenStudies {
		names = append(names, n)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := goldenStudies[name](e, &buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			path := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if err := diffGolden(string(want), buf.String(), goldenTol); err != nil {
				t.Errorf("%s drifted from %s:\n%v", name, path, err)
			}
		})
	}
}

// numToken matches the numeric tokens the differ compares under tolerance.
var numToken = regexp.MustCompile(`-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?`)

// diffGolden compares rendered output against a golden file: the non-numeric
// skeleton must be byte-identical and each numeric token must be within
// relative tolerance tol of its counterpart. Errors carry the first
// offending line so drift is easy to localize.
func diffGolden(want, got string, tol float64) error {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	if len(wantLines) != len(gotLines) {
		return fmt.Errorf("line count %d, want %d", len(gotLines), len(wantLines))
	}
	for i := range wantLines {
		if err := diffLine(wantLines[i], gotLines[i], tol); err != nil {
			return fmt.Errorf("line %d: %v\n  want: %s\n  got:  %s", i+1, err, wantLines[i], gotLines[i])
		}
	}
	return nil
}

func diffLine(want, got string, tol float64) error {
	if numToken.ReplaceAllString(want, "#") != numToken.ReplaceAllString(got, "#") {
		return fmt.Errorf("text mismatch")
	}
	wantNums := numToken.FindAllString(want, -1)
	gotNums := numToken.FindAllString(got, -1)
	if len(wantNums) != len(gotNums) {
		return fmt.Errorf("%d numeric tokens, want %d", len(gotNums), len(wantNums))
	}
	for j := range wantNums {
		w, errW := strconv.ParseFloat(wantNums[j], 64)
		g, errG := strconv.ParseFloat(gotNums[j], 64)
		if errW != nil || errG != nil {
			if wantNums[j] != gotNums[j] {
				return fmt.Errorf("token %d: %q vs %q", j, gotNums[j], wantNums[j])
			}
			continue
		}
		if !withinTol(w, g, tol) {
			return fmt.Errorf("token %d: %v drifted from %v (tol %g)", j, g, w, tol)
		}
	}
	return nil
}

// withinTol reports whether got is within relative tolerance of want
// (absolute tolerance near zero).
func withinTol(want, got, tol float64) bool {
	if want == got {
		return true
	}
	diff := math.Abs(want - got)
	scale := math.Max(math.Abs(want), math.Abs(got))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// TestGoldenDifferRejectsDrift pins the differ's own behavior: numbers
// beyond tolerance and skeleton edits both fail, while in-tolerance float
// jitter passes.
func TestGoldenDifferRejectsDrift(t *testing.T) {
	base := "speedup 1.500x over baseline\n"
	if err := diffGolden(base, base, goldenTol); err != nil {
		t.Fatalf("identical text rejected: %v", err)
	}
	if err := diffGolden(base, "speedup 1.5000000001x over baseline\n", 1e-6); err != nil {
		t.Fatalf("in-tolerance drift rejected: %v", err)
	}
	if err := diffGolden(base, "speedup 1.600x over baseline\n", 1e-6); err == nil {
		t.Fatal("out-of-tolerance drift accepted")
	}
	if err := diffGolden(base, "speedup 1.500x over BASELINE\n", 1e-6); err == nil {
		t.Fatal("skeleton edit accepted")
	}
	if err := diffGolden(base, "speedup 1.500x over baseline 7\n", 1e-6); err == nil {
		t.Fatal("extra numeric token accepted")
	}
}

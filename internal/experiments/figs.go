package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
)

// StrategyRow holds one matrix's runtimes for the standard strategy set and
// the speedups relative to the worst homogeneous execution, the figure 4/10/
// 11/15 presentation.
type StrategyRow struct {
	Short string
	// Times in seconds by strategy name.
	Times map[string]float64
	// Speedups over the worst homogeneous execution by strategy name.
	Speedups map[string]float64
	// BestHom is min(HotOnly, ColdOnly).
	BestHom float64
}

func makeRow(short string, times map[string]float64) StrategyRow {
	worst := times[StratHotOnly]
	if times[StratColdOnly] > worst {
		worst = times[StratColdOnly]
	}
	best := times[StratHotOnly]
	if times[StratColdOnly] < best {
		best = times[StratColdOnly]
	}
	row := StrategyRow{Short: short, Times: times, Speedups: map[string]float64{}, BestHom: best}
	for s, t := range times {
		row.Speedups[s] = worst / t
	}
	return row
}

// StrategyStudy is the shared shape of Figures 4, 10, 11 and 15: the
// strategy set run over a benchmark suite on one architecture.
type StrategyStudy struct {
	ArchName   string
	Strategies []string
	Rows       []StrategyRow
	// AvgSpeedupOver[s] is HotTiles' geometric-mean speedup over strategy s
	// (and over "BestHomogeneous").
	AvgSpeedupOver map[string]float64
}

// runStudy executes the given strategies for every benchmark on a. The
// (benchmark, strategy) cells run concurrently; each writes only its own
// slot and the reduction below walks the slots in the original order, so
// the result is bit-identical to the serial evaluation.
func (e *Env) runStudy(a arch.Arch, suite []gen.Benchmark, strategies []string) (*StrategyStudy, error) {
	st := &StrategyStudy{ArchName: a.Name, Strategies: strategies}
	cells := make([]float64, len(suite)*len(strategies))
	if err := par.ForEachErr(len(cells), func(i int) error {
		b, s := suite[i/len(strategies)], strategies[i%len(strategies)]
		r, err := e.exec(a, b, s, 2)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", b.Short, s, err)
		}
		cells[i] = r.Time
		return nil
	}); err != nil {
		return nil, err
	}
	ratios := map[string][]float64{}
	for bi, b := range suite {
		times := map[string]float64{}
		for si, s := range strategies {
			times[s] = cells[bi*len(strategies)+si]
		}
		row := makeRow(b.Short, times)
		st.Rows = append(st.Rows, row)
		if ht, ok := times[StratHotTiles]; ok {
			for _, s := range strategies {
				if s == StratHotTiles {
					continue
				}
				ratios[s] = append(ratios[s], times[s]/ht)
			}
			ratios["BestHomogeneous"] = append(ratios["BestHomogeneous"], row.BestHom/ht)
		}
	}
	st.AvgSpeedupOver = map[string]float64{}
	for s, rs := range ratios {
		st.AvgSpeedupOver[s] = geomean(rs)
	}
	return st, nil
}

// Render prints the study in the paper's layout: one row per matrix with
// speedups over the worst homogeneous execution.
func (st *StrategyStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — speedup over worst homogeneous execution\n", st.ArchName)
	fmt.Fprintf(w, "%-6s", "matrix")
	for _, s := range st.Strategies {
		fmt.Fprintf(w, "%12s", s)
	}
	fmt.Fprintln(w)
	for _, row := range st.Rows {
		fmt.Fprintf(w, "%-6s", row.Short)
		for _, s := range st.Strategies {
			fmt.Fprintf(w, "%12.2f", row.Speedups[s])
		}
		fmt.Fprintln(w)
	}
	if len(st.AvgSpeedupOver) > 0 {
		fmt.Fprintf(w, "HotTiles average speedup:")
		for _, s := range append([]string{}, st.Strategies...) {
			if s == StratHotTiles {
				continue
			}
			fmt.Fprintf(w, "  %.2fx vs %s", st.AvgSpeedupOver[s], s)
		}
		fmt.Fprintf(w, "  %.2fx vs BestHomogeneous\n", st.AvgSpeedupOver["BestHomogeneous"])
	}
}

// Fig4 compares IUnaware heterogeneous execution against the homogeneous
// executions on SPADE-Sextans (scale 4) and PIUMA — the motivation study of
// §III-B showing that IMH-unaware partitioning is unimpressive against the
// best homogeneous baseline.
func (e *Env) Fig4() ([]*StrategyStudy, error) {
	strategies := []string{StratHotOnly, StratColdOnly, StratIUnaware}
	var out []*StrategyStudy
	for _, a := range []arch.Arch{arch.SpadeSextans(4), arch.PIUMA()} {
		st, err := e.runStudy(a, gen.Benchmarks(), strategies)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Fig5Result is the tile-assignment visualization of Figure 5: for the pap
// matrix on SPADE-Sextans, which tiles each method sends to the hot
// workers, and the resulting share of nonzeros.
type Fig5Result struct {
	NumTR, NumTC int
	// HotIUnaware/HotHotTiles list the hot tiles as (tr, tc) pairs.
	HotIUnaware, HotHotTiles [][2]int
	// HotNNZFracIUnaware/HotNNZFracHotTiles are the fractions of nonzeros
	// assigned to hot workers (the paper reports 52% vs 72%).
	HotNNZFracIUnaware, HotNNZFracHotTiles float64
}

// Fig5 reproduces the assignment maps of Figure 5 on the pap mimic.
func (e *Env) Fig5() (*Fig5Result, error) {
	b, _ := gen.ByShort("pap")
	a := arch.SpadeSextans(4)
	iu, err := e.exec(a, b, StratIUnaware, 2)
	if err != nil {
		return nil, err
	}
	ht, err := e.exec(a, b, StratHotTiles, 2)
	if err != nil {
		return nil, err
	}
	g, err := e.Grid(b, e.TileSize())
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{NumTR: g.NumTR, NumTC: g.NumTC}
	for i, t := range g.Tiles {
		if iu.Part.Hot[i] {
			res.HotIUnaware = append(res.HotIUnaware, [2]int{t.TR, t.TC})
		}
		if ht.Part.Hot[i] {
			res.HotHotTiles = append(res.HotHotTiles, [2]int{t.TR, t.TC})
		}
	}
	_, res.HotNNZFracIUnaware = iu.Part.HotNNZ(g)
	_, res.HotNNZFracHotTiles = ht.Part.HotNNZ(g)
	return res, nil
}

// Render draws the two assignment maps as ASCII art ('#' = hot, '.' = cold
// or empty), downsampled to at most 64 columns.
func (f *Fig5Result) Render(w io.Writer) {
	draw := func(name string, hot [][2]int, frac float64) {
		fmt.Fprintf(w, "%s (hot tiles in '#', %.0f%% of nonzeros hot)\n", name, frac*100)
		step := 1
		for f.NumTC/step > 64 {
			step++
		}
		rows := (f.NumTR + step - 1) / step
		cols := (f.NumTC + step - 1) / step
		grid := make([][]byte, rows)
		for i := range grid {
			grid[i] = []byte(strings.Repeat(".", cols))
		}
		for _, t := range hot {
			grid[t[0]/step][t[1]/step] = '#'
		}
		for _, line := range grid {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	draw("IUnaware", f.HotIUnaware, f.HotNNZFracIUnaware)
	draw("HotTiles", f.HotHotTiles, f.HotNNZFracHotTiles)
}

// Fig10 is the main SPADE-Sextans comparison (scale 4): HotOnly, ColdOnly,
// IUnaware and HotTiles per matrix.
func (e *Env) Fig10() (*StrategyStudy, error) {
	return e.runStudy(arch.SpadeSextans(4), gen.Benchmarks(),
		[]string{StratHotOnly, StratColdOnly, StratIUnaware, StratHotTiles})
}

// Fig11 is the same comparison on PIUMA.
func (e *Env) Fig11() (*StrategyStudy, error) {
	return e.runStudy(arch.PIUMA(), gen.Benchmarks(),
		[]string{StratHotOnly, StratColdOnly, StratIUnaware, StratHotTiles})
}

// Fig13Result compares heterogeneous HotTiles at scale 4 against
// homogeneous architectures with twice the workers of one type (scale 8).
type Fig13Result struct {
	Rows []struct {
		Short                      string
		VsHotOnly8, VsColdOnly8    float64
		HotTiles4, HotOnly8, Cold8 float64
	}
	AvgVsHotOnly8, AvgVsColdOnly8 float64
}

// Fig13 reproduces the iso-resource comparison of Figure 13. The
// per-benchmark rows are computed concurrently into indexed slots.
func (e *Env) Fig13() (*Fig13Result, error) {
	type fig13Row = struct {
		Short                      string
		VsHotOnly8, VsColdOnly8    float64
		HotTiles4, HotOnly8, Cold8 float64
	}
	suite := gen.Benchmarks()
	rows := make([]fig13Row, len(suite))
	if err := par.ForEachErr(len(suite), func(i int) error {
		b := suite[i]
		ht4, err := e.exec(arch.SpadeSextans(4), b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		hot8, err := e.exec(arch.SpadeSextansSkewed(0, 8), b, StratHotOnly, 2)
		if err != nil {
			return err
		}
		cold8, err := e.exec(arch.SpadeSextansSkewed(8, 0), b, StratColdOnly, 2)
		if err != nil {
			return err
		}
		rows[i] = fig13Row{
			Short:       b.Short,
			VsHotOnly8:  hot8.Time / ht4.Time,
			VsColdOnly8: cold8.Time / ht4.Time,
			HotTiles4:   ht4.Time,
			HotOnly8:    hot8.Time,
			Cold8:       cold8.Time,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out := &Fig13Result{Rows: rows}
	var vh, vc []float64
	for _, row := range rows {
		vh = append(vh, row.VsHotOnly8)
		vc = append(vc, row.VsColdOnly8)
	}
	out.AvgVsHotOnly8 = geomean(vh)
	out.AvgVsColdOnly8 = geomean(vc)
	return out, nil
}

// Render prints the Figure 13 series.
func (f *Fig13Result) Render(w io.Writer) {
	fmt.Fprintln(w, "HotTiles4 speedup over double-size homogeneous architectures")
	fmt.Fprintf(w, "%-6s%14s%14s\n", "matrix", "vs HotOnly8", "vs ColdOnly8")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-6s%14.2f%14.2f\n", r.Short, r.VsHotOnly8, r.VsColdOnly8)
	}
	fmt.Fprintf(w, "average: %.2fx vs HotOnly8, %.2fx vs ColdOnly8\n",
		f.AvgVsHotOnly8, f.AvgVsColdOnly8)
}

// Fig14Result is the gSpMM arithmetic-intensity sweep on the
// SPADE-Sextans+PCIe architecture.
type Fig14Result struct {
	Rows []struct {
		SIMDOpsPerNNZ int     // the x axis of Figure 14
		VsHotOnly     float64 // HotTiles speedup over HotOnly
		VsColdOnly    float64
		HotNNZFrac    float64 // share of nonzeros assigned hot
		VsBestHom     float64
	}
	AvgVsHotOnly, AvgVsColdOnly, AvgVsBestHom float64
}

// Fig14 sweeps the kernel's arithmetic intensity (SIMD ops per nonzero) on
// the +PCIe architecture: at low intensity the cold workers absorb almost
// everything; as intensity grows the enhanced off-die Sextans wins work.
func (e *Env) Fig14() (*Fig14Result, error) {
	a := arch.SpadeSextansPCIe()
	out := &Fig14Result{}
	intensities := []int{2, 8, 32, 128, 512}
	suite := gen.Benchmarks()
	// One cell per (intensity, benchmark) pair, filled concurrently.
	type fig14Cell struct{ ht, ho, co, frac float64 }
	cells := make([]fig14Cell, len(intensities)*len(suite))
	if err := par.ForEachErr(len(cells), func(i int) error {
		ops, b := intensities[i/len(suite)], suite[i%len(suite)]
		ht, err := e.exec(a, b, StratHotTiles, float64(ops))
		if err != nil {
			return err
		}
		ho, err := e.exec(a, b, StratHotOnly, float64(ops))
		if err != nil {
			return err
		}
		co, err := e.exec(a, b, StratColdOnly, float64(ops))
		if err != nil {
			return err
		}
		g, err := e.Grid(b, e.TileSize())
		if err != nil {
			return err
		}
		_, frac := ht.Part.HotNNZ(g)
		cells[i] = fig14Cell{ht: ht.Time, ho: ho.Time, co: co.Time, frac: frac}
		return nil
	}); err != nil {
		return nil, err
	}
	var vh, vc, vb []float64
	for oi, ops := range intensities {
		var hts, hos, cos, fracs []float64
		for bi := range suite {
			c := cells[oi*len(suite)+bi]
			hts = append(hts, c.ht)
			hos = append(hos, c.ho)
			cos = append(cos, c.co)
			fracs = append(fracs, c.frac)
		}
		row := struct {
			SIMDOpsPerNNZ int
			VsHotOnly     float64
			VsColdOnly    float64
			HotNNZFrac    float64
			VsBestHom     float64
		}{SIMDOpsPerNNZ: ops}
		var rh, rc, rb []float64
		for i := range hts {
			rh = append(rh, hos[i]/hts[i])
			rc = append(rc, cos[i]/hts[i])
			best := hos[i]
			if cos[i] < best {
				best = cos[i]
			}
			rb = append(rb, best/hts[i])
		}
		row.VsHotOnly = geomean(rh)
		row.VsColdOnly = geomean(rc)
		row.VsBestHom = geomean(rb)
		row.HotNNZFrac = mean(fracs)
		out.Rows = append(out.Rows, row)
		vh = append(vh, row.VsHotOnly)
		vc = append(vc, row.VsColdOnly)
		vb = append(vb, row.VsBestHom)
	}
	out.AvgVsHotOnly = geomean(vh)
	out.AvgVsColdOnly = geomean(vc)
	out.AvgVsBestHom = geomean(vb)
	return out, nil
}

// Render prints the Figure 14 series.
func (f *Fig14Result) Render(w io.Writer) {
	fmt.Fprintln(w, "SPADE-Sextans+PCIe — HotTiles vs homogeneous across gSpMM intensity")
	fmt.Fprintf(w, "%12s%12s%12s%12s%12s\n", "ops/nnz", "vs HotOnly", "vs ColdOnly", "vs BestHom", "% nnz hot")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%12d%12.2f%12.2f%12.2f%11.0f%%\n",
			r.SIMDOpsPerNNZ, r.VsHotOnly, r.VsColdOnly, r.VsBestHom, r.HotNNZFrac*100)
	}
	fmt.Fprintf(w, "average: %.2fx vs HotOnly, %.2fx vs ColdOnly, %.2fx vs BestHomogeneous\n",
		f.AvgVsHotOnly, f.AvgVsColdOnly, f.AvgVsBestHom)
}

// Fig15 runs the higher-density Table VIII suite on SPADE-Sextans at system
// scales 1 and 4.
func (e *Env) Fig15() ([]*StrategyStudy, error) {
	strategies := []string{StratHotOnly, StratColdOnly, StratIUnaware, StratHotTiles}
	var out []*StrategyStudy
	for _, scale := range []int{1, 4} {
		a := arch.SpadeSextans(scale)
		st, err := e.runStudy(a, gen.DenseBenchmarks(), strategies)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

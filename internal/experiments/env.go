// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII) on the scaled synthetic benchmark suite: Figures 4, 5,
// 10-18 and Tables VI, VII, IX. Each experiment returns a typed result and
// renders the same rows/series the paper reports; the cmd/spmmsim binary
// prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// Env builds and caches benchmark matrices, tilings, and simulation runs so
// experiments that share work (most of them) do not repeat it.
type Env struct {
	// Scale divides the paper's row counts (DESIGN.md §2); 64 reproduces
	// the evaluation in minutes, larger values suit tests.
	Scale int
	// Seed drives matrix generation and IUnaware's random assignment.
	Seed int64

	mu    sync.Mutex
	mats  map[string]*sparse.COO
	grids map[string]*tile.Grid
	runs  map[string]*runOut
}

// NewEnv returns an Env at the given matrix scale.
func NewEnv(scale int, seed int64) *Env {
	return &Env{
		Scale: scale,
		Seed:  seed,
		mats:  map[string]*sparse.COO{},
		grids: map[string]*tile.Grid{},
		runs:  map[string]*runOut{},
	}
}

// TileSize returns the tile dimension matching the matrix scale: the
// paper's 8192 divided by the same factor, clamped to [64, 512].
func (e *Env) TileSize() int {
	t := 8192 * 2 / e.Scale // ×2: keeps ≥ 8×8 tiles per scaled matrix
	if t > 512 {
		t = 512
	}
	if t < 64 {
		t = 64
	}
	return t
}

// Matrix builds (or returns the cached) structural mimic of benchmark b.
func (e *Env) Matrix(b gen.Benchmark) *sparse.COO {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.mats[b.Short]; ok {
		return m
	}
	m := b.Build(e.Seed, e.Scale)
	e.mats[b.Short] = m
	return m
}

// Grid tiles benchmark b's matrix at the given tile size (cached).
func (e *Env) Grid(b gen.Benchmark, tileSize int) (*tile.Grid, error) {
	m := e.Matrix(b)
	key := fmt.Sprintf("%s/%d", b.Short, tileSize)
	e.mu.Lock()
	if g, ok := e.grids[key]; ok {
		e.mu.Unlock()
		return g, nil
	}
	e.mu.Unlock()
	g, err := tile.Partition(m, tileSize, tileSize)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.grids[key] = g
	e.mu.Unlock()
	return g, nil
}

// Strategy identifiers reused across experiments.
const (
	StratHotOnly  = "HotOnly"
	StratColdOnly = "ColdOnly"
	StratIUnaware = "IUnaware"
	StratHotTiles = "HotTiles"
)

// runOut is one cached simulated execution.
type runOut struct {
	Time      float64          // simulated seconds (including merge)
	Sim       *sim.Result      // full simulator statistics
	Part      partition.Result // the partitioning used
	Predicted float64          // the model's predicted runtime for this run
}

// exec runs strategy strat for benchmark b on architecture a (with the
// arch's tile size overridden to the Env's) and caches the outcome.
// opsPerMAC carries the gSpMM intensity (2 = plain SpMM).
func (e *Env) exec(a arch.Arch, b gen.Benchmark, strat string, opsPerMAC float64) (*runOut, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	key := fmt.Sprintf("%s|%s|%s|%g", a.Name, b.Short, strat, opsPerMAC)
	e.mu.Lock()
	if r, ok := e.runs[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()

	g, err := e.Grid(b, a.TileH)
	if err != nil {
		return nil, err
	}
	cfg := a.Config(opsPerMAC)

	var part partition.Result
	serial := false
	switch strat {
	case StratHotOnly:
		hot := partition.AllHot(g)
		pred, tot, err := partition.Predict(g, &cfg, hot, false)
		if err != nil {
			return nil, err
		}
		part = partition.Result{Hot: hot, Predicted: pred, Totals: tot}
	case StratColdOnly:
		cold := partition.AllCold(g)
		pred, tot, err := partition.Predict(g, &cfg, cold, false)
		if err != nil {
			return nil, err
		}
		part = partition.Result{Hot: cold, Predicted: pred, Totals: tot}
	case StratIUnaware:
		part, err = partition.IUnaware(g, cfg, e.Seed)
		if err != nil {
			return nil, err
		}
	case StratHotTiles:
		part, err = partition.HotTiles(g, cfg)
		if err != nil {
			return nil, err
		}
		serial = part.Serial
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", strat)
	}

	// The simulator must see the same arithmetic intensity the partitioner
	// planned for.
	sr := semiring.PlusTimes()
	sr.OpsPerMAC = opsPerMAC
	r, err := sim.Run(g, part.Hot, &a, nil, sim.Options{
		Serial:         serial,
		Semiring:       &sr,
		SkipFunctional: true,
	})
	if err != nil {
		return nil, err
	}
	out := &runOut{Time: r.Time, Sim: r, Part: part, Predicted: part.Predicted}
	e.mu.Lock()
	e.runs[key] = out
	e.mu.Unlock()
	return out, nil
}

// execHeuristic forces one HotTiles heuristic (Figure 12).
func (e *Env) execHeuristic(a arch.Arch, b gen.Benchmark, h partition.Heuristic) (*runOut, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	key := fmt.Sprintf("%s|%s|heur:%v", a.Name, b.Short, h)
	e.mu.Lock()
	if r, ok := e.runs[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()

	g, err := e.Grid(b, a.TileH)
	if err != nil {
		return nil, err
	}
	part, err := partition.RunHeuristic(g, a.Config(2), h)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(g, part.Hot, &a, nil, sim.Options{Serial: part.Serial, SkipFunctional: true})
	if err != nil {
		return nil, err
	}
	out := &runOut{Time: r.Time, Sim: r, Part: part, Predicted: part.Predicted}
	e.mu.Lock()
	e.runs[key] = out
	e.mu.Unlock()
	return out, nil
}

// Verify functionally executes benchmark b's HotTiles partitioning on
// architecture a and compares against the reference kernel, returning the
// max absolute error. It backs the repository-wide correctness invariant.
func (e *Env) Verify(a arch.Arch, b gen.Benchmark) (float64, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	m := e.Matrix(b)
	g, err := e.Grid(b, a.TileH)
	if err != nil {
		return 0, err
	}
	part, err := partition.HotTiles(g, a.Config(2))
	if err != nil {
		return 0, err
	}
	din := dense.NewFilled(m.N, a.K, 1)
	r, err := sim.Run(g, part.Hot, &a, din, sim.Options{Serial: part.Serial})
	if err != nil {
		return 0, err
	}
	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		return 0, err
	}
	return r.Output.MaxAbsDiff(want)
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII) on the scaled synthetic benchmark suite: Figures 4, 5,
// 10-18 and Tables VI, VII, IX. Each experiment returns a typed result and
// renders the same rows/series the paper reports; the cmd/spmmsim binary
// prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// Env builds and caches benchmark matrices, tilings, per-tile model
// estimates, and simulation runs so experiments that share work (most of
// them) do not repeat it. All caches are per-key singleflight (par.Cache):
// under the parallel experiments fan-out, concurrent requests for the same
// key block on one builder and observe the same pointer, so work is never
// duplicated and two distinct values are never published for one key.
type Env struct {
	// Scale divides the paper's row counts (DESIGN.md §2); 64 reproduces
	// the evaluation in minutes, larger values suit tests.
	Scale int
	// Seed drives matrix generation and IUnaware's random assignment.
	Seed int64

	// trace receives one span per cache build, grouped into the pipeline
	// phases generate/tile/estimate/exec (nil = tracing disabled; every
	// span call below is nil-safe and costs only a nil check).
	trace *obs.Tracer
	// timeline receives per-worker simulator events for every exec (nil =
	// disabled); each run's tracks are labeled with its cache key.
	timeline *obs.Timeline

	mats  par.Cache[string, *sparse.COO]
	grids par.Cache[string, *tile.Grid]
	// ests caches partition.Estimates per (arch name, benchmark, opsPerMAC)
	// at the Env's tile size; arch names uniquely identify worker model
	// parameters across the preset architectures, and every strategy of an
	// (arch, benchmark) cell shares one entry.
	ests par.Cache[string, *partition.Estimates]
	runs par.Cache[string, *runOut]
	// archs canonicalizes the by-value arch copies exec works on into one
	// stable pointer per distinct configuration (keyed on the gob encoding,
	// which covers every field), because units is pointer-keyed.
	archs par.Cache[string, *arch.Arch]
	// units memoizes built simulator unit pools across runs — strategies
	// that degenerate to the same assignment (HotTiles falling back to
	// all-cold on uniform matrices, tables revisiting a figure's cells)
	// skip pool construction and the cold pool's cache-model replay.
	units sim.UnitCache
}

// NewEnv returns an Env at the given matrix scale.
func NewEnv(scale int, seed int64) *Env {
	return &Env{Scale: scale, Seed: seed}
}

// SetTracer attaches an observability tracer (nil disables tracing, the
// default). Spans are recorded only when a cache entry is actually built,
// so a traced re-run of a warm Env shows cache hits in the counters rather
// than duplicate spans.
func (e *Env) SetTracer(t *obs.Tracer) { e.trace = t }

// SetTimeline attaches the event recorder simulated runs report to (nil
// disables, the default). Each exec's worker tracks are prefixed with its
// cache key, e.g. "SPADE|scircuit|HotTiles|2/hot/w0".
func (e *Env) SetTimeline(tl *obs.Timeline) { e.timeline = tl }

// Per-cell wall-time histogram: one observation per cache-missed exec
// (partition + simulate), the unit of work the experiment fan-out
// schedules.
var execWallHist = obs.NewHistogram("experiments.exec.wall.ns")

// TileSize returns the tile dimension matching the matrix scale: the
// paper's 8192 divided by the same factor, clamped to [64, 512].
func (e *Env) TileSize() int {
	t := 8192 * 2 / e.Scale // ×2: keeps ≥ 8×8 tiles per scaled matrix
	if t > 512 {
		t = 512
	}
	if t < 64 {
		t = 64
	}
	return t
}

// Matrix builds (or returns the cached) structural mimic of benchmark b.
func (e *Env) Matrix(b gen.Benchmark) *sparse.COO {
	m, _ := e.mats.Get(b.Short, func() (*sparse.COO, error) {
		sp := e.trace.Phase("generate").Start(b.Short)
		built := b.Build(e.Seed, e.Scale)
		sp.SetAttr("nnz", fmt.Sprint(built.NNZ()))
		sp.SetAttr("n", fmt.Sprint(built.N))
		sp.End()
		return built, nil
	})
	return m
}

// Grid tiles benchmark b's matrix at the given tile size (cached).
func (e *Env) Grid(b gen.Benchmark, tileSize int) (*tile.Grid, error) {
	key := fmt.Sprintf("%s/%d", b.Short, tileSize)
	return e.grids.Get(key, func() (*tile.Grid, error) {
		m := e.Matrix(b)
		sp := e.trace.Phase("tile").Start(key)
		g, err := tile.Partition(m, tileSize, tileSize)
		if g != nil {
			sp.SetAttr("tiles", fmt.Sprint(len(g.Tiles)))
		}
		sp.End()
		return g, err
	})
}

// estimates returns the cached per-tile model estimates for architecture a
// (already at the Env's tile size) on benchmark b's grid.
func (e *Env) estimates(a *arch.Arch, b gen.Benchmark, opsPerMAC float64) (*partition.Estimates, error) {
	key := fmt.Sprintf("%s|%s|%g", a.Name, b.Short, opsPerMAC)
	return e.ests.Get(key, func() (*partition.Estimates, error) {
		g, err := e.Grid(b, a.TileH)
		if err != nil {
			return nil, err
		}
		sp := e.trace.Phase("estimate").Start(key)
		defer sp.End()
		cfg := a.Config(opsPerMAC)
		return partition.NewEstimates(g, &cfg)
	})
}

// archPtr returns the canonical pointer for an arch value. Two exec calls
// carrying equal configurations observe the same pointer, so pointer-keyed
// downstream caches (the unit cache) can hit across them.
func (e *Env) archPtr(a arch.Arch) (*arch.Arch, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&a); err != nil {
		return nil, err
	}
	return e.archs.Get(buf.String(), func() (*arch.Arch, error) {
		cp := a
		return &cp, nil
	})
}

// Strategy identifiers reused across experiments.
const (
	StratHotOnly  = "HotOnly"
	StratColdOnly = "ColdOnly"
	StratIUnaware = "IUnaware"
	StratHotTiles = "HotTiles"
)

// runOut is one cached simulated execution.
type runOut struct {
	Time      float64          // simulated seconds (including merge)
	Sim       *sim.Result      // full simulator statistics
	Part      partition.Result // the partitioning used
	Predicted float64          // the model's predicted runtime for this run
}

// exec runs strategy strat for benchmark b on architecture a (with the
// arch's tile size overridden to the Env's) and caches the outcome.
// opsPerMAC carries the gSpMM intensity (2 = plain SpMM).
func (e *Env) exec(a arch.Arch, b gen.Benchmark, strat string, opsPerMAC float64) (*runOut, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	key := fmt.Sprintf("%s|%s|%s|%g", a.Name, b.Short, strat, opsPerMAC)
	return e.runs.Get(key, func() (*runOut, error) {
		done := obs.StartProgress("exec " + key)
		defer done()
		t0 := time.Now()
		defer func() { execWallHist.ObserveSince(t0) }()
		es, err := e.estimates(&a, b, opsPerMAC)
		if err != nil {
			return nil, err
		}
		sp := e.trace.Phase("exec").Start(key)
		defer sp.End()
		g := es.Grid
		cfg := a.Config(opsPerMAC)

		var part partition.Result
		serial := false
		switch strat {
		case StratHotOnly:
			hot := partition.AllHot(g)
			pred, tot, predErr := partition.PredictFrom(es, &cfg, hot, false)
			if predErr != nil {
				return nil, predErr
			}
			part = partition.Result{Hot: hot, Predicted: pred, Totals: tot}
		case StratColdOnly:
			cold := partition.AllCold(g)
			pred, tot, predErr := partition.PredictFrom(es, &cfg, cold, false)
			if predErr != nil {
				return nil, predErr
			}
			part = partition.Result{Hot: cold, Predicted: pred, Totals: tot}
		case StratIUnaware:
			part, err = partition.IUnawareFrom(es, cfg, e.Seed)
			if err != nil {
				return nil, err
			}
		case StratHotTiles:
			part, err = partition.HotTilesFrom(es, cfg)
			if err != nil {
				return nil, err
			}
			serial = part.Serial
		default:
			return nil, fmt.Errorf("experiments: unknown strategy %q", strat)
		}

		// The simulator must see the same arithmetic intensity the
		// partitioner planned for.
		sr := semiring.PlusTimes()
		sr.OpsPerMAC = opsPerMAC
		ap, err := e.archPtr(a)
		if err != nil {
			return nil, err
		}
		sim1 := sp.Start("sim")
		r, err := sim.Run(g, part.Hot, ap, nil, sim.Options{
			Serial:         serial,
			Semiring:       &sr,
			SkipFunctional: true,
			Timeline:       e.timeline,
			TimelineLabel:  key,
			Units:          &e.units,
		})
		sim1.End()
		if err != nil {
			return nil, err
		}
		sp.SetAttr("hotNNZ", fmt.Sprint(part.HotNNZ(g)))
		return &runOut{Time: r.Time, Sim: r, Part: part, Predicted: part.Predicted}, nil
	})
}

// execHeuristic forces one HotTiles heuristic (Figure 12).
func (e *Env) execHeuristic(a arch.Arch, b gen.Benchmark, h partition.Heuristic) (*runOut, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	key := fmt.Sprintf("%s|%s|heur:%v", a.Name, b.Short, h)
	return e.runs.Get(key, func() (*runOut, error) {
		done := obs.StartProgress("exec " + key)
		defer done()
		t0 := time.Now()
		defer func() { execWallHist.ObserveSince(t0) }()
		es, err := e.estimates(&a, b, 2)
		if err != nil {
			return nil, err
		}
		sp := e.trace.Phase("exec").Start(key)
		defer sp.End()
		part, err := partition.RunHeuristicFrom(es, a.Config(2), h)
		if err != nil {
			return nil, err
		}
		ap, err := e.archPtr(a)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(es.Grid, part.Hot, ap, nil, sim.Options{
			Serial: part.Serial, SkipFunctional: true,
			Timeline: e.timeline, TimelineLabel: key,
			Units: &e.units,
		})
		if err != nil {
			return nil, err
		}
		return &runOut{Time: r.Time, Sim: r, Part: part, Predicted: part.Predicted}, nil
	})
}

// Verify functionally executes benchmark b's HotTiles partitioning on
// architecture a and compares against the reference kernel, returning the
// max absolute error. It backs the repository-wide correctness invariant.
func (e *Env) Verify(a arch.Arch, b gen.Benchmark) (float64, error) {
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	m := e.Matrix(b)
	g, err := e.Grid(b, a.TileH)
	if err != nil {
		return 0, err
	}
	part, err := partition.HotTiles(g, a.Config(2))
	if err != nil {
		return 0, err
	}
	din := dense.NewFilled(m.N, a.K, 1)
	r, err := sim.Run(g, part.Hot, &a, din, sim.Options{Serial: part.Serial})
	if err != nil {
		return 0, err
	}
	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		return 0, err
	}
	return r.Output.MaxAbsDiff(want)
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

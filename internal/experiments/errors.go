package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
)

// Fig17Result is the prediction-error study: per matrix and architecture,
// the relative error of the model's predicted execution time against the
// simulated one, for HotOnly, ColdOnly and HotTiles.
type Fig17Result struct {
	Archs []Fig17Arch
	// AvgError maps strategy name to the mean |error| across matrices and
	// architectures (the paper reports 4.8% / 19.6% / 12.4%).
	AvgError map[string]float64
}

// Fig17Arch is one architecture's error rows.
type Fig17Arch struct {
	ArchName string
	Rows     []Fig17Row
}

// Fig17Row is one matrix's signed relative errors (positive =
// over-prediction).
type Fig17Row struct {
	Short                       string
	HotOnly, ColdOnly, HotTiles float64
}

// Fig17 reproduces the prediction-error figure on SPADE-Sextans (scale 4)
// and PIUMA. All (arch, benchmark, strategy) cells run concurrently; the
// serial reduction walks them in the original nesting order.
func (e *Env) Fig17() (*Fig17Result, error) {
	archs := []arch.Arch{arch.SpadeSextans(4), arch.PIUMA()}
	suite := gen.Benchmarks()
	strategies := []string{StratHotOnly, StratColdOnly, StratHotTiles}
	rels := make([]float64, len(archs)*len(suite)*len(strategies))
	if err := par.ForEachErr(len(rels), func(i int) error {
		a := archs[i/(len(suite)*len(strategies))]
		b := suite[i/len(strategies)%len(suite)]
		s := strategies[i%len(strategies)]
		r, err := e.exec(a, b, s, 2)
		if err != nil {
			return err
		}
		rels[i] = (r.Predicted - r.Time) / r.Time
		return nil
	}); err != nil {
		return nil, err
	}
	out := &Fig17Result{AvgError: map[string]float64{}}
	sums := map[string][]float64{}
	for ai, a := range archs {
		fa := Fig17Arch{ArchName: a.Name}
		for bi, b := range suite {
			row := Fig17Row{Short: b.Short}
			for si, s := range strategies {
				rel := rels[(ai*len(suite)+bi)*len(strategies)+si]
				switch s {
				case StratHotOnly:
					row.HotOnly = rel
				case StratColdOnly:
					row.ColdOnly = rel
				case StratHotTiles:
					row.HotTiles = rel
				}
				sums[s] = append(sums[s], math.Abs(rel))
			}
			fa.Rows = append(fa.Rows, row)
		}
		out.Archs = append(out.Archs, fa)
	}
	for s, xs := range sums {
		out.AvgError[s] = mean(xs)
	}
	return out, nil
}

// Render prints the Figure 17 error series.
func (f *Fig17Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Relative error of predicted vs simulated execution time (%)")
	for _, fa := range f.Archs {
		fmt.Fprintf(w, "%s\n%-8s%10s%10s%10s\n", fa.ArchName, "matrix", "HotOnly", "ColdOnly", "HotTiles")
		for _, r := range fa.Rows {
			fmt.Fprintf(w, "%-8s%9.1f%%%9.1f%%%9.1f%%\n",
				r.Short, r.HotOnly*100, r.ColdOnly*100, r.HotTiles*100)
		}
	}
	fmt.Fprintf(w, "average |error|: HotOnly %.1f%%, ColdOnly %.1f%%, HotTiles %.1f%%\n",
		f.AvgError[StratHotOnly]*100, f.AvgError[StratColdOnly]*100, f.AvgError[StratHotTiles]*100)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// ReorderAblationRow is one matrix's outcome under the three orderings.
type ReorderAblationRow struct {
	Short string
	// HotTiles runtimes (seconds) on the original, BFS-clustered, and
	// randomly shuffled matrix.
	Original, Clustered, Shuffled float64
	// Hot nonzero fractions per ordering.
	FracOriginal, FracClustered, FracShuffled float64
}

// ReorderAblation measures the effect the paper anticipates from matrix
// reordering (§IX-D, §X): a clustering pass should preserve or improve
// HotTiles' runtime by forming better-defined dense regions, while a random
// shuffle — which destroys IMH — should hurt it.
type ReorderAblation struct {
	Rows []ReorderAblationRow
	// AvgShuffleSlowdown is the geomean of shuffled/original runtimes.
	AvgShuffleSlowdown float64
	// AvgClusterSpeedup is the geomean of original/clustered runtimes.
	AvgClusterSpeedup float64
}

// Reorder runs the reordering ablation on SPADE-Sextans (scale 4), one
// concurrent job per benchmark (the reordered matrices are private to each
// job, so nothing is shared beyond the read-only Env caches).
func (e *Env) Reorder() (*ReorderAblation, error) {
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	suite := gen.Benchmarks()
	rows := make([]ReorderAblationRow, len(suite))
	if err := par.ForEachErr(len(suite), func(i int) error {
		b := suite[i]
		m := e.Matrix(b)
		run := func(mat *sparse.COO) (float64, float64, error) {
			g, err := tile.Partition(mat, a.TileH, a.TileW)
			if err != nil {
				return 0, 0, err
			}
			res, err := partition.HotTiles(g, a.Config(2))
			if err != nil {
				return 0, 0, err
			}
			r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{Serial: res.Serial, SkipFunctional: true})
			if err != nil {
				return 0, 0, err
			}
			_, frac := res.HotNNZ(g)
			return r.Time, frac, nil
		}

		clustered, err := reorder.Apply(m, reorder.BFSCluster(m))
		if err != nil {
			return err
		}
		shuffled, err := reorder.Apply(m, reorder.Random(m.N, e.Seed))
		if err != nil {
			return err
		}

		row := ReorderAblationRow{Short: b.Short}
		if row.Original, row.FracOriginal, err = run(m); err != nil {
			return err
		}
		if row.Clustered, row.FracClustered, err = run(clustered); err != nil {
			return err
		}
		if row.Shuffled, row.FracShuffled, err = run(shuffled); err != nil {
			return err
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	out := &ReorderAblation{Rows: rows}
	var slow, speed []float64
	for _, row := range rows {
		slow = append(slow, row.Shuffled/row.Original)
		speed = append(speed, row.Original/row.Clustered)
	}
	out.AvgShuffleSlowdown = geomean(slow)
	out.AvgClusterSpeedup = geomean(speed)
	return out, nil
}

// Render prints the reordering ablation.
func (r *ReorderAblation) Render(w io.Writer) {
	fmt.Fprintln(w, "Reordering ablation — HotTiles runtime (ms) per ordering, SPADE-Sextans 4-4")
	fmt.Fprintf(w, "%-8s%12s%12s%12s%24s\n", "matrix", "original", "BFS", "shuffled", "hot nnz % (o/b/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s%12.4f%12.4f%12.4f%12.0f/%3.0f/%3.0f\n",
			row.Short, row.Original*1e3, row.Clustered*1e3, row.Shuffled*1e3,
			row.FracOriginal*100, row.FracClustered*100, row.FracShuffled*100)
	}
	fmt.Fprintf(w, "random shuffle slows HotTiles by %.2fx on average; BFS clustering changes it by %.2fx\n",
		r.AvgShuffleSlowdown, r.AvgClusterSpeedup)
}

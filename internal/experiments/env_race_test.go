package experiments

import (
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tile"
)

// TestEnvConcurrentCachesSingleflight hammers the Env's caches from many
// goroutines at once and checks every caller observes the same pointer for
// the same key. On the pre-singleflight Env this fails (and trips the race
// detector): the check-then-act pattern around its map let concurrent
// callers each build and publish their own grid or run for one key.
func TestEnvConcurrentCachesSingleflight(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(4))
	e := testEnv()
	b := gen.Benchmarks()[0]
	a := arch.SpadeSextans(1)

	const goroutines = 8
	start := make(chan struct{})
	grids := make([]*tile.Grid, goroutines)
	runs := make([]*sim.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // maximize overlap between the callers
			g, err := e.Grid(b, 128)
			if err != nil {
				errs[i] = err
				return
			}
			grids[i] = g
			r, err := e.exec(a, b, StratColdOnly, 2)
			if err != nil {
				errs[i] = err
				return
			}
			runs[i] = r.Sim
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if grids[i] != grids[0] {
			t.Errorf("goroutine %d observed a different *tile.Grid for the same key", i)
		}
		if runs[i] != runs[0] {
			t.Errorf("goroutine %d observed a different run for the same key", i)
		}
	}
}

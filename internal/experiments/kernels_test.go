package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestKernelsStudy(t *testing.T) {
	e := testEnv()
	k, err := e.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Rows) != 10 {
		t.Fatalf("%d rows", len(k.Rows))
	}
	for _, r := range k.Rows {
		if r.SpMM <= 0 || r.SpMV <= 0 || r.SDDMM <= 0 {
			t.Fatalf("%s: non-positive runtime %+v", r.Short, r)
		}
		// SpMV (K=1) moves a fraction of SpMM's dense traffic.
		if r.SpMV >= r.SpMM {
			t.Errorf("%s: SpMV %.3e not below SpMM %.3e", r.Short, r.SpMV, r.SpMM)
		}
		// SDDMM saves the dense write-back; per-matrix the heuristic may
		// still trade that for a different split, so only gross regressions
		// fail here — the average is the real claim.
		if r.SDDMM > r.SpMM*1.5 {
			t.Errorf("%s: SDDMM %.3e far above SpMM %.3e", r.Short, r.SDDMM, r.SpMM)
		}
	}
	if k.AvgSDDMMOverSpMM >= 1 {
		t.Errorf("SDDMM/SpMM ratio %.2f should be < 1", k.AvgSDDMMOverSpMM)
	}
	var buf bytes.Buffer
	k.Render(&buf)
	if !strings.Contains(buf.String(), "SDDMM runs at") {
		t.Error("render broken")
	}
}

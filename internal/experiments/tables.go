package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
)

// TableVIResult holds the absolute simulated runtimes for SPADE-Sextans
// (scale 4) in milliseconds, the paper's Table VI layout.
type TableVIResult struct {
	Rows []TableVIRow
}

// TableVIRow is one matrix's runtimes in milliseconds.
type TableVIRow struct {
	Short                                          string
	HotOnly, ColdOnly, BestHom, IUnaware, HotTiles float64
}

// TableVI reproduces the absolute-runtime table, one concurrent job per
// benchmark row.
func (e *Env) TableVI() (*TableVIResult, error) {
	a := arch.SpadeSextans(4)
	suite := gen.Benchmarks()
	rows := make([]TableVIRow, len(suite))
	if err := par.ForEachErr(len(suite), func(i int) error {
		b := suite[i]
		ho, err := e.exec(a, b, StratHotOnly, 2)
		if err != nil {
			return err
		}
		co, err := e.exec(a, b, StratColdOnly, 2)
		if err != nil {
			return err
		}
		iu, err := e.exec(a, b, StratIUnaware, 2)
		if err != nil {
			return err
		}
		ht, err := e.exec(a, b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		row := TableVIRow{
			Short:    b.Short,
			HotOnly:  ho.Time * 1e3,
			ColdOnly: co.Time * 1e3,
			IUnaware: iu.Time * 1e3,
			HotTiles: ht.Time * 1e3,
		}
		row.BestHom = row.HotOnly
		if row.ColdOnly < row.BestHom {
			row.BestHom = row.ColdOnly
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return &TableVIResult{Rows: rows}, nil
}

// Render prints Table VI.
func (t *TableVIResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Runtime in ms for SPADE-Sextans (scale 4)")
	fmt.Fprintf(w, "%-8s%10s%10s%10s%10s%10s\n",
		"matrix", "HotOnly", "ColdOnly", "BestHom", "IUnaware", "HotTiles")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-8s%10.3f%10.3f%10.3f%10.3f%10.3f\n",
			r.Short, r.HotOnly, r.ColdOnly, r.BestHom, r.IUnaware, r.HotTiles)
	}
}

// TableVIIResult reports the architecture utilization statistics of Table
// VII (geometric means across the suite) for system scales 1 and 4.
type TableVIIResult struct {
	Scales []TableVIIScale
}

// TableVIIScale is one system scale's statistics.
type TableVIIScale struct {
	Scale      int
	Strategies []string
	// BandwidthGBs, LinesPerNNZ, ColdGFLOPs, HotGFLOPs map strategy name to
	// the geomean statistic.
	BandwidthGBs, LinesPerNNZ, ColdGFLOPs, HotGFLOPs map[string]float64
}

// TableVII reproduces the utilization statistics table.
func (e *Env) TableVII() (*TableVIIResult, error) {
	strategies := []string{StratHotOnly, StratColdOnly, StratIUnaware, StratHotTiles}
	out := &TableVIIResult{}
	for _, scale := range []int{1, 4} {
		a := arch.SpadeSextans(scale)
		sc := TableVIIScale{
			Scale:        scale,
			Strategies:   strategies,
			BandwidthGBs: map[string]float64{},
			LinesPerNNZ:  map[string]float64{},
			ColdGFLOPs:   map[string]float64{},
			HotGFLOPs:    map[string]float64{},
		}
		suite := gen.Benchmarks()
		type tableVIICell struct{ bw, lines, cold, hot float64 }
		cells := make([]tableVIICell, len(strategies)*len(suite))
		if err := par.ForEachErr(len(cells), func(i int) error {
			s, b := strategies[i/len(suite)], suite[i%len(suite)]
			r, err := e.exec(a, b, s, 2)
			if err != nil {
				return err
			}
			m := e.Matrix(b)
			cells[i] = tableVIICell{
				bw:    r.Sim.BandwidthUtil() / 1e9,
				lines: r.Sim.CacheLinesPerNNZ(m.NNZ()),
				cold:  r.Sim.ColdGFLOPs(),
				hot:   r.Sim.HotGFLOPs(),
			}
			return nil
		}); err != nil {
			return nil, err
		}
		for si, s := range strategies {
			var bw, lines, cold, hot []float64
			for bi := range suite {
				c := cells[si*len(suite)+bi]
				bw = append(bw, c.bw)
				lines = append(lines, c.lines)
				// Geomeans need positive values; idle pools report 0
				// GFLOP/s in the paper's table, rendered below as 0.
				if c.cold > 0 {
					cold = append(cold, c.cold)
				}
				if c.hot > 0 {
					hot = append(hot, c.hot)
				}
			}
			sc.BandwidthGBs[s] = geomean(bw)
			sc.LinesPerNNZ[s] = geomean(lines)
			sc.ColdGFLOPs[s] = geomean(cold)
			sc.HotGFLOPs[s] = geomean(hot)
		}
		out.Scales = append(out.Scales, sc)
	}
	return out, nil
}

// Render prints Table VII.
func (t *TableVIIResult) Render(w io.Writer) {
	for _, sc := range t.Scales {
		fmt.Fprintf(w, "System Scale %d (geometric means)\n", sc.Scale)
		fmt.Fprintf(w, "%-28s", "measure")
		for _, s := range sc.Strategies {
			fmt.Fprintf(w, "%12s", s)
		}
		fmt.Fprintln(w)
		row := func(name string, m map[string]float64) {
			fmt.Fprintf(w, "%-28s", name)
			for _, s := range sc.Strategies {
				fmt.Fprintf(w, "%12.2f", m[s])
			}
			fmt.Fprintln(w)
		}
		row("Bandwidth Util. (GB/s)", sc.BandwidthGBs)
		row("Cache Lines/Nonzero", sc.LinesPerNNZ)
		row("SPADE GFLOP/s", sc.ColdGFLOPs)
		row("Sextans GFLOP/s", sc.HotGFLOPs)
	}
}

// TableIXResult is the reconfigurable-architecture scenario: per matrix,
// the iso-scale architecture HotTiles predicts to be best vs the actually
// best one, and the speedups over 4-4.
type TableIXResult struct {
	Rows []TableIXRow
	// AvgPredSpeedup/AvgOracleSpeedup are the arithmetic means (as in the
	// paper's AVG row); Accuracy is the fraction of correct predictions.
	AvgPredSpeedup, AvgOracleSpeedup float64
	Accuracy                         float64
}

// TableIXRow is one matrix's exploration outcome.
type TableIXRow struct {
	Short                string
	PredBest, ActualBest string
	PredSpeedup          float64 // actual speedup of the predicted-best arch over 4-4
	OracleSpeedup        float64 // actual speedup of the actually-best arch
	Correct              bool
}

// TableIX reproduces the per-matrix architecture-selection table. All
// (benchmark, skew) cells run concurrently; the 4-4 baseline deduplicates
// with the c=4 cell through the Env's singleflight run cache.
func (e *Env) TableIX() (*TableIXResult, error) {
	const total = 8
	suite := gen.Benchmarks()
	type tableIXCell struct{ pred, act float64 }
	cells := make([]tableIXCell, len(suite)*(total+1))
	if err := par.ForEachErr(len(cells), func(i int) error {
		b, c := suite[i/(total+1)], i%(total+1)
		a := arch.SpadeSextansSkewed(c, total-c)
		r, err := e.exec(a, b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		cells[i] = tableIXCell{pred: r.Predicted, act: r.Time}
		return nil
	}); err != nil {
		return nil, err
	}
	out := &TableIXResult{}
	var predS, oracleS []float64
	correct := 0
	for bi, b := range suite {
		base, err := e.exec(arch.SpadeSextans(4), b, StratHotTiles, 2)
		if err != nil {
			return nil, err
		}
		bestPredIdx, bestActIdx := 0, 0
		var preds, acts []float64
		for c := 0; c <= total; c++ {
			cell := cells[bi*(total+1)+c]
			preds = append(preds, cell.pred)
			acts = append(acts, cell.act)
			if cell.pred < preds[bestPredIdx] {
				bestPredIdx = c
			}
			if cell.act < acts[bestActIdx] {
				bestActIdx = c
			}
		}
		row := TableIXRow{
			Short:         b.Short,
			PredBest:      fmt.Sprintf("%d-%d", bestPredIdx, total-bestPredIdx),
			ActualBest:    fmt.Sprintf("%d-%d", bestActIdx, total-bestActIdx),
			PredSpeedup:   base.Time / acts[bestPredIdx],
			OracleSpeedup: base.Time / acts[bestActIdx],
			Correct:       bestPredIdx == bestActIdx,
		}
		if row.Correct {
			correct++
		}
		out.Rows = append(out.Rows, row)
		predS = append(predS, row.PredSpeedup)
		oracleS = append(oracleS, row.OracleSpeedup)
	}
	out.AvgPredSpeedup = mean(predS)
	out.AvgOracleSpeedup = mean(oracleS)
	out.Accuracy = float64(correct) / float64(len(out.Rows))
	return out, nil
}

// Render prints Table IX.
func (t *TableIXResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Predicted and actual best iso-scale architecture per matrix")
	fmt.Fprintf(w, "%-8s%12s%14s%12s%14s%10s\n",
		"matrix", "pred best", "pred speedup", "act best", "act speedup", "correct?")
	for _, r := range t.Rows {
		c := "N"
		if r.Correct {
			c = "Y"
		}
		fmt.Fprintf(w, "%-8s%12s%14.2f%12s%14.2f%10s\n",
			r.Short, r.PredBest, r.PredSpeedup, r.ActualBest, r.OracleSpeedup, c)
	}
	fmt.Fprintf(w, "AVG: predicted-choice speedup %.2f, oracle %.2f, accuracy %.0f%%\n",
		t.AvgPredSpeedup, t.AvgOracleSpeedup, t.Accuracy*100)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
)

// VisLatRow is one perturbation's outcome.
type VisLatRow struct {
	// Factor multiplies both worker types' calibrated vis_lat.
	Factor float64
	// AvgRuntimeVsBaseline is the geomean ratio of HotTiles' *simulated*
	// runtime with the perturbed model to the runtime with the calibrated
	// model (1.0 = the perturbation did not change the partitioning
	// quality at all; the simulator itself is never perturbed).
	AvgRuntimeVsBaseline float64
	// AvgHotFracDelta is the mean absolute change of the hot-nonzero
	// fraction versus baseline.
	AvgHotFracDelta float64
}

// VisLatSensitivity is the DESIGN.md §8 ablation: how robust is the
// HotTiles partitioning to a miscalibrated vis_lat? Each row perturbs both
// workers' vis_lat by a factor, repartitions, and re-simulates with the
// *unperturbed* simulator.
type VisLatSensitivity struct {
	Rows []VisLatRow
}

// VisLat runs the sensitivity study on SPADE-Sextans (scale 4).
func (e *Env) VisLat() (*VisLatSensitivity, error) {
	base := arch.SpadeSextans(4)
	base.TileH, base.TileW = e.TileSize(), e.TileSize()
	out := &VisLatSensitivity{}

	// Baseline runtimes and fractions per matrix, one concurrent job each.
	type baseline struct {
		time float64
		frac float64
	}
	suite := gen.Benchmarks()
	bls := make([]baseline, len(suite))
	if err := par.ForEachErr(len(suite), func(i int) error {
		b := suite[i]
		r, err := e.exec(base, b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		g, err := e.Grid(b, base.TileH)
		if err != nil {
			return err
		}
		_, frac := r.Part.HotNNZ(g)
		bls[i] = baseline{r.Time, frac}
		return nil
	}); err != nil {
		return nil, err
	}

	// All (factor, benchmark) perturbation cells run concurrently; each job
	// perturbs its own copy of the architecture (workers are held by value).
	factors := []float64{0.25, 0.5, 1, 2, 4}
	type visLatCell struct{ ratio, delta float64 }
	cells := make([]visLatCell, len(factors)*len(suite))
	if err := par.ForEachErr(len(cells), func(i int) error {
		factor, bi := factors[i/len(suite)], i%len(suite)
		b := suite[bi]
		a := base
		a.Hot.VisLatPerByte *= factor
		a.Cold.VisLatPerByte *= factor
		g, err := e.Grid(b, a.TileH)
		if err != nil {
			return err
		}
		res, err := partition.HotTiles(g, a.Config(2))
		if err != nil {
			return err
		}
		// Simulate with the *calibrated* architecture: the perturbation
		// only affected the planning model.
		r, err := sim.Run(g, res.Hot, &base, nil, sim.Options{Serial: res.Serial, SkipFunctional: true})
		if err != nil {
			return err
		}
		bl := bls[bi]
		_, frac := res.HotNNZ(g)
		d := frac - bl.frac
		if d < 0 {
			d = -d
		}
		cells[i] = visLatCell{ratio: r.Time / bl.time, delta: d}
		return nil
	}); err != nil {
		return nil, err
	}
	for fi, factor := range factors {
		row := VisLatRow{Factor: factor}
		var ratios, deltas []float64
		for bi := range suite {
			c := cells[fi*len(suite)+bi]
			ratios = append(ratios, c.ratio)
			deltas = append(deltas, c.delta)
		}
		row.AvgRuntimeVsBaseline = geomean(ratios)
		row.AvgHotFracDelta = mean(deltas)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the sensitivity series.
func (v *VisLatSensitivity) Render(w io.Writer) {
	fmt.Fprintln(w, "vis_lat sensitivity — HotTiles simulated runtime with a perturbed model")
	fmt.Fprintf(w, "%10s%22s%20s\n", "factor", "runtime vs calibrated", "hot-frac |delta|")
	for _, r := range v.Rows {
		fmt.Fprintf(w, "%10.2f%22.3f%19.1f%%\n", r.Factor, r.AvgRuntimeVsBaseline, r.AvgHotFracDelta*100)
	}
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/hotcore"
)

// Fig18Result is the preprocessing-cost breakdown of Figure 18: per matrix,
// the wall-clock share of the base (homogeneous) format creation vs the
// HotTiles-specific overhead (scan+model, partitioning, second format).
type Fig18Result struct {
	Rows []Fig18Row
	// AvgOverheadFrac is the mean HotTiles share of total preprocessing
	// (the paper reports 73% on PIUMA).
	AvgOverheadFrac float64
}

// Fig18Row is one matrix's measured breakdown in seconds.
type Fig18Row struct {
	Short        string
	BaseFormat   float64
	Scan         float64
	Partition    float64
	ExtraFormat  float64
	OverheadFrac float64
}

// Fig18 measures the Figure 7 preprocessing pipeline for the PIUMA
// architecture on the host machine (the paper uses a Xeon host; the
// breakdown structure, not the absolute seconds, is the reproduced result).
func (e *Env) Fig18() (*Fig18Result, error) {
	a := arch.PIUMA()
	a.TileH, a.TileW = e.TileSize(), e.TileSize()
	out := &Fig18Result{}
	var fracs []float64
	for _, b := range gen.Benchmarks() {
		m := e.Matrix(b)
		p, err := hotcore.Preprocess(m, &a, hotcore.StrategyHotTiles, 2, e.Seed)
		if err != nil {
			return nil, err
		}
		t := p.Timing
		total := t.Total().Seconds()
		row := Fig18Row{
			Short:       b.Short,
			BaseFormat:  t.BaseFormat.Seconds(),
			Scan:        t.Scan.Seconds(),
			Partition:   t.Partition.Seconds(),
			ExtraFormat: t.ExtraFormat.Seconds(),
		}
		if total > 0 {
			row.OverheadFrac = t.Overhead().Seconds() / total
		}
		out.Rows = append(out.Rows, row)
		fracs = append(fracs, row.OverheadFrac)
	}
	out.AvgOverheadFrac = mean(fracs)
	return out, nil
}

// Render prints the Figure 18 breakdown.
func (f *Fig18Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Preprocessing breakdown on the host for PIUMA (seconds)")
	fmt.Fprintf(w, "%-8s%12s%12s%12s%12s%14s\n",
		"matrix", "base fmt", "scan+model", "partition", "extra fmt", "overhead frac")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-8s%12.4f%12.4f%12.4f%12.4f%13.0f%%\n",
			r.Short, r.BaseFormat, r.Scan, r.Partition, r.ExtraFormat, r.OverheadFrac*100)
	}
	fmt.Fprintf(w, "average HotTiles share of preprocessing: %.0f%%\n", f.AvgOverheadFrac*100)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/partition"
)

// Fig12Result compares HotTiles against its four individual heuristics
// across the Table IV system scales, with the homogeneous bandwidth
// utilization per scale.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12Row is one system scale's averages.
type Fig12Row struct {
	Scale int
	// SpeedupVsBestHom maps "HotTiles" and each heuristic name to its
	// geometric-mean speedup over BestHomogeneous across the suite.
	SpeedupVsBestHom map[string]float64
	// AvgHomBandwidthGBs is the system bandwidth utilization averaged
	// across both homogeneous executions and the suite (the paper's
	// per-scale annotation).
	AvgHomBandwidthGBs float64
}

// Fig12 reproduces the heuristic study of Figure 12.
func (e *Env) Fig12() (*Fig12Result, error) {
	out := &Fig12Result{}
	heuristics := []partition.Heuristic{
		partition.MinTimeParallel, partition.MinTimeSerial,
		partition.MinByteParallel, partition.MinByteSerial,
	}
	scales := []int{1, 2, 4, 8}
	suite := gen.Benchmarks()
	// One concurrent job per (scale, benchmark) pair; each job runs its
	// strategies and heuristics serially and fills its own slot.
	type fig12Cell struct {
		htRatio   float64
		heuRatios [4]float64
		bw        float64
	}
	cells := make([]fig12Cell, len(scales)*len(suite))
	if err := par.ForEachErr(len(cells), func(i int) error {
		a := arch.SpadeSextans(scales[i/len(suite)])
		b := suite[i%len(suite)]
		ho, err := e.exec(a, b, StratHotOnly, 2)
		if err != nil {
			return err
		}
		co, err := e.exec(a, b, StratColdOnly, 2)
		if err != nil {
			return err
		}
		best := ho.Time
		if co.Time < best {
			best = co.Time
		}
		cell := fig12Cell{bw: (ho.Sim.BandwidthUtil() + co.Sim.BandwidthUtil()) / 2}

		ht, err := e.exec(a, b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		cell.htRatio = best / ht.Time
		for hi, h := range heuristics {
			r, err := e.execHeuristic(a, b, h)
			if err != nil {
				return err
			}
			cell.heuRatios[hi] = best / r.Time
		}
		cells[i] = cell
		return nil
	}); err != nil {
		return nil, err
	}
	for si, scale := range scales {
		row := Fig12Row{Scale: scale, SpeedupVsBestHom: map[string]float64{}}
		ratios := map[string][]float64{}
		var bw []float64
		for bi := range suite {
			c := cells[si*len(suite)+bi]
			bw = append(bw, c.bw)
			ratios[StratHotTiles] = append(ratios[StratHotTiles], c.htRatio)
			for hi, h := range heuristics {
				ratios[h.String()] = append(ratios[h.String()], c.heuRatios[hi])
			}
		}
		for name, rs := range ratios {
			row.SpeedupVsBestHom[name] = geomean(rs)
		}
		row.AvgHomBandwidthGBs = mean(bw) / 1e9
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the Figure 12 series.
func (f *Fig12Result) Render(w io.Writer) {
	names := []string{
		StratHotTiles,
		partition.MinTimeParallel.String(), partition.MinTimeSerial.String(),
		partition.MinByteParallel.String(), partition.MinByteSerial.String(),
	}
	fmt.Fprintln(w, "SPADE-Sextans — average speedup vs BestHomogeneous per system scale")
	fmt.Fprintf(w, "%-6s", "scale")
	for _, n := range names {
		fmt.Fprintf(w, "%18s", n)
	}
	fmt.Fprintf(w, "%14s\n", "hom BW (GB/s)")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-6d", r.Scale)
		for _, n := range names {
			fmt.Fprintf(w, "%18.2f", r.SpeedupVsBestHom[n])
		}
		fmt.Fprintf(w, "%14.1f\n", r.AvgHomBandwidthGBs)
	}
}

// Fig16Result is the iso-scale exploration: per architecture, the predicted
// and actual average speedup over the baseline 4-4.
type Fig16Result struct {
	Names     []string // "0-8" … "8-0"
	Predicted []float64
	Actual    []float64
	// PredictedBest/ActualBest are the winning architecture names.
	PredictedBest, ActualBest string
}

// Fig16 reproduces the fixed-architecture exploration scenario of §VIII-B:
// for each iso-scale SPADE-Sextans architecture, the average (over the
// suite) speedup over 4-4, both as HotTiles predicts it and as simulated.
func (e *Env) Fig16() (*Fig16Result, error) {
	const total = 8
	type accum struct{ pred, act []float64 }
	accums := make([]accum, total+1)
	names := make([]string, total+1)
	for c := 0; c <= total; c++ {
		names[c] = fmt.Sprintf("%d-%d", c, total-c)
	}

	// All (benchmark, skew) cells run concurrently; the 4-4 baseline each
	// job fetches deduplicates through the singleflight run cache.
	suite := gen.Benchmarks()
	type fig16Cell struct{ predRatio, actRatio float64 }
	cells := make([]fig16Cell, len(suite)*(total+1))
	if err := par.ForEachErr(len(cells), func(i int) error {
		b, c := suite[i/(total+1)], i%(total+1)
		base, err := e.exec(arch.SpadeSextans(4), b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		r, err := e.exec(arch.SpadeSextansSkewed(c, total-c), b, StratHotTiles, 2)
		if err != nil {
			return err
		}
		cells[i] = fig16Cell{predRatio: base.Predicted / r.Predicted, actRatio: base.Time / r.Time}
		return nil
	}); err != nil {
		return nil, err
	}
	for bi := range suite {
		for c := 0; c <= total; c++ {
			cell := cells[bi*(total+1)+c]
			accums[c].pred = append(accums[c].pred, cell.predRatio)
			accums[c].act = append(accums[c].act, cell.actRatio)
		}
	}
	out := &Fig16Result{Names: names}
	bestP, bestA := 0, 0
	for c := 0; c <= total; c++ {
		p := geomean(accums[c].pred)
		a := geomean(accums[c].act)
		out.Predicted = append(out.Predicted, p)
		out.Actual = append(out.Actual, a)
		if p > out.Predicted[bestP] {
			bestP = c
		}
		if a > out.Actual[bestA] {
			bestA = c
		}
	}
	out.PredictedBest = names[bestP]
	out.ActualBest = names[bestA]
	return out, nil
}

// Render prints the Figure 16 series.
func (f *Fig16Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Iso-scale architectures — average speedup over 4-4 (predicted vs actual)")
	fmt.Fprintf(w, "%-8s%12s%12s\n", "arch", "predicted", "actual")
	for i, n := range f.Names {
		fmt.Fprintf(w, "%-8s%12.2f%12.2f\n", n, f.Predicted[i], f.Actual[i])
	}
	fmt.Fprintf(w, "predicted best: %s; actual best: %s\n", f.PredictedBest, f.ActualBest)
}

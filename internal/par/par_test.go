package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		defer SetWorkers(SetWorkers(workers))
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSerialInOrder(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	var got []int
	ForEach(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial ForEach out of order: %v", got)
		}
	}
}

func TestForEachNested(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	const outer, inner = 6, 50
	var total atomic.Int64
	ForEach(outer, func(i int) {
		ForEach(inner, func(j int) { total.Add(1) })
	})
	if total.Load() != outer*inner {
		t.Fatalf("nested ForEach ran %d of %d items", total.Load(), outer*inner)
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	errAt := func(i int) error { return fmt.Errorf("item %d", i) }
	err := ForEachErr(100, func(i int) error {
		if i == 17 || i == 63 {
			return errAt(i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 17" {
		t.Fatalf("want the lowest-index error, got %v", err)
	}
	if err := ForEachErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		defer SetWorkers(SetWorkers(workers))
		for _, n := range []int{1, 2, 7, 100, 1001} {
			hits := make([]int32, n)
			Chunks(n, func(lo, hi int) {
				if lo >= hi {
					t.Fatalf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestPoolDepthGaugeQuiesces is the regression test for the stale-depth
// publication race: pre-fix, tryAcquire/release published the gauge with a
// plain Set after their CAS on extra, so a publisher delayed between the
// two atomics could overwrite a newer depth and leave the gauge nonzero
// after every fan-out had drained. It hammers acquire/release from
// concurrent goroutines — the windows fill most of each iteration, so on
// multicore hardware the pre-fix interleave surfaces within a few hundred
// trials — and asserts the gauge reads exactly 0 whenever the pool is
// idle. Run under `make race` this also pins the publication path's
// thread safety.
func TestPoolDepthGaugeQuiesces(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	depth := obs.NewGauge("par.pool.depth") // same process-wide gauge the pool publishes
	for trial := 0; trial < 400; trial++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					if _, ok := tryAcquire(); ok {
						release()
					} else {
						runtime.Gosched()
					}
				}
			}()
		}
		wg.Wait()
		if got := depth.Load(); got != 0 {
			t.Fatalf("trial %d: pool idle but depth gauge reads %d", trial, got)
		}
	}
	if depth.Max() < 1 {
		t.Fatal("acquires never raised the high-water mark; the test exercised nothing")
	}
}

// TestPublishDepthRecomputesLevel pins the fix deterministically: a
// publisher carrying a stale post-CAS depth must not win the level — the
// published level is recomputed from extra at publication time, while the
// stale peak still reaches the high-water mark.
func TestPublishDepthRecomputesLevel(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	depth := obs.NewGauge("par.pool.depth")
	base := depth.Max()

	// Two slots held; a delayed publisher from an older acquire (post-CAS
	// depth 1) fires late. Pre-fix semantics published its argument as the
	// level; post-fix the level must read the true current depth, 2.
	if _, ok := tryAcquire(); !ok {
		t.Fatal("no pool budget")
	}
	if _, ok := tryAcquire(); !ok {
		t.Fatal("no pool budget")
	}
	publishDepth(1) // the delayed, stale publication
	if got := depth.Load(); got != 2 {
		t.Fatalf("stale publication won: gauge reads %d, want 2", got)
	}
	release()
	release()
	if got := depth.Load(); got != 0 {
		t.Fatalf("gauge reads %d after drain, want 0", got)
	}
	if depth.Max() < base || depth.Max() < 2 {
		t.Fatalf("high-water mark %d lost the peak", depth.Max())
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int32
	const n = 16
	gate := make(chan struct{})
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, err := c.Get("k", func() (int, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

func TestCacheCachesErrors(t *testing.T) {
	var c Cache[int, string]
	var builds int
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Get(7, func() (string, error) {
			builds++
			return "", boom
		})
		if err != boom {
			t.Fatalf("call %d: got %v, want %v", i, err, boom)
		}
	}
	if builds != 1 {
		t.Fatalf("failed build ran %d times, want 1", builds)
	}
}

func TestCacheDistinctKeysConcurrent(t *testing.T) {
	var c Cache[int, int]
	defer SetWorkers(SetWorkers(8))
	ForEach(64, func(i int) {
		v, err := c.Get(i%8, func() (int, error) { return i % 8 * 10, nil })
		if err != nil || v != i%8*10 {
			t.Errorf("key %d: got %d, %v", i%8, v, err)
		}
	})
}

package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		defer SetWorkers(SetWorkers(workers))
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSerialInOrder(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	var got []int
	ForEach(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial ForEach out of order: %v", got)
		}
	}
}

func TestForEachNested(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	const outer, inner = 6, 50
	var total atomic.Int64
	ForEach(outer, func(i int) {
		ForEach(inner, func(j int) { total.Add(1) })
	})
	if total.Load() != outer*inner {
		t.Fatalf("nested ForEach ran %d of %d items", total.Load(), outer*inner)
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	errAt := func(i int) error { return fmt.Errorf("item %d", i) }
	err := ForEachErr(100, func(i int) error {
		if i == 17 || i == 63 {
			return errAt(i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 17" {
		t.Fatalf("want the lowest-index error, got %v", err)
	}
	if err := ForEachErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		defer SetWorkers(SetWorkers(workers))
		for _, n := range []int{1, 2, 7, 100, 1001} {
			hits := make([]int32, n)
			Chunks(n, func(lo, hi int) {
				if lo >= hi {
					t.Fatalf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int32
	const n = 16
	gate := make(chan struct{})
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, err := c.Get("k", func() (int, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

func TestCacheCachesErrors(t *testing.T) {
	var c Cache[int, string]
	var builds int
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Get(7, func() (string, error) {
			builds++
			return "", boom
		})
		if err != boom {
			t.Fatalf("call %d: got %v, want %v", i, err, boom)
		}
	}
	if builds != 1 {
		t.Fatalf("failed build ran %d times, want 1", builds)
	}
}

func TestCacheDistinctKeysConcurrent(t *testing.T) {
	var c Cache[int, int]
	defer SetWorkers(SetWorkers(8))
	ForEach(64, func(i int) {
		v, err := c.Get(i%8, func() (int, error) { return i % 8 * 10, nil })
		if err != nil || v != i%8*10 {
			t.Errorf("key %d: got %d, %v", i%8, v, err)
		}
	})
}

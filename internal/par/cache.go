package par

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Cache hit/miss counters, aggregated across every Cache instance (the
// experiment Env's matrix/grid/estimate/run caches all report here), plus
// the Get latency histogram: hit lookups measure singleflight wait time
// (instant on a settled key, a whole build when coalesced onto a flight),
// miss lookups measure the build itself. Recorded only under DeepTiming.
var (
	cacheHits    = obs.NewCounter("par.cache.hits")
	cacheMisses  = obs.NewCounter("par.cache.misses")
	cacheLatency = obs.NewHistogram("par.cache.get.ns")
)

// Cache is a per-key singleflight memo. The first Get for a key runs build
// exactly once; concurrent Gets for the same key block until that build
// finishes and then observe the same value and error. No lock is held
// while build runs, so builds for distinct keys proceed concurrently and
// builds may themselves call Get (on this or another Cache) for different
// keys.
//
// Errors are cached alongside values: the builds memoized here are
// deterministic (same key, same outcome), so retrying a failed build would
// only repeat the failure.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Get returns the cached value for key, building it with build on the
// first call. Concurrent callers for the same key share one build.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	var t0 time.Time
	if obs.DeepTiming() {
		t0 = time.Now()
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*flight[V]{}
	}
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		cacheHits.Inc()
		<-f.done
		if !t0.IsZero() {
			cacheLatency.ObserveSince(t0)
		}
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()
	cacheMisses.Inc()

	f.val, f.err = build()
	close(f.done)
	if !t0.IsZero() {
		cacheLatency.ObserveSince(t0)
	}
	return f.val, f.err
}

// Package par provides the shared bounded worker pool and the per-key
// singleflight cache that parallelize the analytical model, the tiler, and
// the experiment harness. The pool is sized by GOMAXPROCS (overridable for
// tests and benchmarks via SetWorkers) and is safe to use from nested
// parallel sections: the calling goroutine always participates in its own
// fan-out, and extra goroutines join only while the global budget has
// slack, so recursive ForEach calls can never deadlock and total
// concurrency stays near the pool size.
//
// Determinism contract: ForEach/Chunks run items concurrently in an
// unspecified order; callers keep results bit-identical to a serial
// execution by having each item write only its own output slot and by
// performing all reductions serially afterwards, in the original order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool observability: spawned counts every extra goroutine ever started for
// a fan-out; depth mirrors the current extra-goroutine level (its .max is
// the deepest concurrent fan-out of the run).
var (
	poolSpawned = obs.NewCounter("par.pool.spawned")
	poolDepth   = obs.NewGauge("par.pool.depth")
)

// override holds the SetWorkers value; 0 means "use GOMAXPROCS".
var override atomic.Int32

// extra counts the pool goroutines currently running beyond the callers
// themselves; it is bounded by Workers()-1.
var extra atomic.Int32

// Workers returns the fan-out bound: the SetWorkers override when one is
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool size (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override so callers can restore it:
//
//	defer par.SetWorkers(par.SetWorkers(1))
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int32(n)))
}

func tryAcquire() bool {
	for {
		cur := extra.Load()
		if cur >= int32(Workers()-1) {
			return false
		}
		if extra.CompareAndSwap(cur, cur+1) {
			poolSpawned.Inc()
			poolDepth.Set(int64(cur + 1))
			return true
		}
	}
}

func release() { poolDepth.Set(int64(extra.Add(-1))) }

// ForEach runs fn(i) for every i in [0, n), fanning out over the worker
// pool. It returns once every call has completed. With a pool size of 1
// (or no budget) the calls run on the calling goroutine in index order.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1 && tryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: every fn runs to completion and
// the error with the lowest index is returned (deterministic regardless of
// scheduling), or nil if all succeed.
func ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks splits [0, n) into contiguous ranges and runs fn(lo, hi) for each
// on the worker pool — for per-item work too cheap to dispatch one index at
// a time. Chunk boundaries carry no semantic weight: each item must still
// write only its own slot.
func Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	k := Workers()
	if k > 1 {
		// Oversubscribe so uneven per-item cost still balances.
		k *= 4
	}
	if k > n {
		k = n
	}
	ForEach(k, func(ci int) {
		fn(ci*n/k, (ci+1)*n/k)
	})
}

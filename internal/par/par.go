// Package par provides the shared bounded worker pool and the per-key
// singleflight cache that parallelize the analytical model, the tiler, and
// the experiment harness. The pool is sized by GOMAXPROCS (overridable for
// tests and benchmarks via SetWorkers) and is safe to use from nested
// parallel sections: the calling goroutine always participates in its own
// fan-out, and extra goroutines join only while the global budget has
// slack, so recursive ForEach calls can never deadlock and total
// concurrency stays near the pool size.
//
// Determinism contract: ForEach/Chunks run items concurrently in an
// unspecified order; callers keep results bit-identical to a serial
// execution by having each item write only its own output slot and by
// performing all reductions serially afterwards, in the original order.
package par

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool observability: spawned counts every extra goroutine ever started for
// a fan-out; depth mirrors the current extra-goroutine level (its .max is
// the deepest concurrent fan-out of the run).
var (
	poolSpawned = obs.NewCounter("par.pool.spawned")
	poolDepth   = obs.NewGauge("par.pool.depth")
)

// timeline is the pool's optional event recorder. When set, every fan-out
// records an enqueue instant, each participant (the caller and any extra
// goroutines) records the wall-clock slice it spent draining items, and
// acquire/release sample the extra-goroutine depth. A nil timeline costs
// one atomic load per fan-out.
var timeline atomic.Pointer[obs.Timeline]

// SetTimeline attaches (or, with nil, detaches) the event recorder the
// pool reports to. Safe to call while fan-outs are running: in-flight
// participants keep the recorder they started with.
func SetTimeline(tl *obs.Timeline) { timeline.Store(tl) }

// poolTrack is the timeline row carrying pool-wide events (enqueues and
// depth samples); participant slices land on per-slot rows.
const poolTrack = "par/pool"

// sampleDepth records the extra-goroutine level after an acquire/release.
func sampleDepth(tl *obs.Timeline, depth int32) {
	if tl == nil {
		return
	}
	tl.Append(obs.Event{
		TS: tl.Now(), Track: tl.TrackID(poolTrack), Name: -1,
		Kind: obs.EvQueueDepth, Value: float64(depth),
	})
}

// override holds the SetWorkers value; 0 means "use GOMAXPROCS".
var override atomic.Int32

// extra counts the pool goroutines currently running beyond the callers
// themselves; it is bounded by Workers()-1.
var extra atomic.Int32

// Workers returns the fan-out bound: the SetWorkers override when one is
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool size (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override so callers can restore it:
//
//	defer par.SetWorkers(par.SetWorkers(1))
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int32(n)))
}

// depthPubMu serializes poolDepth publications. Without it, a goroutine
// preempted between its CAS on extra and its gauge Set can publish a stale
// depth over a newer one (acquire CASes 0→1, a racing release publishes 0,
// the acquire's delayed Set then leaves the gauge stuck at 1 while the pool
// is idle). Acquires and releases happen once per participant per fan-out,
// not per item, so a mutex here is off the hot path.
var depthPubMu sync.Mutex

// publishDepth records the pool depth into the gauge and timeline. post is
// the depth the caller's own CAS just produced — published first so the
// .max high-water mark sees every transient peak — and the level is then
// recomputed from extra under the mutex, so a delayed publisher can never
// overwrite a newer level: the last publication to run reads the freshest
// depth, and the gauge converges to extra once publishers drain.
func publishDepth(post int32) {
	depthPubMu.Lock()
	poolDepth.Set(int64(post))
	cur := extra.Load()
	poolDepth.Set(int64(cur))
	sampleDepth(timeline.Load(), cur)
	depthPubMu.Unlock()
}

// tryAcquire claims one extra-goroutine slot, returning its 1-based index
// (the depth after the claim) for timeline labeling.
func tryAcquire() (int32, bool) {
	for {
		cur := extra.Load()
		if cur >= int32(Workers()-1) {
			return 0, false
		}
		if extra.CompareAndSwap(cur, cur+1) {
			poolSpawned.Inc()
			publishDepth(cur + 1)
			return cur + 1, true
		}
	}
}

func release() {
	publishDepth(extra.Add(-1))
}

// ForEach runs fn(i) for every i in [0, n), fanning out over the worker
// pool. It returns once every call has completed. With a pool size of 1
// (or no budget) the calls run on the calling goroutine in index order.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	tl := timeline.Load()
	if tl != nil {
		tl.Append(obs.Event{
			TS: tl.Now(), Track: tl.TrackID(poolTrack), Name: -1,
			Kind: obs.EvTaskEnqueue, Arg: int64(n),
		})
	}
	var next atomic.Int64
	work := func(slot string) {
		t0 := tl.Now()
		drained := 0
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				break
			}
			fn(i)
			drained++
		}
		if tl != nil {
			tl.Append(obs.Event{
				TS: t0, Dur: tl.Now() - t0, Track: tl.TrackID("par/" + slot), Name: -1,
				Kind: obs.EvTaskRun, Arg: int64(drained),
			})
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		slot, ok := tryAcquire()
		if !ok {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work("w" + strconv.Itoa(int(slot)))
		}()
	}
	work("caller")
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: every fn runs to completion and
// the error with the lowest index is returned (deterministic regardless of
// scheduling), or nil if all succeed.
func ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks splits [0, n) into contiguous ranges and runs fn(lo, hi) for each
// on the worker pool — for per-item work too cheap to dispatch one index at
// a time. Chunk boundaries carry no semantic weight: each item must still
// write only its own slot.
func Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	k := Workers()
	if k > 1 {
		// Oversubscribe so uneven per-item cost still balances.
		k *= 4
	}
	if k > n {
		k = n
	}
	ForEach(k, func(ci int) {
		fn(ci*n/k, (ci+1)*n/k)
	})
}

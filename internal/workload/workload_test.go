package workload

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
)

// testMatrix builds a matrix with a dense block (IMH) plus uniform
// background, like the hotcore tests do.
func testMatrix(t testing.TB, seed int64, n, blockN, blockNNZ, bgNNZ int) *sparse.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.NewCOO(n, 0)
	for i := 0; i < blockNNZ; i++ {
		m.Append(int32(rng.Intn(blockN)), int32(rng.Intn(blockN)), rng.Float64()+0.5)
	}
	for i := 0; i < bgNNZ; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64()+0.5)
	}
	m.SortRowMajor()
	m.DedupSum()
	return m
}

func smallArch() arch.Arch {
	a := arch.SpadeSextans(4)
	a.TileH, a.TileW = 64, 64
	return a
}

// TestGNNChainsLayersAgainstReference pins the forward pass numerically:
// layer i+1 must consume ReLU(layer i's output), matching the reference
// SpMM chained by hand.
func TestGNNChainsLayersAgainstReference(t *testing.T) {
	m := testMatrix(t, 1, 512, 64, 3000, 1500)
	a := smallArch()
	features := dense.NewRandom(rand.New(rand.NewSource(2)), m.N, a.K)

	const layers = 3
	res, err := GNN(context.Background(), m, &a, features, GNNConfig{Layers: layers})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerTimes) != layers {
		t.Fatalf("got %d layer times, want %d", len(res.LayerTimes), layers)
	}
	total := 0.0
	for i, lt := range res.LayerTimes {
		if lt <= 0 {
			t.Fatalf("layer %d: non-positive simulated time %g", i, lt)
		}
		// One plan, one timing model: every layer costs the same.
		if lt != res.LayerTimes[0] {
			t.Fatalf("layer %d time %g differs from layer 0 time %g under a shared plan",
				i, lt, res.LayerTimes[0])
		}
		total += lt
	}
	if total != res.SimTotal {
		t.Fatalf("SimTotal %g != sum of layer times %g", res.SimTotal, total)
	}

	// Reference: chain SpMM + ReLU by hand.
	h := features.Clone()
	for layer := 0; layer < layers; layer++ {
		next := dense.NewMatrix(m.N, a.K)
		if err := dense.SpMM(m, h, next); err != nil {
			t.Fatal(err)
		}
		if layer < layers-1 {
			relu(next)
		}
		h = next
	}
	if !res.Output.AlmostEqual(h, 1e-9) {
		d, _ := res.Output.MaxAbsDiff(h)
		t.Fatalf("GNN output differs from hand-chained reference by %g", d)
	}
}

func TestGNNNoReLUIsRepeatedSpMM(t *testing.T) {
	m := testMatrix(t, 3, 256, 64, 1500, 800)
	a := smallArch()
	features := dense.NewRandom(rand.New(rand.NewSource(4)), m.N, a.K)

	res, err := GNN(context.Background(), m, &a, features, GNNConfig{Layers: 2, NoReLU: true})
	if err != nil {
		t.Fatal(err)
	}
	h := features.Clone()
	for layer := 0; layer < 2; layer++ {
		next := dense.NewMatrix(m.N, a.K)
		if err := dense.SpMM(m, h, next); err != nil {
			t.Fatal(err)
		}
		h = next
	}
	if !res.Output.AlmostEqual(h, 1e-9) {
		t.Fatal("NoReLU output is not the plain repeated SpMM")
	}
}

func TestGNNValidation(t *testing.T) {
	m := testMatrix(t, 5, 256, 64, 1500, 800)
	a := smallArch()
	ctx := context.Background()
	if _, err := GNN(ctx, m, &a, nil, GNNConfig{Layers: 0}); err == nil {
		t.Fatal("Layers=0 accepted")
	}
	if _, err := GNN(ctx, m, &a, nil, GNNConfig{Layers: 1}); err == nil {
		t.Fatal("nil features accepted without SkipFunctional")
	}
	if _, err := GNN(ctx, m, &a, dense.NewMatrix(m.N, a.K+1), GNNConfig{Layers: 1}); err == nil {
		t.Fatal("mis-shaped features accepted")
	}
	if _, err := GNN(ctx, m, &a, nil, GNNConfig{Layers: 2, SkipFunctional: true}); err != nil {
		t.Fatalf("SkipFunctional with nil features: %v", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := GNN(canceled, m, &a, nil, GNNConfig{Layers: 1, SkipFunctional: true}); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func TestGNNTimelineRecordsLayers(t *testing.T) {
	m := testMatrix(t, 6, 256, 64, 1500, 800)
	a := smallArch()
	tl := obs.NewTimeline(1 << 14)
	_, err := GNN(context.Background(), m, &a, nil, GNNConfig{
		Layers: 2, SkipFunctional: true, Timeline: tl, Label: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events()) == 0 {
		t.Fatal("timeline recorded no events")
	}
}

// TestRunBatchMixedKernels verifies every kernel's functional output inside
// one mixed batch, plus the FIFO schedule bookkeeping.
func TestRunBatchMixedKernels(t *testing.T) {
	m := testMatrix(t, 7, 512, 64, 3000, 1500)
	a := smallArch()
	rng := rand.New(rand.NewSource(8))
	din := dense.NewRandom(rng, m.N, a.K)
	vec := dense.NewRandom(rng, m.N, 1)

	br, err := RunBatch(context.Background(), &a, []Request{
		{Name: "spmm", Matrix: m, Din: din},
		{Name: "spmv", Kernel: model.KernelSpMV, Matrix: m, Din: vec},
		{Name: "sddmm", Kernel: model.KernelSDDMM, Matrix: m, Din: din},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}

	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		t.Fatal(err)
	}
	if !br.Results[0].Output.AlmostEqual(want, 1e-9) {
		t.Fatal("SpMM output differs from reference")
	}
	wantVec := dense.NewMatrix(m.N, 1)
	if err := dense.SpMM(m, vec, wantVec); err != nil {
		t.Fatal(err)
	}
	if !br.Results[1].Output.AlmostEqual(wantVec, 1e-9) {
		t.Fatal("SpMV output differs from reference")
	}
	if len(br.Results[2].SDDMM) != m.NNZ() {
		t.Fatalf("SDDMM produced %d values, want %d", len(br.Results[2].SDDMM), m.NNZ())
	}

	// FIFO: requests laid back to back in submission order.
	clock := 0.0
	for i, r := range br.Results {
		if r.Time <= 0 {
			t.Fatalf("request %d: non-positive time", i)
		}
		if r.Start != clock || r.Finish != clock+r.Time {
			t.Fatalf("request %d: schedule [%g, %g] breaks FIFO at clock %g", i, r.Start, r.Finish, clock)
		}
		clock = r.Finish
	}
	if br.Makespan != clock {
		t.Fatalf("makespan %g != final clock %g", br.Makespan, clock)
	}
}

// TestRunBatchSharesPlans asserts the within-batch singleflight: N requests
// with one matrix and policy preprocess exactly once.
func TestRunBatchSharesPlans(t *testing.T) {
	m := testMatrix(t, 9, 512, 64, 3000, 1500)
	a := smallArch()

	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Matrix: m, SkipFunctional: true}
	}
	// One request with a different seedless policy still shares (same key);
	// one with a different strategy must not.
	reqs[5].Strategy = 1 // IUnaware
	br, err := RunBatch(context.Background(), &a, reqs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	builds := 0
	for _, r := range br.Results {
		if !r.PlanShared {
			builds++
		}
	}
	if builds != 2 {
		t.Fatalf("batch ran %d preprocessing builds, want 2 (one per distinct policy)", builds)
	}
}

// TestRunBatchDeterministic: the merge order and every simulated time are
// bit-identical between a serial and a parallel execution of the same batch.
func TestRunBatchDeterministic(t *testing.T) {
	m1 := testMatrix(t, 10, 512, 64, 3000, 1500)
	m2 := testMatrix(t, 11, 256, 64, 1500, 800)
	a := smallArch()
	din1 := dense.NewRandom(rand.New(rand.NewSource(12)), m1.N, a.K)
	din2 := dense.NewRandom(rand.New(rand.NewSource(13)), m2.N, a.K)
	reqs := []Request{
		{Name: "a", Matrix: m1, Din: din1},
		{Name: "b", Matrix: m2, Din: din2},
		{Name: "c", Kernel: model.KernelSpMV, Matrix: m1, Din: dense.NewRandom(rand.New(rand.NewSource(14)), m1.N, 1)},
		{Name: "d", Matrix: m1, Din: din1, Seed: 3, Strategy: 1},
	}

	run := func() *BatchResult {
		br, err := RunBatch(context.Background(), &a, reqs, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return br
	}
	parallel := run()
	defer par.SetWorkers(par.SetWorkers(1))
	serial := run()

	if parallel.Makespan != serial.Makespan {
		t.Fatalf("makespan differs: parallel %g, serial %g", parallel.Makespan, serial.Makespan)
	}
	for i := range reqs {
		p, s := parallel.Results[i], serial.Results[i]
		if p.Time != s.Time || p.Start != s.Start || p.Finish != s.Finish {
			t.Fatalf("request %d schedule differs between executions", i)
		}
		if p.Output != nil && !p.Output.Equal(s.Output) {
			t.Fatalf("request %d output differs between executions", i)
		}
	}
}

func TestRunBatchEmptyAndErrors(t *testing.T) {
	a := smallArch()
	br, err := RunBatch(context.Background(), &a, nil, BatchOptions{})
	if err != nil || br.Makespan != 0 || len(br.Results) != 0 {
		t.Fatalf("empty batch: %v %+v", err, br)
	}
	if _, err := RunBatch(context.Background(), &a, []Request{{}}, BatchOptions{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

package workload

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/hotcore"
	"repro/internal/obs"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// GNNConfig configures a multi-layer GNN forward pass.
type GNNConfig struct {
	// Layers is the number of aggregation layers (H ← ReLU(A·H) chained);
	// must be at least 1.
	Layers int
	// Strategy selects the partitioning method for the one amortized plan
	// (zero value: the full HotTiles method).
	Strategy hotcore.Strategy
	// OpsPerMAC is the arithmetic-intensity factor (0 means plain SpMM, 2).
	OpsPerMAC float64
	// Seed feeds IUnaware's random assignment.
	Seed int64
	// NoReLU disables the activation between layers (pure repeated SpMM).
	NoReLU bool
	// SkipFunctional runs timing only: no layer outputs are produced and
	// the features are never read, so sweeps can pass nil features.
	SkipFunctional bool
	// Timeline, when non-nil, receives each layer's simulator events,
	// labeled "<Label>/layer<i>"; Label defaults to "gnn".
	Timeline *obs.Timeline
	Label    string
}

// GNNResult reports one forward pass.
type GNNResult struct {
	// Plan is the preprocessing plan shared by every layer.
	Plan *hotcore.Prep
	// LayerTimes are the per-layer simulated runtimes in seconds. The
	// timing model is input-value independent, so with a fixed plan the
	// layers cost the same — that equality is itself the amortization
	// statement the paper makes.
	LayerTimes []float64
	// SimTotal is the summed simulated runtime of all layers.
	SimTotal float64
	// Output is the final layer's feature matrix (nil with SkipFunctional).
	Output *dense.Matrix
}

// GNN runs a multi-layer GNN forward pass on architecture a: partition the
// adjacency matrix once, then simulate layer after layer, feeding each
// layer's Dout through ReLU into the next layer's Din. The preprocessing
// plan is built exactly once — the paper's train-once/infer-many
// amortization — and ctx cancels both the pipeline (at stage boundaries)
// and the layer loop (between layers).
func GNN(ctx context.Context, m *sparse.COO, a *arch.Arch, features *dense.Matrix, cfg GNNConfig) (*GNNResult, error) {
	if cfg.OpsPerMAC == 0 {
		cfg.OpsPerMAC = 2
	}
	plan, err := hotcore.PreprocessCtx(ctx, m, a, hotcore.Options{
		Strategy:  cfg.Strategy,
		OpsPerMAC: cfg.OpsPerMAC,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return GNNWithPlan(ctx, plan, a, features, cfg)
}

// GNNWithPlan is GNN with a prebuilt (possibly cached or deserialized)
// plan — the hottilesd /gnn endpoint reuses planstore entries through this.
func GNNWithPlan(ctx context.Context, plan *hotcore.Prep, a *arch.Arch, features *dense.Matrix, cfg GNNConfig) (*GNNResult, error) {
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("workload: GNN needs at least 1 layer, got %d", cfg.Layers)
	}
	if plan == nil || plan.Grid == nil {
		return nil, fmt.Errorf("workload: nil plan")
	}
	if cfg.OpsPerMAC == 0 {
		cfg.OpsPerMAC = 2
	}
	if !cfg.SkipFunctional {
		if features == nil || features.N != plan.Grid.N || features.K != a.K {
			return nil, fmt.Errorf("workload: features must be %dx%d", plan.Grid.N, a.K)
		}
	}
	label := cfg.Label
	if label == "" {
		label = "gnn"
	}
	gnnRuns.Inc()

	sr := semiring.PlusTimes()
	sr.OpsPerMAC = cfg.OpsPerMAC
	res := &GNNResult{Plan: plan, LayerTimes: make([]float64, 0, cfg.Layers)}
	layers := cfg.Timeline.Track(label + "/layers")
	// Every layer simulates the same (grid, assignment, architecture): the
	// unit cache builds the pools on layer 0 and the remaining layers skip
	// construction (including the cold pool's cache-model replay) entirely.
	var units sim.UnitCache
	h := features
	for layer := 0; layer < cfg.Layers; layer++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("workload: GNN canceled at layer %d: %w", layer, cerr)
		}
		slice := layers.Start(fmt.Sprintf("layer%d", layer))
		r, err := sim.Run(plan.Grid, plan.Partition.Hot, a, h, sim.Options{
			Serial:         plan.Partition.Serial,
			Semiring:       &sr,
			SkipFunctional: cfg.SkipFunctional,
			Timeline:       cfg.Timeline,
			TimelineLabel:  fmt.Sprintf("%s/layer%d", label, layer),
			Units:          &units,
		})
		slice.End()
		if err != nil {
			return nil, fmt.Errorf("workload: GNN layer %d: %w", layer, err)
		}
		gnnLayers.Inc()
		res.LayerTimes = append(res.LayerTimes, r.Time)
		res.SimTotal += r.Time
		if !cfg.SkipFunctional {
			h = r.Output
			if layer < cfg.Layers-1 && !cfg.NoReLU {
				relu(h)
			}
		}
	}
	if !cfg.SkipFunctional {
		res.Output = h
	}
	return res, nil
}

package workload

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/hotcore"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// Request is one kernel invocation inside a multi-tenant batch: a matrix, a
// kernel, and a partitioning policy. Requests sharing the same matrix and
// policy share one preprocessing plan within the batch.
type Request struct {
	// Name labels the request in results and timelines (defaults to
	// "req<i>").
	Name string
	// Kernel selects SpMM (zero value), SpMV, or SDDMM.
	Kernel model.Kernel
	// Strategy and Seed configure the partitioner; OpsPerMAC is the
	// semiring intensity (0 means 2).
	Strategy  hotcore.Strategy
	OpsPerMAC float64
	Seed      int64
	// Matrix is the sparse operand.
	Matrix *sparse.COO
	// Din is the dense operand: N×K for SpMM, N×1 for SpMV, and the shared
	// U=V factor (N×K) for SDDMM. Ignored with SkipFunctional.
	Din *dense.Matrix
	// SkipFunctional runs timing only for this request.
	SkipFunctional bool
}

// RequestResult reports one request's simulated execution and its slot on
// the shared accelerator's FIFO schedule.
type RequestResult struct {
	Name   string
	Kernel model.Kernel
	// Time is the request's own simulated runtime; Start and Finish place
	// it on the shared clock (requests run back to back in submission
	// order, so Finish(i) = Start(i) + Time(i) and Start(i+1) = Finish(i)).
	Time, Start, Finish float64
	// PlanShared reports whether this request reused a plan built for an
	// earlier-keyed request in the same batch.
	PlanShared bool
	// Output is the functional SpMM/SpMV result; SDDMM holds the sampled
	// products for that kernel. Both nil with SkipFunctional.
	Output *dense.Matrix
	SDDMM  []float64
}

// BatchResult is the deterministic merge of a batch: per-request results in
// submission order and the shared-hardware makespan.
type BatchResult struct {
	Results  []RequestResult
	Makespan float64
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Timeline, when non-nil, records each request's simulator events under
	// "<Label>/<name>"; Label defaults to "batch".
	Timeline *obs.Timeline
	Label    string
}

// planKey identifies a shareable plan within one batch. The matrix is keyed
// by identity (pointer): batches name their operands by sharing *COO
// values, and identity keying keeps the cache from ever conflating two
// equal-but-distinct matrices.
func planKey(r *Request) string {
	return fmt.Sprintf("%p|%d|%d|%g|%d", r.Matrix, r.Strategy, r.Kernel, r.OpsPerMAC, r.Seed)
}

// RunBatch executes a mixed-kernel batch over one shared simulated
// accelerator. Preprocessing and per-request simulation fan out across the
// par pool (plans deduplicated by a singleflight cache, so N requests on
// one matrix preprocess once); the schedule merge is a serial pass in
// submission order — the determinism contract from internal/par — that
// lays the requests back to back on a single simulated clock, FIFO, as a
// non-preemptive accelerator queue would.
func RunBatch(ctx context.Context, a *arch.Arch, reqs []Request, opts BatchOptions) (*BatchResult, error) {
	if len(reqs) == 0 {
		return &BatchResult{}, nil
	}
	label := opts.Label
	if label == "" {
		label = "batch"
	}

	var plans par.Cache[string, *hotcore.Prep]
	// Requests that share a plan also share built unit pools: the batch's
	// unit cache keys on (grid, assignment, arch, kernel params), so only
	// the first request of each combination constructs pools.
	var units sim.UnitCache
	results := make([]RequestResult, len(reqs))
	shared := make([]bool, len(reqs)) // true when the cache had the plan built
	err := par.ForEachErr(len(reqs), func(i int) error {
		r := &reqs[i]
		if r.Matrix == nil {
			return fmt.Errorf("workload: batch request %d has no matrix", i)
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("req%d", i)
		}
		ops := r.OpsPerMAC
		if ops == 0 {
			ops = 2
		}
		built := false
		plan, err := plans.Get(planKey(r), func() (*hotcore.Prep, error) {
			built = true
			return hotcore.PreprocessCtx(ctx, r.Matrix, a, hotcore.Options{
				Strategy:  r.Strategy,
				OpsPerMAC: ops,
				Kernel:    r.Kernel,
				Seed:      r.Seed,
			})
		})
		if err != nil {
			return fmt.Errorf("workload: batch request %q: %w", name, err)
		}
		shared[i] = !built
		sr := semiring.PlusTimes()
		sr.OpsPerMAC = ops
		res, err := sim.Run(plan.Grid, plan.Partition.Hot, a, r.Din, sim.Options{
			Serial:         plan.Partition.Serial,
			Semiring:       &sr,
			SkipFunctional: r.SkipFunctional,
			Kernel:         r.Kernel,
			Timeline:       opts.Timeline,
			TimelineLabel:  label + "/" + name,
			Units:          &units,
		})
		if err != nil {
			return fmt.Errorf("workload: batch request %q: %w", name, err)
		}
		batchRequests.Inc()
		results[i] = RequestResult{
			Name:   name,
			Kernel: r.Kernel,
			Time:   res.Time,
			Output: res.Output,
			SDDMM:  res.SDDMM,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Serial reduction in submission order: the shared-accelerator FIFO.
	out := &BatchResult{Results: results}
	clock := 0.0
	for i := range out.Results {
		out.Results[i].PlanShared = shared[i]
		out.Results[i].Start = clock
		clock += out.Results[i].Time
		out.Results[i].Finish = clock
	}
	out.Makespan = clock
	return out, nil
}

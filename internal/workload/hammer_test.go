package workload

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestBatchHammerWithMetricsScrapes runs the multi-tenant executor from
// several goroutines while the debug plane's /metrics endpoint is scraped
// concurrently — the -race gate for the workload counters, the par pool,
// and the plan cache all being hit at once.
func TestBatchHammerWithMetricsScrapes(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test")
	}
	m1 := testMatrix(t, 30, 512, 64, 3000, 1500)
	m2 := testMatrix(t, 31, 256, 64, 1500, 800)
	a := smallArch()
	din := dense.NewRandom(rand.New(rand.NewSource(32)), m1.N, a.K)

	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()

	const (
		submitters = 4
		batches    = 5
		scrapes    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, submitters+1)

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				br, err := RunBatch(context.Background(), &a, []Request{
					{Name: "spmm", Matrix: m1, Din: din},
					{Name: "spmv", Kernel: model.KernelSpMV, Matrix: m2, SkipFunctional: true},
					{Name: "sddmm", Kernel: model.KernelSDDMM, Matrix: m1, SkipFunctional: true},
				}, BatchOptions{})
				if err != nil {
					errs <- err
					return
				}
				if br.Makespan <= 0 {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			if _, err := io.ReadAll(resp.Body); err != nil {
				resp.Body.Close()
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- io.ErrUnexpectedEOF
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package workload

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// BenchmarkGNNForward tracks the amortized forward pass: one plan, four
// simulated layers, timing only (the functional execute path is benchmarked
// in internal/sim).
func BenchmarkGNNForward(b *testing.B) {
	m := gen.PowerLaw(rand.New(rand.NewSource(1)), 4096, 16, 2.2)
	a := smallArch()
	cfg := GNNConfig{Layers: 4, SkipFunctional: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GNN(context.Background(), m, &a, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvolveReplan tracks the evolving-graph driver's worst case:
// every edit batch re-tiles, re-estimates, re-partitions (Threshold 0) and
// re-simulates.
func BenchmarkEvolveReplan(b *testing.B) {
	m := gen.PowerLaw(rand.New(rand.NewSource(2)), 4096, 16, 2.2)
	a := smallArch()
	batches, err := EditStream(3, m, 4, 500, 100)
	if err != nil {
		b.Fatal(err)
	}
	cfg := EvolveConfig{Threshold: 0, SkipFunctional: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evolve(context.Background(), m, &a, batches, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

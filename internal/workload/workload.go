// Package workload builds the dynamic workloads the paper motivates
// HotTiles with but never constructs: the multi-layer GNN inference loop
// that amortizes one preprocessing plan across layers (§VI-B: plans are
// "generated and used during GNN training ... saved and reused during GNN
// inference"), a batched multi-tenant executor that mixes SpMM/SpMV/SDDMM
// requests over one shared simulated accelerator, and an evolving-graph
// driver that applies edge insert/delete streams incrementally and
// re-partitions only when the analytical model says the active plan has
// gone stale (the staleness-vs-re-plan-cost trade-off, DESIGN.md §15).
//
// Everything here is deterministic given its seeds: simulated times come
// from the fluid simulator, assignments from the partitioner, and edit
// streams from seeded generators — which is what lets the experiment layer
// pin the gnn and evolve studies with byte-stable golden files.
package workload

import (
	"repro/internal/dense"
	"repro/internal/hotcore"
	"repro/internal/obs"
	"repro/internal/tile"
)

// Workload observability, surfaced on /metrics wherever the debug plane is
// mounted (hottilesd, spmmsim -debug-addr).
var (
	gnnRuns       = obs.NewCounter("workload.gnn.runs")
	gnnLayers     = obs.NewCounter("workload.gnn.layers")
	batchRequests = obs.NewCounter("workload.batch.requests")
	evolveSteps   = obs.NewCounter("workload.evolve.steps")
	evolveReplans = obs.NewCounter("workload.evolve.replans")
)

// relu clamps negatives to zero in place — the activation between GNN
// aggregation layers.
func relu(m *dense.Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// carryAssignment maps a plan's per-tile hot/cold decision onto a freshly
// tiled grid of a mutated matrix. Tiles keep the decision made for their
// (TR, TC) position at plan time; tiles that did not exist then (edits
// populated an empty region) default to cold — the cold pool's untiled
// traversal absorbs new structure without a re-plan, which is exactly the
// gradual degradation the drift trigger watches for.
func carryAssignment(plan *hotcore.Prep, g *tile.Grid) []bool {
	hotAt := make(map[[2]int]bool, len(plan.Grid.Tiles))
	for i := range plan.Grid.Tiles {
		t := &plan.Grid.Tiles[i]
		hotAt[[2]int{t.TR, t.TC}] = plan.Partition.Hot[i]
	}
	hot := make([]bool, len(g.Tiles))
	for i := range g.Tiles {
		hot[i] = hotAt[[2]int{g.Tiles[i].TR, g.Tiles[i].TC}]
	}
	return hot
}

package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/hotcore"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// EvolveConfig configures an evolving-graph run.
type EvolveConfig struct {
	// Strategy, OpsPerMAC and Seed configure every (re-)partitioning.
	Strategy  hotcore.Strategy
	OpsPerMAC float64
	Seed      int64
	// Threshold is the relative drift that triggers a re-plan: after a
	// batch of edits, the estimator re-predicts the stale plan's runtime on
	// the mutated matrix, and when |stale − planned| / planned ≥ Threshold
	// the matrix is re-partitioned from scratch. 0 re-plans after every
	// batch; a negative threshold never re-plans (pure staleness).
	Threshold float64
	// Din is the dense operand simulated after each batch (nil allowed with
	// SkipFunctional).
	Din *dense.Matrix
	// SkipFunctional runs timing only.
	SkipFunctional bool
	// Timeline, when non-nil, records each step's simulator events under
	// "<Label>/step<i>"; Label defaults to "evolve".
	Timeline *obs.Timeline
	Label    string
}

// EvolveStep reports one edit batch: the drift the estimator saw, whether
// it crossed the threshold, and the simulated time of the inference run
// that followed.
type EvolveStep struct {
	// Edits is the batch size; NNZ the matrix size after applying it.
	Edits, NNZ int
	// PlanPred is the active plan's predicted runtime at plan time;
	// StalePred is the estimator's prediction for that same (possibly
	// stale) assignment on the mutated matrix; Drift is their relative gap.
	PlanPred, StalePred, Drift float64
	// Replanned reports whether this step re-partitioned.
	Replanned bool
	// SimTime is the simulated runtime of the post-edit inference run.
	SimTime float64
}

// EvolveResult reports a whole evolving-graph run.
type EvolveResult struct {
	Steps []EvolveStep
	// Replans counts the steps that re-partitioned; SimTotal sums every
	// step's simulated time (re-planning cost is accounted by the
	// experiment layer, which prices a re-plan in units of simulated
	// inference time).
	Replans  int
	SimTotal float64
	// Plan is the plan active after the last step; Matrix the final
	// evolved matrix (the caller's input is never mutated).
	Plan   *hotcore.Prep
	Matrix *sparse.COO
}

// Drift returns the relative prediction gap |stale − planned| / planned —
// the staleness signal the re-plan trigger thresholds.
func Drift(planPred, stalePred float64) float64 {
	if planPred <= 0 {
		return 0
	}
	return math.Abs(stalePred-planPred) / planPred
}

// ShouldReplan decides the trigger: re-plan when drift ≥ threshold, with a
// negative threshold meaning "never". Monotone in drift by construction —
// if drift d fires, every d' > d fires (the property test pins this).
func ShouldReplan(threshold, drift float64) bool {
	return threshold >= 0 && drift >= threshold
}

// Evolve applies batches of edge edits to a working copy of m, maintaining
// the matrix incrementally (sparse.ApplyEdits) and the plan lazily: after
// each batch it re-tiles, carries the stale plan's hot/cold decisions onto
// the new grid, asks the analytical model what that stale assignment now
// costs, and re-partitions — cancellably, through PreprocessCtx — only when
// the predicted runtime has drifted past cfg.Threshold. Each batch ends
// with one simulated inference run on whatever plan is active, so the
// result exposes exactly the staleness-vs-re-plan-cost trade-off.
func Evolve(ctx context.Context, m *sparse.COO, a *arch.Arch, batches [][]sparse.Edit, cfg EvolveConfig) (*EvolveResult, error) {
	if cfg.OpsPerMAC == 0 {
		cfg.OpsPerMAC = 2
	}
	label := cfg.Label
	if label == "" {
		label = "evolve"
	}
	popts := hotcore.Options{Strategy: cfg.Strategy, OpsPerMAC: cfg.OpsPerMAC, Seed: cfg.Seed}
	sr := semiring.PlusTimes()
	sr.OpsPerMAC = cfg.OpsPerMAC
	pcfg := a.Config(cfg.OpsPerMAC)

	cur := m.Clone()
	plan, err := hotcore.PreprocessCtx(ctx, cur, a, popts)
	if err != nil {
		return nil, err
	}
	res := &EvolveResult{Steps: make([]EvolveStep, 0, len(batches)), Plan: plan}
	steps := cfg.Timeline.Track(label + "/steps")
	for step, edits := range batches {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("workload: evolve canceled at step %d: %w", step, cerr)
		}
		slice := steps.Start(fmt.Sprintf("step%d", step))
		st, err := evolveStep(ctx, cur, a, plan, edits, &pcfg, &sr, cfg, label, step)
		slice.End()
		if err != nil {
			return nil, err
		}
		evolveSteps.Inc()
		if st.replanned {
			evolveReplans.Inc()
			res.Replans++
			plan = st.plan
			res.Plan = plan
		}
		res.Steps = append(res.Steps, st.report)
		res.SimTotal += st.report.SimTime
	}
	res.Matrix = cur
	return res, nil
}

type stepOutcome struct {
	report    EvolveStep
	replanned bool
	plan      *hotcore.Prep
}

// evolveStep applies one edit batch and runs the post-edit inference.
func evolveStep(ctx context.Context, cur *sparse.COO, a *arch.Arch, plan *hotcore.Prep, edits []sparse.Edit, pcfg *partition.Config, sr *semiring.Semiring, cfg EvolveConfig, label string, step int) (stepOutcome, error) {
	var out stepOutcome
	if err := cur.ApplyEdits(edits); err != nil {
		return out, fmt.Errorf("workload: evolve step %d: %w", step, err)
	}
	g, err := tile.Partition(cur, a.TileH, a.TileW)
	if err != nil {
		return out, fmt.Errorf("workload: evolve step %d: %w", step, err)
	}
	es, err := partition.NewEstimates(g, pcfg)
	if err != nil {
		return out, fmt.Errorf("workload: evolve step %d: %w", step, err)
	}
	hot := carryAssignment(plan, g)
	stalePred, _, err := partition.PredictFrom(es, pcfg, hot, plan.Partition.Serial)
	if err != nil {
		return out, fmt.Errorf("workload: evolve step %d: %w", step, err)
	}
	drift := Drift(plan.Partition.Predicted, stalePred)
	out.report = EvolveStep{
		Edits:     len(edits),
		NNZ:       cur.NNZ(),
		PlanPred:  plan.Partition.Predicted,
		StalePred: stalePred,
		Drift:     drift,
	}
	grid, serial := g, plan.Partition.Serial
	if ShouldReplan(cfg.Threshold, drift) {
		fresh, perr := hotcore.PreprocessCtx(ctx, cur, a, hotcore.Options{
			Strategy: cfg.Strategy, OpsPerMAC: cfg.OpsPerMAC, Seed: cfg.Seed,
		})
		if perr != nil {
			return out, fmt.Errorf("workload: evolve step %d re-plan: %w", step, perr)
		}
		out.replanned = true
		out.plan = fresh
		out.report.Replanned = true
		grid, hot, serial = fresh.Grid, fresh.Partition.Hot, fresh.Partition.Serial
	}
	r, err := sim.Run(grid, hot, a, cfg.Din, sim.Options{
		Serial:         serial,
		Semiring:       sr,
		SkipFunctional: cfg.SkipFunctional,
		Timeline:       cfg.Timeline,
		TimelineLabel:  fmt.Sprintf("%s/step%d", label, step),
	})
	if err != nil {
		return out, fmt.Errorf("workload: evolve step %d: %w", step, err)
	}
	out.report.SimTime = r.Time
	return out, nil
}

// EditStream generates a deterministic evolving-graph workload: steps
// batches of edits against matrix m, each inserting insertsPer edges —
// preferential attachment, half the inserts reuse an existing edge's row,
// so hot rows get hotter and the plan's hot/cold split actually drifts —
// and deleting deletesPer existing edges uniformly. A shadow copy of the
// matrix tracks the evolving edge set so deletes always name live edges;
// the caller's matrix is not mutated. Values are drawn in [0.5, 1.5) to
// keep edits from cancelling nonzeros accidentally.
func EditStream(seed int64, m *sparse.COO, steps, insertsPer, deletesPer int) ([][]sparse.Edit, error) {
	rng := rand.New(rand.NewSource(seed))
	shadow := m.Clone()
	batches := make([][]sparse.Edit, 0, steps)
	for s := 0; s < steps; s++ {
		edits := make([]sparse.Edit, 0, insertsPer+deletesPer)
		for i := 0; i < insertsPer; i++ {
			var row int32
			if shadow.NNZ() > 0 && rng.Intn(2) == 0 {
				row = shadow.Rows[rng.Intn(shadow.NNZ())]
			} else {
				row = int32(rng.Intn(m.N))
			}
			edits = append(edits, sparse.Edit{
				Row: row,
				Col: int32(rng.Intn(m.N)),
				Val: rng.Float64() + 0.5,
			})
		}
		for i := 0; i < deletesPer && shadow.NNZ() > 0; i++ {
			j := rng.Intn(shadow.NNZ())
			edits = append(edits, sparse.Edit{Row: shadow.Rows[j], Col: shadow.Cols[j], Del: true})
		}
		if err := shadow.ApplyEdits(edits); err != nil {
			return nil, fmt.Errorf("workload: edit stream step %d: %w", s, err)
		}
		batches = append(batches, edits)
	}
	return batches, nil
}

package workload

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/hotcore"
	"repro/internal/sparse"
)

// TestShouldReplanMonotone is the trigger property: for any threshold, if
// drift D fires a re-plan, every D' > D fires too; and a negative
// threshold never fires.
func TestShouldReplanMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 1000; trial++ {
		threshold := rng.Float64()*2 - 0.5 // includes negatives
		d := rng.Float64() * 2
		dPrime := d + rng.Float64() // d' > d
		if ShouldReplan(threshold, d) && !ShouldReplan(threshold, dPrime) {
			t.Fatalf("threshold %g: drift %g fired but larger drift %g did not", threshold, d, dPrime)
		}
		if threshold < 0 && ShouldReplan(threshold, d) {
			t.Fatalf("negative threshold %g fired at drift %g", threshold, d)
		}
	}
	if !ShouldReplan(0, 0) {
		t.Fatal("threshold 0 must re-plan unconditionally")
	}
}

// TestEvolveReplanMatchesScratchPlan is the byte-identity property: with
// Threshold = 0 (re-plan every step), the plan held after the last step
// must gob-serialize byte-identically to a plan built from scratch — on a
// matrix rebuilt from scratch, not the incrementally-maintained one — with
// the same seed.
func TestEvolveReplanMatchesScratchPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 3; trial++ {
		m := testMatrix(t, int64(17+trial), 512, 64, 3000, 1500)
		a := smallArch()
		batches, err := EditStream(int64(23+trial), m, 4, 200, 50)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evolve(context.Background(), m, &a, batches, EvolveConfig{
			Threshold: 0, Seed: 42, SkipFunctional: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Replans != len(batches) {
			t.Fatalf("trial %d: threshold 0 re-planned %d/%d steps", trial, res.Replans, len(batches))
		}

		// Rebuild the final matrix from scratch: shuffle its triplets into
		// a fresh COO and restore the row-major invariant, so the scratch
		// path shares no state with the incremental one.
		scratch := sparse.NewCOO(res.Matrix.N, res.Matrix.NNZ())
		for _, i := range rng.Perm(res.Matrix.NNZ()) {
			r, c, v := res.Matrix.At(i)
			scratch.Append(r, c, v)
		}
		scratch.SortRowMajor()

		fromScratch, err := hotcore.PreprocessCtx(context.Background(), scratch, &a, hotcore.Options{
			OpsPerMAC: 2, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got, want bytes.Buffer
		if err := hotcore.WritePlan(&got, res.Plan); err != nil {
			t.Fatal(err)
		}
		if err := hotcore.WritePlan(&want, fromScratch); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("trial %d: evolved re-plan (%d bytes) is not byte-identical to the scratch plan (%d bytes)",
				trial, got.Len(), want.Len())
		}
	}
}

// TestEvolveThresholdSweepMonotone runs one edit stream under a descending
// threshold ladder and checks the end-to-end consequence of the trigger's
// monotonicity: lowering the threshold never reduces the re-plan count,
// and the extremes behave ("never" re-plans zero times, "always" re-plans
// every step).
func TestEvolveThresholdSweepMonotone(t *testing.T) {
	m := testMatrix(t, 20, 512, 64, 3000, 1500)
	a := smallArch()
	batches, err := EditStream(21, m, 5, 400, 100)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{-1, 0.5, 0.2, 0.1, 0.05, 0.02, 0}
	prev := -1
	for _, th := range thresholds {
		res, err := Evolve(context.Background(), m, &a, batches, EvolveConfig{
			Threshold: th, SkipFunctional: true,
		})
		if err != nil {
			t.Fatalf("threshold %g: %v", th, err)
		}
		if res.Replans < prev {
			t.Fatalf("threshold %g re-planned %d times, fewer than the higher threshold's %d",
				th, res.Replans, prev)
		}
		prev = res.Replans
		if len(res.Steps) != len(batches) {
			t.Fatalf("threshold %g: %d steps reported, want %d", th, len(res.Steps), len(batches))
		}
		for i, st := range res.Steps {
			if st.SimTime <= 0 {
				t.Fatalf("threshold %g step %d: non-positive sim time", th, i)
			}
			if st.Replanned != ShouldReplan(th, st.Drift) {
				t.Fatalf("threshold %g step %d: Replanned=%v contradicts trigger at drift %g",
					th, i, st.Replanned, st.Drift)
			}
		}
	}
	never, err := Evolve(context.Background(), m, &a, batches, EvolveConfig{
		Threshold: -1, SkipFunctional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if never.Replans != 0 {
		t.Fatalf("negative threshold re-planned %d times", never.Replans)
	}
}

// TestEvolveDoesNotMutateInput pins the working-copy contract.
func TestEvolveDoesNotMutateInput(t *testing.T) {
	m := testMatrix(t, 22, 256, 64, 1500, 800)
	before := m.Clone()
	a := smallArch()
	batches, err := EditStream(23, m, 2, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evolve(context.Background(), m, &a, batches, EvolveConfig{
		Threshold: 0.1, SkipFunctional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != before.NNZ() {
		t.Fatal("Evolve mutated the caller's matrix")
	}
	for i := 0; i < m.NNZ(); i++ {
		r0, c0, v0 := before.At(i)
		r1, c1, v1 := m.At(i)
		if r0 != r1 || c0 != c1 || v0 != v1 {
			t.Fatal("Evolve mutated the caller's matrix")
		}
	}
	if res.Matrix.NNZ() == m.NNZ() {
		t.Fatal("evolved matrix did not change size despite net edge growth")
	}
}

// TestEditStreamDeterministic: same seed, same stream.
func TestEditStreamDeterministic(t *testing.T) {
	m := testMatrix(t, 24, 256, 64, 1500, 800)
	a, err := EditStream(7, m, 3, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EditStream(7, m, 3, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("stream lengths differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch %d edit %d differs", i, j)
			}
		}
	}
}

// TestEvolveCancel: a canceled context stops the step loop.
func TestEvolveCancel(t *testing.T) {
	m := testMatrix(t, 25, 256, 64, 1500, 800)
	a := smallArch()
	batches, err := EditStream(26, m, 2, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evolve(ctx, m, &a, batches, EvolveConfig{SkipFunctional: true}); err == nil {
		t.Fatal("canceled context accepted")
	}
}

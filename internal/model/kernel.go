package model

import "fmt"

// Kernel selects the sparse kernel being modeled. The paper's §X notes that
// HotTiles applies directly to SpMV and SDDMM, which share SpMM's access
// pattern; this implementation supports all three end to end.
type Kernel int

const (
	// KernelSpMM: Dout[N×K] += A[N×N] · Din[N×K]. Each nonzero reads a Din
	// row (by c_id) and read-modify-writes a Dout row (by r_id).
	KernelSpMM Kernel = iota
	// KernelSpMV is SpMM with K = 1 (a dense vector). It is modeled
	// identically; callers set Params.K = 1.
	KernelSpMV
	// KernelSDDMM: Out[r,c] = A[r,c] · ⟨U[r,:], V[c,:]⟩ for every nonzero
	// of A. Each nonzero reads a V row (by c_id, like SpMM's Din) and a U
	// row (by r_id, like SpMM's Dout read), but the output is *sparse*:
	// one value per nonzero is written instead of dense rows.
	KernelSDDMM
)

func (k Kernel) String() string {
	switch k {
	case KernelSpMM:
		return "SpMM"
	case KernelSpMV:
		return "SpMV"
	case KernelSDDMM:
		return "SDDMM"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Validate rejects unknown kernels and inconsistent parameters.
func (p Params) Validate() error {
	if p.K <= 0 || p.OpsPerMAC <= 0 {
		return fmt.Errorf("model: invalid params K=%d ops=%g", p.K, p.OpsPerMAC)
	}
	switch p.Kernel {
	case KernelSpMM, KernelSDDMM:
	case KernelSpMV:
		if p.K != 1 {
			return fmt.Errorf("model: SpMV requires K=1, got %d", p.K)
		}
	default:
		return fmt.Errorf("model: unknown kernel %d", int(p.Kernel))
	}
	return nil
}

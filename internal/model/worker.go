package model

import "fmt"

// WorkerKind distinguishes the two PE classes of a heterogeneous
// architecture.
type WorkerKind int

const (
	// Hot workers suit compute-bound, denser tiles (paper §III-A).
	Hot WorkerKind = iota
	// Cold workers suit memory-bound, sparser tiles.
	Cold
)

func (k WorkerKind) String() string {
	if k == Hot {
		return "hot"
	}
	return "cold"
}

// Worker captures the architecture traits the model needs for one PE type
// (the list the user supplies per paper §VI-B): computational throughput,
// worker count, reuse types, sparse format, task overlap, and the
// data-driven visible latency per byte.
type Worker struct {
	Name string
	Kind WorkerKind
	// Count is the number of PEs of this type operating in parallel (N_hw
	// or N_cw in Equation 2).
	Count int

	// FreqHz is the PE clock. MACsPerCycle is the number of K-wide SIMD
	// multiply-accumulates issued per cycle (Table IV's "SIMD MACs/Cycle").
	// Peak FLOP/s for plain SpMM is 2·K·MACsPerCycle·FreqHz.
	FreqHz       float64
	MACsPerCycle float64
	// NNZPerCycle, when positive, overrides MAC-based compute time: the
	// worker retires this many nonzeros per cycle regardless of arithmetic
	// intensity (the enhanced Sextans of the +PCIe architecture, §VII-A).
	NNZPerCycle float64

	// VisLatPerByte is the visible latency per byte in seconds (§IV-B): the
	// per-task memory time is bytes × VisLatPerByte. It captures how much
	// memory latency the worker fails to hide and is set by calibration.
	VisLatPerByte float64

	// Format is the sparse compression format the worker consumes.
	Format SparseFormat
	// DinReuse and DoutReuse are the worker's Table III reuse types.
	DinReuse, DoutReuse ReuseType
	// TiledTraversal selects Figure 6(b) (true) or 6(a) (false). It decides
	// the readjustment semantics for inter-tile Dout reuse: a tiled streamer
	// re-streams whole tiles, an untiled worker touches unique rows.
	TiledTraversal bool

	// OverlapGroups partitions the five tasks: tasks within a group overlap
	// (their times combine with max), groups execute back to back (times
	// sum). A fully-overlapping worker has one group; a fully serial one has
	// five.
	OverlapGroups [][]Task

	// ElemBytes is the storage width of matrix values (4 for the
	// SPADE-Sextans experiments, 8 for PIUMA); IdxBytes the width of index
	// items.
	ElemBytes, IdxBytes int

	// ScratchpadBytes bounds the dense tile a streaming worker can hold; 0
	// means no scratchpad. Used to validate tile sizes (§IV: tile dims must
	// not overflow any worker's scratchpad).
	ScratchpadBytes int

	// MaxStreamBW is the worker pool's aggregate peak memory bandwidth in
	// bytes/s (e.g. the PCIe link for an off-die Sextans); 0 means limited
	// only by the shared memory system. Used by the simulator.
	MaxStreamBW float64
}

// PeakFLOPs returns the worker's peak FLOP/s for the given K and ops factor
// (opsPerMAC=2 is plain SpMM; gSpMM semirings scale it).
func (w *Worker) PeakFLOPs(k int, opsPerMAC float64) float64 {
	if w.NNZPerCycle > 0 {
		// Fixed nonzero rate: effective FLOP/s grows with intensity.
		return w.NNZPerCycle * w.FreqHz * float64(k) * opsPerMAC
	}
	return w.MACsPerCycle * w.FreqHz * float64(k) * 2
}

// ComputeTime returns the time to execute the arithmetic for nnz nonzeros.
func (w *Worker) ComputeTime(nnz, k int, opsPerMAC float64) float64 {
	if nnz == 0 {
		return 0
	}
	if w.NNZPerCycle > 0 {
		return float64(nnz) / (w.NNZPerCycle * w.FreqHz)
	}
	flops := float64(nnz) * float64(k) * opsPerMAC
	return flops / (w.MACsPerCycle * w.FreqHz * float64(k) * 2)
}

// Validate checks the worker description for consistency.
func (w *Worker) Validate() error {
	if w.Count <= 0 {
		return fmt.Errorf("model: worker %s has count %d", w.Name, w.Count)
	}
	if w.FreqHz <= 0 || (w.MACsPerCycle <= 0 && w.NNZPerCycle <= 0) {
		return fmt.Errorf("model: worker %s has no compute capability", w.Name)
	}
	if w.VisLatPerByte < 0 {
		return fmt.Errorf("model: worker %s has negative vis_lat", w.Name)
	}
	if w.ElemBytes <= 0 || w.IdxBytes <= 0 {
		return fmt.Errorf("model: worker %s has invalid element/index widths", w.Name)
	}
	seen := make(map[Task]bool, numTasks)
	for _, g := range w.OverlapGroups {
		for _, t := range g {
			if t < 0 || t >= numTasks {
				return fmt.Errorf("model: worker %s overlap group references unknown task %d", w.Name, t)
			}
			if seen[t] {
				return fmt.Errorf("model: worker %s task %v in multiple overlap groups", w.Name, t)
			}
			seen[t] = true
		}
	}
	if len(seen) != int(numTasks) {
		return fmt.Errorf("model: worker %s overlap groups cover %d/%d tasks", w.Name, len(seen), numTasks)
	}
	return nil
}

// FullOverlap is the overlap structure of a worker that overlaps all five
// tasks (execution time = longest task).
func FullOverlap() [][]Task {
	return [][]Task{{TaskReadA, TaskReadDin, TaskReadDout, TaskCompute, TaskWriteDout}}
}

// NoOverlap is the overlap structure of a worker that serializes all tasks.
func NoOverlap() [][]Task {
	return [][]Task{{TaskReadA}, {TaskReadDin}, {TaskReadDout}, {TaskCompute}, {TaskWriteDout}}
}

// StreamOverlap models a scratchpad streamer that overlaps the input
// streams with compute but serializes the output write-back phase.
func StreamOverlap() [][]Task {
	return [][]Task{{TaskReadA, TaskReadDin, TaskReadDout, TaskCompute}, {TaskWriteDout}}
}

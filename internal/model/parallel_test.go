package model

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// TestEstimateGridParallelMatchesSerial is the determinism property test
// for the parallel EstimateGrid: on random matrices and varied worker
// models, the chunked parallel evaluation must be bit-identical
// (reflect.DeepEqual, no tolerance) to a serial per-tile loop.
func TestEstimateGridParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workers := []*Worker{
		testWorker(Cold),
		func() *Worker {
			w := testWorker(Hot)
			w.MACsPerCycle = 20
			w.DinReuse = ReuseIntraStream
			w.DoutReuse = ReuseInter
			w.TiledTraversal = true
			return w
		}(),
		func() *Worker {
			w := testWorker(Cold)
			w.Format = FormatCSR
			w.DoutReuse = ReuseIntraDemand
			w.ScratchpadBytes = 1 << 14
			return w
		}(),
	}
	p := Params{K: 16, OpsPerMAC: 2}

	for trial := 0; trial < 5; trial++ {
		n := 64 + rng.Intn(192)
		nnz := 1 + rng.Intn(4*n)
		m := sparse.NewCOO(n, nnz)
		for i := 0; i < nnz; i++ {
			m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		m.SortRowMajor()
		g, err := tile.Partition(m, 32, 32)
		if err != nil {
			t.Fatal(err)
		}
		for wi, w := range workers {
			serial := make([]Estimate, len(g.Tiles))
			func() {
				defer par.SetWorkers(par.SetWorkers(1))
				for i := range g.Tiles {
					serial[i] = EstimateTile(w, &g.Tiles[i], g, p)
				}
			}()
			var parallel []Estimate
			func() {
				defer par.SetWorkers(par.SetWorkers(8))
				parallel = EstimateGrid(w, g, p)
			}()
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("trial %d worker %d: parallel EstimateGrid differs from serial", trial, wi)
			}
		}
	}
}

package model

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/tile"
)

func testWorker(kind WorkerKind) *Worker {
	return &Worker{
		Name:          "test",
		Kind:          kind,
		Count:         1,
		FreqHz:        1e9,
		MACsPerCycle:  1,
		VisLatPerByte: 1e-9,
		Format:        FormatCOO,
		DinReuse:      ReuseNone,
		DoutReuse:     ReuseIntraDemand,
		OverlapGroups: FullOverlap(),
		ElemBytes:     4,
		IdxBytes:      4,
	}
}

func TestTableIDenseRows(t *testing.T) {
	// Table I, upper subtable.
	cases := []struct {
		r          ReuseType
		dim, uniq  int
		nnz, wantN int
	}{
		{ReuseInter, 8, 3, 5, 0},
		{ReuseIntraStream, 8, 3, 5, 8},
		{ReuseIntraDemand, 8, 3, 5, 3},
		{ReuseNone, 8, 3, 5, 5},
	}
	for _, c := range cases {
		if got := DenseRowsAccessed(c.r, c.dim, c.uniq, c.nnz); got != c.wantN {
			t.Errorf("%v: rows = %d, want %d", c.r, got, c.wantN)
		}
	}
}

func TestTableISparseItems(t *testing.T) {
	// Table I, bottom subtable: COO 3·nnz, CSR tile_height + 2·nnz.
	if got := SparseItemsAccessed(FormatCOO, 10, 4); got != 30 {
		t.Errorf("COO items = %d, want 30", got)
	}
	if got := SparseItemsAccessed(FormatCSR, 10, 4); got != 24 {
		t.Errorf("CSR items = %d, want 24", got)
	}
}

func TestSparseBytes(t *testing.T) {
	// COO: 2 index items + 1 value per nonzero.
	if got := SparseBytesAccessed(FormatCOO, 10, 4, 4, 4); got != 120 {
		t.Errorf("COO bytes = %d, want 120", got)
	}
	// CSR: (nnz + height) indices + nnz values.
	if got := SparseBytesAccessed(FormatCSR, 10, 4, 4, 8); got != (10+4)*4+10*8 {
		t.Errorf("CSR bytes = %d", got)
	}
}

func TestStringers(t *testing.T) {
	if ReuseNone.String() != "none" || ReuseIntraStream.String() != "intra-tile (stream)" ||
		ReuseIntraDemand.String() != "intra-tile (demand)" || ReuseInter.String() != "inter-tile" {
		t.Fatal("ReuseType.String broken")
	}
	if ReuseType(99).String() == "" || Task(99).String() == "" {
		t.Fatal("fallback strings empty")
	}
	if FormatCOO.String() != "COO-like" || FormatCSR.String() != "CSR-like" {
		t.Fatal("SparseFormat.String broken")
	}
	if Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatal("WorkerKind.String broken")
	}
	for task := TaskReadA; task < numTasks; task++ {
		if task.String() == "" {
			t.Fatalf("task %d has empty name", task)
		}
	}
}

// fig3Grid builds the two tiles of the paper's Figure 3: T1 with a single
// nonzero and T2 with five nonzeros over three distinct columns.
func fig3Grid(t *testing.T) *tile.Grid {
	t.Helper()
	m := sparse.NewCOO(6, 6)
	m.Append(0, 0, 1)
	m.Append(3, 3, 1)
	m.Append(3, 4, 1)
	m.Append(4, 4, 1)
	m.Append(4, 5, 1)
	m.Append(5, 3, 1)
	m.SortRowMajor()
	g, err := tile.Partition(m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFig3Motivation reproduces the paper's motivating example: for the
// sparse tile T1 the cold (demand) worker fetches 1 Din row vs the hot
// (streaming) worker's 3; for the denser T2 the cold worker fetches 5 rows
// vs the hot worker's 3.
func TestFig3Motivation(t *testing.T) {
	g := fig3Grid(t)
	cold := testWorker(Cold)
	cold.DinReuse = ReuseNone
	hot := testWorker(Hot)
	hot.DinReuse = ReuseIntraStream

	p := Params{K: 1, OpsPerMAC: 2}
	rowBytes := float64(p.K * 4)

	dinRows := func(w *Worker, ti int) float64 {
		b := taskBytes(w, &g.Tiles[ti], g, p)
		return b[TaskReadDin] / rowBytes
	}
	if got := dinRows(cold, 0); got != 1 {
		t.Errorf("cold T1 Din rows = %g, want 1", got)
	}
	if got := dinRows(hot, 0); got != 3 {
		t.Errorf("hot T1 Din rows = %g, want 3", got)
	}
	if got := dinRows(cold, 1); got != 5 {
		t.Errorf("cold T2 Din rows = %g, want 5", got)
	}
	if got := dinRows(hot, 1); got != 3 {
		t.Errorf("hot T2 Din rows = %g, want 3", got)
	}
}

func TestEstimateTileOverlapSemantics(t *testing.T) {
	g := fig3Grid(t)
	p := Params{K: 4, OpsPerMAC: 2}

	w := testWorker(Cold)
	w.OverlapGroups = FullOverlap()
	full := EstimateTile(w, &g.Tiles[1], g, p)

	w2 := testWorker(Cold)
	w2.OverlapGroups = NoOverlap()
	serial := EstimateTile(w2, &g.Tiles[1], g, p)

	if full.Bytes != serial.Bytes {
		t.Fatalf("overlap must not change traffic: %g vs %g", full.Bytes, serial.Bytes)
	}
	if full.Time >= serial.Time {
		t.Fatalf("full overlap (%.3e) should be faster than serial (%.3e)", full.Time, serial.Time)
	}
	// Full overlap equals the max task; serial equals the sum.
	est := newEstimator(w, g, p)
	b := est.taskBytes(&g.Tiles[1])
	maxT, sumT := 0.0, w.ComputeTime(5, p.K, p.OpsPerMAC)
	cmp := w.ComputeTime(5, p.K, p.OpsPerMAC)
	for _, by := range b {
		tt := by * w.VisLatPerByte
		sumT += tt
		if tt > maxT {
			maxT = tt
		}
	}
	if cmp > maxT {
		maxT = cmp
	}
	if math.Abs(full.Time-maxT) > 1e-18 || math.Abs(serial.Time-sumT) > 1e-18 {
		t.Fatalf("overlap math: full %.3e want %.3e; serial %.3e want %.3e",
			full.Time, maxT, serial.Time, sumT)
	}
}

func TestEstimateGridMatchesPerTile(t *testing.T) {
	g := fig3Grid(t)
	w := testWorker(Cold)
	p := Params{K: 8, OpsPerMAC: 2}
	all := EstimateGrid(w, g, p)
	if len(all) != len(g.Tiles) {
		t.Fatal("length mismatch")
	}
	for i := range g.Tiles {
		if all[i] != EstimateTile(w, &g.Tiles[i], g, p) {
			t.Fatalf("tile %d estimate differs", i)
		}
	}
}

func TestComputeTimeModes(t *testing.T) {
	w := testWorker(Hot)
	w.MACsPerCycle = 2
	w.FreqHz = 1e9
	// 1000 nonzeros, K=32: 1000 K-wide MACs at 2/cycle = 500 cycles.
	if got := w.ComputeTime(1000, 32, 2); math.Abs(got-500e-9) > 1e-15 {
		t.Fatalf("MAC compute time = %g, want 5e-7", got)
	}
	// Doubling arithmetic intensity doubles MAC-mode time.
	if got := w.ComputeTime(1000, 32, 4); math.Abs(got-1000e-9) > 1e-15 {
		t.Fatalf("scaled compute time = %g, want 1e-6", got)
	}
	// NNZPerCycle mode is intensity-independent.
	w.NNZPerCycle = 20
	t1 := w.ComputeTime(1000, 32, 2)
	t2 := w.ComputeTime(1000, 32, 64)
	if t1 != t2 || math.Abs(t1-1000.0/(20*1e9)) > 1e-18 {
		t.Fatalf("nnz-rate compute: %g, %g", t1, t2)
	}
	if w.ComputeTime(0, 32, 2) != 0 {
		t.Fatal("zero nnz should cost zero time")
	}
}

func TestPeakFLOPs(t *testing.T) {
	w := testWorker(Hot)
	w.MACsPerCycle = 20
	w.FreqHz = 0.8e9
	if got := w.PeakFLOPs(32, 2); math.Abs(got-20*0.8e9*32*2) > 1 {
		t.Fatalf("peak = %g", got)
	}
	w.NNZPerCycle = 20
	if got := w.PeakFLOPs(32, 8); math.Abs(got-20*0.8e9*32*8) > 1 {
		t.Fatalf("nnz-rate peak = %g", got)
	}
}

func TestWorkerValidate(t *testing.T) {
	good := testWorker(Cold)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Count = 0
	if bad.Validate() == nil {
		t.Fatal("expected count error")
	}
	bad = *good
	bad.MACsPerCycle, bad.NNZPerCycle = 0, 0
	if bad.Validate() == nil {
		t.Fatal("expected compute error")
	}
	bad = *good
	bad.VisLatPerByte = -1
	if bad.Validate() == nil {
		t.Fatal("expected vis_lat error")
	}
	bad = *good
	bad.ElemBytes = 0
	if bad.Validate() == nil {
		t.Fatal("expected width error")
	}
	bad = *good
	bad.OverlapGroups = [][]Task{{TaskReadA}}
	if bad.Validate() == nil {
		t.Fatal("expected coverage error")
	}
	bad = *good
	bad.OverlapGroups = [][]Task{{TaskReadA, TaskReadA}, {TaskReadDin, TaskReadDout, TaskCompute, TaskWriteDout}}
	if bad.Validate() == nil {
		t.Fatal("expected duplicate-task error")
	}
	bad = *good
	bad.OverlapGroups = [][]Task{{Task(42)}}
	if bad.Validate() == nil {
		t.Fatal("expected unknown-task error")
	}
}

func TestPanelAdjust(t *testing.T) {
	g := fig3Grid(t)
	p := Params{K: 2, OpsPerMAC: 2}

	// Demand-reuse workers need no adjustment.
	w := testWorker(Cold)
	w.DoutReuse = ReuseIntraDemand
	if a := PanelAdjust(w, g, 0, nil, p); a != (Estimate{}) {
		t.Fatalf("demand worker adjusted: %+v", a)
	}

	// Tiled streamer with inter-tile Dout reuse: one read+write of the
	// panel's tile_height rows.
	hot := testWorker(Hot)
	hot.DoutReuse = ReuseInter
	hot.TiledTraversal = true
	a := PanelAdjust(hot, g, 1, nil, p)
	wantBytes := float64(2*3) * float64(p.K*4)
	if a.Bytes != wantBytes {
		t.Fatalf("stream adjust bytes = %g, want %g", a.Bytes, wantBytes)
	}
	if a.Time != wantBytes*hot.VisLatPerByte {
		t.Fatalf("stream adjust time = %g", a.Time)
	}

	// Untiled worker: unique r_ids across its assigned tiles. Panel 1 has
	// one tile with 3 unique rows.
	cold := testWorker(Cold)
	cold.DoutReuse = ReuseInter
	cold.TiledTraversal = false
	a = PanelAdjust(cold, g, 1, nil, p)
	if a.Bytes != float64(2*3)*float64(p.K*4) {
		t.Fatalf("untiled adjust bytes = %g", a.Bytes)
	}

	// No tiles assigned to the type in this panel: no adjustment.
	a = PanelAdjust(cold, g, 1, func(i int) bool { return false }, p)
	if a != (Estimate{}) {
		t.Fatalf("empty selection adjusted: %+v", a)
	}
	// Empty panel, nil keep: panel 1 of a matrix with nonzeros only in
	// panel 0.
	m := sparse.NewCOO(6, 1)
	m.Append(0, 0, 1)
	g2, err := tile.Partition(m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a := PanelAdjust(cold, g2, 1, nil, p); a != (Estimate{}) {
		t.Fatalf("empty panel adjusted: %+v", a)
	}
}

func TestExpectedUniq(t *testing.T) {
	if got := expectedUniq(0, 10); got != 0 {
		t.Fatalf("dim 0 = %g", got)
	}
	if got := expectedUniq(100, 0); got != 0 {
		t.Fatalf("nnz 0 = %g", got)
	}
	// With nnz >> dim the expectation approaches dim.
	if got := expectedUniq(10, 1e6); math.Abs(got-10) > 1e-6 {
		t.Fatalf("saturated = %g, want ~10", got)
	}
	// With one draw it is exactly 1.
	if got := expectedUniq(10, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("single draw = %g, want 1", got)
	}
	// Monotone in nnz.
	if expectedUniq(50, 10) >= expectedUniq(50, 20) {
		t.Fatal("not monotone")
	}
}

func TestWholeMatrixUniformAssumption(t *testing.T) {
	p := Params{K: 32, OpsPerMAC: 2}
	n, nnz := 1024, 10000

	cold := testWorker(Cold)
	cold.DinReuse = ReuseNone
	cold.DoutReuse = ReuseInter
	e := WholeMatrix(cold, n, nnz, 256, 256, p)
	// Din: one row per nonzero; Dout: N rows read+written; A: COO.
	wantDin := float64(nnz) * float64(p.K*4)
	wantDout := 2 * float64(n) * float64(p.K*4)
	wantA := float64(SparseBytesAccessed(FormatCOO, nnz, n, 4, 4))
	if math.Abs(e.Bytes-(wantDin+wantDout+wantA)) > 1 {
		t.Fatalf("cold whole-matrix bytes = %g, want %g", e.Bytes, wantDin+wantDout+wantA)
	}

	hot := testWorker(Hot)
	hot.DinReuse = ReuseIntraStream
	hot.DoutReuse = ReuseIntraStream
	e = WholeMatrix(hot, n, nnz, 256, 256, p)
	numTiles := 16.0
	wantDin = numTiles * 256 * float64(p.K*4)
	wantDout = 2 * numTiles * 256 * float64(p.K*4)
	if math.Abs(e.Bytes-(wantDin+wantDout+wantA)) > 1 {
		t.Fatalf("hot whole-matrix bytes = %g, want %g", e.Bytes, wantDin+wantDout+wantA)
	}

	// Demand reuse sits between stream (full tile) and the nnz bound.
	dem := testWorker(Cold)
	dem.DinReuse = ReuseIntraDemand
	dem.DoutReuse = ReuseIntraDemand
	ed := WholeMatrix(dem, n, nnz, 256, 256, p)
	if ed.Bytes >= e.Bytes {
		t.Fatalf("demand (%g) should beat stream (%g) at this sparsity", ed.Bytes, e.Bytes)
	}

	// Inter-tile Din reuse charges one Din pass per panel — never more than
	// streaming full tiles everywhere.
	inter := testWorker(Cold)
	inter.DinReuse = ReuseInter
	inter.DoutReuse = ReuseIntraDemand
	ei := WholeMatrix(inter, n, nnz, 256, 256, p)
	if ei.Bytes >= e.Bytes {
		t.Fatalf("inter Din (%g) should not exceed full streaming (%g)", ei.Bytes, e.Bytes)
	}
}

// TestMotivationSecondExample follows §III-A's second example: two workers
// with identical streaming traffic, where the cold one overlaps accesses
// (hiding latency) and the hot one has more compute. The sparse tile should
// favor the cold worker and the dense tile the hot worker.
func TestMotivationSecondExample(t *testing.T) {
	g := fig3Grid(t)
	// A heavy gSpMM monoid so the dense tile has real compute weight.
	p := Params{K: 8, OpsPerMAC: 64}

	cold := testWorker(Cold)
	cold.DinReuse = ReuseIntraStream
	cold.OverlapGroups = FullOverlap()
	cold.MACsPerCycle = 1
	cold.VisLatPerByte = 0.4e-9 // overlaps memory: low visible latency

	hot := testWorker(Hot)
	hot.DinReuse = ReuseIntraStream
	hot.OverlapGroups = FullOverlap()
	hot.MACsPerCycle = 16 // much higher compute capability
	hot.VisLatPerByte = 1e-9

	t1cold := EstimateTile(cold, &g.Tiles[0], g, p).Time
	t1hot := EstimateTile(hot, &g.Tiles[0], g, p).Time
	t2cold := EstimateTile(cold, &g.Tiles[1], g, p).Time
	t2hot := EstimateTile(hot, &g.Tiles[1], g, p).Time
	if t1cold >= t1hot {
		t.Fatalf("sparse tile should favor cold: cold %.3e vs hot %.3e", t1cold, t1hot)
	}
	// The relative gap must shrink for the denser tile (more compute per
	// byte favors the hot worker).
	if t2hot/t2cold >= t1hot/t1cold {
		t.Fatalf("dense tile should shift toward hot: ratios %.3f vs %.3f",
			t2hot/t2cold, t1hot/t1cold)
	}
}

func TestOverlapGroupPresets(t *testing.T) {
	for name, groups := range map[string][][]Task{
		"full":   FullOverlap(),
		"none":   NoOverlap(),
		"stream": StreamOverlap(),
	} {
		w := testWorker(Cold)
		w.OverlapGroups = groups
		if err := w.Validate(); err != nil {
			t.Errorf("%s overlap preset invalid: %v", name, err)
		}
	}
	if len(NoOverlap()) != 5 || len(FullOverlap()) != 1 || len(StreamOverlap()) != 2 {
		t.Fatal("preset group counts wrong")
	}
}

package model

import "testing"

func TestParamsValidate(t *testing.T) {
	good := Params{K: 32, OpsPerMAC: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Params{
		{K: 0, OpsPerMAC: 2},
		{K: 32, OpsPerMAC: 0},
		{K: 32, OpsPerMAC: 2, Kernel: Kernel(42)},
		{K: 32, OpsPerMAC: 2, Kernel: KernelSpMV}, // SpMV needs K=1
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
	if err := (Params{K: 1, OpsPerMAC: 2, Kernel: KernelSpMV}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{K: 16, OpsPerMAC: 2, Kernel: KernelSDDMM}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSDDMMWriteBytesArePerNonzero(t *testing.T) {
	g := fig3Grid(t)
	w := testWorker(Cold)
	w.DoutReuse = ReuseIntraDemand
	spmm := Params{K: 8, OpsPerMAC: 2}
	sddmm := Params{K: 8, OpsPerMAC: 2, Kernel: KernelSDDMM}

	// Tile 1 of fig3Grid has 5 nonzeros over 3 unique rows.
	bS := taskBytes(w, &g.Tiles[1], g, spmm)
	bD := taskBytes(w, &g.Tiles[1], g, sddmm)
	// Reads are identical (A, Din/V rows, Dout/U rows)...
	if bS[TaskReadA] != bD[TaskReadA] || bS[TaskReadDin] != bD[TaskReadDin] ||
		bS[TaskReadDout] != bD[TaskReadDout] {
		t.Fatal("SDDMM read traffic must match SpMM's")
	}
	// ...but SpMM writes 3 dense rows while SDDMM writes 5 scalars.
	wantSpMM := float64(3 * spmm.K * w.ElemBytes)
	wantSDDMM := float64(5 * w.ElemBytes)
	if bS[TaskWriteDout] != wantSpMM {
		t.Fatalf("SpMM write = %g, want %g", bS[TaskWriteDout], wantSpMM)
	}
	if bD[TaskWriteDout] != wantSDDMM {
		t.Fatalf("SDDMM write = %g, want %g", bD[TaskWriteDout], wantSDDMM)
	}
}

func TestSDDMMPanelAdjustReadsOnly(t *testing.T) {
	g := fig3Grid(t)
	w := testWorker(Cold)
	w.DoutReuse = ReuseInter
	w.TiledTraversal = true
	spmm := Params{K: 4, OpsPerMAC: 2}
	sddmm := Params{K: 4, OpsPerMAC: 2, Kernel: KernelSDDMM}
	aS := PanelAdjust(w, g, 1, nil, spmm)
	aD := PanelAdjust(w, g, 1, nil, sddmm)
	if aD.Bytes*2 != aS.Bytes {
		t.Fatalf("SDDMM adjust %g should be half of SpMM's %g (read-only)", aD.Bytes, aS.Bytes)
	}
}

func TestWholeMatrixSDDMM(t *testing.T) {
	w := testWorker(Cold)
	w.DoutReuse = ReuseIntraDemand
	p := Params{K: 16, OpsPerMAC: 2}
	pd := Params{K: 16, OpsPerMAC: 2, Kernel: KernelSDDMM}
	eS := WholeMatrix(w, 512, 5000, 128, 128, p)
	eD := WholeMatrix(w, 512, 5000, 128, 128, pd)
	// SDDMM's sparse output makes it strictly cheaper in traffic here.
	if eD.Bytes >= eS.Bytes {
		t.Fatalf("SDDMM whole-matrix bytes %g not below SpMM %g", eD.Bytes, eS.Bytes)
	}
}

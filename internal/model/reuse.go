// Package model implements the paper's IMH-aware analytical performance
// model (§IV): per-tile main-memory traffic accounting under the four reuse
// types of Table I, the five-task execution-time model with task
// overlapping and the data-driven visible-latency-per-byte (vis_lat)
// parameter, the maximum-reuse assumption with post-assignment readjustment
// (§IV-C), and the IMH-unaware whole-matrix roofline estimates used by the
// IUnaware baseline (§III-B).
package model

import "fmt"

// ReuseType classifies how a worker reuses dense rows while processing a
// sparse tile (paper Table I).
type ReuseType int

const (
	// ReuseNone: every nonzero fetches a dense row from main memory.
	ReuseNone ReuseType = iota
	// ReuseIntraStream: the worker streams the full dense tile into its
	// scratchpad before processing (tile_width rows for Din, tile_height
	// for Dout), whether or not all rows are needed.
	ReuseIntraStream
	// ReuseIntraDemand: rows are fetched on first touch and reused through
	// registers/caches within the tile; unique ids are charged.
	ReuseIntraDemand
	// ReuseInter: rows were already brought in by a previous tile of the
	// same row panel; nothing is charged per tile. The first tile of each
	// worker type in a panel is re-charged by the readjustment step.
	ReuseInter
)

func (r ReuseType) String() string {
	switch r {
	case ReuseNone:
		return "none"
	case ReuseIntraStream:
		return "intra-tile (stream)"
	case ReuseIntraDemand:
		return "intra-tile (demand)"
	case ReuseInter:
		return "inter-tile"
	default:
		return fmt.Sprintf("ReuseType(%d)", int(r))
	}
}

// SparseFormat selects the sparse-input compression format (Table I bottom).
type SparseFormat int

const (
	// FormatCOO: each nonzero is (r_id, c_id, val) — 3 data items.
	FormatCOO SparseFormat = iota
	// FormatCSR: row begin offsets replace per-nonzero r_ids —
	// 2·nnz + tile_height data items.
	FormatCSR
)

func (f SparseFormat) String() string {
	if f == FormatCSR {
		return "CSR-like"
	}
	return "COO-like"
}

// Task enumerates the five tasks of an SpMM accelerator worker (paper
// §IV-B): reading the sparse input, reading the dense input, reading the
// dense output, executing the SIMD MAC, and writing back the dense output.
type Task int

const (
	TaskReadA Task = iota
	TaskReadDin
	TaskReadDout
	TaskCompute
	TaskWriteDout
	numTasks
)

func (t Task) String() string {
	switch t {
	case TaskReadA:
		return "read-A"
	case TaskReadDin:
		return "read-Din"
	case TaskReadDout:
		return "read-Dout"
	case TaskCompute:
		return "compute"
	case TaskWriteDout:
		return "write-Dout"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// DenseRowsAccessed returns the number of dense rows fetched from main
// memory while processing one tile, per Table I. tileDim is tile_width for
// Din or tile_height for Dout; uniq is tile_uniq_cids or tile_uniq_rids;
// nnz is tile_nnzs.
func DenseRowsAccessed(r ReuseType, tileDim, uniq, nnz int) int {
	switch r {
	case ReuseInter:
		return 0
	case ReuseIntraStream:
		return tileDim
	case ReuseIntraDemand:
		return uniq
	default: // ReuseNone
		return nnz
	}
}

// SparseItemsAccessed returns the number of sparse-input data items read
// from main memory for one tile, per Table I: COO-like 3·nnz, CSR-like
// 2·nnz + tile_height.
func SparseItemsAccessed(f SparseFormat, nnz, tileHeight int) int {
	if f == FormatCSR {
		return 2*nnz + tileHeight
	}
	return 3 * nnz
}

// SparseBytesAccessed converts Table I data items into bytes: index items
// are idxBytes wide and values elemBytes wide.
func SparseBytesAccessed(f SparseFormat, nnz, tileHeight, idxBytes, elemBytes int) int {
	if f == FormatCSR {
		// c_ids + row offsets are indices, vals are elements.
		return (nnz+tileHeight)*idxBytes + nnz*elemBytes
	}
	// r_ids + c_ids are indices, vals are elements.
	return 2*nnz*idxBytes + nnz*elemBytes
}

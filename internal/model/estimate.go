package model

import (
	"math"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/tile"
)

// modelEstimates counts per-tile model evaluations (one per (tile, worker)
// pair through EstimateGrid), the dominant analytical-model cost.
// estimateLatency records how long each evaluation takes — but only under
// obs.DeepTiming, since two clock reads per tile would otherwise tax the
// partitioner's hottest loop for nobody's benefit.
var (
	modelEstimates  = obs.NewCounter("model.estimates")
	estimateLatency = obs.NewHistogram("model.estimate.ns")
)

// Estimate is the model's prediction for one (tile, worker-type) pair: the
// tile's standalone execution time on one worker of that type (th_i / tc_i
// in §V-A) and its main-memory traffic (bh_i / bc_i).
type Estimate struct {
	Time  float64 // seconds, ignoring bandwidth contention
	Bytes float64 // bytes read+written from main memory
}

// Params bundles the workload parameters shared by all estimates.
type Params struct {
	K         int     // dense matrix columns (1 for SpMV)
	OpsPerMAC float64 // 2 for plain SpMM; gSpMM semirings scale it
	Kernel    Kernel  // zero value is KernelSpMM
}

// estimator caches the (worker, grid, params) invariants of the per-tile
// model evaluation. EstimateGrid calls the model once per (tile, worker)
// pair — the dominant analytical-model cost — so everything derivable from
// the worker, grid geometry, and params alone is hoisted out of the inner
// loop. Hoisted expressions are evaluated exactly as the per-tile code did,
// so estimates stay bit-identical.
type estimator struct {
	w        *Worker
	g        *tile.Grid
	p        Params
	rowBytes float64 // p.K * w.ElemBytes
	lastH    int     // height of the last (possibly short) row panel
	lastW    int     // width of the last (possibly short) tile column
}

func newEstimator(w *Worker, g *tile.Grid, p Params) estimator {
	return estimator{
		w: w, g: g, p: p,
		rowBytes: float64(p.K * w.ElemBytes),
		lastH:    g.N - (g.NumTR-1)*g.TileH,
		lastW:    g.N - (g.NumTC-1)*g.TileW,
	}
}

// panelHeight returns the row count of panel tr (only the last panel can be
// short, because PanelRows clips at N).
//
//hot:path
func (e *estimator) panelHeight(tr int) int {
	if tr == e.g.NumTR-1 {
		return e.lastH
	}
	return e.g.TileH
}

// tileWidth returns the column count of tile column tc (only the last
// column can be short).
//
//hot:path
func (e *estimator) tileWidth(tc int) int {
	if tc == e.g.NumTC-1 {
		return e.lastW
	}
	return e.g.TileW
}

// taskBytes returns the five tasks' main-memory byte counts for one tile
// under the worker's reuse configuration (Table I), using the maximum-reuse
// assumption for inter-tile reuse (charged zero here; see PanelAdjust).
//
//hot:path
func (e *estimator) taskBytes(t *tile.Tile) [numTasks]float64 {
	w := e.w
	var b [numTasks]float64
	nnz := t.NNZ()
	panelH := e.panelHeight(t.TR)
	tileW := e.tileWidth(t.TC)

	b[TaskReadA] = float64(SparseBytesAccessed(w.Format, nnz, panelH, w.IdxBytes, w.ElemBytes))
	b[TaskReadDin] = float64(DenseRowsAccessed(w.DinReuse, tileW, t.UniqCols, nnz)) * e.rowBytes
	doutRows := float64(DenseRowsAccessed(w.DoutReuse, panelH, t.UniqRows, nnz))
	b[TaskReadDout] = doutRows * e.rowBytes
	if e.p.Kernel == KernelSDDMM {
		// SDDMM's output is sparse: one scalar per nonzero, no dense rows
		// written back.
		b[TaskWriteDout] = float64(nnz * w.ElemBytes)
	} else {
		b[TaskWriteDout] = doutRows * e.rowBytes
	}
	b[TaskCompute] = 0
	return b
}

// combine folds per-task times through the worker's overlap groups: max
// within a group, sum across groups (§IV-B).
//
//hot:path
func combine(w *Worker, times [numTasks]float64) float64 {
	total := 0.0
	for _, group := range w.OverlapGroups {
		m := 0.0
		for _, t := range group {
			if times[t] > m {
				m = times[t]
			}
		}
		total += m
	}
	return total
}

// taskBytes is the single-tile convenience form of estimator.taskBytes.
func taskBytes(w *Worker, t *tile.Tile, g *tile.Grid, p Params) [numTasks]float64 {
	e := newEstimator(w, g, p)
	return e.taskBytes(t)
}

// estimateTile is EstimateTile with the invariants already hoisted.
//
//hot:path
func (e *estimator) estimateTile(t *tile.Tile) Estimate {
	bytes := e.taskBytes(t)
	var times [numTasks]float64
	total := 0.0
	for task, by := range bytes {
		times[task] = by * e.w.VisLatPerByte
		total += by
	}
	times[TaskCompute] = e.w.ComputeTime(t.NNZ(), e.p.K, e.p.OpsPerMAC)
	return Estimate{Time: combine(e.w, times), Bytes: total}
}

// EstimateTile predicts the execution time and memory traffic of tile t on
// a single worker of type w (paper §IV-A/B). Bandwidth contention is
// deliberately ignored; the partitioner accounts for it via the bytes.
func EstimateTile(w *Worker, t *tile.Tile, g *tile.Grid, p Params) Estimate {
	e := newEstimator(w, g, p)
	return e.estimateTile(t)
}

// EstimateGrid evaluates EstimateTile for every tile of the grid, returning
// a slice indexed like g.Tiles. Tiles are evaluated on the shared worker
// pool; each writes only its own slot, so the result is bit-identical to a
// serial evaluation.
func EstimateGrid(w *Worker, g *tile.Grid, p Params) []Estimate {
	modelEstimates.Add(int64(len(g.Tiles)))
	out := make([]Estimate, len(g.Tiles))
	deep := obs.DeepTiming()
	par.Chunks(len(g.Tiles), func(lo, hi int) {
		e := newEstimator(w, g, p)
		if !deep {
			for i := lo; i < hi; i++ {
				out[i] = e.estimateTile(&g.Tiles[i])
			}
			return
		}
		// Deep timing: per-tile wall clock into a chunk-local histogram
		// (plain integer adds), folded into the shared one per chunk.
		var lh obs.LocalHist
		for i := lo; i < hi; i++ {
			t0 := obs.Now()
			out[i] = e.estimateTile(&g.Tiles[i])
			lh.Observe(obs.SinceNS(t0))
		}
		estimateLatency.Merge(&lh)
	})
	return out
}

// PanelAdjust returns the extra Estimate a worker type incurs in row panel
// tr beyond the maximum-reuse assumption (paper §IV-C): the first tile of
// its type in the panel cannot reuse Dout rows from a previous tile.
// keep selects which tiles of the panel (by position) are assigned to this
// worker type; a nil keep means all of them. The readjustment charges:
//
//   - tiled streamers (Dout inter-tile, Figure 6(b)): one full stream-in and
//     stream-out of the panel's tile_height Dout rows;
//   - untiled workers (Dout inter-tile, Figure 6(a)): one read and one write
//     of each distinct r_id among the worker's assigned nonzeros.
//
// Workers whose Dout reuse is not inter-tile need no adjustment.
func PanelAdjust(w *Worker, g *tile.Grid, tr int, keep func(i int) bool, p Params) Estimate {
	var a Adjuster
	return a.PanelAdjust(w, g, tr, keep, p)
}

// Adjuster evaluates PanelAdjust across many panels while reusing one
// row-membership scratch buffer (tile.PanelUniqRowsScratch). The
// partitioner's readjustment loop visits every panel for every candidate
// assignment, so the per-panel buffer allocation is on its hot path; a
// zero-value Adjuster is ready to use and each call is bit-identical to the
// free function.
type Adjuster struct {
	seen []bool
}

// PanelAdjust is the free function PanelAdjust over the Adjuster's scratch.
//
//hot:path
func (a *Adjuster) PanelAdjust(w *Worker, g *tile.Grid, tr int, keep func(i int) bool, p Params) Estimate {
	if w.DoutReuse != ReuseInter {
		return Estimate{}
	}
	any := false
	if keep == nil {
		any = len(g.Panel(tr)) > 0
	} else {
		for i := range g.Panel(tr) {
			if keep(i) {
				any = true
				break
			}
		}
	}
	if !any {
		return Estimate{}
	}
	var rows int
	if w.TiledTraversal {
		lo, hi := g.PanelRows(tr)
		rows = hi - lo
	} else {
		rows, a.seen = g.PanelUniqRowsScratch(tr, keep, a.seen)
	}
	// SpMM read-modify-writes the panel's Dout rows once; SDDMM only reads
	// its U rows (the sparse output is charged per tile).
	passes := 2
	if p.Kernel == KernelSDDMM {
		passes = 1
	}
	bytes := float64(passes*rows) * float64(p.K*w.ElemBytes)
	return Estimate{Time: bytes * w.VisLatPerByte, Bytes: bytes}
}

// expectedUniq returns the expected number of distinct ids hit by nnz
// uniformly random draws over dim slots: dim·(1 − (1 − 1/dim)^nnz). It is
// the uniform-distribution assumption the IMH-unaware model makes (§III-B,
// following AESPA).
func expectedUniq(dim int, nnz float64) float64 {
	if dim <= 0 {
		return 0
	}
	d := float64(dim)
	return d * (1 - math.Pow(1-1/d, nnz))
}

// WholeMatrix predicts a single worker's execution time and traffic for the
// entire matrix assuming uniformly distributed nonzeros — the holistic,
// IMH-unaware estimate of §III-B. n and nnz describe the matrix; tileH and
// tileW the tiling the worker would use.
func WholeMatrix(w *Worker, n, nnz, tileH, tileW int, p Params) Estimate {
	numTR := (n + tileH - 1) / tileH
	numTC := (n + tileW - 1) / tileW
	numTiles := float64(numTR) * float64(numTC)
	nnzPerTile := float64(nnz) / numTiles
	rowBytes := float64(p.K * w.ElemBytes)

	var b [numTasks]float64
	b[TaskReadA] = float64(SparseBytesAccessed(w.Format, nnz, n, w.IdxBytes, w.ElemBytes))

	switch w.DinReuse {
	case ReuseNone:
		b[TaskReadDin] = float64(nnz) * rowBytes
	case ReuseIntraStream:
		b[TaskReadDin] = numTiles * float64(tileW) * rowBytes
	case ReuseIntraDemand:
		b[TaskReadDin] = numTiles * expectedUniq(tileW, nnzPerTile) * rowBytes
	case ReuseInter:
		// One pass over Din per row panel under maximum inter-tile reuse.
		b[TaskReadDin] = float64(numTR) * float64(n) * rowBytes
	}

	var doutRows float64
	switch w.DoutReuse {
	case ReuseNone:
		doutRows = float64(nnz)
	case ReuseIntraStream:
		doutRows = numTiles * float64(tileH)
	case ReuseIntraDemand:
		doutRows = numTiles * expectedUniq(tileH, nnzPerTile)
	case ReuseInter:
		// Each panel touches its tile_height rows once: N rows total.
		doutRows = float64(n)
	}
	b[TaskReadDout] = doutRows * rowBytes
	if p.Kernel == KernelSDDMM {
		b[TaskWriteDout] = float64(nnz * w.ElemBytes)
	} else {
		b[TaskWriteDout] = doutRows * rowBytes
	}

	var times [numTasks]float64
	total := 0.0
	for task, by := range b {
		times[task] = by * w.VisLatPerByte
		total += by
	}
	times[TaskCompute] = w.ComputeTime(nnz, p.K, p.OpsPerMAC)
	return Estimate{Time: combine(w, times), Bytes: total}
}

package dense

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/sparse"
)

// randSortedBig builds a random row-major matrix large enough to cross the
// parMinWork fan-out threshold at any K ≥ 1.
func randSortedBig(rng *rand.Rand, n, nnz int) *sparse.COO {
	m := sparse.NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64()*2-1)
	}
	m.SortRowMajor()
	return m
}

// TestPanelParallelBitIdentical is the determinism property the panel
// fan-out promises: for every kernel, semiring, and worker count (including
// 1), the parallel output is bit-identical — Equal, not AlmostEqual — to the
// single-worker serial execution, because row-disjoint panels preserve each
// row's floating-point accumulation order.
func TestPanelParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, nnz, k := 512, 40000, 8
	m := randSortedBig(rng, n, nnz)
	csr := sparse.ToCSR(m)
	din := NewRandom(rng, n, k)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}

	semirings := []struct {
		name string
		sr   semiring.Semiring
	}{
		{"plus-times", semiring.PlusTimes()},
		{"min-plus", semiring.MinPlus()},
		{"max-plus", semiring.MaxPlus()},
	}

	// Single-worker references (rowCuts declines, the serial loops run).
	prev := par.SetWorkers(1)
	wantSpMM := NewMatrix(n, k)
	if err := SpMM(m, din, wantSpMM); err != nil {
		t.Fatal(err)
	}
	wantCSR := NewMatrix(n, k)
	if err := SpMMCSR(csr, din, wantCSR); err != nil {
		t.Fatal(err)
	}
	wantG := make([]*Matrix, len(semirings))
	for i, s := range semirings {
		wantG[i] = NewFilled(n, k, s.sr.AddIdentity)
		if err := GSpMM(m, din, wantG[i], s.sr); err != nil {
			t.Fatal(err)
		}
	}
	wantY := make([]float64, n)
	if err := SpMV(m, x, wantY); err != nil {
		t.Fatal(err)
	}
	wantS, err := SDDMM(m, din, din)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(prev)
	defer par.SetWorkers(par.SetWorkers(prev))

	for _, w := range []int{1, 2, 3, 8} {
		par.SetWorkers(w)
		got := NewMatrix(n, k)
		if err := SpMM(m, din, got); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(wantSpMM) {
			t.Fatalf("SpMM with %d workers differs from serial", w)
		}
		got = NewMatrix(n, k)
		if err := SpMMCSR(csr, din, got); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(wantCSR) {
			t.Fatalf("SpMMCSR with %d workers differs from serial", w)
		}
		for i, s := range semirings {
			got = NewFilled(n, k, s.sr.AddIdentity)
			if err := GSpMM(m, din, got, s.sr); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(wantG[i]) {
				t.Fatalf("GSpMM %s with %d workers differs from serial", s.name, w)
			}
		}
		y := make([]float64, n)
		if err := SpMV(m, x, y); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(y, wantY) {
			t.Fatalf("SpMV with %d workers differs from serial", w)
		}
		s, err := SDDMM(m, din, din)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(s, wantS) {
			t.Fatalf("SDDMM with %d workers differs from serial", w)
		}
	}
}

// TestSpMMUnsortedFallsBack pins the fallback: a COO whose rows are not
// sorted cannot be row-panel split, so the parallel dispatch must detect it
// and produce the exact serial result (which visits nonzeros in input
// order — a different answer than any reordering under a non-commutative
// accumulation of rounding).
func TestSpMMUnsortedFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, nnz, k := 256, 30000, 4
	m := sparse.NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64()*2-1)
	}
	din := NewRandom(rng, n, k)

	prev := par.SetWorkers(1)
	want := NewMatrix(n, k)
	err := SpMM(m, din, want)
	par.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}

	defer par.SetWorkers(par.SetWorkers(8))
	if cuts := rowCuts(m.Rows, m.NNZ()*k); cuts != nil {
		t.Fatal("rowCuts accepted unsorted rows")
	}
	got := NewMatrix(n, k)
	if err := SpMM(m, din, got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("unsorted SpMM differs from serial")
	}
}

// TestRowCutsProperties checks the panel invariants on random sorted row
// arrays: cuts strictly increase from 0 to nnz (every nonzero in exactly one
// panel) and no row straddles a cut.
func TestRowCutsProperties(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(4))
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		nnz := parMinWork + rng.Intn(20000)
		rows := make([]int32, nnz)
		for i := range rows {
			rows[i] = int32(rng.Intn(n))
		}
		slices.Sort(rows)
		cuts := rowCuts(rows, nnz)
		if cuts == nil {
			continue // legal: too few distinct rows for two panels
		}
		if cuts[0] != 0 || cuts[len(cuts)-1] != nnz || len(cuts) < 3 {
			t.Fatalf("trial %d: bad cut endpoints %v", trial, cuts)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Fatalf("trial %d: cuts not strictly increasing: %v", trial, cuts)
			}
			if i < len(cuts)-1 && rows[cuts[i]] == rows[cuts[i]-1] {
				t.Fatalf("trial %d: row %d straddles cut %d", trial, rows[cuts[i]], cuts[i])
			}
		}
	}

	// One giant row admits no interior cut: serial.
	rows := make([]int32, parMinWork)
	if cuts := rowCuts(rows, len(rows)); cuts != nil {
		t.Fatalf("single-row matrix produced cuts %v", cuts)
	}
	// Below the work threshold: serial.
	if cuts := rowCuts([]int32{0, 1, 2, 3}, 4); cuts != nil {
		t.Fatal("tiny input produced cuts")
	}
	// One worker: serial.
	prev := par.SetWorkers(1)
	sorted := make([]int32, parMinWork)
	for i := range sorted {
		sorted[i] = int32(i)
	}
	cuts := rowCuts(sorted, len(sorted))
	par.SetWorkers(prev)
	if cuts != nil {
		t.Fatal("single-worker pool produced cuts")
	}
}

package dense

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestSpMVMatchesSpMMWithK1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSparse(rng, 50, 300)
	x := make([]float64, 50)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 50)
	if err := SpMV(a, x, y); err != nil {
		t.Fatal(err)
	}
	din := &Matrix{N: 50, K: 1, Data: append([]float64(nil), x...)}
	dout := NewMatrix(50, 1)
	if err := SpMM(a, din, dout); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if d := y[i] - dout.At(i, 0); d > 1e-12 || d < -1e-12 {
			t.Fatalf("row %d: SpMV %g vs SpMM %g", i, y[i], dout.At(i, 0))
		}
	}
}

func TestSpMVAccumulatesAndValidates(t *testing.T) {
	a := identity(3)
	x := []float64{1, 2, 3}
	y := []float64{10, 10, 10}
	if err := SpMV(a, x, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 11 || y[2] != 13 {
		t.Fatalf("y = %v", y)
	}
	if err := SpMV(a, x[:2], y); err == nil {
		t.Fatal("expected x shape error")
	}
	if err := SpMV(a, x, y[:2]); err == nil {
		t.Fatal("expected y shape error")
	}
}

func TestSDDMMKnownValues(t *testing.T) {
	// A = [[2 at (0,1)]], U = [[1,2],[3,4]], V = [[5,6],[7,8]].
	a := sparse.NewCOO(2, 1)
	a.Append(0, 1, 2)
	u := &Matrix{N: 2, K: 2, Data: []float64{1, 2, 3, 4}}
	v := &Matrix{N: 2, K: 2, Data: []float64{5, 6, 7, 8}}
	out, err := SDDMM(a, u, v)
	if err != nil {
		t.Fatal(err)
	}
	// out[0] = 2 · ⟨U[0], V[1]⟩ = 2 · (1·7 + 2·8) = 46.
	if len(out) != 1 || out[0] != 46 {
		t.Fatalf("out = %v, want [46]", out)
	}
}

func TestSDDMMValidates(t *testing.T) {
	a := identity(3)
	if _, err := SDDMM(a, NewMatrix(2, 2), NewMatrix(3, 2)); err == nil {
		t.Fatal("expected U shape error")
	}
	if _, err := SDDMM(a, NewMatrix(3, 2), NewMatrix(3, 3)); err == nil {
		t.Fatal("expected K mismatch error")
	}
}

// Property: SDDMM on the identity sampling pattern recovers the diagonal of
// U·Vᵀ.
func TestSDDMMIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		k := 1 + rng.Intn(5)
		u := NewRandom(rng, n, k)
		v := NewRandom(rng, n, k)
		out, err := SDDMM(identity(n), u, v)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			dot := 0.0
			for j := 0; j < k; j++ {
				dot += u.At(i, j) * v.At(i, j)
			}
			if d := out[i] - dot; d > 1e-12 || d < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

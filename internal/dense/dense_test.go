package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/sparse"
)

func identity(n int) *sparse.COO {
	m := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		m.Append(int32(i), int32(i), 1)
	}
	return m
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	if len(m.Row(1)) != 2 || m.Row(1)[1] != 5 {
		t.Fatal("Row broken")
	}
	f := NewFilled(2, 2, 7)
	for _, v := range f.Data {
		if v != 7 {
			t.Fatal("NewFilled broken")
		}
	}
}

func TestSpMMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	din := NewRandom(rng, 8, 4)
	dout := NewMatrix(8, 4)
	if err := SpMM(identity(8), din, dout); err != nil {
		t.Fatal(err)
	}
	if !dout.Equal(din) {
		t.Fatal("I * Din != Din")
	}
}

func TestSpMMAccumulates(t *testing.T) {
	din := NewFilled(2, 1, 1)
	dout := NewFilled(2, 1, 10)
	if err := SpMM(identity(2), din, dout); err != nil {
		t.Fatal(err)
	}
	if dout.At(0, 0) != 11 || dout.At(1, 0) != 11 {
		t.Fatalf("accumulation broken: %v", dout.Data)
	}
}

func TestSpMMKnownValues(t *testing.T) {
	// A = [[0,2],[3,0]], Din = [[1,10],[2,20]]
	a := sparse.NewCOO(2, 2)
	a.Append(0, 1, 2)
	a.Append(1, 0, 3)
	din := &Matrix{N: 2, K: 2, Data: []float64{1, 10, 2, 20}}
	dout := NewMatrix(2, 2)
	if err := SpMM(a, din, dout); err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 40, 3, 30}
	for i, w := range want {
		if dout.Data[i] != w {
			t.Fatalf("dout = %v, want %v", dout.Data, want)
		}
	}
}

func TestSpMMShapeErrors(t *testing.T) {
	a := identity(3)
	if err := SpMM(a, NewMatrix(2, 2), NewMatrix(3, 2)); err == nil {
		t.Fatal("expected Din shape error")
	}
	if err := SpMM(a, NewMatrix(3, 2), NewMatrix(3, 3)); err == nil {
		t.Fatal("expected K mismatch error")
	}
	if err := SpMMCSR(sparse.ToCSR(a), NewMatrix(2, 2), NewMatrix(3, 2)); err == nil {
		t.Fatal("expected CSR shape error")
	}
	if err := GSpMM(a, NewMatrix(2, 2), NewMatrix(3, 2), semiring.PlusTimes()); err == nil {
		t.Fatal("expected gSpMM shape error")
	}
}

func TestSpMMCSRMatchesCOO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSparse(rng, 40, 200)
	din := NewRandom(rng, 40, 8)
	d1 := NewMatrix(40, 8)
	d2 := NewMatrix(40, 8)
	if err := SpMM(a, din, d1); err != nil {
		t.Fatal(err)
	}
	if err := SpMMCSR(sparse.ToCSR(a), din, d2); err != nil {
		t.Fatal(err)
	}
	if !d1.AlmostEqual(d2, 1e-12) {
		t.Fatal("CSR and COO kernels disagree")
	}
}

func TestGSpMMPlusTimesMatchesSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSparse(rng, 30, 120)
	din := NewRandom(rng, 30, 4)
	d1 := NewMatrix(30, 4)
	d2 := NewMatrix(30, 4)
	if err := SpMM(a, din, d1); err != nil {
		t.Fatal(err)
	}
	if err := GSpMM(a, din, d2, semiring.PlusTimes()); err != nil {
		t.Fatal(err)
	}
	if !d1.AlmostEqual(d2, 1e-12) {
		t.Fatal("gSpMM(plus-times) differs from SpMM")
	}
}

func TestGSpMMMinPlus(t *testing.T) {
	// Min-plus over an adjacency matrix relaxes shortest paths by one hop.
	a := sparse.NewCOO(3, 3)
	a.Append(0, 1, 1) // edge 0->1 weight 1
	a.Append(1, 2, 2) // edge 1->2 weight 2
	a.SortRowMajor()
	s := semiring.MinPlus()
	// Din column = distances from vertex 2: [inf, inf, 0]
	din := NewFilled(3, 1, math.Inf(1))
	din.Set(2, 0, 0)
	dout := NewFilled(3, 1, math.Inf(1))
	if err := GSpMM(a, din, dout, s); err != nil {
		t.Fatal(err)
	}
	if dout.At(1, 0) != 2 {
		t.Fatalf("dist(1) = %g, want 2", dout.At(1, 0))
	}
	if !math.IsInf(dout.At(0, 0), 1) {
		t.Fatalf("dist(0) = %g, want +Inf after one relaxation", dout.At(0, 0))
	}
}

func TestMerge(t *testing.T) {
	a := NewFilled(2, 2, 1)
	b := NewFilled(2, 2, 2)
	if err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Data {
		if v != 3 {
			t.Fatalf("merge: %v", a.Data)
		}
	}
	if err := Merge(a, NewMatrix(3, 2)); err == nil {
		t.Fatal("expected shape error")
	}
	if err := GMerge(a, NewMatrix(3, 2), semiring.PlusTimes()); err == nil {
		t.Fatal("expected gmerge shape error")
	}
}

func TestGMergeMinPlus(t *testing.T) {
	a := NewFilled(1, 2, 5)
	b := NewFilled(1, 2, 3)
	if err := GMerge(a, b, semiring.MinPlus()); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 || a.At(0, 1) != 3 {
		t.Fatalf("gmerge min: %v", a.Data)
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewRandom(rng, 4, 4)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Data[0] += 1
	if m.Equal(c) {
		t.Fatal("clone aliases")
	}
	if m.Equal(NewMatrix(4, 3)) {
		t.Fatal("shape-mismatched Equal returned true")
	}
	if _, err := m.MaxAbsDiff(NewMatrix(4, 3)); err == nil {
		t.Fatal("expected MaxAbsDiff shape error")
	}
	d, err := m.MaxAbsDiff(c)
	if err != nil || d != 1 {
		t.Fatalf("MaxAbsDiff = %g, %v", d, err)
	}
}

// Property: SpMM is linear in Din — A(x+y) = Ax + Ay.
func TestSpMMLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		k := 1 + rng.Intn(6)
		a := randomSparse(rng, n, rng.Intn(4*n))
		x := NewRandom(rng, n, k)
		y := NewRandom(rng, n, k)
		sum := x.Clone()
		for i := range sum.Data {
			sum.Data[i] += y.Data[i]
		}
		ax := NewMatrix(n, k)
		ay := NewMatrix(n, k)
		asum := NewMatrix(n, k)
		if SpMM(a, x, ax) != nil || SpMM(a, y, ay) != nil || SpMM(a, sum, asum) != nil {
			return false
		}
		for i := range ax.Data {
			ax.Data[i] += ay.Data[i]
		}
		return ax.AlmostEqual(asum, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomSparse(rng *rand.Rand, n, nnz int) *sparse.COO {
	m := sparse.NewCOO(n, nnz)
	seen := map[[2]int32]bool{}
	for len(seen) < nnz && len(seen) < n*n {
		r, c := int32(rng.Intn(n)), int32(rng.Intn(n))
		if seen[[2]int32{r, c}] {
			continue
		}
		seen[[2]int32{r, c}] = true
		m.Append(r, c, rng.NormFloat64())
	}
	m.SortRowMajor()
	return m
}

func TestFillAndAlmostEqualShapes(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Fill(4.5)
	for _, v := range m.Data {
		if v != 4.5 {
			t.Fatalf("Fill broken: %v", m.Data)
		}
	}
	if m.AlmostEqual(NewMatrix(3, 2), 1) {
		t.Fatal("shape-mismatched AlmostEqual returned true")
	}
}

// Package dense provides the dense-matrix substrate for SpMM: the N×K input
// (Din) and output (Dout) matrices, reference (golden) SpMM and gSpMM
// kernels used to verify every partitioned/simulated execution, and the
// output-buffer merge that the heterogeneous architectures perform when hot
// and cold workers write private buffers (paper §V-A).
package dense

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/sparse"
)

// Matrix is a dense row-major N×K matrix.
type Matrix struct {
	N, K int
	Data []float64 // len N*K, row-major
}

// NewMatrix returns an N×K zero matrix.
func NewMatrix(n, k int) *Matrix {
	return &Matrix{N: n, K: k, Data: make([]float64, n*k)}
}

// NewFilled returns an N×K matrix with every element set to v.
func NewFilled(n, k int, v float64) *Matrix {
	m := NewMatrix(n, k)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// NewRandom returns an N×K matrix with entries drawn uniformly from [-1, 1)
// using the given deterministic source.
func NewRandom(rng *rand.Rand, n, k int) *Matrix {
	m := NewMatrix(n, k)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// Row returns row r as a sub-slice (no copy).
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.K : (r+1)*m.K] }

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.K+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.K+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, K: m.K, Data: append([]float64(nil), m.Data...)}
}

// Fill sets every element to v (used to initialize gSpMM accumulators to the
// semiring's additive identity).
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether two matrices have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.N != o.N || m.K != o.K {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether two matrices agree elementwise within tol,
// treating NaN≠anything. Used when summation order differs between the
// reference and a partitioned execution.
func (m *Matrix) AlmostEqual(o *Matrix, tol float64) bool {
	if m.N != o.N || m.K != o.K {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference.
func (m *Matrix) MaxAbsDiff(o *Matrix) (float64, error) {
	if m.N != o.N || m.K != o.K {
		return 0, fmt.Errorf("dense: shape mismatch %dx%d vs %dx%d", m.N, m.K, o.N, o.K)
	}
	maxDiff := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - o.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}

// SpMM computes Dout += A · Din with the plain arithmetic semiring; Dout
// must be pre-sized N×K and is accumulated into (matching the paper's
// accumulate-on-top-of-output-row semantics, Fig 1).
//
// When A is row-sorted and large enough, the nonzero loop fans out over the
// par pool in row-boundary-aligned panels (see rowCuts); the output is
// bit-identical to the serial loop for any worker count.
func SpMM(a *sparse.COO, din, dout *Matrix) error {
	if din.N != a.N || dout.N != a.N || din.K != dout.K {
		return fmt.Errorf("dense: SpMM shape mismatch: A %d, Din %dx%d, Dout %dx%d",
			a.N, din.N, din.K, dout.N, dout.K)
	}
	if cuts := rowCuts(a.Rows, a.NNZ()*din.K); cuts != nil {
		par.ForEach(len(cuts)-1, func(p int) {
			spmmRange(a, din, dout, cuts[p], cuts[p+1])
		})
		return nil
	}
	spmmRange(a, din, dout, 0, a.NNZ())
	return nil
}

// GSpMM computes Dout ⊕= A ⊗ Din over an arbitrary semiring. Callers are
// responsible for initializing Dout to the semiring's additive identity
// (Fill(s.AddIdentity)) when a fresh product rather than an accumulation is
// wanted.
// Like SpMM, row-sorted inputs fan out over row-boundary-aligned panels with
// a bit-identical result (semiring Add runs per row in serial order).
func GSpMM(a *sparse.COO, din, dout *Matrix, s semiring.Semiring) error {
	if din.N != a.N || dout.N != a.N || din.K != dout.K {
		return fmt.Errorf("dense: GSpMM shape mismatch: A %d, Din %dx%d, Dout %dx%d",
			a.N, din.N, din.K, dout.N, dout.K)
	}
	if cuts := rowCuts(a.Rows, a.NNZ()*din.K); cuts != nil {
		par.ForEach(len(cuts)-1, func(p int) {
			gspmmRange(a, din, dout, s, cuts[p], cuts[p+1])
		})
		return nil
	}
	gspmmRange(a, din, dout, s, 0, a.NNZ())
	return nil
}

// SpMMCSR computes Dout += A · Din from a CSR matrix; functionally identical
// to SpMM and used to cross-check format conversions. CSR rows are disjoint
// output slices by construction, so large inputs row-split over the par pool
// with a bit-identical result.
func SpMMCSR(a *sparse.CSR, din, dout *Matrix) error {
	if din.N != a.N || dout.N != a.N || din.K != dout.K {
		return fmt.Errorf("dense: SpMMCSR shape mismatch")
	}
	if par.Workers() > 1 && a.NNZ()*din.K >= parMinWork {
		par.Chunks(a.N, func(lo, hi int) {
			spmmCSRRows(a, din, dout, lo, hi)
		})
		return nil
	}
	spmmCSRRows(a, din, dout, 0, a.N)
	return nil
}

// Merge adds src into dst elementwise: the Merger module of the
// SPADE-Sextans architecture (paper §VI-A) combining the two private output
// buffers after parallel heterogeneous execution.
func Merge(dst, src *Matrix) error {
	if dst.N != src.N || dst.K != src.K {
		return fmt.Errorf("dense: merge shape mismatch %dx%d vs %dx%d", dst.N, dst.K, src.N, src.K)
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
	return nil
}

// GMerge combines src into dst with the semiring's additive monoid, for
// architectures merging gSpMM partial outputs.
func GMerge(dst, src *Matrix, s semiring.Semiring) error {
	if dst.N != src.N || dst.K != src.K {
		return fmt.Errorf("dense: gmerge shape mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] = s.Add(dst.Data[i], v)
	}
	return nil
}

package dense

import (
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/sparse"
)

// parMinWork is the minimum kernel size — multiply-accumulates, nnz·K — at
// which the row-panel fan-out engages. Below it the per-panel dispatch cost
// outweighs the loop itself, so small inputs keep the plain serial path.
const parMinWork = 1 << 14

// rowCuts splits a row-sorted nonzero array into row-boundary-aligned panels
// for the par pool: cuts[p] .. cuts[p+1] is panel p's nonzero range, and no
// row straddles a cut. Because each output row is touched by exactly one
// panel and panel-internal order equals global order, the parallel kernels
// accumulate every row in precisely the serial floating-point order — the
// result is bit-identical for any worker count (the internal/par determinism
// contract).
//
// Returns nil — caller runs serial — when the pool has one worker, the work
// is below parMinWork, the rows are not sorted (COO order is unconstrained;
// the O(nnz) pre-check is the price of the guarantee), or the row structure
// admits fewer than two panels (one giant row).
func rowCuts(rows []int32, work int) []int {
	if par.Workers() < 2 || work < parMinWork {
		return nil
	}
	n := len(rows)
	for i := 1; i < n; i++ {
		if rows[i] < rows[i-1] {
			return nil
		}
	}
	k := par.Workers() * 4 // oversubscribe: uneven rows still balance
	if k > n {
		k = n
	}
	cuts := make([]int, 1, k+1)
	for p := 1; p < k; p++ {
		b := p * n / k
		if b <= cuts[len(cuts)-1] {
			continue
		}
		for b < n && rows[b] == rows[b-1] {
			b++
		}
		if b > cuts[len(cuts)-1] && b < n {
			cuts = append(cuts, b)
		}
	}
	if len(cuts) < 2 {
		return nil
	}
	return append(cuts, n)
}

// spmmRange is the SpMM inner loop over the nonzero range [lo, hi).
//
//hot:path
func spmmRange(a *sparse.COO, din, dout *Matrix, lo, hi int) {
	k := din.K
	for i := lo; i < hi; i++ {
		c := int(a.Cols[i]) * k
		r := int(a.Rows[i]) * k
		v := a.Vals[i]
		in := din.Data[c : c+k]
		out := dout.Data[r : r+k]
		for j := 0; j < k; j++ {
			out[j] += v * in[j]
		}
	}
}

// gspmmRange is the semiring gSpMM inner loop over [lo, hi).
//
//hot:path
func gspmmRange(a *sparse.COO, din, dout *Matrix, s semiring.Semiring, lo, hi int) {
	k := din.K
	for i := lo; i < hi; i++ {
		c := int(a.Cols[i]) * k
		r := int(a.Rows[i]) * k
		v := a.Vals[i]
		in := din.Data[c : c+k]
		out := dout.Data[r : r+k]
		for j := 0; j < k; j++ {
			out[j] = s.Add(out[j], s.Mul(v, in[j]))
		}
	}
}

// spmvRange is the SpMV inner loop over [lo, hi).
//
//hot:path
func spmvRange(a *sparse.COO, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[a.Rows[i]] += a.Vals[i] * x[a.Cols[i]]
	}
}

// spmmCSRRows is the CSR SpMM inner loop over the row range [lo, hi); CSR
// rows are disjoint output slices by construction, so any row split is
// deterministic.
//
//hot:path
func spmmCSRRows(a *sparse.CSR, din, dout *Matrix, lo, hi int) {
	k := din.K
	for r := lo; r < hi; r++ {
		out := dout.Data[r*k : r*k+k]
		cols, vals := a.Row(r)
		for i, c := range cols {
			v := vals[i]
			in := din.Data[int(c)*k : int(c)*k+k]
			for j := 0; j < k; j++ {
				out[j] += v * in[j]
			}
		}
	}
}

// sddmmRange is the SDDMM inner loop over the nonzero range [lo, hi); every
// nonzero writes only its own output slot, so any split is deterministic.
//
//hot:path
func sddmmRange(a *sparse.COO, u, v *Matrix, out []float64, lo, hi int) {
	k := u.K
	for i := lo; i < hi; i++ {
		ur := u.Data[int(a.Rows[i])*k : int(a.Rows[i])*k+k]
		vc := v.Data[int(a.Cols[i])*k : int(a.Cols[i])*k+k]
		dot := 0.0
		for j := 0; j < k; j++ {
			dot += ur[j] * vc[j]
		}
		out[i] = a.Vals[i] * dot
	}
}

package dense

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/sparse"
)

// SpMV computes y += A·x, the K = 1 special case of SpMM (paper §X lists it
// as a direct application of HotTiles). Row-sorted inputs fan out over
// row-boundary-aligned panels like SpMM.
func SpMV(a *sparse.COO, x, y []float64) error {
	if len(x) != a.N || len(y) != a.N {
		return fmt.Errorf("dense: SpMV shape mismatch: A %d, x %d, y %d", a.N, len(x), len(y))
	}
	if cuts := rowCuts(a.Rows, a.NNZ()); cuts != nil {
		par.ForEach(len(cuts)-1, func(p int) {
			spmvRange(a, x, y, cuts[p], cuts[p+1])
		})
		return nil
	}
	spmvRange(a, x, y, 0, a.NNZ())
	return nil
}

// SDDMM computes the sampled dense-dense matrix multiplication: for every
// nonzero (r, c, v) of A, out[i] = v · ⟨U[r,:], V[c,:]⟩. The output is
// sparse — one value per nonzero of A, aligned with A's nonzero order. Every
// nonzero owns its output slot, so large inputs split over the par pool on
// arbitrary nnz ranges with a bit-identical result.
func SDDMM(a *sparse.COO, u, v *Matrix) ([]float64, error) {
	if u.N != a.N || v.N != a.N || u.K != v.K {
		return nil, fmt.Errorf("dense: SDDMM shape mismatch: A %d, U %dx%d, V %dx%d",
			a.N, u.N, u.K, v.N, v.K)
	}
	out := make([]float64, a.NNZ())
	if par.Workers() > 1 && a.NNZ()*u.K >= parMinWork {
		par.Chunks(a.NNZ(), func(lo, hi int) {
			sddmmRange(a, u, v, out, lo, hi)
		})
		return out, nil
	}
	sddmmRange(a, u, v, out, 0, a.NNZ())
	return out, nil
}

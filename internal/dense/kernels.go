package dense

import (
	"fmt"

	"repro/internal/sparse"
)

// SpMV computes y += A·x, the K = 1 special case of SpMM (paper §X lists it
// as a direct application of HotTiles).
func SpMV(a *sparse.COO, x, y []float64) error {
	if len(x) != a.N || len(y) != a.N {
		return fmt.Errorf("dense: SpMV shape mismatch: A %d, x %d, y %d", a.N, len(x), len(y))
	}
	for i := 0; i < a.NNZ(); i++ {
		r, c, v := a.At(i)
		y[r] += v * x[c]
	}
	return nil
}

// SDDMM computes the sampled dense-dense matrix multiplication: for every
// nonzero (r, c, v) of A, out[i] = v · ⟨U[r,:], V[c,:]⟩. The output is
// sparse — one value per nonzero of A, aligned with A's nonzero order.
func SDDMM(a *sparse.COO, u, v *Matrix) ([]float64, error) {
	if u.N != a.N || v.N != a.N || u.K != v.K {
		return nil, fmt.Errorf("dense: SDDMM shape mismatch: A %d, U %dx%d, V %dx%d",
			a.N, u.N, u.K, v.N, v.K)
	}
	out := make([]float64, a.NNZ())
	k := u.K
	for i := 0; i < a.NNZ(); i++ {
		r, c, val := a.At(i)
		ur := u.Data[int(r)*k : int(r)*k+k]
		vc := v.Data[int(c)*k : int(c)*k+k]
		dot := 0.0
		for j := 0; j < k; j++ {
			dot += ur[j] * vc[j]
		}
		out[i] = val * dot
	}
	return out, nil
}

// Package partition implements the paper's IMH-aware partitioning (§V): the
// four HotTiles heuristics (MinTime/MinByte × Parallel/Serial) with the
// cutoff-index placement algorithm of Figure 8, the predicted-runtime
// formulas used to select among them, and the IMH-unaware IUnaware baseline
// of §III-B (whole-matrix roofline + Huang et al. fraction + random tile
// assignment).
package partition

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tile"
)

// Heuristic identifies one of the four HotTiles partitioning subproblems
// (paper Table II).
type Heuristic int

const (
	MinTimeParallel Heuristic = iota
	MinTimeSerial
	MinByteParallel
	MinByteSerial
	numHeuristics
)

func (h Heuristic) String() string {
	switch h {
	case MinTimeParallel:
		return "MinTime Parallel"
	case MinTimeSerial:
		return "MinTime Serial"
	case MinByteParallel:
		return "MinByte Parallel"
	case MinByteSerial:
		return "MinByte Serial"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Serial reports whether the heuristic assumes the worker pools execute
// back to back on a shared output buffer rather than in parallel on private
// buffers.
func (h Heuristic) Serial() bool { return h == MinTimeSerial || h == MinByteSerial }

// MinimizesBytes reports whether the heuristic's subproblem objective is
// total memory traffic rather than execution time.
func (h Heuristic) MinimizesBytes() bool { return h == MinByteParallel || h == MinByteSerial }

// BandwidthPressure describes when the heuristic is expected to be
// effective (paper Table II).
func (h Heuristic) BandwidthPressure() string {
	switch h {
	case MinTimeParallel:
		return "low"
	case MinTimeSerial, MinByteParallel:
		return "medium"
	default:
		return "high"
	}
}

// Config describes the heterogeneous architecture to partition for.
type Config struct {
	Hot, Cold *model.Worker
	// BWBytes is the shared main-memory bandwidth in bytes/s.
	BWBytes float64
	// AtomicRMW is true for architectures (PIUMA) whose atomic engine lets
	// both worker types update the same output buffer: t_merge = 0 and only
	// the Parallel heuristics are considered (paper §V-B).
	AtomicRMW bool
	// Params carries K and the semiring's arithmetic-intensity factor.
	Params model.Params
}

func (c *Config) validate() error {
	if c.Hot == nil || c.Cold == nil {
		return fmt.Errorf("partition: nil worker")
	}
	if c.BWBytes <= 0 {
		return fmt.Errorf("partition: non-positive bandwidth")
	}
	if c.Params.K <= 0 || c.Params.OpsPerMAC <= 0 {
		return fmt.Errorf("partition: invalid params %+v", c.Params)
	}
	return nil
}

// Totals are the aggregate predictions of Equation 2/3 after the §IV-C
// readjustment: per-pool execution times (already divided by worker counts)
// and per-pool main-memory traffic.
type Totals struct {
	HotTime, ColdTime   float64 // th_total, tc_total (seconds)
	HotBytes, ColdBytes float64 // bh_total, bc_total
}

// Bytes returns b_total.
func (t Totals) Bytes() float64 { return t.HotBytes + t.ColdBytes }

// Result is a partitioning decision: which tiles go hot, which heuristic
// produced it, whether the pools run serially, and the predicted runtime.
type Result struct {
	// Hot[i] reports whether g.Tiles[i] is assigned to the hot workers.
	Hot []bool
	// Heuristic is the winning subproblem (undefined for baselines).
	Heuristic Heuristic
	// Serial is true when the predicted-best execution runs the pools back
	// to back.
	Serial bool
	// Predicted is the predicted runtime in seconds.
	Predicted float64
	// Totals are the readjusted aggregates behind Predicted.
	Totals Totals
}

// HotNNZ returns the number and fraction of nonzeros assigned to hot
// workers (the statistic Figure 5 reports).
func (r *Result) HotNNZ(g *tile.Grid) (nnz int, frac float64) {
	for i, h := range r.Hot {
		if h {
			nnz += g.Tiles[i].NNZ()
		}
	}
	if g.NNZ() > 0 {
		frac = float64(nnz) / float64(g.NNZ())
	}
	return nnz, frac
}

// MergeBytes returns the traffic of merging the two private output buffers:
// the Merger reads both buffers and writes the combined one (paper §V-A;
// the cost is data independent by design).
func MergeBytes(n int, p model.Params, elemBytes int) float64 {
	return 3 * float64(n) * float64(p.K) * float64(elemBytes)
}

// mergeTime returns t_merge for a given assignment: zero when the
// architecture supports atomic RMW or when either pool is empty (no second
// buffer to merge).
func mergeTime(g *tile.Grid, cfg *Config, hot []bool) float64 {
	if cfg.AtomicRMW {
		return 0
	}
	anyHot, anyCold := false, false
	for _, h := range hot {
		if h {
			anyHot = true
		} else {
			anyCold = true
		}
	}
	if !anyHot || !anyCold {
		return 0
	}
	return MergeBytes(g.N, cfg.Params, cfg.Hot.ElemBytes) / cfg.BWBytes
}

// EvaluateTotals computes the readjusted Totals of an assignment: per-tile
// estimates under maximum reuse, plus the per-panel first-tile charges of
// §IV-C, divided by the pool sizes per Equation 2.
func EvaluateTotals(g *tile.Grid, cfg *Config, hot []bool) Totals {
	eh := model.EstimateGrid(cfg.Hot, g, cfg.Params)
	ec := model.EstimateGrid(cfg.Cold, g, cfg.Params)
	return evaluateTotals(g, cfg, hot, eh, ec)
}

func evaluateTotals(g *tile.Grid, cfg *Config, hot []bool, eh, ec []model.Estimate) Totals {
	var t Totals
	for i := range g.Tiles {
		if hot[i] {
			t.HotTime += eh[i].Time
			t.HotBytes += eh[i].Bytes
		} else {
			t.ColdTime += ec[i].Time
			t.ColdBytes += ec[i].Bytes
		}
	}
	var adj model.Adjuster
	base := 0
	keepHot := func(i int) bool { return hot[base+i] }
	keepCold := func(i int) bool { return !hot[base+i] }
	for tr := 0; tr < g.NumTR; tr++ {
		base = g.PanelStart[tr]
		ah := adj.PanelAdjust(cfg.Hot, g, tr, keepHot, cfg.Params)
		ac := adj.PanelAdjust(cfg.Cold, g, tr, keepCold, cfg.Params)
		t.HotTime += ah.Time
		t.HotBytes += ah.Bytes
		t.ColdTime += ac.Time
		t.ColdBytes += ac.Bytes
	}
	if cfg.Hot.Count > 0 {
		t.HotTime /= float64(cfg.Hot.Count)
	}
	if cfg.Cold.Count > 0 {
		t.ColdTime /= float64(cfg.Cold.Count)
	}
	return t
}

// predictedRuntime applies the Figure 8 final-column formulas.
func predictedRuntime(g *tile.Grid, cfg *Config, hot []bool, t Totals, serial bool) float64 {
	if serial {
		return maxf(t.HotTime, t.HotBytes/cfg.BWBytes) +
			maxf(t.ColdTime, t.ColdBytes/cfg.BWBytes)
	}
	return maxf(maxf(t.HotTime, t.ColdTime), t.Bytes()/cfg.BWBytes) +
		mergeTime(g, cfg, hot)
}

// Predict returns the model's predicted runtime for an arbitrary assignment
// executed in the given mode, with readjusted totals. It backs the paper's
// architecture-exploration use case (§VIII-B) and the Fig 17 error study.
// Callers evaluating many assignments on the same grid should build the
// estimates once with NewEstimates and use PredictFrom instead.
func Predict(g *tile.Grid, cfg *Config, hot []bool, serial bool) (float64, Totals, error) {
	if err := cfg.validate(); err != nil {
		return 0, Totals{}, err
	}
	es, err := NewEstimates(g, cfg)
	if err != nil {
		return 0, Totals{}, err
	}
	return PredictFrom(es, cfg, hot, serial)
}

// AllHot returns the homogeneous hot assignment.
func AllHot(g *tile.Grid) []bool {
	a := make([]bool, len(g.Tiles))
	for i := range a {
		a[i] = true
	}
	return a
}

// AllCold returns the homogeneous cold assignment.
func AllCold(g *tile.Grid) []bool { return make([]bool, len(g.Tiles)) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

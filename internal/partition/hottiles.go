package partition

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/model"
	"repro/internal/tile"
)

// HotTiles runs the full partitioning method of §V-B: solve the four (or,
// with atomic RMW, two) heuristic subproblems, predict each resulting
// partitioning's runtime with the readjusted model, and keep the best.
func HotTiles(g *tile.Grid, cfg Config) (Result, error) {
	es, err := NewEstimates(g, &cfg)
	if err != nil {
		return Result{}, err
	}
	return HotTilesFrom(es, cfg)
}

// HotTilesFrom is HotTiles reusing precomputed estimates.
func HotTilesFrom(es *Estimates, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := es.check(); err != nil {
		return Result{}, err
	}
	g, eh, ec := es.Grid, es.Hot, es.Cold

	heuristics := []Heuristic{MinTimeParallel, MinByteParallel}
	if !cfg.AtomicRMW {
		heuristics = append(heuristics, MinTimeSerial, MinByteSerial)
	}

	best := Result{Predicted: -1}
	for _, h := range heuristics {
		hot := solveSubproblem(g, &cfg, h, eh, ec)
		t := evaluateTotals(g, &cfg, hot, eh, ec)
		pred := predictedRuntime(g, &cfg, hot, t, h.Serial())
		if best.Predicted < 0 || pred < best.Predicted {
			best = Result{Hot: hot, Heuristic: h, Serial: h.Serial(), Predicted: pred, Totals: t}
		}
	}
	return best, nil
}

// RunHeuristic forces a single heuristic (used by the Figure 12 study that
// compares the four heuristics individually across system scales).
func RunHeuristic(g *tile.Grid, cfg Config, h Heuristic) (Result, error) {
	es, err := NewEstimates(g, &cfg)
	if err != nil {
		return Result{}, err
	}
	return RunHeuristicFrom(es, cfg, h)
}

// RunHeuristicFrom is RunHeuristic reusing precomputed estimates.
func RunHeuristicFrom(es *Estimates, cfg Config, h Heuristic) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := es.check(); err != nil {
		return Result{}, err
	}
	if h < 0 || h >= numHeuristics {
		return Result{}, fmt.Errorf("partition: unknown heuristic %d", int(h))
	}
	g, eh, ec := es.Grid, es.Hot, es.Cold
	hot := solveSubproblem(g, &cfg, h, eh, ec)
	t := evaluateTotals(g, &cfg, hot, eh, ec)
	return Result{
		Hot:       hot,
		Heuristic: h,
		Serial:    h.Serial(),
		Predicted: predictedRuntime(g, &cfg, hot, t, h.Serial()),
		Totals:    t,
	}, nil
}

// solveSubproblem implements the cutoff-index placement of Figure 8: sort
// tiles by the hot−cold difference of the relevant metric, then advance the
// cutoff (tiles left of it are hot) while the subproblem objective
// decreases, rolling back one step on the first increase.
func solveSubproblem(g *tile.Grid, cfg *Config, h Heuristic, eh, ec []model.Estimate) []bool {
	n := len(g.Tiles)
	hot := make([]bool, n)
	if n == 0 {
		return hot
	}
	// Degenerate pools force a homogeneous assignment (iso-scale 0-8/8-0
	// architectures of §VIII-B).
	if cfg.Hot.Count <= 0 {
		return hot
	}
	if cfg.Cold.Count <= 0 {
		for i := range hot {
			hot[i] = true
		}
		return hot
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	diff := func(i int) float64 {
		if h.MinimizesBytes() {
			return eh[i].Bytes - ec[i].Bytes
		}
		return eh[i].Time - ec[i].Time
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(diff(a), diff(b)) })

	nhw, ncw := float64(cfg.Hot.Count), float64(cfg.Cold.Count)

	// Incrementally maintained sums for the objective. Start all cold.
	var hotTime, hotBytes float64
	var coldTime, coldBytes float64
	for i := range g.Tiles {
		coldTime += ec[i].Time
		coldBytes += ec[i].Bytes
	}

	objective := func() float64 {
		switch h {
		case MinTimeParallel:
			return maxf(hotTime/nhw, coldTime/ncw)
		case MinTimeSerial:
			return hotTime/nhw + coldTime/ncw
		default: // MinByteParallel, MinByteSerial
			return hotBytes + coldBytes
		}
	}

	cur := objective()
	cutoff := 0
	for cutoff < n {
		i := order[cutoff]
		hotTime += eh[i].Time
		hotBytes += eh[i].Bytes
		coldTime -= ec[i].Time
		coldBytes -= ec[i].Bytes
		next := objective()
		if next >= cur {
			// Roll back: the algorithm has converged.
			hotTime -= eh[i].Time
			hotBytes -= eh[i].Bytes
			coldTime += ec[i].Time
			coldBytes += ec[i].Bytes
			break
		}
		cur = next
		cutoff++
	}
	for p := 0; p < cutoff; p++ {
		hot[order[p]] = true
	}
	return hot
}

package partition

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tile"
)

// Estimates bundles the per-tile model estimates of both worker types for
// one grid so that loops over candidate assignments or strategies — the
// Figure 16/17 error studies, the iso-scale exploration, the experiment
// harness's strategy grids — do not redo the O(tiles) model evaluation on
// every Predict/EvaluateTotals/HotTiles call. Build once with NewEstimates,
// then use the *From entry points.
//
// The Config passed to later *From calls may carry different worker Counts
// than the one used to build the Estimates (counts only divide the pool
// times), but the workers' model parameters and the Params must match the
// build-time ones.
type Estimates struct {
	// Grid is the tiling the estimates were computed for.
	Grid *tile.Grid
	// Hot[i]/Cold[i] are the estimates for Grid.Tiles[i] on one hot/cold
	// worker.
	Hot, Cold []model.Estimate
}

// NewEstimates evaluates both worker types' per-tile estimates for g
// (in parallel over tiles).
func NewEstimates(g *tile.Grid, cfg *Config) (*Estimates, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Estimates{
		Grid: g,
		Hot:  model.EstimateGrid(cfg.Hot, g, cfg.Params),
		Cold: model.EstimateGrid(cfg.Cold, g, cfg.Params),
	}, nil
}

// check verifies the estimates cover the grid's tiles.
func (es *Estimates) check() error {
	if es == nil || es.Grid == nil {
		return fmt.Errorf("partition: nil estimates")
	}
	n := len(es.Grid.Tiles)
	if len(es.Hot) != n || len(es.Cold) != n {
		return fmt.Errorf("partition: estimates cover %d/%d tiles, grid has %d",
			len(es.Hot), len(es.Cold), n)
	}
	return nil
}

// EvaluateTotalsFrom is EvaluateTotals reusing precomputed estimates.
func EvaluateTotalsFrom(es *Estimates, cfg *Config, hot []bool) Totals {
	return evaluateTotals(es.Grid, cfg, hot, es.Hot, es.Cold)
}

// PredictFrom is Predict reusing precomputed estimates.
func PredictFrom(es *Estimates, cfg *Config, hot []bool, serial bool) (float64, Totals, error) {
	if err := cfg.validate(); err != nil {
		return 0, Totals{}, err
	}
	if err := es.check(); err != nil {
		return 0, Totals{}, err
	}
	if len(hot) != len(es.Grid.Tiles) {
		return 0, Totals{}, fmt.Errorf("partition: assignment length %d, want %d", len(hot), len(es.Grid.Tiles))
	}
	t := EvaluateTotalsFrom(es, cfg, hot)
	return predictedRuntime(es.Grid, cfg, hot, t, serial), t, nil
}

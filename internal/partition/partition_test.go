package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// hotWorker mimics a Sextans-like streaming PE: high compute, scratchpad
// streaming for Din, inter-tile Dout reuse, tiled traversal.
func hotWorker(count int) *model.Worker {
	return &model.Worker{
		Name: "hot", Kind: model.Hot, Count: count,
		FreqHz: 1e9, MACsPerCycle: 16,
		VisLatPerByte:  1.0 / 40e9,
		Format:         model.FormatCOO,
		DinReuse:       model.ReuseIntraStream,
		DoutReuse:      model.ReuseInter,
		TiledTraversal: true,
		OverlapGroups:  model.FullOverlap(),
		ElemBytes:      4, IdxBytes: 4,
	}
}

// coldWorker mimics a SPADE-like latency-tolerant PE: modest compute,
// on-demand Din, inter-tile Dout, untiled traversal.
func coldWorker(count int) *model.Worker {
	return &model.Worker{
		Name: "cold", Kind: model.Cold, Count: count,
		FreqHz: 1e9, MACsPerCycle: 1,
		VisLatPerByte:  1.0 / 10e9,
		Format:         model.FormatCOO,
		DinReuse:       model.ReuseNone,
		DoutReuse:      model.ReuseInter,
		TiledTraversal: false,
		OverlapGroups:  model.FullOverlap(),
		ElemBytes:      4, IdxBytes: 4,
	}
}

func testConfig() Config {
	return Config{
		Hot: hotWorker(1), Cold: coldWorker(8),
		BWBytes: 100e9,
		Params:  model.Params{K: 32, OpsPerMAC: 2},
	}
}

// imhMatrix builds a matrix with strong intra-matrix heterogeneity: a dense
// top-left block plus a sparse uniform background.
func imhMatrix(t *testing.T, n, blockN, blockNNZ, bgNNZ int, seed int64) *tile.Grid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.NewCOO(n, blockNNZ+bgNNZ)
	for i := 0; i < blockNNZ; i++ {
		m.Append(int32(rng.Intn(blockN)), int32(rng.Intn(blockN)), 1)
	}
	for i := 0; i < bgNNZ; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	m.SortRowMajor()
	m.DedupSum()
	g, err := tile.Partition(m, n/8, n/8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHeuristicMetadata(t *testing.T) {
	// Paper Table II.
	if MinTimeParallel.Serial() || !MinTimeSerial.Serial() ||
		MinByteParallel.Serial() || !MinByteSerial.Serial() {
		t.Fatal("Serial() wrong")
	}
	if MinTimeParallel.MinimizesBytes() || !MinByteParallel.MinimizesBytes() {
		t.Fatal("MinimizesBytes() wrong")
	}
	want := map[Heuristic]string{
		MinTimeParallel: "low", MinTimeSerial: "medium",
		MinByteParallel: "medium", MinByteSerial: "high",
	}
	for h, w := range want {
		if h.BandwidthPressure() != w {
			t.Errorf("%v pressure = %s, want %s", h, h.BandwidthPressure(), w)
		}
		if h.String() == "" {
			t.Errorf("%d has empty name", int(h))
		}
	}
	if Heuristic(9).String() == "" {
		t.Error("fallback name empty")
	}
}

func TestHotTilesAssignsDenseBlockHot(t *testing.T) {
	g := imhMatrix(t, 256, 32, 800, 400, 1)
	cfg := testConfig()
	res, err := HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hot) != len(g.Tiles) {
		t.Fatal("assignment length mismatch")
	}
	// The dense tile (0,0) must be hot; the average background tile cold.
	hotDense := false
	coldBackground := 0
	totalBackground := 0
	for i, tl := range g.Tiles {
		if tl.TR == 0 && tl.TC == 0 {
			hotDense = res.Hot[i]
			continue
		}
		totalBackground++
		if !res.Hot[i] {
			coldBackground++
		}
	}
	if !hotDense {
		t.Error("dense block tile not assigned hot")
	}
	if coldBackground*2 < totalBackground {
		t.Errorf("only %d/%d background tiles cold", coldBackground, totalBackground)
	}
	if res.Predicted <= 0 {
		t.Error("non-positive predicted runtime")
	}
}

func TestHotTilesBeatsHomogeneousAndIUnawareInPrediction(t *testing.T) {
	g := imhMatrix(t, 256, 32, 800, 400, 2)
	cfg := testConfig()
	res, err := HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	predFor := func(hot []bool) float64 {
		p, _, err := Predict(g, &cfg, hot, false)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if hotOnly := predFor(AllHot(g)); res.Predicted > hotOnly*(1+1e-9) {
		t.Errorf("HotTiles predicted %.3e worse than HotOnly %.3e", res.Predicted, hotOnly)
	}
	if coldOnly := predFor(AllCold(g)); res.Predicted > coldOnly*(1+1e-9) {
		t.Errorf("HotTiles predicted %.3e worse than ColdOnly %.3e", res.Predicted, coldOnly)
	}
	iu, err := IUnaware(g, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted > iu.Predicted*(1+1e-9) {
		t.Errorf("HotTiles predicted %.3e worse than IUnaware %.3e", res.Predicted, iu.Predicted)
	}
}

func TestRunHeuristicAllFour(t *testing.T) {
	g := imhMatrix(t, 256, 32, 600, 500, 3)
	cfg := testConfig()
	best, err := HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minPred := math.Inf(1)
	for h := MinTimeParallel; h <= MinByteSerial; h++ {
		r, err := RunHeuristic(g, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if r.Heuristic != h || r.Serial != h.Serial() {
			t.Errorf("%v: metadata wrong", h)
		}
		if r.Predicted < minPred {
			minPred = r.Predicted
		}
	}
	if math.Abs(best.Predicted-minPred) > 1e-12*minPred {
		t.Errorf("HotTiles (%.6e) should equal the best heuristic (%.6e)", best.Predicted, minPred)
	}
	if _, err := RunHeuristic(g, cfg, Heuristic(99)); err == nil {
		t.Error("expected unknown-heuristic error")
	}
}

func TestAtomicRMWSkipsSerialHeuristics(t *testing.T) {
	g := imhMatrix(t, 256, 32, 600, 500, 4)
	cfg := testConfig()
	cfg.AtomicRMW = true
	res, err := HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Serial {
		t.Fatal("atomic-RMW architecture must not pick a serial heuristic")
	}
	if res.Heuristic != MinTimeParallel && res.Heuristic != MinByteParallel {
		t.Fatalf("picked %v", res.Heuristic)
	}
	// t_merge must be zero: predicted equals the bare parallel formula.
	want := maxf(maxf(res.Totals.HotTime, res.Totals.ColdTime), res.Totals.Bytes()/cfg.BWBytes)
	if math.Abs(res.Predicted-want) > 1e-15 {
		t.Fatalf("predicted %.3e, want %.3e (no merge)", res.Predicted, want)
	}
}

func TestMergeTimeCases(t *testing.T) {
	g := imhMatrix(t, 128, 16, 200, 100, 5)
	cfg := testConfig()
	// Homogeneous assignments need no merge.
	if mt := mergeTime(g, &cfg, AllCold(g)); mt != 0 {
		t.Fatalf("all-cold merge time %g", mt)
	}
	if mt := mergeTime(g, &cfg, AllHot(g)); mt != 0 {
		t.Fatalf("all-hot merge time %g", mt)
	}
	mixed := AllCold(g)
	mixed[0] = true
	want := MergeBytes(g.N, cfg.Params, cfg.Hot.ElemBytes) / cfg.BWBytes
	if mt := mergeTime(g, &cfg, mixed); math.Abs(mt-want) > 1e-18 {
		t.Fatalf("mixed merge time %g, want %g", mt, want)
	}
	cfg.AtomicRMW = true
	if mt := mergeTime(g, &cfg, mixed); mt != 0 {
		t.Fatalf("atomic merge time %g", mt)
	}
}

func TestDegeneratePools(t *testing.T) {
	g := imhMatrix(t, 128, 16, 200, 100, 6)
	cfg := testConfig()
	cfg.Hot = hotWorker(1)
	cfg.Hot.Count = 0
	cfg.Hot.Count = 0
	// Count 0 fails worker validation in the model but the partitioner must
	// still handle it for iso-scale exploration; bypass validation by using
	// count 0 directly.
	res, err := HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hot {
		if h {
			t.Fatal("tiles assigned to empty hot pool")
		}
	}
	cfg = testConfig()
	cfg.Cold.Count = 0
	res, err = HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hot {
		if !h {
			t.Fatal("tiles assigned to empty cold pool")
		}
	}
}

func TestIUnawareFractionAndDeterminism(t *testing.T) {
	g := imhMatrix(t, 256, 32, 600, 500, 8)
	cfg := testConfig()
	r1, err := IUnaware(g, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := IUnaware(g, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Hot {
		if r1.Hot[i] != r2.Hot[i] {
			t.Fatal("IUnaware not deterministic for equal seeds")
		}
	}
	// The fraction of hot tiles follows Equation 1: recompute it here.
	nHot := 0
	for _, h := range r1.Hot {
		if h {
			nHot++
		}
	}
	if nHot == 0 || nHot == len(r1.Hot) {
		t.Fatalf("IUnaware degenerate split: %d/%d hot", nHot, len(r1.Hot))
	}
	// Different seeds give different assignments (same count).
	r3, err := IUnaware(g, cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Hot {
		if r1.Hot[i] != r3.Hot[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical random assignment")
	}
}

func TestIUnawareDegeneratePools(t *testing.T) {
	g := imhMatrix(t, 128, 16, 200, 100, 9)
	cfg := testConfig()
	cfg.Hot.Count = 0
	r, err := IUnaware(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hot {
		if h {
			t.Fatal("hot tiles with empty hot pool")
		}
	}
	cfg = testConfig()
	cfg.Cold.Count = 0
	r, err = IUnaware(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hot {
		if !h {
			t.Fatal("cold tiles with empty cold pool")
		}
	}
}

func TestPredictValidation(t *testing.T) {
	g := imhMatrix(t, 128, 16, 200, 100, 10)
	cfg := testConfig()
	if _, _, err := Predict(g, &cfg, make([]bool, 1), false); err == nil {
		t.Fatal("expected assignment-length error")
	}
	bad := cfg
	bad.BWBytes = 0
	if _, _, err := Predict(g, &bad, AllCold(g), false); err == nil {
		t.Fatal("expected bandwidth error")
	}
	bad = cfg
	bad.Hot = nil
	if _, _, err := Predict(g, &bad, AllCold(g), false); err == nil {
		t.Fatal("expected nil-worker error")
	}
	bad = cfg
	bad.Params.K = 0
	if _, _, err := Predict(g, &bad, AllCold(g), false); err == nil {
		t.Fatal("expected params error")
	}
	if _, err := HotTiles(g, bad); err == nil {
		t.Fatal("expected HotTiles config error")
	}
	if _, err := IUnaware(g, bad, 1); err == nil {
		t.Fatal("expected IUnaware config error")
	}
	if _, err := RunHeuristic(g, bad, MinTimeParallel); err == nil {
		t.Fatal("expected RunHeuristic config error")
	}
}

func TestSerialVsParallelFormulas(t *testing.T) {
	g := imhMatrix(t, 128, 16, 300, 200, 11)
	cfg := testConfig()
	hot := make([]bool, len(g.Tiles))
	for i := range hot {
		hot[i] = i%2 == 0
	}
	pp, tt, err := Predict(g, &cfg, hot, false)
	if err != nil {
		t.Fatal(err)
	}
	ps, ts, err := Predict(g, &cfg, hot, true)
	if err != nil {
		t.Fatal(err)
	}
	if tt != ts {
		t.Fatal("totals must not depend on execution mode")
	}
	wantP := maxf(maxf(tt.HotTime, tt.ColdTime), tt.Bytes()/cfg.BWBytes) +
		MergeBytes(g.N, cfg.Params, 4)/cfg.BWBytes
	wantS := maxf(tt.HotTime, tt.HotBytes/cfg.BWBytes) + maxf(tt.ColdTime, tt.ColdBytes/cfg.BWBytes)
	if math.Abs(pp-wantP) > 1e-15 || math.Abs(ps-wantS) > 1e-15 {
		t.Fatalf("formulas: parallel %.3e want %.3e; serial %.3e want %.3e", pp, wantP, ps, wantS)
	}
}

func TestHotNNZ(t *testing.T) {
	g := imhMatrix(t, 128, 16, 300, 200, 12)
	res := Result{Hot: AllHot(g)}
	nnz, frac := res.HotNNZ(g)
	if nnz != g.NNZ() || frac != 1 {
		t.Fatalf("all hot: nnz=%d frac=%g", nnz, frac)
	}
	res = Result{Hot: AllCold(g)}
	if nnz, frac := res.HotNNZ(g); nnz != 0 || frac != 0 {
		t.Fatalf("all cold: nnz=%d frac=%g", nnz, frac)
	}
}

// TestCutoffMonotonicity: with the MinByte objective, exactly the tiles
// whose hot traffic is below their cold traffic end up hot (the objective
// decreases while the sorted difference stays negative).
func TestCutoffMinByteSemantics(t *testing.T) {
	g := imhMatrix(t, 256, 32, 800, 400, 13)
	cfg := testConfig()
	r, err := RunHeuristic(g, cfg, MinByteParallel)
	if err != nil {
		t.Fatal(err)
	}
	eh := model.EstimateGrid(cfg.Hot, g, cfg.Params)
	ec := model.EstimateGrid(cfg.Cold, g, cfg.Params)
	for i := range g.Tiles {
		d := eh[i].Bytes - ec[i].Bytes
		if d < 0 && !r.Hot[i] {
			t.Fatalf("tile %d saves %.0f bytes hot but is cold", i, -d)
		}
		if d > 0 && r.Hot[i] {
			t.Fatalf("tile %d costs %.0f extra bytes hot but is hot", i, d)
		}
	}
}

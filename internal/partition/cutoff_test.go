package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// syntheticGrid builds a grid with exactly n single-nonzero tiles so tests
// can pair it with fabricated estimates.
func syntheticGrid(t *testing.T, n int) *tile.Grid {
	t.Helper()
	m := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		m.Append(int32(i), int32(i), 1)
	}
	g, err := tile.Partition(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tiles) != n {
		t.Fatalf("%d tiles, want %d", len(g.Tiles), n)
	}
	return g
}

// mkEstimates fabricates per-tile estimates.
func mkEstimates(times, bytes []float64) []model.Estimate {
	out := make([]model.Estimate, len(times))
	for i := range out {
		out[i] = model.Estimate{Time: times[i], Bytes: bytes[i]}
	}
	return out
}

// TestCutoffRollsBackAtFirstIncrease pins the Figure 8 algorithm: the
// cutoff advances while the subproblem objective decreases and rolls back
// one step on the first increase.
func TestCutoffRollsBackAtFirstIncrease(t *testing.T) {
	g := syntheticGrid(t, 4)
	cfg := testConfig()
	cfg.Hot.Count, cfg.Cold.Count = 1, 1

	// MinTime Serial objective: sum hot + sum cold. Tile hot/cold times
	// chosen so moving tiles 0 and 1 hot helps (th < tc) and tile 2 hurts.
	eh := mkEstimates([]float64{1, 2, 9, 9}, []float64{0, 0, 0, 0})
	ec := mkEstimates([]float64{5, 3, 4, 4}, []float64{0, 0, 0, 0})
	hot := solveSubproblem(g, &cfg, MinTimeSerial, eh, ec)
	// Sorted by th−tc: tile 0 (−4), tile 1 (−1), tiles 2/3 (+5). The
	// objective decreases through the first two and increases at the third.
	if !hot[0] || !hot[1] || hot[2] || hot[3] {
		t.Fatalf("assignment = %v, want [true true false false]", hot)
	}
}

// TestCutoffMinByteStopsAtSignFlip: for MinByte the objective is b_total,
// whose delta is exactly bh−bc, so the cutoff lands at the sign flip of the
// sorted differences.
func TestCutoffMinByteStopsAtSignFlip(t *testing.T) {
	g := syntheticGrid(t, 5)
	cfg := testConfig()
	eh := mkEstimates(make([]float64, 5), []float64{10, 50, 30, 80, 5})
	ec := mkEstimates(make([]float64, 5), []float64{40, 40, 40, 40, 40})
	hot := solveSubproblem(g, &cfg, MinByteParallel, eh, ec)
	// bh−bc: −30, +10, −10, +40, −35 → hot exactly where negative.
	want := []bool{true, false, true, false, true}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("tile %d: hot=%v, want %v (full %v)", i, hot[i], want[i], hot)
		}
	}
}

// TestCutoffMinTimeParallelBalances: with equal per-tile costs on both
// sides, MinTime Parallel splits work proportionally to pool sizes.
func TestCutoffMinTimeParallelBalances(t *testing.T) {
	const n = 100
	g := syntheticGrid(t, n)
	cfg := testConfig()
	cfg.Hot.Count, cfg.Cold.Count = 1, 3
	times := make([]float64, n)
	zeros := make([]float64, n)
	for i := range times {
		times[i] = 1
	}
	eh := mkEstimates(times, zeros)
	ec := mkEstimates(times, zeros)
	hot := solveSubproblem(g, &cfg, MinTimeParallel, eh, ec)
	nHot := 0
	for _, h := range hot {
		if h {
			nHot++
		}
	}
	// Balance point: hot pool (1 worker) should take ~1/4 of the tiles.
	if nHot < n/4-3 || nHot > n/4+3 {
		t.Fatalf("hot tiles = %d, want ≈ %d", nHot, n/4)
	}
}

// Property: the cutoff solution never assigns a tile hot when doing so
// strictly worsened the objective at the moment it was considered — which
// implies the produced objective value is never worse than all-cold.
func TestCutoffNeverWorseThanAllColdProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		times := make([]float64, n)
		bytes := make([]float64, n)
		timesC := make([]float64, n)
		bytesC := make([]float64, n)
		for i := 0; i < n; i++ {
			times[i] = rng.Float64()
			bytes[i] = rng.Float64() * 1e3
			timesC[i] = rng.Float64()
			bytesC[i] = rng.Float64() * 1e3
		}
		m := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			m.Append(int32(i), int32(i), 1)
		}
		g, err := tile.Partition(m, 1, 1)
		if err != nil {
			return false
		}
		cfg := testConfig()
		eh := mkEstimates(times, bytes)
		ec := mkEstimates(timesC, bytesC)
		for _, h := range []Heuristic{MinTimeParallel, MinTimeSerial, MinByteParallel, MinByteSerial} {
			hot := solveSubproblem(g, &cfg, h, eh, ec)
			obj := func(assign []bool) float64 {
				var ht, ct, hb, cb float64
				for i, isHot := range assign {
					if isHot {
						ht += eh[i].Time
						hb += eh[i].Bytes
					} else {
						ct += ec[i].Time
						cb += ec[i].Bytes
					}
				}
				nhw, ncw := float64(cfg.Hot.Count), float64(cfg.Cold.Count)
				switch h {
				case MinTimeParallel:
					return maxf(ht/nhw, ct/ncw)
				case MinTimeSerial:
					return ht/nhw + ct/ncw
				default:
					return hb + cb
				}
			}
			if obj(hot) > obj(make([]bool, n))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package partition

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/tile"
)

// IUnaware implements the IMH-unaware heterogeneous baseline of §III-B,
// which resembles AESPA's partitioning: estimate the whole matrix's
// execution time on each worker type with a Roofline model under a uniform
// nonzero distribution, derive the fraction of tiles for hot workers with
// Huang et al.'s formula (Equation 1), and assign that fraction of tiles at
// random. The returned Result's Predicted field uses the same readjusted
// evaluation as HotTiles so baselines and HotTiles are comparable.
func IUnaware(g *tile.Grid, cfg Config, seed int64) (Result, error) {
	es, err := NewEstimates(g, &cfg)
	if err != nil {
		return Result{}, err
	}
	return IUnawareFrom(es, cfg, seed)
}

// IUnawareFrom is IUnaware reusing precomputed estimates (the readjusted
// Predicted evaluation is the O(tiles) part; the roofline itself is cheap).
func IUnawareFrom(es *Estimates, cfg Config, seed int64) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := es.check(); err != nil {
		return Result{}, err
	}
	g := es.Grid

	// Whole-matrix Roofline estimates: execution time is the max of
	// computation time and memory time at full system bandwidth (§III-B).
	rooflineTime := func(w *model.Worker) float64 {
		e := model.WholeMatrix(w, g.N, g.NNZ(), g.TileH, g.TileW, cfg.Params)
		compute := w.ComputeTime(g.NNZ(), cfg.Params.K, cfg.Params.OpsPerMAC)
		return maxf(compute, e.Bytes/cfg.BWBytes)
	}

	n := len(g.Tiles)
	hot := make([]bool, n)
	fracHot := 0.0
	switch {
	case cfg.Hot.Count <= 0:
		// No hot pool: stay all cold.
	case cfg.Cold.Count <= 0:
		fracHot = 1.0
	default:
		th := rooflineTime(cfg.Hot)
		tc := rooflineTime(cfg.Cold)
		exHW := th / float64(cfg.Hot.Count)
		exCW := tc / float64(cfg.Cold.Count)
		// Equation 1: frac_tile_hot = Ex_cw / (Ex_cw + Ex_hw).
		if exCW+exHW > 0 {
			fracHot = exCW / (exCW + exHW)
		}
	}

	// Random assignment honoring the fraction: shuffle tile indices and
	// mark the first ⌊frac·n⌉ hot.
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nHot := int(fracHot*float64(n) + 0.5)
	for i := 0; i < nHot && i < n; i++ {
		hot[perm[i]] = true
	}

	t := EvaluateTotalsFrom(es, &cfg, hot)
	return Result{
		Hot:       hot,
		Serial:    false, // IUnaware always runs the pools in parallel
		Predicted: predictedRuntime(g, &cfg, hot, t, false),
		Totals:    t,
	}, nil
}

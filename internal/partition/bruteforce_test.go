package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/tile"
)

// bruteForceBest exhaustively evaluates all 2^n assignments in both
// execution modes with the same readjusted predictor HotTiles uses,
// returning the optimal predicted runtime (the paper's intractable baseline
// from §V-B).
func bruteForceBest(t *testing.T, g *tile.Grid, cfg *Config) float64 {
	t.Helper()
	n := len(g.Tiles)
	if n > 16 {
		t.Fatalf("too many tiles (%d) for brute force", n)
	}
	best := math.Inf(1)
	hot := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			hot[i] = mask&(1<<i) != 0
		}
		tot := EvaluateTotals(g, cfg, hot)
		for _, serial := range []bool{false, true} {
			if p := predictedRuntime(g, cfg, hot, tot, serial); p < best {
				best = p
			}
		}
	}
	return best
}

// TestHotTilesNearOptimal compares the polynomial-time heuristics against
// exhaustive search on small grids: the paper motivates the heuristics as
// an approximation of an exponential search, so HotTiles must land within a
// modest factor of the true optimum of its own objective.
func TestHotTilesNearOptimal(t *testing.T) {
	cfg := testConfig()
	worst := 1.0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// 3x3 tile grid over a 96x96 matrix with mixed-density tiles.
		m := sparse.NewCOO(96, 0)
		for i := 0; i < 300; i++ {
			m.Append(int32(rng.Intn(32)), int32(rng.Intn(32)), 1) // dense corner
		}
		for i := 0; i < 150; i++ {
			m.Append(int32(rng.Intn(96)), int32(rng.Intn(96)), 1)
		}
		m.SortRowMajor()
		m.DedupSum()
		g, err := tile.Partition(m, 32, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Tiles) > 12 {
			t.Fatalf("seed %d: %d tiles", seed, len(g.Tiles))
		}
		res, err := HotTiles(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceBest(t, g, &cfg)
		if opt <= 0 {
			t.Fatalf("seed %d: degenerate optimum", seed)
		}
		ratio := res.Predicted / opt
		if ratio < 1-1e-9 {
			t.Fatalf("seed %d: HotTiles (%.3e) beat the exhaustive optimum (%.3e)?", seed, res.Predicted, opt)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	// The heuristics are approximations; across these instances they stay
	// within 25% of optimal.
	if worst > 1.25 {
		t.Fatalf("HotTiles strayed %.2fx from the exhaustive optimum", worst)
	}
	t.Logf("worst-case HotTiles/optimal predicted ratio over 20 instances: %.3f", worst)
}

// TestIUnawareFarFromOptimal sanity-checks the baseline: on strongly
// heterogeneous instances the random split should generally predict worse
// than HotTiles.
func TestIUnawareNotBetterThanHotTiles(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 10; seed++ {
		g := imhMatrix(t, 256, 32, 900, 300, seed+100)
		ht, err := HotTiles(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iu, err := IUnaware(g, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ht.Predicted > iu.Predicted*(1+1e-9) {
			t.Fatalf("seed %d: HotTiles %.3e predicted worse than IUnaware %.3e",
				seed, ht.Predicted, iu.Predicted)
		}
	}
}

package partition

// Property-based tests: every partitioning strategy, run across a sweep of
// randomly generated matrices and pool configurations, must produce a total
// assignment (each non-empty tile goes to exactly one worker type, no tile
// is invented or dropped) and respect the structural guarantees the rest of
// the pipeline relies on. The matrices vary in heterogeneity, density, and
// size; the configurations include the degenerate 0-worker pools of the
// §VIII-B iso-scale studies.

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/tile"
)

// propGrids builds a diverse set of grids: IMH-heavy, uniform, tiny, and a
// banded matrix, each at a couple of seeds.
func propGrids(t *testing.T) []*tile.Grid {
	t.Helper()
	var gs []*tile.Grid
	for _, seed := range []int64{1, 7, 42} {
		gs = append(gs, imhMatrix(t, 256, 32, 2000, 1500, seed))
		rng := rand.New(rand.NewSource(seed + 100))
		m := sparse.NewCOO(128, 3000)
		for i := 0; i < 3000; i++ {
			m.Append(int32(rng.Intn(128)), int32(rng.Intn(128)), 1)
		}
		m.SortRowMajor()
		m.DedupSum()
		g, err := tile.Partition(m, 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	// A tiny matrix: a single tile exercises the cutoff edge cases.
	m := sparse.NewCOO(8, 3)
	m.Append(0, 1, 1)
	m.Append(3, 3, 1)
	m.Append(7, 0, 1)
	m.SortRowMajor()
	g, err := tile.Partition(m, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return append(gs, g)
}

// propConfigs varies the pool sizes, including the degenerate all-hot and
// all-cold architectures.
func propConfigs() []Config {
	mk := func(hot, cold int) Config {
		c := testConfig()
		c.Hot = hotWorker(hot)
		c.Cold = coldWorker(cold)
		return c
	}
	return []Config{
		mk(1, 8), mk(4, 4), mk(8, 1), mk(0, 8), mk(8, 0), mk(1, 1),
	}
}

// coldNNZ counts the nonzeros assigned to the cold pool.
func coldNNZ(g *tile.Grid, hot []bool) int {
	n := 0
	for i, t := range g.Tiles {
		if !hot[i] {
			n += t.NNZ()
		}
	}
	return n
}

// checkTotalAssignment asserts the core partitioning invariant: the
// assignment covers exactly the grid's tiles and conserves nonzeros.
func checkTotalAssignment(t *testing.T, g *tile.Grid, r Result, label string) {
	t.Helper()
	if len(r.Hot) != len(g.Tiles) {
		t.Fatalf("%s: assignment covers %d tiles, grid has %d", label, len(r.Hot), len(g.Tiles))
	}
	hotN, _ := r.HotNNZ(g)
	if hotN+coldNNZ(g, r.Hot) != g.NNZ() {
		t.Fatalf("%s: hot %d + cold %d nonzeros != total %d",
			label, hotN, coldNNZ(g, r.Hot), g.NNZ())
	}
	if r.Predicted < 0 {
		t.Fatalf("%s: negative predicted runtime %g", label, r.Predicted)
	}
}

func TestPropEveryStrategyAssignsEveryTileOnce(t *testing.T) {
	for gi, g := range propGrids(t) {
		for ci, cfg := range propConfigs() {
			es, err := NewEstimates(g, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			for h := MinTimeParallel; h < numHeuristics; h++ {
				r, err := RunHeuristicFrom(es, cfg, h)
				if err != nil {
					t.Fatal(err)
				}
				label := h.String()
				checkTotalAssignment(t, g, r, label)
				if r.Serial != h.Serial() {
					t.Fatalf("grid %d cfg %d %s: Serial=%v, heuristic says %v",
						gi, ci, label, r.Serial, h.Serial())
				}
				// Degenerate pools must force a homogeneous assignment.
				if cfg.Hot.Count <= 0 || cfg.Cold.Count <= 0 {
					wantHot := cfg.Cold.Count <= 0
					for i, hot := range r.Hot {
						if hot != wantHot {
							t.Fatalf("grid %d cfg %d %s: tile %d not forced to %s pool",
								gi, ci, label, i, map[bool]string{true: "hot", false: "cold"}[wantHot])
						}
					}
				}
			}
			ht, err := HotTilesFrom(es, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkTotalAssignment(t, g, ht, "HotTiles")
			iu, err := IUnawareFrom(es, cfg, int64(gi*10+ci))
			if err != nil {
				t.Fatal(err)
			}
			checkTotalAssignment(t, g, iu, "IUnaware")
		}
	}
}

// TestPropHotTilesDominatesForcedHeuristics: HotTiles picks the best of the
// four subproblems, so its predicted runtime can never exceed any forced
// heuristic's. This holds by construction; the test guards the selection
// logic against regressions.
func TestPropHotTilesDominatesForcedHeuristics(t *testing.T) {
	for _, g := range propGrids(t) {
		for _, cfg := range propConfigs() {
			es, err := NewEstimates(g, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			ht, err := HotTilesFrom(es, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for h := MinTimeParallel; h < numHeuristics; h++ {
				r, err := RunHeuristicFrom(es, cfg, h)
				if err != nil {
					t.Fatal(err)
				}
				if ht.Predicted > r.Predicted*(1+1e-12) {
					t.Fatalf("HotTiles predicted %g exceeds forced %s's %g",
						ht.Predicted, h, r.Predicted)
				}
			}
		}
	}
}

// TestPropHotTilesNoWorseThanIUnaware: on the sweep's fixed seeds, the
// IMH-aware partitioning's modeled time never loses to the IMH-unaware
// baseline. This is not a theorem — IUnaware could get lucky — but across
// these deterministic inputs it is a regression property the paper's whole
// premise (Figures 10-11) depends on.
func TestPropHotTilesNoWorseThanIUnaware(t *testing.T) {
	for gi, g := range propGrids(t) {
		for ci, cfg := range propConfigs() {
			es, err := NewEstimates(g, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			ht, err := HotTilesFrom(es, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 3; seed++ {
				iu, err := IUnawareFrom(es, cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				if ht.Predicted > iu.Predicted*(1+1e-9) {
					t.Fatalf("grid %d cfg %d seed %d: HotTiles predicted %g worse than IUnaware's %g",
						gi, ci, seed, ht.Predicted, iu.Predicted)
				}
			}
		}
	}
}

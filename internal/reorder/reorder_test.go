package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestPermutationValidateAndInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	for i := range p {
		if inv[p[i]] != int32(i) {
			t.Fatalf("inverse broken at %d", i)
		}
	}
	if (Permutation{0, 0, 1}).Validate() == nil {
		t.Fatal("expected duplicate error")
	}
	if (Permutation{0, 5}).Validate() == nil {
		t.Fatal("expected range error")
	}
}

func TestApply(t *testing.T) {
	m := sparse.NewCOO(3, 2)
	m.Append(0, 1, 5)
	m.Append(2, 2, 7)
	p := Permutation{2, 0, 1} // 0→2, 1→0, 2→1
	out, err := Apply(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1,5) → (2,0,5); (2,2,7) → (1,1,7).
	r, c, v := out.At(0)
	if r != 1 || c != 1 || v != 7 {
		t.Fatalf("first = (%d,%d,%g)", r, c, v)
	}
	r, c, v = out.At(1)
	if r != 2 || c != 0 || v != 5 {
		t.Fatalf("second = (%d,%d,%g)", r, c, v)
	}
	if _, err := Apply(m, Permutation{0}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Apply(m, Permutation{0, 0, 1}); err == nil {
		t.Fatal("expected validity error")
	}
}

func TestDegreeSortConcentratesHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := gen.PowerLaw(rng, 2048, 10, 2.0)
	p := DegreeSort(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := Apply(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// The first 5% of rows must hold far more than 5% of nonzeros.
	cut := out.N / 20
	head := 0
	for _, r := range out.Rows {
		if int(r) < cut {
			head++
		}
	}
	if float64(head) < 0.25*float64(out.NNZ()) {
		t.Fatalf("hub concentration weak: first 5%% of rows hold %.1f%% of nonzeros",
			100*float64(head)/float64(out.NNZ()))
	}
}

func TestBFSClusterShrinksBandwidthOfShuffledMesh(t *testing.T) {
	mesh := gen.Mesh2D(32, 32)
	shuffled, err := Apply(mesh, Random(mesh.N, 7))
	if err != nil {
		t.Fatal(err)
	}
	p := BFSCluster(shuffled)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	clustered, err := Apply(shuffled, p)
	if err != nil {
		t.Fatal(err)
	}
	if bw, after := Bandwidth(shuffled), Bandwidth(clustered); after >= bw {
		t.Fatalf("BFS did not reduce bandwidth: %d -> %d", bw, after)
	}
}

func TestBFSClusterCoversDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles plus an isolated vertex.
	m := sparse.NewCOO(7, 0)
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}
	for _, e := range edges {
		m.Append(e[0], e[1], 1)
		m.Append(e[1], e[0], 1)
	}
	m.SortRowMajor()
	p := BFSCluster(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutationDeterministic(t *testing.T) {
	a, b := Random(100, 5), Random(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Random(100, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

// Property: reordering preserves SpMM semantics — P·A·Pᵀ · (P·x) = P·(A·x).
func TestReorderingPreservesSpMVProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		m := gen.Uniform(rng, n, 3*n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		if dense.SpMV(m, x, y) != nil {
			return false
		}
		p := DegreeSort(m)
		pm, err := Apply(m, p)
		if err != nil {
			return false
		}
		px := make([]float64, n)
		for i := range x {
			px[p[i]] = x[i]
		}
		py := make([]float64, n)
		if dense.SpMV(pm, px, py) != nil {
			return false
		}
		for i := range y {
			if d := py[p[i]] - y[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidth(t *testing.T) {
	m := sparse.NewCOO(10, 2)
	m.Append(0, 9, 1)
	m.Append(3, 3, 1)
	if bw := Bandwidth(m); bw != 9 {
		t.Fatalf("bandwidth = %d, want 9", bw)
	}
	if bw := Bandwidth(sparse.NewCOO(5, 0)); bw != 0 {
		t.Fatalf("empty bandwidth = %d", bw)
	}
}

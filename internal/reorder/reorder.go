// Package reorder implements sparse-matrix reordering passes that transform
// a matrix into an equivalent, more "favorable" form for HotTiles. The
// paper (§IX-D, citing Arai et al.'s Rabbit Order, and §X) observes that
// reordered matrices form better-defined dense and sparse regions, which
// increases the effectiveness of IMH-aware partitioning. Three passes are
// provided:
//
//   - DegreeSort: rows/columns sorted by descending degree, concentrating
//     hubs (the "hot" structure of power-law graphs) in the top-left corner;
//   - BFSCluster: a breadth-first relabeling from a pseudo-peripheral seed
//     (Cuthill-McKee-like) that gathers communities near the diagonal;
//   - Random: a random symmetric permutation, the destructive control used
//     in ablations.
//
// All passes return the permutation applied symmetrically (rows and
// columns), so the product A' = P·A·Pᵀ is similar to A and SpMM results can
// be mapped back with the returned permutation.
package reorder

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/sparse"
)

// Permutation maps old index → new index.
type Permutation []int32

// Validate checks that p is a bijection on [0, len).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= len(p) {
			return fmt.Errorf("reorder: image %d of %d out of range", v, i)
		}
		if seen[v] {
			return fmt.Errorf("reorder: image %d duplicated", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns the inverse permutation.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for i, v := range p {
		inv[v] = int32(i)
	}
	return inv
}

// Apply returns P·A·Pᵀ as a new row-major matrix.
func Apply(m *sparse.COO, p Permutation) (*sparse.COO, error) {
	if len(p) != m.N {
		return nil, fmt.Errorf("reorder: permutation length %d, matrix %d", len(p), m.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := sparse.NewCOO(m.N, m.NNZ())
	for i := 0; i < m.NNZ(); i++ {
		r, c, v := m.At(i)
		out.Append(p[r], p[c], v)
	}
	out.SortRowMajor()
	return out, nil
}

// DegreeSort returns the permutation that relabels vertices by descending
// total degree (in + out), ties broken by original index for determinism.
func DegreeSort(m *sparse.COO) Permutation {
	deg := make([]int, m.N)
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		deg[r]++
		deg[c]++
	}
	order := make([]int, m.N)
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return cmp.Compare(deg[b], deg[a]) })
	p := make(Permutation, m.N)
	for newID, oldID := range order {
		p[oldID] = int32(newID)
	}
	return p
}

// BFSCluster returns a breadth-first relabeling: starting from the
// lowest-degree vertex (a pseudo-peripheral seed, as in Cuthill-McKee),
// vertices are numbered in BFS discovery order, which pulls connected
// communities toward the diagonal. Unreached vertices (other components)
// seed further traversals in degree order.
func BFSCluster(m *sparse.COO) Permutation {
	// Build adjacency (undirected view) as CSR of the symmetrized pattern.
	adj := buildAdjacency(m)

	deg := make([]int, m.N)
	for v := range deg {
		deg[v] = len(adj[v])
	}
	seeds := make([]int, m.N)
	for i := range seeds {
		seeds[i] = i
	}
	slices.SortStableFunc(seeds, func(a, b int) int { return cmp.Compare(deg[a], deg[b]) })

	p := make(Permutation, m.N)
	visited := make([]bool, m.N)
	next := int32(0)
	queue := make([]int32, 0, m.N)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			p[v] = next
			next++
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return p
}

// Random returns a uniformly random permutation (deterministic in seed) —
// the destructive control for reordering ablations.
func Random(n int, seed int64) Permutation {
	rng := rand.New(rand.NewSource(seed))
	p := make(Permutation, n)
	for i, v := range rng.Perm(n) {
		p[i] = int32(v)
	}
	return p
}

// buildAdjacency returns the symmetrized neighbor lists of m.
func buildAdjacency(m *sparse.COO) [][]int32 {
	counts := make([]int, m.N)
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		if r == c {
			continue
		}
		counts[r]++
		counts[c]++
	}
	adj := make([][]int32, m.N)
	for v := range adj {
		adj[v] = make([]int32, 0, counts[v])
	}
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		if r == c {
			continue
		}
		adj[r] = append(adj[r], c)
		adj[c] = append(adj[c], r)
	}
	return adj
}

// Bandwidth returns the matrix bandwidth max|r−c| over nonzeros — the
// locality statistic BFSCluster aims to shrink.
func Bandwidth(m *sparse.COO) int {
	bw := 0
	for i := 0; i < m.NNZ(); i++ {
		r, c, _ := m.At(i)
		d := int(r) - int(c)
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}

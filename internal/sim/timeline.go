package sim

import (
	"math"
	"strconv"

	"repro/internal/obs"
)

// Simulator timeline observability: the per-step simulated-width histogram
// is always registered; sim.timeline.dropped counts events an engine run
// produced beyond its preallocated buffer (the buffer drops rather than
// grows so traced steps stay allocation-free).
var (
	stepWidthHist   = obs.NewHistogram("sim.step.dt.ns")
	timelineDropped = obs.NewCounter("sim.timeline.dropped")
)

// simNS converts simulated seconds to the timeline's integer nanoseconds.
func simNS(t float64) int64 { return int64(t * 1e9) }

// engineDeep is the per-run deep-observability scratch: the event buffer a
// traced run fills and per-worker bookkeeping (current unit's start time
// and accumulated bytes, last emitted grant). Everything is sized at
// construction and emit drops on overflow, so a traced step performs zero
// heap allocations just like an untraced one (TestEngineStepAllocs pins
// both). A nil *engineDeep disables the whole layer — the engine's hot
// loop pays one nil check.
type engineDeep struct {
	tl      *obs.Timeline
	events  []obs.Event
	dropped int64
	baseNS  int64 // added to every timestamp (serial runs offset the hot leg)

	tracks    []int32   // timeline track per worker (nil when tl is nil)
	unitStart []float64 // simulated second the worker's current unit began
	bytesAcc  []float64 // bytes the worker moved during the current unit
	prevGrant []float64 // last grant emitted as an EvGrant sample

	// grantLeft is the remaining EvGrant budget (grantBudget at the start of
	// a run). A bandwidth-saturated run reshuffles every worker's grant on
	// nearly every step; unbounded sampling would crowd the unit slices out
	// of the event buffer and pay an O(workers) scan per step for events
	// destined to be dropped. The budget keeps the early grant dynamics and
	// then turns the scan off.
	grantLeft   int
	grantBudget int

	stepWidth obs.LocalHist // simulated step widths, merged into stepWidthHist
}

// newEngineDeep sizes the scratch for one run over the given pools. tl may
// be nil: then only the step-width histogram is collected (the DeepTiming
// mode -trace enables without -timeline).
func newEngineDeep(tl *obs.Timeline, label string, pools []*pool) *engineDeep {
	workers, units := 0, 0
	for _, p := range pools {
		workers += p.workers
		units += len(p.units)
	}
	d := &engineDeep{tl: tl}
	if tl != nil {
		// Exactly one EvWorkerRun per unit and one EvWorkerIdle per worker,
		// plus the bounded grant samples: sized so the essential events are
		// never dropped.
		d.grantBudget = 2*units + 8*workers
		d.grantLeft = d.grantBudget
		d.events = make([]obs.Event, 0, units+workers+d.grantBudget+64)
		d.tracks = make([]int32, 0, workers)
		for _, p := range pools {
			for w := 0; w < p.workers; w++ {
				d.tracks = append(d.tracks, tl.TrackID(trackLabel(label, p.name, w)))
			}
		}
		d.unitStart = make([]float64, workers)
		d.bytesAcc = make([]float64, workers)
		d.prevGrant = make([]float64, workers)
	}
	return d
}

// trackLabel names one simulated worker's timeline row.
func trackLabel(label, poolName string, w int) string {
	s := poolName + "/w" + strconv.Itoa(w)
	if label != "" {
		s = label + "/" + s
	}
	return s
}

// reset prepares the scratch for another run over the same pool shapes,
// reusing every buffer (the benchmark separates steady-state tracing cost
// from construction cost this way).
func (d *engineDeep) reset() {
	d.grantLeft = d.grantBudget
	d.events = d.events[:0]
	d.dropped = 0
	d.baseNS = 0
	for i := range d.unitStart {
		d.unitStart[i] = 0
		d.bytesAcc[i] = 0
		d.prevGrant[i] = 0
	}
	d.stepWidth = obs.LocalHist{}
}

// emit buffers one event, dropping when the preallocated buffer is full.
func (d *engineDeep) emit(ev obs.Event) {
	if len(d.events) < cap(d.events) {
		d.events = append(d.events, ev)
	} else {
		d.dropped++
	}
}

// unitDone records one completed unit as an EvWorkerRun slice and resets
// the worker's accumulation for the next unit.
func (d *engineDeep) unitDone(wi int, unitIdx int, now float64) {
	if d.tl == nil {
		return
	}
	d.emit(obs.Event{
		TS:    d.baseNS + simNS(d.unitStart[wi]),
		Dur:   simNS(now) - simNS(d.unitStart[wi]),
		Track: d.tracks[wi],
		Name:  -1,
		Kind:  obs.EvWorkerRun,
		Arg:   int64(unitIdx),
		Value: d.bytesAcc[wi],
	})
	d.unitStart[wi] = now
	d.bytesAcc[wi] = 0
}

// idle records the instant a worker's pool queue ran dry.
func (d *engineDeep) idle(wi int, now float64) {
	if d.tl == nil {
		return
	}
	d.emit(obs.Event{TS: d.baseNS + simNS(now), Track: d.tracks[wi], Name: -1, Kind: obs.EvWorkerIdle})
}

// sampleGrants emits an EvGrant for every active worker whose grant
// changed since the last sample. Bit comparison, not float equality: the
// question is "did the stored value change", where NaN/-0 subtleties and
// the floateq lint both point at Float64bits.
func (d *engineDeep) sampleGrants(e *engine) {
	if d.tl == nil || d.grantLeft <= 0 {
		return
	}
	for _, wi := range e.active {
		g := e.workers[wi].grant
		if math.Float64bits(d.prevGrant[wi]) == math.Float64bits(g) {
			continue
		}
		d.prevGrant[wi] = g
		d.emit(obs.Event{TS: d.baseNS + simNS(e.now), Track: d.tracks[wi], Name: -1, Kind: obs.EvGrant, Value: g})
		if d.grantLeft--; d.grantLeft == 0 {
			// Budget exhausted: count one drop so the truncation is visible.
			d.dropped++
			return
		}
	}
}

// finish flushes the buffered events to the timeline and folds the local
// step-width histogram into the global one.
func (d *engineDeep) finish() {
	if d == nil {
		return
	}
	stepWidthHist.Merge(&d.stepWidth)
	if d.tl != nil && len(d.events) > 0 {
		d.tl.Append(d.events...)
	}
	if d.dropped > 0 {
		timelineDropped.Add(d.dropped)
	}
}

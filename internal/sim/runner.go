package sim

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/tile"
)

// Runner owns the reusable state of a simulated run: the hot/cold pools'
// unit arrays, the cold builder's nonzero and cache-model scratch, and the
// event-loop engine with its allocation scratch. A Runner amortizes all of
// it across runs — after warmup, a timing-only RunInto performs zero heap
// allocations (pinned by TestRunnerRunAllocs) — which is what sweeps
// (Env.exec, explore.IsoScale, workload.RunBatch) want: they call sim.Run
// in a loop, and sim.Run draws Runners from a package free list so every
// call site gets the reuse without a signature change.
//
// A Runner is not safe for concurrent use; use one per goroutine (the free
// list hands each concurrent sim.Run its own).
type Runner struct {
	hotPool, coldPool pool
	cold              coldScratch
	eng               engine
	one               [1]*pool
	two               [2]*pool
}

// NewRunner returns an empty Runner; its scratch grows on first use.
func NewRunner() *Runner { return &Runner{} }

// runnerFree is the package free list sim.Run draws from. The list is
// bounded so a burst of concurrent runs cannot pin an unbounded number of
// grown scratch arenas: beyond the cap, released Runners are dropped for
// the GC.
var runnerFree struct {
	mu   sync.Mutex
	list []*Runner
}

func acquireRunner() *Runner {
	runnerFree.mu.Lock()
	defer runnerFree.mu.Unlock()
	if n := len(runnerFree.list); n > 0 {
		r := runnerFree.list[n-1]
		runnerFree.list[n-1] = nil
		runnerFree.list = runnerFree.list[:n-1]
		return r
	}
	return &Runner{}
}

func releaseRunner(r *Runner) {
	runnerFree.mu.Lock()
	defer runnerFree.mu.Unlock()
	if len(runnerFree.list) < 2*par.Workers() {
		runnerFree.list = append(runnerFree.list, r)
	}
}

// Run is RunInto with a freshly allocated Result.
func (r *Runner) Run(g *tile.Grid, hot []bool, a *arch.Arch, din *dense.Matrix, opts Options) (*Result, error) {
	res := &Result{}
	if err := r.RunInto(res, g, hot, a, din, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates executing the partitioned SpMM on architecture a into
// res, reusing the Runner's state. Results are bit-identical to a fresh
// sim.Run: pool construction over reused arrays emits the same unit
// sequence, a reset cache model behaves like a new one, and the engine's
// event loop is deterministic.
func (r *Runner) RunInto(res *Result, g *tile.Grid, hot []bool, a *arch.Arch, din *dense.Matrix, opts Options) error {
	*res = Result{}
	if err := a.Validate(); err != nil {
		return err
	}
	if len(hot) != len(g.Tiles) {
		return fmt.Errorf("sim: assignment length %d, want %d", len(hot), len(g.Tiles))
	}
	sr := semiring.PlusTimes()
	if opts.Semiring != nil {
		sr = *opts.Semiring
	}
	prm := model.Params{K: a.K, OpsPerMAC: sr.OpsPerMAC, Kernel: opts.Kernel}
	if opts.Kernel == model.KernelSpMV {
		prm.K = 1
	}
	if err := prm.Validate(); err != nil {
		return err
	}
	if !opts.SkipFunctional {
		if din == nil || din.N != g.N || din.K != prm.K {
			return fmt.Errorf("sim: Din must be %dx%d", g.N, prm.K)
		}
	}

	anyHot, anyCold := false, false
	for _, h := range hot {
		if h {
			anyHot = true
		} else {
			anyCold = true
		}
	}
	if anyHot && a.Hot.Count <= 0 {
		return fmt.Errorf("sim: hot tiles assigned but architecture %s has no hot workers", a.Name)
	}
	if anyCold && a.Cold.Count <= 0 {
		return fmt.Errorf("sim: cold tiles assigned but architecture %s has no cold workers", a.Name)
	}

	hotPool, coldPool := &r.hotPool, &r.coldPool
	if opts.Units != nil {
		up, err := opts.Units.get(g, hot, a, prm)
		if err != nil {
			return err
		}
		hotPool, coldPool = up.hot, up.cold
	} else {
		buildHotPoolInto(hotPool, g, hot, a, prm)
		buildColdPoolInto(coldPool, &r.cold, g, hot, a, prm)
	}

	var trCold, trHot, trBoth *tracer
	if opts.Trace {
		trCold, trHot, trBoth = &tracer{}, &tracer{}, &tracer{}
	}
	deepOn := opts.Timeline != nil || obs.DeepTiming()
	if opts.Serial {
		// Cold pool first, then hot, each with the full memory system. The
		// one engine is reset between the legs; its stats alias engine
		// scratch, so each leg's numbers are copied out before the next
		// reset.
		var dCold, dHot *engineDeep
		r.one[0] = coldPool
		if deepOn {
			dCold = newEngineDeep(opts.Timeline, opts.TimelineLabel, r.one[:])
		}
		if err := r.eng.reset(r.one[:], a.BWBytes); err != nil {
			return err
		}
		tCold, stats := r.eng.run(trCold, dCold)
		sCold := stats[0]
		r.one[0] = hotPool
		if deepOn {
			// The hot leg starts where the cold leg ended on the shared
			// serial clock.
			dHot = newEngineDeep(opts.Timeline, opts.TimelineLabel, r.one[:])
			dHot.baseNS = simNS(tCold)
		}
		if err := r.eng.reset(r.one[:], a.BWBytes); err != nil {
			return err
		}
		tHot, stats := r.eng.run(trHot, dHot)
		sHot := stats[0]
		res.Time = tCold + tHot
		res.ColdElapsed, res.HotElapsed = sCold.Elapsed, sHot.Elapsed
		res.ColdBytes, res.HotBytes = sCold.Bytes, sHot.Bytes
		res.ColdFlops, res.HotFlops = sCold.Flops, sHot.Flops
		if opts.Trace {
			res.Trace = append(res.Trace, trCold.points...)
			for _, pt := range trHot.points {
				pt.T += tCold
				// Relabel the single serial-hot pool as pool index 1.
				pt.PoolBW = []float64{0, pt.PoolBW[0]}
				res.Trace = append(res.Trace, pt)
			}
			for i := range res.Trace[:len(trCold.points)] {
				res.Trace[i].PoolBW = append(res.Trace[i].PoolBW, 0)
			}
		}
	} else {
		var dBoth *engineDeep
		r.two[0], r.two[1] = coldPool, hotPool
		if deepOn {
			dBoth = newEngineDeep(opts.Timeline, opts.TimelineLabel, r.two[:])
		}
		if err := r.eng.reset(r.two[:], a.BWBytes); err != nil {
			return err
		}
		t, stats := r.eng.run(trBoth, dBoth)
		if opts.Trace {
			res.Trace = trBoth.points
		}
		res.Time = t
		res.ColdElapsed, res.HotElapsed = stats[0].Elapsed, stats[1].Elapsed
		res.ColdBytes, res.HotBytes = stats[0].Bytes, stats[1].Bytes
		res.ColdFlops, res.HotFlops = stats[0].Flops, stats[1].Flops
		if anyHot && anyCold && !a.AtomicRMW && opts.Kernel != model.KernelSDDMM {
			// SDDMM outputs are disjoint per nonzero, so no merge is needed
			// even with private buffers.
			res.mergeBytes = 3 * float64(g.N) * float64(prm.K) * float64(a.Hot.ElemBytes)
			res.MergeTime = res.mergeBytes / a.BWBytes
			res.Time += res.MergeTime
		}
	}

	if !opts.SkipFunctional {
		if opts.Kernel == model.KernelSDDMM {
			res.SDDMM = executeSDDMM(g, din)
		} else {
			out, err := execute(g, hot, din, sr)
			if err != nil {
				return err
			}
			res.Output = out
		}
	}
	return nil
}

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// TestEngineStepAllocs pins the tentpole invariant: once an engine is
// constructed, a steady-state event-loop step performs zero heap
// allocations — dispatching follow-up units, phase transitions, bandwidth
// reallocation, and active-list compaction all run on the scratch sized at
// construction.
func TestEngineStepAllocs(t *testing.T) {
	pools := benchEnginePools()
	e, err := newEngine(pools, 150e9)
	if err != nil {
		t.Fatal(err)
	}
	// Reach steady state: past the initial dispatch, with completions and
	// reallocations already exercised.
	for i := 0; i < 32; i++ {
		if !e.step(nil) {
			t.Fatal("workload drained during warm-up; enlarge the bench pools")
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		e.step(nil)
	})
	if allocs != 0 {
		t.Fatalf("engine step allocated %v times per run, want 0", allocs)
	}
}

// TestEngineStepAllocsTraced extends the zero-alloc pin to a fully
// observed step: timeline events land in the engineDeep buffer sized at
// attach time (dropping, never growing, past its capacity) and the
// step-width histogram accumulates into a LocalHist, so enabling -timeline
// does not reintroduce per-step allocation.
func TestEngineStepAllocsTraced(t *testing.T) {
	pools := benchEnginePools()
	e, err := newEngine(pools, 150e9)
	if err != nil {
		t.Fatal(err)
	}
	e.deep = newEngineDeep(obs.NewTimeline(1024), "alloc-test", pools)
	for i := 0; i < 32; i++ {
		if !e.step(nil) {
			t.Fatal("workload drained during warm-up; enlarge the bench pools")
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		e.step(nil)
	})
	if allocs != 0 {
		t.Fatalf("traced engine step allocated %v times per run, want 0", allocs)
	}
}

// randPools builds a randomized heterogeneous workload: 1-3 pools with
// mixed worker speeds, optional link caps, and units whose phases mix
// compute-only, memory-only, and overlapped stages — including zero-cost
// phases and zero-unit pools.
func randPools(rng *rand.Rand) []*pool {
	npools := 1 + rng.Intn(3)
	pools := make([]*pool, npools)
	for pi := range pools {
		p := &pool{
			name:        "p" + string(rune('0'+pi)),
			workers:     1 + rng.Intn(5),
			perWorkerBW: (1 + rng.Float64()*40) * 1e9,
		}
		if rng.Intn(2) == 0 {
			p.linkBW = (1 + rng.Float64()*60) * 1e9
		}
		if rng.Intn(3) == 0 {
			p.workerBW = make([]float64, p.workers)
			for i := range p.workerBW {
				if rng.Intn(2) == 0 {
					p.workerBW[i] = (0.5 + rng.Float64()*20) * 1e9
				}
			}
		}
		if rng.Intn(8) == 0 {
			pools[pi] = p // no units: pool idles instantly
			continue
		}
		nunits := 1 + rng.Intn(40)
		for u := 0; u < nunits; u++ {
			var phases []phase
			for np := 1 + rng.Intn(3); np > 0; np-- {
				ph := phase{}
				switch rng.Intn(4) {
				case 0:
					ph.compute = rng.Float64() * 2e-5
				case 1:
					ph.bytes = rng.Float64() * 4e6
				case 2:
					ph.compute = rng.Float64() * 2e-5
					ph.bytes = rng.Float64() * 4e6
				case 3:
					// zero-cost phase
				}
				phases = append(phases, ph)
			}
			p.units = append(p.units, unitOf(rng.Float64()*1e6, phases...))
		}
		pools[pi] = p
	}
	return pools
}

// runNaive executes the same workload with allocateNaive invoked on every
// step — the original allocate-from-scratch-each-time behavior, with no
// grant-invalidation skip and no scratch reuse.
func runNaive(pools []*pool, totalBW float64, tr *tracer) (float64, []poolStats, error) {
	e, err := newEngine(pools, totalBW)
	if err != nil {
		return 0, nil, err
	}
	e.naiveAlloc = true
	for e.step(tr) {
	}
	return e.now, e.stats, nil
}

// TestEngineFastPathMatchesNaive is the incremental-allocation property
// test: on randomized pools, the scratch-based allocator with
// completion-driven grant invalidation must produce makespans, per-pool
// statistics, and per-step bandwidth grants bit-identical to the naive
// reference that recomputes the full max-min allocation every step.
func TestEngineFastPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		pools := randPools(rng)
		totalBW := (5 + rng.Float64()*200) * 1e9

		var trFast, trNaive tracer
		tmFast, stFast, errFast := runEngineTraced(pools, totalBW, &trFast)
		tmNaive, stNaive, errNaive := runNaive(pools, totalBW, &trNaive)
		if (errFast == nil) != (errNaive == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errFast, errNaive)
		}
		if errFast != nil {
			continue
		}
		if tmFast != tmNaive {
			t.Fatalf("trial %d: makespan %v != naive %v", trial, tmFast, tmNaive)
		}
		for pi := range stFast {
			if stFast[pi] != stNaive[pi] {
				t.Fatalf("trial %d pool %d: stats %+v != naive %+v", trial, pi, stFast[pi], stNaive[pi])
			}
		}
		if len(trFast.points) != len(trNaive.points) {
			t.Fatalf("trial %d: %d trace points != naive %d", trial, len(trFast.points), len(trNaive.points))
		}
		for i := range trFast.points {
			a, b := trFast.points[i], trNaive.points[i]
			if a.T != b.T || a.Dt != b.Dt || a.BW != b.BW {
				t.Fatalf("trial %d step %d: trace point %+v != naive %+v", trial, i, a, b)
			}
			for pi := range a.PoolBW {
				if a.PoolBW[pi] != b.PoolBW[pi] {
					t.Fatalf("trial %d step %d pool %d: grant %v != naive %v",
						trial, i, pi, a.PoolBW[pi], b.PoolBW[pi])
				}
			}
		}
	}
}

// TestAllocateMatchesNaive drives one allocation round on randomized
// demanding sets and compares the scratch-based grants against the naive
// reference exactly (no tolerance).
func TestAllocateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		pools := randPools(rng)
		totalBW := (5 + rng.Float64()*200) * 1e9
		e, err := newEngine(pools, totalBW)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := newEngine(pools, totalBW)
		if err != nil {
			t.Fatal(err)
		}
		// Randomly knock some workers out of the demanding set.
		for wi := range e.workers {
			if rng.Intn(3) == 0 {
				e.workers[wi].remB = 0
				ref.workers[wi].remB = 0
			}
		}
		e.allocate()
		allocateNaive(ref.workers, ref.pools, ref.totalBW)
		for wi := range e.workers {
			if got, want := e.workers[wi].grant, ref.workers[wi].grant; got != want {
				t.Fatalf("trial %d worker %d: grant %v != naive %v", trial, wi, got, want)
			}
		}
	}
}

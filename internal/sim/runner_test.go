package sim

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/semiring"
)

// TestExecutePanelParallelBitIdentical pins the functional-execution
// determinism argument: panels are row-disjoint and walk their tiles in
// serial (TR, TC) order, so execute/executeSDDMM produce bit-identical
// output for every worker count, per semiring — Equal, not AlmostEqual.
func TestExecutePanelParallelBitIdentical(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 31)
	din := dense.NewRandom(rand.New(rand.NewSource(32)), m.N, a.K)

	for _, s := range []struct {
		name string
		sr   semiring.Semiring
	}{
		{"plus-times", semiring.PlusTimes()},
		{"min-plus", semiring.MinPlus()},
	} {
		prev := par.SetWorkers(1)
		want, err := execute(g, res.Hot, din, s.sr)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 8} {
			par.SetWorkers(w)
			got, err := execute(g, res.Hot, din, s.sr)
			par.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: execute with %d workers differs from serial", s.name, w)
			}
		}
	}

	prev := par.SetWorkers(1)
	wantS := executeSDDMM(g, din)
	par.SetWorkers(prev)
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		gotS := executeSDDMM(g, din)
		par.SetWorkers(prev)
		if len(gotS) != len(wantS) {
			t.Fatalf("SDDMM length %d != %d", len(gotS), len(wantS))
		}
		for i := range gotS {
			if gotS[i] != wantS[i] {
				t.Fatalf("SDDMM with %d workers differs at %d", w, i)
			}
		}
	}
}

// TestRunnerReuseMatchesFresh drives one Runner through a randomized
// sequence of (matrix, architecture, kernel) runs and compares every result
// against a fresh sim.Run: reused pool arrays, reset cache models, and the
// recycled engine must be observationally invisible.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	archs := []arch.Arch{
		scaledArch(arch.SpadeSextans(4), 64),
		scaledArch(arch.PIUMA(), 64),
	}
	r := NewRunner()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 6; trial++ {
		a := archs[trial%len(archs)]
		g, res, m := testSetup(t, &a, int64(40+trial))
		din := dense.NewRandom(rng, m.N, a.K)
		opts := Options{}
		if trial%3 == 1 {
			opts.Kernel = model.KernelSDDMM
		}
		if trial%3 == 2 {
			opts.Serial = true
		}
		want, err := Run(g, res.Hot, &a, din, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Run(g, res.Hot, &a, din, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Time != want.Time || got.MergeTime != want.MergeTime ||
			got.HotElapsed != want.HotElapsed || got.ColdElapsed != want.ColdElapsed ||
			got.HotBytes != want.HotBytes || got.ColdBytes != want.ColdBytes ||
			got.HotFlops != want.HotFlops || got.ColdFlops != want.ColdFlops {
			t.Fatalf("trial %d: reused Runner stats %+v != fresh %+v", trial, got, want)
		}
		switch {
		case want.Output != nil:
			if got.Output == nil || !got.Output.Equal(want.Output) {
				t.Fatalf("trial %d: reused Runner output differs", trial)
			}
		case want.SDDMM != nil:
			if len(got.SDDMM) != len(want.SDDMM) {
				t.Fatalf("trial %d: SDDMM length mismatch", trial)
			}
			for i := range want.SDDMM {
				if got.SDDMM[i] != want.SDDMM[i] {
					t.Fatalf("trial %d: SDDMM differs at %d", trial, i)
				}
			}
		}
	}
}

// TestRunnerRunAllocs extends the PR-4 zero-alloc pin from a single engine
// step to a whole reused run: once a Runner has warmed up on a (grid,
// arch) shape, a timing-only RunInto performs zero heap allocations — pool
// construction, the cold builder's cache replay, and the event loop all run
// on scratch.
func TestRunnerRunAllocs(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 41)
	r := NewRunner()
	var out Result
	opts := Options{SkipFunctional: true}
	for i := 0; i < 3; i++ {
		if err := r.RunInto(&out, g, res.Hot, &a, nil, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.RunInto(&out, g, res.Hot, &a, nil, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm RunInto allocated %v times per run, want 0", allocs)
	}
}

// TestRunnerConcurrentWithMetricsScrapes is the -race hammer: concurrent
// sim.Run callers (each drawing its own Runner from the free list, fanning
// the functional kernels out over the shared par pool) race against
// continuous /metrics scrapes (the same RegistrySnapshot path the debug
// endpoint serves). Every run must still produce the serial-reference
// output.
func TestRunnerConcurrentWithMetricsScrapes(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 51)
	din := dense.NewRandom(rand.New(rand.NewSource(52)), m.N, a.K)
	want, err := Run(g, res.Hot, &a, din, Options{})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := obs.RegistrySnapshot().WriteMetricsText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	const goroutines, runs = 8, 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				r, err := Run(g, res.Hot, &a, din, Options{})
				if err != nil {
					errs[gi] = err
					return
				}
				if r.Time != want.Time || !r.Output.Equal(want.Output) {
					t.Errorf("goroutine %d run %d: result differs under concurrency", gi, i)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

package sim

import (
	"fmt"
	"math"
)

// phase is one stage of a work unit: compute seconds and memory bytes that
// proceed concurrently (the engine takes the max). Work-unit generators
// express non-overlapping stages as separate phases.
type phase struct {
	compute float64 // seconds of dedicated compute
	bytes   float64 // bytes to move to/from main memory
}

// unit is a schedulable piece of work (a hot tile or a cold row chunk).
type unit struct {
	phases []phase
	flops  float64
}

// pool is a set of identical workers self-scheduling from a shared unit
// queue.
type pool struct {
	name        string
	workers     int
	perWorkerBW float64 // peak streaming bandwidth per worker, bytes/s
	linkBW      float64 // aggregate cap for the whole pool (e.g. PCIe); 0 = none
	units       []unit
}

// poolStats aggregates a pool's observed behavior during a run.
type poolStats struct {
	Bytes   float64 // bytes moved to/from main memory
	Flops   float64
	Elapsed float64 // time from simulation start until the pool drained
}

// workerState tracks one worker's progress through its current unit.
type workerState struct {
	pool     int
	unitIdx  int // index into pool.units; -1 when idle with empty queue
	phaseIdx int
	remC     float64 // remaining compute seconds
	remB     float64 // remaining memory bytes
	grant    float64 // current bandwidth grant, bytes/s
}

const timeEps = 1e-15

// runEngine simulates the pools sharing totalBW of memory bandwidth and
// returns the makespan plus per-pool statistics.
func runEngine(pools []*pool, totalBW float64) (float64, []poolStats, error) {
	return runEngineTraced(pools, totalBW, nil)
}

// runEngineTraced is runEngine with an optional bandwidth-timeline tracer.
func runEngineTraced(pools []*pool, totalBW float64, tr *tracer) (float64, []poolStats, error) {
	if totalBW <= 0 {
		return 0, nil, fmt.Errorf("sim: non-positive bandwidth")
	}
	stats := make([]poolStats, len(pools))
	var workers []*workerState
	next := make([]int, len(pools)) // next unit index per pool
	for pi, p := range pools {
		if p.workers < 0 {
			return 0, nil, fmt.Errorf("sim: pool %s has negative workers", p.name)
		}
		for w := 0; w < p.workers; w++ {
			workers = append(workers, &workerState{pool: pi, unitIdx: -1})
		}
		for _, u := range p.units {
			stats[pi].Flops += u.flops
		}
		if len(p.units) > 0 && p.workers == 0 {
			return 0, nil, fmt.Errorf("sim: pool %s has units but no workers", p.name)
		}
	}

	now := 0.0
	for {
		// Dispatch idle workers.
		active := 0
		for _, w := range workers {
			if w.unitIdx < 0 {
				p := pools[w.pool]
				if next[w.pool] < len(p.units) {
					w.unitIdx = next[w.pool]
					next[w.pool]++
					w.phaseIdx = 0
					ph := p.units[w.unitIdx].phases[0]
					w.remC, w.remB = ph.compute, ph.bytes
				}
			}
			if w.unitIdx >= 0 {
				active++
			}
		}
		if active == 0 {
			break
		}

		allocate(workers, pools, totalBW)

		// Earliest next counter completion.
		dt := math.Inf(1)
		for _, w := range workers {
			if w.unitIdx < 0 {
				continue
			}
			if w.remC > 0 && w.remC < dt {
				dt = w.remC
			}
			if w.remB > 0 && w.grant > 0 {
				if t := w.remB / w.grant; t < dt {
					dt = t
				}
			}
		}
		if math.IsInf(dt, 1) {
			// Only zero-remaining counters: resolve completions below with
			// dt = 0.
			dt = 0
		}
		tr.record(now, dt, workers, len(pools))

		now += dt
		for _, w := range workers {
			if w.unitIdx < 0 {
				continue
			}
			if w.remC > 0 {
				w.remC -= dt
				if w.remC < timeEps {
					w.remC = 0
				}
			}
			if w.remB > 0 && w.grant > 0 {
				moved := w.grant * dt
				if moved > w.remB {
					moved = w.remB
				}
				stats[w.pool].Bytes += moved
				w.remB -= moved
				if w.remB < timeEps*w.grant || w.remB < 1e-9 {
					w.remB = 0
				}
			}
			// Phase / unit completion.
			for w.unitIdx >= 0 && w.remC == 0 && w.remB == 0 {
				p := pools[w.pool]
				u := &p.units[w.unitIdx]
				w.phaseIdx++
				if w.phaseIdx < len(u.phases) {
					ph := u.phases[w.phaseIdx]
					w.remC, w.remB = ph.compute, ph.bytes
					continue
				}
				// Unit drained; record pool progress and fetch the next one.
				stats[w.pool].Elapsed = now
				if next[w.pool] < len(p.units) {
					w.unitIdx = next[w.pool]
					next[w.pool]++
					w.phaseIdx = 0
					first := p.units[w.unitIdx].phases[0]
					w.remC, w.remB = first.compute, first.bytes
				} else {
					w.unitIdx = -1
				}
			}
		}
	}
	return now, stats, nil
}

// allocate grants memory bandwidth max-min fairly: every worker with
// outstanding bytes demands up to its per-worker peak, pools may carry an
// aggregate link cap (PCIe), and the total is bounded by the shared memory
// bandwidth.
func allocate(workers []*workerState, pools []*pool, totalBW float64) {
	type claimant struct {
		w   *workerState
		cap float64
	}
	var cs []claimant
	// First enforce per-pool link caps by scaling per-worker caps within
	// the pool when the pool's aggregate demand exceeds its link.
	demand := make([]float64, len(pools))
	count := make([]int, len(pools))
	for _, w := range workers {
		w.grant = 0
		if w.unitIdx >= 0 && w.remB > 0 {
			demand[w.pool] += pools[w.pool].perWorkerBW
			count[w.pool]++
		}
	}
	for _, w := range workers {
		if w.unitIdx < 0 || w.remB <= 0 {
			continue
		}
		p := pools[w.pool]
		cap := p.perWorkerBW
		if p.linkBW > 0 && demand[w.pool] > p.linkBW {
			cap = p.linkBW / float64(count[w.pool])
		}
		cs = append(cs, claimant{w, cap})
	}
	if len(cs) == 0 {
		return
	}
	// Max-min waterfill against totalBW.
	remaining := totalBW
	unsat := cs
	for len(unsat) > 0 && remaining > 0 {
		share := remaining / float64(len(unsat))
		var still []claimant
		progressed := false
		for _, c := range unsat {
			need := c.cap - c.w.grant
			if need <= share {
				c.w.grant = c.cap
				remaining -= need
				progressed = true
			} else {
				still = append(still, c)
			}
		}
		if !progressed {
			// Nobody saturated: split what remains evenly and stop.
			for _, c := range still {
				c.w.grant += share
			}
			remaining = 0
			break
		}
		unsat = still
	}
}

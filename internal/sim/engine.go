package sim

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Engine observability: engine invocations, work units drained, and event-
// loop steps (each step advances simulated time to the next counter
// completion). Counters are bumped once per engine run, never inside the
// per-worker inner loops.
var (
	engineRuns  = obs.NewCounter("sim.engine.runs")
	engineUnits = obs.NewCounter("sim.engine.units")
	engineSteps = obs.NewCounter("sim.engine.steps")
)

// phase is one stage of a work unit: compute seconds and memory bytes that
// proceed concurrently (the engine takes the max). Work-unit generators
// express non-overlapping stages as separate phases.
type phase struct {
	compute float64 // seconds of dedicated compute
	bytes   float64 // bytes to move to/from main memory
}

// unit is a schedulable piece of work (a hot tile or a cold row chunk).
type unit struct {
	phases []phase
	flops  float64
}

// pool is a set of identical workers self-scheduling from a shared unit
// queue.
type pool struct {
	name        string
	workers     int
	perWorkerBW float64 // peak streaming bandwidth per worker, bytes/s
	linkBW      float64 // aggregate cap for the whole pool (e.g. PCIe); 0 = none
	// workerBW optionally overrides perWorkerBW per worker (workerBW[i] is
	// worker i's peak; missing or non-positive entries fall back to
	// perWorkerBW), for pools whose members are not identical.
	workerBW []float64
	units    []unit
}

// workerCap returns worker i's peak streaming bandwidth.
func (p *pool) workerCap(i int) float64 {
	if i < len(p.workerBW) && p.workerBW[i] > 0 {
		return p.workerBW[i]
	}
	return p.perWorkerBW
}

// poolStats aggregates a pool's observed behavior during a run.
type poolStats struct {
	Bytes   float64 // bytes moved to/from main memory
	Flops   float64
	Elapsed float64 // time from simulation start until the pool drained
}

// workerState tracks one worker's progress through its current unit.
type workerState struct {
	pool     int
	idx      int // index of this worker within its pool
	unitIdx  int // index into pool.units; -1 when idle with empty queue
	phaseIdx int
	remC     float64 // remaining compute seconds
	remB     float64 // remaining memory bytes
	grant    float64 // current bandwidth grant, bytes/s
}

const timeEps = 1e-15

// runEngine simulates the pools sharing totalBW of memory bandwidth and
// returns the makespan plus per-pool statistics.
func runEngine(pools []*pool, totalBW float64) (float64, []poolStats, error) {
	return runEngineTraced(pools, totalBW, nil)
}

// runEngineTraced is runEngine with an optional bandwidth-timeline tracer.
func runEngineTraced(pools []*pool, totalBW float64, tr *tracer) (float64, []poolStats, error) {
	if totalBW <= 0 {
		return 0, nil, fmt.Errorf("sim: non-positive bandwidth")
	}
	engineRuns.Inc()
	for _, p := range pools {
		engineUnits.Add(int64(len(p.units)))
	}
	steps := int64(0)
	defer func() { engineSteps.Add(steps) }()
	stats := make([]poolStats, len(pools))
	var workers []*workerState
	next := make([]int, len(pools)) // next unit index per pool
	for pi, p := range pools {
		if p.workers < 0 {
			return 0, nil, fmt.Errorf("sim: pool %s has negative workers", p.name)
		}
		for w := 0; w < p.workers; w++ {
			workers = append(workers, &workerState{pool: pi, idx: w, unitIdx: -1})
		}
		for _, u := range p.units {
			stats[pi].Flops += u.flops
		}
		if len(p.units) > 0 && p.workers == 0 {
			return 0, nil, fmt.Errorf("sim: pool %s has units but no workers", p.name)
		}
	}

	now := 0.0
	for {
		// Dispatch idle workers.
		active := 0
		for _, w := range workers {
			if w.unitIdx < 0 {
				p := pools[w.pool]
				if next[w.pool] < len(p.units) {
					w.unitIdx = next[w.pool]
					next[w.pool]++
					w.phaseIdx = 0
					ph := p.units[w.unitIdx].phases[0]
					w.remC, w.remB = ph.compute, ph.bytes
				}
			}
			if w.unitIdx >= 0 {
				active++
			}
		}
		if active == 0 {
			break
		}

		allocate(workers, pools, totalBW)

		// Earliest next counter completion.
		dt := math.Inf(1)
		for _, w := range workers {
			if w.unitIdx < 0 {
				continue
			}
			if w.remC > 0 && w.remC < dt {
				dt = w.remC
			}
			if w.remB > 0 && w.grant > 0 {
				if t := w.remB / w.grant; t < dt {
					dt = t
				}
			}
		}
		if math.IsInf(dt, 1) {
			// Only zero-remaining counters: resolve completions below with
			// dt = 0.
			dt = 0
		}
		tr.record(now, dt, workers, len(pools))

		steps++
		now += dt
		for _, w := range workers {
			if w.unitIdx < 0 {
				continue
			}
			if w.remC > 0 {
				w.remC -= dt
				if w.remC < timeEps {
					w.remC = 0
				}
			}
			if w.remB > 0 && w.grant > 0 {
				moved := w.grant * dt
				if moved > w.remB {
					moved = w.remB
				}
				stats[w.pool].Bytes += moved
				w.remB -= moved
				if w.remB < timeEps*w.grant || w.remB < 1e-9 {
					w.remB = 0
				}
			}
			// Phase / unit completion.
			for w.unitIdx >= 0 && w.remC == 0 && w.remB == 0 {
				p := pools[w.pool]
				u := &p.units[w.unitIdx]
				w.phaseIdx++
				if w.phaseIdx < len(u.phases) {
					ph := u.phases[w.phaseIdx]
					w.remC, w.remB = ph.compute, ph.bytes
					continue
				}
				// Unit drained; record pool progress and fetch the next one.
				stats[w.pool].Elapsed = now
				if next[w.pool] < len(p.units) {
					w.unitIdx = next[w.pool]
					next[w.pool]++
					w.phaseIdx = 0
					first := p.units[w.unitIdx].phases[0]
					w.remC, w.remB = first.compute, first.bytes
				} else {
					w.unitIdx = -1
				}
			}
		}
	}
	return now, stats, nil
}

// allocate grants memory bandwidth max-min fairly: every worker with
// outstanding bytes demands up to its per-worker peak, pools may carry an
// aggregate link cap (PCIe), and the total is bounded by the shared memory
// bandwidth. Link caps are themselves enforced max-min fairly within the
// pool: a worker demanding less than its even share of the link leaves its
// slack to the pool's other workers rather than stranding it, so a pool
// with mixed-speed members can still saturate its link.
func allocate(workers []*workerState, pools []*pool, totalBW float64) {
	type claimant struct {
		w   *workerState
		cap float64
	}
	var cs []claimant
	byPool := make([][]int, len(pools)) // claimant indices per pool
	demand := make([]float64, len(pools))
	for _, w := range workers {
		w.grant = 0
		if w.unitIdx < 0 || w.remB <= 0 {
			continue
		}
		cap := pools[w.pool].workerCap(w.idx)
		demand[w.pool] += cap
		byPool[w.pool] = append(byPool[w.pool], len(cs))
		cs = append(cs, claimant{w, cap})
	}
	if len(cs) == 0 {
		return
	}
	// Enforce per-pool link caps: when a pool's aggregate demand exceeds
	// its link, replace the member caps with their max-min fair shares of
	// the link.
	for pi, p := range pools {
		if p.linkBW <= 0 || demand[pi] <= p.linkBW || len(byPool[pi]) == 0 {
			continue
		}
		caps := make([]float64, len(byPool[pi]))
		for j, ci := range byPool[pi] {
			caps[j] = cs[ci].cap
		}
		for j, g := range waterfill(caps, p.linkBW) {
			cs[byPool[pi][j]].cap = g
		}
	}
	// Max-min waterfill against the shared memory bandwidth.
	caps := make([]float64, len(cs))
	for i, c := range cs {
		caps[i] = c.cap
	}
	for i, g := range waterfill(caps, totalBW) {
		cs[i].w.grant = g
	}
}

// waterfill distributes budget across demands max-min fairly: demands below
// the current even share are fully granted, and their slack is re-split
// among the rest until nobody saturates, at which point the remainder is
// divided evenly. The returned grants sum to min(budget, sum(caps)).
func waterfill(caps []float64, budget float64) []float64 {
	grants := make([]float64, len(caps))
	unsat := make([]int, len(caps))
	for i := range unsat {
		unsat[i] = i
	}
	remaining := budget
	for len(unsat) > 0 && remaining > 0 {
		share := remaining / float64(len(unsat))
		still := unsat[:0]
		progressed := false
		for _, i := range unsat {
			if need := caps[i] - grants[i]; need <= share {
				grants[i] = caps[i]
				remaining -= need
				progressed = true
			} else {
				still = append(still, i)
			}
		}
		if !progressed {
			// Nobody saturated: split what remains evenly and stop.
			for _, i := range still {
				grants[i] += share
			}
			break
		}
		unsat = still
	}
	return grants
}

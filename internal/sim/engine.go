package sim

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Engine observability: engine invocations, work units drained, and event-
// loop steps (each step advances simulated time to the next counter
// completion). Counters are bumped once per engine run, never inside the
// per-worker inner loops.
var (
	engineRuns  = obs.NewCounter("sim.engine.runs")
	engineUnits = obs.NewCounter("sim.engine.units")
	engineSteps = obs.NewCounter("sim.engine.steps")
)

// phase is one stage of a work unit: compute seconds and memory bytes that
// proceed concurrently (the engine takes the max). Work-unit generators
// express non-overlapping stages as separate phases.
type phase struct {
	compute float64 // seconds of dedicated compute
	bytes   float64 // bytes to move to/from main memory
}

// maxPhases bounds the stages of one work unit. The shipped generators emit
// one phase (fully overlapping workers) or two (stream+compute, then the
// write-back drain); the property tests go up to three.
const maxPhases = 3

// unit is a schedulable piece of work (a hot tile or a cold row chunk).
// Phases are stored inline rather than in a per-unit slice so building a
// pool of units performs no per-unit heap allocation and a Runner can reuse
// one backing array across runs.
type unit struct {
	ph    [maxPhases]phase
	nph   int32
	flops float64
}

// addPhase appends one stage to the unit.
func (u *unit) addPhase(p phase) {
	u.ph[u.nph] = p
	u.nph++
}

// unitOf builds a unit from its phases — construction-side convenience for
// the builders and tests.
func unitOf(flops float64, phs ...phase) unit {
	u := unit{flops: flops}
	for _, p := range phs {
		u.addPhase(p)
	}
	return u
}

// pool is a set of identical workers self-scheduling from a shared unit
// queue.
type pool struct {
	name        string
	workers     int
	perWorkerBW float64 // peak streaming bandwidth per worker, bytes/s
	linkBW      float64 // aggregate cap for the whole pool (e.g. PCIe); 0 = none
	// workerBW optionally overrides perWorkerBW per worker (workerBW[i] is
	// worker i's peak; missing or non-positive entries fall back to
	// perWorkerBW), for pools whose members are not identical.
	workerBW []float64
	units    []unit
}

// workerCap returns worker i's peak streaming bandwidth.
func (p *pool) workerCap(i int) float64 {
	if i < len(p.workerBW) && p.workerBW[i] > 0 {
		return p.workerBW[i]
	}
	return p.perWorkerBW
}

// poolStats aggregates a pool's observed behavior during a run.
type poolStats struct {
	Bytes   float64 // bytes moved to/from main memory
	Flops   float64
	Elapsed float64 // time from simulation start until the pool drained
}

// workerState tracks one worker's progress through its current unit.
type workerState struct {
	pool     int
	idx      int // index of this worker within its pool
	unitIdx  int // index into pool.units; -1 when idle with empty queue
	phaseIdx int
	remC     float64 // remaining compute seconds
	remB     float64 // remaining memory bytes
	grant    float64 // current bandwidth grant, bytes/s
}

const timeEps = 1e-15

// engine is one event-loop execution over a set of pools. All state the
// loop touches — worker records, the active list, and the allocation
// scratch — is sized once at construction so a steady-state step performs
// zero heap allocations (pinned by TestEngineStepAllocs). Results are
// bit-identical to the straightforward re-evaluate-everything loop: the
// only shortcuts taken are (a) idle workers leave the active list and are
// never rescanned, and (b) bandwidth grants are recomputed only when the
// demanding set could have changed (see allocValid).
type engine struct {
	pools   []*pool
	totalBW float64

	workers []workerState // all workers, pool-major (ascending pool, idx)
	active  []int32       // indices into workers with a unit, ascending
	next    []int         // next unit index per pool
	stats   []poolStats
	now     float64
	steps   int64

	// allocValid reports that the grants computed by the previous allocate
	// are still exact. Grants are a pure function of the demanding set
	// {(worker, cap)} — per-worker caps are constant for the whole run — so
	// they only change when a worker enters the set (a new phase or unit
	// with outstanding bytes) or leaves it (remB reaching zero, or going
	// idle). The advance loop clears the flag on every such transition and
	// the next step falls back to the exact computation; steps that only
	// drain compute counters skip the reallocation entirely.
	allocValid bool

	// naiveAlloc forces allocateNaive on every step (no scratch reuse, no
	// grant-invalidation skip). Only the property tests set it: they run
	// whole simulations both ways and require bit-identical outcomes.
	naiveAlloc bool

	// deep is the optional timeline/deep-timing scratch (see timeline.go).
	// nil in normal runs; its buffers are sized at attach time, so traced
	// steps are as allocation-free as untraced ones.
	deep *engineDeep

	// Allocation scratch, reused every round. Claimants are gathered in
	// ascending worker order, so each pool's claimants form one contiguous
	// range of claimIdx/claimCap — per-pool link caps are applied to that
	// range in place.
	claimIdx  []int32   // worker index per claimant
	claimCap  []float64 // per-claimant peak, overwritten by link-fair shares
	grants    []float64 // waterfill output
	unsat     []int32   // waterfill worklist
	poolFrom  []int32   // first claimant index per pool this round
	poolCount []int32   // claimants per pool this round
	demand    []float64 // aggregate demand per pool this round
}

// growInts reslices s to length n, reallocating only when the capacity is
// insufficient — the engine-reset idiom that keeps a Runner's steady state
// allocation-free once its scratch has grown to the workload's size.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growStats(s []poolStats, n int) []poolStats {
	if cap(s) < n {
		return make([]poolStats, n)
	}
	return s[:n]
}

// newEngine validates the pools and builds a ready-to-step engine with all
// scratch sized for the run.
func newEngine(pools []*pool, totalBW float64) (*engine, error) {
	e := &engine{}
	if err := e.reset(pools, totalBW); err != nil {
		return nil, err
	}
	return e, nil
}

// reset validates the pools and prepares the engine for a run, reusing
// every scratch slice whose capacity suffices. A reset over pool shapes no
// larger than any earlier run performs zero heap allocations, which is what
// lets a Runner's steady state stay allocation-free (TestRunnerRunAllocs).
func (e *engine) reset(pools []*pool, totalBW float64) error {
	if totalBW <= 0 {
		return fmt.Errorf("sim: non-positive bandwidth")
	}
	total := 0
	for _, p := range pools {
		if p.workers < 0 {
			return fmt.Errorf("sim: pool %s has negative workers", p.name)
		}
		if len(p.units) > 0 && p.workers == 0 {
			return fmt.Errorf("sim: pool %s has units but no workers", p.name)
		}
		total += p.workers
	}
	e.pools = pools
	e.totalBW = totalBW
	e.workers = e.workers[:0]
	if cap(e.workers) < total {
		e.workers = make([]workerState, 0, total)
	}
	e.active = e.active[:0]
	if cap(e.active) < total {
		e.active = make([]int32, 0, total)
	}
	e.next = growInts(e.next, len(pools))
	e.stats = growStats(e.stats, len(pools))
	e.claimIdx = growInt32s(e.claimIdx, total)
	e.claimCap = growFloats(e.claimCap, total)
	e.grants = growFloats(e.grants, total)
	e.unsat = growInt32s(e.unsat, total)
	e.poolFrom = growInt32s(e.poolFrom, len(pools))
	e.poolCount = growInt32s(e.poolCount, len(pools))
	e.demand = growFloats(e.demand, len(pools))
	for i := range e.next {
		e.next[i] = 0
		e.stats[i] = poolStats{}
	}
	e.now = 0
	e.steps = 0
	e.allocValid = false
	e.naiveAlloc = false
	e.deep = nil
	for pi, p := range pools {
		for w := 0; w < p.workers; w++ {
			e.workers = append(e.workers, workerState{pool: pi, idx: w, unitIdx: -1})
		}
		for ui := range p.units {
			e.stats[pi].Flops += p.units[ui].flops
		}
	}
	// Initial dispatch: hand every worker its first unit. From here on
	// workers fetch follow-up units inline at completion, so the active
	// list only ever shrinks.
	for wi := range e.workers {
		w := &e.workers[wi]
		p := pools[w.pool]
		if e.next[w.pool] < len(p.units) {
			w.unitIdx = e.next[w.pool]
			e.next[w.pool]++
			ph := p.units[w.unitIdx].ph[0]
			w.remC, w.remB = ph.compute, ph.bytes
			e.active = append(e.active, int32(wi))
		}
	}
	return nil
}

// runEngine simulates the pools sharing totalBW of memory bandwidth and
// returns the makespan plus per-pool statistics.
func runEngine(pools []*pool, totalBW float64) (float64, []poolStats, error) {
	return runEngineObserved(pools, totalBW, nil, nil)
}

// runEngineTraced is runEngine with an optional bandwidth-timeline tracer.
func runEngineTraced(pools []*pool, totalBW float64, tr *tracer) (float64, []poolStats, error) {
	return runEngineObserved(pools, totalBW, tr, nil)
}

// runEngineObserved is the full-observability entry point: tr records the
// aggregate bandwidth timeline (Result.Trace), deep records per-worker
// timeline events and the step-width histogram. Either may be nil.
func runEngineObserved(pools []*pool, totalBW float64, tr *tracer, deep *engineDeep) (float64, []poolStats, error) {
	e, err := newEngine(pools, totalBW)
	if err != nil {
		return 0, nil, err
	}
	t, stats := e.run(tr, deep)
	return t, stats, nil
}

// run executes the event loop on a freshly reset engine with the optional
// observability attachments and returns the makespan plus per-pool stats
// (the stats slice aliases engine scratch; callers copy what they keep
// before the next reset).
func (e *engine) run(tr *tracer, deep *engineDeep) (float64, []poolStats) {
	e.deep = deep
	engineRuns.Inc()
	for _, p := range e.pools {
		engineUnits.Add(int64(len(p.units)))
	}
	for e.step(tr) {
	}
	engineSteps.Add(e.steps)
	e.deep.finish()
	return e.now, e.stats
}

// step advances the simulation to the next counter completion. It reports
// false once every pool has drained.
//
//hot:path
func (e *engine) step(tr *tracer) bool {
	if len(e.active) == 0 {
		return false
	}
	d := e.deep
	realloc := false
	if e.naiveAlloc {
		allocateNaive(e.workers, e.pools, e.totalBW)
		realloc = true
	} else if !e.allocValid {
		e.allocate()
		e.allocValid = true
		realloc = true
	}
	if realloc && d != nil {
		d.sampleGrants(e)
	}

	// Earliest next counter completion among the active workers.
	dt := math.Inf(1)
	for _, wi := range e.active {
		w := &e.workers[wi]
		if w.remC > 0 && w.remC < dt {
			dt = w.remC
		}
		if w.remB > 0 && w.grant > 0 {
			if t := w.remB / w.grant; t < dt {
				dt = t
			}
		}
	}
	if math.IsInf(dt, 1) {
		// Only zero-remaining counters: resolve completions below with
		// dt = 0.
		dt = 0
	}
	tr.record(e.now, dt, e)
	var acc []float64 // per-worker byte accumulation, nil unless a timeline is attached
	if d != nil {
		d.stepWidth.Observe(simNS(dt))
		acc = d.bytesAcc
	}

	e.steps++
	e.now += dt
	idled := false
	for _, wi := range e.active {
		w := &e.workers[wi]
		if w.remC > 0 {
			w.remC -= dt
			if w.remC < timeEps {
				w.remC = 0
			}
		}
		if w.remB > 0 && w.grant > 0 {
			moved := w.grant * dt
			if moved > w.remB {
				moved = w.remB
			}
			e.stats[w.pool].Bytes += moved
			if acc != nil {
				acc[wi] += moved
			}
			w.remB -= moved
			if w.remB < timeEps*w.grant || w.remB < 1e-9 {
				w.remB = 0
				e.allocValid = false
			}
		}
		// Phase / unit completion.
		for w.unitIdx >= 0 && w.remC == 0 && w.remB == 0 {
			e.allocValid = false
			p := e.pools[w.pool]
			u := &p.units[w.unitIdx]
			w.phaseIdx++
			if w.phaseIdx < int(u.nph) {
				ph := u.ph[w.phaseIdx]
				w.remC, w.remB = ph.compute, ph.bytes
				continue
			}
			// Unit drained; record pool progress and fetch the next one.
			e.stats[w.pool].Elapsed = e.now
			if d != nil {
				d.unitDone(int(wi), w.unitIdx, e.now)
			}
			if e.next[w.pool] < len(p.units) {
				w.unitIdx = e.next[w.pool]
				e.next[w.pool]++
				w.phaseIdx = 0
				first := p.units[w.unitIdx].ph[0]
				w.remC, w.remB = first.compute, first.bytes
			} else {
				w.unitIdx = -1
				w.grant = 0
				idled = true
				if d != nil {
					d.idle(int(wi), e.now)
				}
			}
		}
	}
	if idled {
		// Order-preserving compaction keeps the active list ascending, so
		// every later iteration order (and with it every floating-point
		// accumulation order) matches the full-scan loop bit for bit. A
		// worker idles at most once per run, so the O(active) sweep is
		// amortized free.
		keep := e.active[:0]
		for _, wi := range e.active {
			if e.workers[wi].unitIdx >= 0 {
				keep = append(keep, wi)
			}
		}
		e.active = keep
	}
	return true
}

// allocate grants memory bandwidth max-min fairly: every worker with
// outstanding bytes demands up to its per-worker peak, pools may carry an
// aggregate link cap (PCIe), and the total is bounded by the shared memory
// bandwidth. Link caps are themselves enforced max-min fairly within the
// pool: a worker demanding less than its even share of the link leaves its
// slack to the pool's other workers rather than stranding it, so a pool
// with mixed-speed members can still saturate its link.
//
// allocateNaive is the executable specification; this version computes the
// same grants (pinned bit-identically by TestAllocateMatchesNaive and the
// engine property test) without allocating, over the scratch sized at
// engine construction.
//
//hot:path
func (e *engine) allocate() {
	for pi := range e.pools {
		e.poolCount[pi] = 0
		e.demand[pi] = 0
	}
	nc := 0
	for _, wi := range e.active {
		w := &e.workers[wi]
		if w.remB <= 0 {
			w.grant = 0
			continue
		}
		wcap := e.pools[w.pool].workerCap(w.idx)
		if e.poolCount[w.pool] == 0 {
			e.poolFrom[w.pool] = int32(nc)
		}
		e.poolCount[w.pool]++
		e.demand[w.pool] += wcap
		e.claimIdx[nc] = wi
		e.claimCap[nc] = wcap
		nc++
	}
	if nc == 0 {
		return
	}
	// Enforce per-pool link caps: when a pool's aggregate demand exceeds
	// its link, replace the member caps with their max-min fair shares of
	// the link. Claimants were gathered in ascending worker order, so each
	// pool's members are the contiguous range [poolFrom, poolFrom+poolCount).
	for pi, p := range e.pools {
		if p.linkBW <= 0 || e.poolCount[pi] == 0 || e.demand[pi] <= p.linkBW {
			continue
		}
		lo, hi := e.poolFrom[pi], e.poolFrom[pi]+e.poolCount[pi]
		e.waterfill(e.claimCap[lo:hi], e.grants[lo:hi], p.linkBW)
		copy(e.claimCap[lo:hi], e.grants[lo:hi])
	}
	// Max-min waterfill against the shared memory bandwidth.
	e.waterfill(e.claimCap[:nc], e.grants[:nc], e.totalBW)
	for ci := 0; ci < nc; ci++ {
		e.workers[e.claimIdx[ci]].grant = e.grants[ci]
	}
}

// waterfill distributes budget across caps max-min fairly into grants
// (len(grants) == len(caps)): demands below the current even share are
// fully granted, and their slack is re-split among the rest until nobody
// saturates, at which point the remainder is divided evenly. The written
// grants sum to min(budget, sum(caps)). The worklist lives in e.unsat.
//
//hot:path
func (e *engine) waterfill(caps, grants []float64, budget float64) {
	unsat := e.unsat[:len(caps)]
	for i := range grants {
		grants[i] = 0
		unsat[i] = int32(i)
	}
	remaining := budget
	for len(unsat) > 0 && remaining > 0 {
		share := remaining / float64(len(unsat))
		still := unsat[:0]
		progressed := false
		for _, i := range unsat {
			if need := caps[i] - grants[i]; need <= share {
				grants[i] = caps[i]
				remaining -= need
				progressed = true
			} else {
				still = append(still, i)
			}
		}
		if !progressed {
			// Nobody saturated: split what remains evenly and stop.
			for _, i := range still {
				grants[i] += share
			}
			break
		}
		unsat = still
	}
}

// allocateNaive is the original allocation routine, kept verbatim as the
// executable specification the scratch-based allocate is verified against:
// the engine property test runs whole simulations under both and asserts
// bit-identical makespans, statistics, and per-step grants.
func allocateNaive(workers []workerState, pools []*pool, totalBW float64) {
	type claimant struct {
		w  *workerState
		bw float64
	}
	var cs []claimant
	byPool := make([][]int, len(pools)) // claimant indices per pool
	demand := make([]float64, len(pools))
	for wi := range workers {
		w := &workers[wi]
		w.grant = 0
		if w.unitIdx < 0 || w.remB <= 0 {
			continue
		}
		wcap := pools[w.pool].workerCap(w.idx)
		demand[w.pool] += wcap
		byPool[w.pool] = append(byPool[w.pool], len(cs))
		cs = append(cs, claimant{w, wcap})
	}
	if len(cs) == 0 {
		return
	}
	for pi, p := range pools {
		if p.linkBW <= 0 || demand[pi] <= p.linkBW || len(byPool[pi]) == 0 {
			continue
		}
		caps := make([]float64, len(byPool[pi]))
		for j, ci := range byPool[pi] {
			caps[j] = cs[ci].bw
		}
		for j, g := range waterfillNaive(caps, p.linkBW) {
			cs[byPool[pi][j]].bw = g
		}
	}
	caps := make([]float64, len(cs))
	for i, c := range cs {
		caps[i] = c.bw
	}
	for i, g := range waterfillNaive(caps, totalBW) {
		cs[i].w.grant = g
	}
}

// waterfillNaive is the allocating reference waterfill backing
// allocateNaive.
func waterfillNaive(caps []float64, budget float64) []float64 {
	grants := make([]float64, len(caps))
	unsat := make([]int, len(caps))
	for i := range unsat {
		unsat[i] = i
	}
	remaining := budget
	for len(unsat) > 0 && remaining > 0 {
		share := remaining / float64(len(unsat))
		still := unsat[:0]
		progressed := false
		for _, i := range unsat {
			if need := caps[i] - grants[i]; need <= share {
				grants[i] = caps[i]
				remaining -= need
				progressed = true
			} else {
				still = append(still, i)
			}
		}
		if !progressed {
			for _, i := range still {
				grants[i] += share
			}
			break
		}
		unsat = still
	}
	return grants
}

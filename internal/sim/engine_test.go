package sim

import (
	"math"
	"testing"
)

func TestEngineSingleWorkerComputeBound(t *testing.T) {
	p := &pool{name: "p", workers: 1, perWorkerBW: math.Inf(1)}
	p.units = []unit{unitOf(42, phase{compute: 2e-3, bytes: 1e3})}
	tm, stats, err := runEngine([]*pool{p}, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	// Memory finishes instantly at 100 GB/s; compute dominates.
	if math.Abs(tm-2e-3) > 1e-9 {
		t.Fatalf("time = %g, want 2e-3", tm)
	}
	if stats[0].Bytes != 1e3 || stats[0].Flops != 42 {
		t.Fatalf("stats = %+v", stats[0])
	}
	if math.Abs(stats[0].Elapsed-tm) > 1e-12 {
		t.Fatalf("elapsed %g != makespan %g", stats[0].Elapsed, tm)
	}
}

func TestEngineSingleWorkerMemoryBound(t *testing.T) {
	p := &pool{name: "p", workers: 1, perWorkerBW: 10e9}
	p.units = []unit{unitOf(0, phase{compute: 1e-6, bytes: 1e9})}
	tm, _, err := runEngine([]*pool{p}, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	// 1 GB at a 10 GB/s per-worker cap = 0.1 s.
	if math.Abs(tm-0.1) > 1e-6 {
		t.Fatalf("time = %g, want 0.1", tm)
	}
}

func TestEngineSequentialPhases(t *testing.T) {
	p := &pool{name: "p", workers: 1, perWorkerBW: 10e9}
	p.units = []unit{unitOf(0,
		phase{compute: 5e-3},              // compute-only phase
		phase{bytes: 50e6},                // memory-only phase: 5 ms at 10 GB/s
		phase{compute: 1e-3, bytes: 10e6}, // overlapped: max(1 ms, 1 ms)
	)}
	tm, _, err := runEngine([]*pool{p}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-11e-3) > 1e-6 {
		t.Fatalf("time = %g, want 11e-3", tm)
	}
}

func TestEngineBandwidthContention(t *testing.T) {
	// Two pools each wanting 80 GB/s against a 100 GB/s system: max-min
	// gives each 50, so 1 GB each takes 0.02 s.
	a := &pool{name: "a", workers: 1, perWorkerBW: 80e9}
	a.units = []unit{unitOf(0, phase{bytes: 1e9})}
	b := &pool{name: "b", workers: 1, perWorkerBW: 80e9}
	b.units = []unit{unitOf(0, phase{bytes: 1e9})}
	tm, stats, err := runEngine([]*pool{a, b}, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-0.02) > 1e-6 {
		t.Fatalf("time = %g, want 0.02", tm)
	}
	if math.Abs(stats[0].Bytes-1e9) > 1 || math.Abs(stats[1].Bytes-1e9) > 1 {
		t.Fatalf("bytes %+v", stats)
	}
}

func TestEngineMaxMinRespectsSmallClaimant(t *testing.T) {
	// One worker capped at 10 GB/s, one at 200 GB/s, system 100 GB/s:
	// max-min grants 10 and 90.
	small := &pool{name: "small", workers: 1, perWorkerBW: 10e9}
	small.units = []unit{unitOf(0, phase{bytes: 1e9})} // 0.1 s at 10 GB/s
	big := &pool{name: "big", workers: 1, perWorkerBW: 200e9}
	big.units = []unit{unitOf(0, phase{bytes: 9e9})} // 0.1 s at 90 GB/s
	tm, _, err := runEngine([]*pool{small, big}, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-0.1) > 1e-4 {
		t.Fatalf("time = %g, want ~0.1", tm)
	}
}

func TestEnginePoolLinkCap(t *testing.T) {
	// Two workers of one pool behind a 10 GB/s link: 2 GB total takes 0.2 s
	// even though the system has 100 GB/s.
	p := &pool{name: "pcie", workers: 2, perWorkerBW: 50e9, linkBW: 10e9}
	p.units = []unit{
		unitOf(0, phase{bytes: 1e9}),
		unitOf(0, phase{bytes: 1e9}),
	}
	tm, _, err := runEngine([]*pool{p}, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-0.2) > 1e-4 {
		t.Fatalf("time = %g, want 0.2", tm)
	}
}

func TestEngineMultipleWorkersShareQueue(t *testing.T) {
	// Four units of 1 ms compute on two workers: 2 ms total.
	p := &pool{name: "p", workers: 2, perWorkerBW: math.Inf(1)}
	for i := 0; i < 4; i++ {
		p.units = append(p.units, unitOf(0, phase{compute: 1e-3}))
	}
	tm, _, err := runEngine([]*pool{p}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-2e-3) > 1e-9 {
		t.Fatalf("time = %g, want 2e-3", tm)
	}
}

func TestEngineErrors(t *testing.T) {
	p := &pool{name: "p", workers: 0}
	p.units = []unit{unitOf(0, phase{compute: 1})}
	if _, _, err := runEngine([]*pool{p}, 1e9); err == nil {
		t.Fatal("expected units-without-workers error")
	}
	if _, _, err := runEngine(nil, 0); err == nil {
		t.Fatal("expected bandwidth error")
	}
	bad := &pool{name: "bad", workers: -1}
	if _, _, err := runEngine([]*pool{bad}, 1e9); err == nil {
		t.Fatal("expected negative-workers error")
	}
}

func TestEngineEmptyPoolsFinishInstantly(t *testing.T) {
	p := &pool{name: "idle", workers: 4, perWorkerBW: 1e9}
	tm, stats, err := runEngine([]*pool{p}, 1e9)
	if err != nil || tm != 0 || stats[0].Bytes != 0 {
		t.Fatalf("tm=%g stats=%+v err=%v", tm, stats, err)
	}
}

func TestEngineZeroPhase(t *testing.T) {
	// Units with zero-cost phases must not hang the engine.
	p := &pool{name: "p", workers: 1, perWorkerBW: 1e9}
	p.units = []unit{
		unitOf(0, phase{compute: 0, bytes: 0}),
		unitOf(0, phase{compute: 1e-6}),
	}
	tm, _, err := runEngine([]*pool{p}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-1e-6) > 1e-12 {
		t.Fatalf("time = %g, want 1e-6", tm)
	}
}

func TestCacheBasics(t *testing.T) {
	c := newCache(1024, 64) // 16 lines, 8-way: 2 sets
	if c.sets != 2 || c.ways != 8 {
		t.Fatalf("geometry sets=%d ways=%d", c.sets, c.ways)
	}
	if c.access(0) {
		t.Fatal("cold miss expected")
	}
	if !c.access(0) || !c.access(63) {
		t.Fatal("hit expected within the same line")
	}
	if c.access(64) {
		t.Fatal("different line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(1024, 64) // 2 sets × 8 ways
	// Fill set 0 with 8 distinct lines (even line numbers map to set 0).
	for i := 0; i < 8; i++ {
		c.access(uint64(i * 2 * 64))
	}
	// Touch line 0 to refresh it, then insert a 9th line: the victim must
	// be line 2·64 (the LRU), not line 0.
	c.access(0)
	c.access(uint64(8 * 2 * 64))
	if !c.access(0) {
		t.Fatal("refreshed line was evicted")
	}
	if c.access(uint64(1 * 2 * 64)) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestCacheAccessRange(t *testing.T) {
	c := newCache(4096, 64)
	// A 128-byte row spanning two lines misses fully the first time.
	if got := c.accessRange(0, 128); got != 128 {
		t.Fatalf("first access missed %d bytes, want 128", got)
	}
	if got := c.accessRange(0, 128); got != 0 {
		t.Fatalf("second access missed %d bytes, want 0", got)
	}
	// Unaligned range touching three lines.
	if got := c.accessRange(32, 128); got != 64 {
		t.Fatalf("unaligned access missed %d bytes, want 64 (one new line)", got)
	}
	// Nil cache charges everything.
	var nilCache *cache
	if got := nilCache.accessRange(0, 100); got != 100 {
		t.Fatalf("nil cache missed %d, want 100", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	if newCache(0, 64) != nil || newCache(64, 0) != nil {
		t.Fatal("zero capacity must disable the cache")
	}
	if c := newCache(64, 64); c.sets != 1 {
		t.Fatalf("tiny cache sets = %d, want 1", c.sets)
	}
}

func TestMissThrough(t *testing.T) {
	// Both levels nil: full charge.
	if got := missThrough(nil, nil, 0, 100); got != 100 {
		t.Fatalf("nil/nil = %d", got)
	}
	// Shared only.
	sh := newCache(4096, 64)
	if got := missThrough(nil, sh, 0, 128); got != 128 {
		t.Fatalf("cold shared = %d", got)
	}
	if got := missThrough(nil, sh, 0, 128); got != 0 {
		t.Fatalf("warm shared = %d", got)
	}
	// Private miss that hits in shared is free.
	priv := newCache(512, 64) // tiny: 1 set × 8 ways
	sh2 := newCache(1<<20, 64)
	missThrough(priv, sh2, 0, 64) // warms shared
	// Evict line 0 from the tiny private cache.
	for i := 1; i <= 8; i++ {
		missThrough(priv, sh2, uint64(i*64), 64)
	}
	if got := missThrough(priv, sh2, 0, 64); got != 0 {
		t.Fatalf("shared should have absorbed the private miss, charged %d", got)
	}
}

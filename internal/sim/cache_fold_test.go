package sim

import (
	"math/rand"
	"testing"
)

// TestDinFoldFactorExact drives the folded Din simulation (one line per row,
// misses scaled by the fold factor) and the exhaustive one (every line of
// every row) over identical random access sequences and demands bit-identical
// missed-byte results, per access and in total. This is the invariant the
// cold-pool builder's fast path rests on.
func TestDinFoldFactorExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	geometries := []struct {
		name                 string
		privBytes, sharBytes int
		line, rowBytes       int
	}{
		{"private-only", 4096, 0, 64, 512},
		{"private+shared", 4096, 32768, 64, 512},
		{"shared-only", 0, 16384, 64, 256},
		{"tiny-sets", 1024, 0, 64, 512}, // sets(2) < L(8): must not fold
		{"row=line", 8192, 0, 64, 64},   // L=1: nothing to fold
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			privA, privB := newCache(g.privBytes, g.line), newCache(g.privBytes, g.line)
			sharA, sharB := newCache(g.sharBytes, g.line), newCache(g.sharBytes, g.line)
			foldL := dinFoldFactor(privA, sharA, g.rowBytes)
			if g.name == "tiny-sets" && foldL != 1 {
				t.Fatalf("fold factor %d for sets < L, want 1", foldL)
			}
			rows := 0
			for _, c := range []*cache{privA, sharA} {
				if c != nil && c.sets*c.ways > rows {
					rows = c.sets * c.ways
				}
			}
			rows = rows*2/max(1, g.rowBytes/g.line) + 64 // force evictions
			total := 0
			for i := 0; i < 4000; i++ {
				addr := uint64(rng.Intn(rows)) * uint64(g.rowBytes)
				exact := missThrough(privA, sharA, addr, g.rowBytes)
				var folded int
				if foldL > 1 {
					folded = foldL * missThrough(privB, sharB, addr, g.rowBytes/foldL)
				} else {
					folded = missThrough(privB, sharB, addr, g.rowBytes)
				}
				if exact != folded {
					t.Fatalf("access %d (addr %d): exact=%d folded=%d (foldL=%d)",
						i, addr, exact, folded, foldL)
				}
				total += exact
			}
			if total == 0 {
				t.Fatal("degenerate sequence: no misses at all")
			}
		})
	}
}

// TestDinFoldFactorGates checks the conditions under which folding must be
// declined.
func TestDinFoldFactorGates(t *testing.T) {
	c64 := newCache(4096, 64)
	c48 := newCache(4096, 48) // non-power-of-two line
	cases := []struct {
		name            string
		priv, shar      *cache
		rowBytes, wantL int
	}{
		{"both-nil", nil, nil, 512, 1},
		{"pow2", c64, nil, 512, 8},
		{"row-not-multiple", c64, nil, 96, 1},
		{"row-not-pow2-multiple", c64, nil, 192, 1},
		{"non-pow2-line", c48, nil, 480, 1},
		{"mismatched-lines", c64, newCache(4096, 128), 512, 1},
		{"zero-row", c64, nil, 0, 1},
	}
	for _, tc := range cases {
		if got := dinFoldFactor(tc.priv, tc.shar, tc.rowBytes); got != tc.wantL {
			t.Errorf("%s: fold factor %d, want %d", tc.name, got, tc.wantL)
		}
	}
}
